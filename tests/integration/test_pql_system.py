"""PQL over a live system: the paper's section 5.7 query shape."""

from repro.pql.oem import OEMNode
from tests.conftest import write_file


def node_names(rows):
    return {row.name for row in rows if isinstance(row, OEMNode)}


class TestLiveQueries:
    def test_paper_ancestry_query(self, system):
        """The §5.7 query: all ancestors of one output by input*."""
        write_file(system, "/pass/in.dat", b"input")
        with system.process(argv=["mkatlas"]) as proc:
            fd = proc.open("/pass/in.dat", "r")
            data = proc.read(fd)
            proc.close(fd)
            out = proc.open("/pass/atlas-x.gif", "w")
            proc.write(out, data[::-1])
            proc.close(out)
        system.sync()
        rows = system.query("""
            select Ancestor
            from Provenance.file as Atlas
                 Atlas.input* as Ancestor
            where Atlas.name = "/pass/atlas-x.gif"
        """)
        reached = node_names(rows)
        assert "/pass/in.dat" in reached
        assert "mkatlas" in reached

    def test_descendant_taint_query(self, system):
        """Reverse traversal: everything derived from a tainted input."""
        write_file(system, "/pass/tainted", b"bad")
        with system.process(argv=["spreader"]) as proc:
            fd = proc.open("/pass/tainted", "r")
            data = proc.read(fd)
            proc.close(fd)
            for name in ("a", "b"):
                out = proc.open(f"/pass/spawn-{name}", "w")
                proc.write(out, data)
                proc.close(out)
        system.sync()
        rows = system.query("""
            select D from Provenance.file as F
                 F.^input* as D
            where F.name = "/pass/tainted"
        """)
        reached = node_names(rows)
        assert {"/pass/spawn-a", "/pass/spawn-b"} <= reached

    def test_query_engine_live_across_sync(self, system):
        """Sync no longer invalidates: the same engine object persists
        and new provenance flows into its graph incrementally."""
        write_file(system, "/pass/one", b"1")
        system.sync()
        engine = system.query_engine()
        assert system.query_engine() is engine
        assert engine.execute_refs(
            'select F from Provenance.file as F where F.name = "/pass/one"')
        write_file(system, "/pass/two", b"2")
        system.sync()
        assert system.query_engine() is engine
        assert engine.execute_refs(
            'select F from Provenance.file as F where F.name = "/pass/two"')

    def test_count_processes(self, system):
        write_file(system, "/pass/x", b"x")
        system.sync()
        count = system.query(
            "select count(P) from Provenance.process as P")
        assert count[0] >= 1

    def test_identity_atoms_shared_across_versions(self, system):
        """After a freeze, querying by name must still find the newest
        version node."""
        write_file(system, "/pass/v", b"v0")
        with system.process() as proc:
            fd = proc.open("/pass/v", "r+")
            proc.read(fd)
            proc.write(fd, b"v1")       # freeze -> version 1
            proc.close(fd)
        system.sync()
        rows = system.query(
            'select F from Provenance.file as F where F.name = "/pass/v"')
        versions = {row.ref.version for row in rows}
        assert 1 in versions
