"""PA-NFS fault injection through the real client path."""

import pytest

from repro.core.errors import (
    IsADirectory,
    NetworkPartition,
    NotADirectory,
    StaleHandle,
)
from repro.core.records import Attr
from tests.integration.test_nfs import make_env


class TestPartition:
    def test_partitioned_client_cannot_write(self):
        server_sys, server, clients = make_env()
        client_sys, client = clients[0]
        client.network.partition()
        with pytest.raises(NetworkPartition):
            with client_sys.process() as proc:
                fd = proc.open("/nfs/f", "w")
                proc.write(fd, b"x")

    def test_heal_restores_service(self):
        server_sys, server, clients = make_env()
        client_sys, client = clients[0]
        client.network.partition()
        client.network.heal()
        with client_sys.process() as proc:
            fd = proc.open("/nfs/f", "w")
            proc.write(fd, b"x")
            proc.close(fd)
        assert server_sys.kernel.vfs.exists("/export/f")


class TestClientCrashMidWork:
    def test_buffered_provenance_lost_but_no_garbage(self):
        """A client that dies with records still buffered loses them;
        the server database stays consistent (nothing half-applied)."""
        server_sys, server, clients = make_env()
        client_sys, client = clients[0]
        with client_sys.process() as proc:
            fd = proc.open("/nfs/before-crash", "w")
            proc.write(fd, b"durable")
            proc.close(fd)
            # A rename leaves a fresh NAME record in the client buffer.
            proc.rename("/nfs/before-crash", "/nfs/renamed")
            assert client.volume.lasagna.buffered > 0
            lost = client.crash()
        assert lost > 0
        server_sys.sync()
        db = server_sys.database("export")
        names = {r.value for r in db.all_records() if r.attr == Attr.NAME}
        # The original write's provenance arrived; the rename's did not.
        assert "/nfs/before-crash" in names
        assert "/nfs/renamed" not in names
        # But the rename itself (a metadata op) did happen server-side.
        assert server_sys.kernel.vfs.exists("/export/renamed")

    def test_server_crash_mid_session_then_restart(self):
        server_sys, server, clients = make_env()
        client_sys, client = clients[0]
        with client_sys.process() as proc:
            fd = proc.open("/nfs/early", "w")
            proc.write(fd, b"1")
            proc.close(fd)
        server.crash()
        with pytest.raises(StaleHandle):
            with client_sys.process() as proc:
                fd = proc.open("/nfs/during", "w")
                proc.write(fd, b"2")
        server.restart()
        with client_sys.process() as proc:
            fd = proc.open("/nfs/after", "w")
            proc.write(fd, b"3")
            proc.close(fd)
        assert server_sys.kernel.vfs.exists("/export/after")


class TestRenameSemantics:
    def test_cannot_replace_directory_with_file(self, system):
        with system.process() as proc:
            proc.mkdir("/pass/dir")
            fd = proc.open("/pass/file", "w")
            proc.write(fd, b"x")
            proc.close(fd)
            with pytest.raises(IsADirectory):
                proc.rename("/pass/file", "/pass/dir")

    def test_cannot_replace_file_with_directory(self, system):
        with system.process() as proc:
            proc.mkdir("/pass/dir")
            fd = proc.open("/pass/file", "w")
            proc.write(fd, b"x")
            proc.close(fd)
            with pytest.raises(NotADirectory):
                proc.rename("/pass/dir", "/pass/file")

    def test_rename_onto_self_is_noop(self, system):
        with system.process() as proc:
            fd = proc.open("/pass/same", "w")
            proc.write(fd, b"x")
            proc.close(fd)
            proc.rename("/pass/same", "/pass/same")
            assert proc.exists("/pass/same")


class TestServerCrashMidDrain:
    def test_drain_crash_requeues_and_recovery_completes(self):
        """The server's Waldo dies between segments: the undrained
        segment goes back to the log and recovery inserts every
        committed record -- each client sync is fully applied."""
        from repro.faults import CrashFault, FaultInjector, FaultPlan
        from repro.storage.fsck import fsck
        from repro.storage.recovery import recover

        plan = FaultPlan().add("waldo.drain.segment", "crash", nth=2)
        injector = FaultInjector(plan)
        server_sys, server, clients = make_env(server_faults=injector)
        client_sys, client = clients[0]
        # Two sync rounds close two log segments server-side.
        for name in ("f1", "f2"):
            with client_sys.process() as proc:
                fd = proc.open(f"/nfs/{name}", "w")
                proc.write(fd, name.encode() * 32)
                proc.close(fd)
            client.sync()
        with pytest.raises(CrashFault):
            server_sys.sync()
        assert injector.halted
        waldo = server_sys.waldos["export"]
        lasagna = server_sys.kernel.volume("export").lasagna
        # Standard restart sequence: requeue, drop volatile state,
        # replay the log into the database.
        assert waldo.crash() == 1
        lasagna.crash()
        report = recover(lasagna, database=waldo.database, consume=True)
        assert len(report.committed_records) > 0
        db = server_sys.database("export")
        names = {r.value for r in db.all_records() if r.attr == Attr.NAME}
        assert {"/nfs/f1", "/nfs/f2"} <= names
        assert fsck(server_sys.databases()).clean
        # Replaying recovery is a no-op (idempotence).
        before = len(db)
        second = recover(lasagna, database=waldo.database, consume=True)
        assert not second.committed_records
        assert len(db) == before


class TestPartitionDuringPassSync:
    def test_dropped_endtxn_orphans_the_half_sent_records(self):
        """The wire drops the ENDTXN call of a pass_sync: the records
        already streamed to the server sit in an unterminated
        transaction and are orphaned at the next drain -- fully
        absent, never half-applied."""
        from repro.faults import FaultInjector, FaultPlan

        injector = FaultInjector()
        server_sys, server, clients = make_env(net_faults=injector)
        client_sys, client = clients[0]
        # Durable baseline first, with the wire healthy.
        with client_sys.process() as proc:
            fd = proc.open("/nfs/keep", "w")
            proc.write(fd, b"durable")
            proc.close(fd)
        client.sync()
        server_sys.sync()
        # A rename buffers a fresh NAME record client-side.
        with client_sys.process() as proc:
            proc.rename("/nfs/keep", "/nfs/renamed")
        assert client.volume.lasagna.buffered > 0
        # The sync sends begintxn, one record chunk, endtxn; drop the
        # third call (the ENDTXN) mid-transaction.
        injector.plan = FaultPlan().add(
            "net.call", "drop", nth=injector.hits.get("net.call", 0) + 3)
        with pytest.raises(NetworkPartition):
            client.sync()
        inserted = server_sys.sync()
        db = server_sys.database("export")
        names = {r.value for r in db.all_records() if r.attr == Attr.NAME}
        assert "/nfs/keep" in names
        assert "/nfs/renamed" not in names          # fully absent
        waldo = server_sys.waldos["export"]
        assert any(r.attr == Attr.NAME and r.value == "/nfs/renamed"
                   for r in waldo.orphaned)
        # The drop was transient: the next write+sync round-trips.
        with client_sys.process() as proc:
            fd = proc.open("/nfs/after", "w")
            proc.write(fd, b"back online")
            proc.close(fd)
        client.sync()
        server_sys.sync()
        names = {r.value for r in db.all_records() if r.attr == Attr.NAME}
        assert "/nfs/after" in names
