"""PA-NFS fault injection through the real client path."""

import pytest

from repro.core.errors import (
    IsADirectory,
    NetworkPartition,
    NotADirectory,
    StaleHandle,
)
from repro.core.records import Attr
from tests.integration.test_nfs import make_env


class TestPartition:
    def test_partitioned_client_cannot_write(self):
        server_sys, server, clients = make_env()
        client_sys, client = clients[0]
        client.network.partition()
        with pytest.raises(NetworkPartition):
            with client_sys.process() as proc:
                fd = proc.open("/nfs/f", "w")
                proc.write(fd, b"x")

    def test_heal_restores_service(self):
        server_sys, server, clients = make_env()
        client_sys, client = clients[0]
        client.network.partition()
        client.network.heal()
        with client_sys.process() as proc:
            fd = proc.open("/nfs/f", "w")
            proc.write(fd, b"x")
            proc.close(fd)
        assert server_sys.kernel.vfs.exists("/export/f")


class TestClientCrashMidWork:
    def test_buffered_provenance_lost_but_no_garbage(self):
        """A client that dies with records still buffered loses them;
        the server database stays consistent (nothing half-applied)."""
        server_sys, server, clients = make_env()
        client_sys, client = clients[0]
        with client_sys.process() as proc:
            fd = proc.open("/nfs/before-crash", "w")
            proc.write(fd, b"durable")
            proc.close(fd)
            # A rename leaves a fresh NAME record in the client buffer.
            proc.rename("/nfs/before-crash", "/nfs/renamed")
            assert client.volume.lasagna.buffered > 0
            lost = client.crash()
        assert lost > 0
        server_sys.sync()
        db = server_sys.database("export")
        names = {r.value for r in db.all_records() if r.attr == Attr.NAME}
        # The original write's provenance arrived; the rename's did not.
        assert "/nfs/before-crash" in names
        assert "/nfs/renamed" not in names
        # But the rename itself (a metadata op) did happen server-side.
        assert server_sys.kernel.vfs.exists("/export/renamed")

    def test_server_crash_mid_session_then_restart(self):
        server_sys, server, clients = make_env()
        client_sys, client = clients[0]
        with client_sys.process() as proc:
            fd = proc.open("/nfs/early", "w")
            proc.write(fd, b"1")
            proc.close(fd)
        server.crash()
        with pytest.raises(StaleHandle):
            with client_sys.process() as proc:
                fd = proc.open("/nfs/during", "w")
                proc.write(fd, b"2")
        server.restart()
        with client_sys.process() as proc:
            fd = proc.open("/nfs/after", "w")
            proc.write(fd, b"3")
            proc.close(fd)
        assert server_sys.kernel.vfs.exists("/export/after")


class TestRenameSemantics:
    def test_cannot_replace_directory_with_file(self, system):
        with system.process() as proc:
            proc.mkdir("/pass/dir")
            fd = proc.open("/pass/file", "w")
            proc.write(fd, b"x")
            proc.close(fd)
            with pytest.raises(IsADirectory):
                proc.rename("/pass/file", "/pass/dir")

    def test_cannot_replace_file_with_directory(self, system):
        with system.process() as proc:
            proc.mkdir("/pass/dir")
            fd = proc.open("/pass/file", "w")
            proc.write(fd, b"x")
            proc.close(fd)
            with pytest.raises(NotADirectory):
                proc.rename("/pass/dir", "/pass/file")

    def test_rename_onto_self_is_noop(self, system):
        with system.process() as proc:
            fd = proc.open("/pass/same", "w")
            proc.write(fd, b"x")
            proc.close(fd)
            proc.rename("/pass/same", "/pass/same")
            assert proc.exists("/pass/same")
