"""The paper's 'Without Layering' counterfactuals, demonstrated.

Each section-3 use case contrasts what single-layer provenance can and
cannot answer.  These tests pin the *cannot* side: they run the same
scenarios with one layer missing and show the question becomes
unanswerable -- which is the paper's whole motivation.
"""

from repro.apps.kepler import run_workflow
from repro.apps.kepler.challenge import (
    build_challenge,
    ensure_dirs,
    generate_inputs,
)
from repro.core.records import Attr
from tests.conftest import read_file, write_file


class TestKeplerOnlyMissesTheInputChange:
    def test_kepler_layer_records_identical_across_runs(self, system):
        """Section 3.1, 'Without Layering': if we examine only the
        Kepler provenance, the two executions look identical -- the
        input changed beneath the workflow engine."""
        ensure_dirs(system, "/pass/inputs", "/pass/w1", "/pass/w2",
                    "/pass/out")
        generate_inputs(system, "/pass/inputs")

        def kepler_view(workdir):
            """What the workflow layer alone records: operators,
            parameters, and transfer topology -- via the database
            recorder (Kepler's own 'relational database' option)."""
            wf = build_challenge("/pass/inputs", workdir, "/pass/out")
            director = run_workflow(system, wf, recording="database")
            rows = director.recorder.rows
            normalized = []
            for row in rows:
                if row[0] == "operator":
                    # Parameter *names* and types; paths differ by run
                    # directory, so strip the values like-for-like.
                    normalized.append((row[0], row[1], row[2]))
                elif row[0] == "transfer":
                    normalized.append(row)
            return normalized

        monday = kepler_view("/pass/w1")
        monday_output = read_file(system, "/pass/out/atlas-x.gif")
        # The silent modification.
        write_file(system, "/pass/inputs/anatomy2.img", b"TAMPERED" * 64)
        wednesday = kepler_view("/pass/w2")
        wednesday_output = read_file(system, "/pass/out/atlas-x.gif")

        assert monday_output != wednesday_output      # outputs differ...
        assert monday == wednesday                    # ...Kepler can't say why


class TestPassOnlyMissesTheUrl:
    def test_plain_browser_write_has_no_url(self, system):
        """Section 3.2, 'Without Layering': PASSv2 alone only records
        that the file was downloaded by the browser -- no URL."""
        def plain_browser(sc):
            # A browser that is NOT provenance-aware: it just writes.
            fd = sc.open("/pass/downloaded.png", "w")
            sc.write(fd, b"PNG-DATA")
            sc.close(fd)
            return 0

        system.register_program("/pass/bin/browser", plain_browser)
        system.run("/pass/bin/browser", argv=["browser"])
        system.sync()
        db = system.database("pass")
        ref = db.find_by_name("/pass/downloaded.png")[0]
        records = db.records_of(ref.pnode)
        attrs = {r.attr for r in records}
        # The process dependency is there; the URL is simply absent.
        assert Attr.INPUT in attrs
        assert Attr.FILE_URL not in attrs
        assert Attr.CURRENT_URL not in attrs


class TestPassOnlyBlamesEveryXmlFile:
    def test_reads_all_uses_some(self, system):
        """Section 3.3, 'Without Layering': the analysis program reads
        every XML file to pick a subset; PASS alone reports the plot
        derives from all of them."""
        from repro.workloads.thermography import generate_logs

        generate_logs(system, "/pass/thermo", experiments=10, specimens=2)

        def non_pa_analysis(sc):
            used = []
            for name in sc.readdir("/pass/thermo"):
                fd = sc.open(f"/pass/thermo/{name}", "r")
                doc = sc.read(fd)
                sc.close(fd)
                if b"<stress_class>high</stress_class>" in doc:
                    used.append(doc)
            out = sc.open("/pass/plot.dat", "w")
            sc.write(out, b"\n".join(d[:20] for d in used))
            sc.close(out)
            return 0

        system.register_program("/pass/bin/analyze", non_pa_analysis)
        system.run("/pass/bin/analyze", argv=["python", "analyze.py"])
        system.sync()
        db = system.database("pass")
        plot = db.find_by_name("/pass/plot.dat")[0]
        from tests.integration.test_pipeline import transitive_ancestors
        xml_ancestors = {
            name for ref in transitive_ancestors(db, plot)
            for name in db.attribute_values(ref, Attr.NAME)
            if str(name).endswith(".xml")
        }
        # All ten blamed, even though only a subset was used.
        assert len(xml_ancestors) == 10
