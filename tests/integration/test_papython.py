"""PA-Python integration tests: the section 3.3 use cases."""

from repro.core.records import Attr, ObjType
from repro.workloads.thermography import (
    buggy_crack_heating_curve,
    generate_logs,
    run_analysis,
)
from tests.conftest import read_file, write_file
from tests.integration.test_pipeline import transitive_ancestors


def names_and_types(db, refs):
    names, types = set(), set()
    for ref in refs:
        names.update(db.attribute_values(ref, Attr.NAME))
        types.update(db.attribute_values(ref, Attr.TYPE))
    return names, types


class TestWrapperBasics:
    def test_wrapped_function_creates_objects(self, system):
        from repro.apps.papython import ProvenanceTracker

        def program(sc):
            tracker = ProvenanceTracker(sc)
            double = tracker.wrap_function(lambda x: x * 2, name="double")
            value = tracker.wrap_value(21, "the-answer-half")
            result = double(value)
            assert result.value == 42
            tracker.write_file("/pass/result.txt", result)
            return 0

        system.register_program("/pass/bin/app", program)
        system.run("/pass/bin/app")
        system.sync()
        db = system.database("pass")
        out_ref = db.find_by_name("/pass/result.txt")[0]
        ancestors = transitive_ancestors(db, out_ref)
        names, types = names_and_types(db, ancestors)
        assert ObjType.FUNCTION in types
        assert ObjType.INVOCATION in types
        assert "double" in names
        assert "the-answer-half" in names

    def test_untracked_args_pass_through(self, system):
        from repro.apps.papython import ProvenanceTracker

        def program(sc):
            tracker = ProvenanceTracker(sc)
            add = tracker.wrap_function(lambda a, b: a + b, name="add")
            result = add(1, 2)           # plain values: the built-in gap
            assert result.value == 3
            return 0

        system.register_program("/pass/bin/app", program)
        system.run("/pass/bin/app")

    def test_wrap_module(self, system):
        from repro.apps.papython import ProvenanceTracker

        def program(sc):
            tracker = ProvenanceTracker(sc)
            module = {"inc": lambda x: x + 1, "dec": lambda x: x - 1,
                      "CONST": 5}
            wrapped = tracker.wrap_module(module)
            assert set(wrapped) == {"inc", "dec"}
            value = tracker.wrap_value(1, "v")
            assert wrapped["inc"](value).value == 2
            return 0

        system.register_program("/pass/bin/app", program)
        system.run("/pass/bin/app")


class TestDataOriginUseCase:
    def test_plot_blames_only_used_xml_files(self, system):
        """PASS alone blames all XML files; PA-Python identifies the
        exact documents used.  The layered ancestry must contain the
        used files via INVOCATION objects."""
        generate_logs(system, "/pass/thermo", experiments=12, specimens=3)
        stats = run_analysis(system, "/pass/thermo", "/pass/plot.dat",
                             stress_class="high")
        assert 0 < stats["used"] < stats["total"]
        system.sync()
        db = system.database("pass")
        plot_ref = db.find_by_name("/pass/plot.dat")[0]
        ancestors = transitive_ancestors(db, plot_ref)
        names, types = names_and_types(db, ancestors)
        assert ObjType.INVOCATION in types
        assert "crack_heating" in names
        # Layered answer: which XML documents were *used*?  The PYOBJECT
        # documents feeding the crack_heating invocation.
        used_docs = [
            ref for ref in ancestors
            if ObjType.PYOBJECT in db.attribute_values(ref, Attr.TYPE)
            and any(str(name).endswith(".xml")
                    for name in db.attribute_values(ref, Attr.NAME))
        ]
        # Each used doc must trace onward to its source file.
        xml_files = {
            name for ref in ancestors
            for name in db.attribute_values(ref, Attr.NAME)
            if str(name).startswith("/pass/thermo/")
        }
        assert used_docs
        assert xml_files

    def test_used_subset_is_queryable(self, system):
        """The docs actually used by the calc invocation, via PQL."""
        generate_logs(system, "/pass/thermo", experiments=12, specimens=3)
        stats = run_analysis(system, "/pass/thermo", "/pass/plot.dat",
                             stress_class="high")
        system.sync()
        rows = system.query("""
            select Doc
            from Provenance.invocation as Inv
                 Inv.input as Doc
            where Inv.name = "crack_heating#%d"
        """ % (stats["total"] + 1))
        doc_rows = [row for row in rows
                    if row.atom("type") == [ObjType.PYOBJECT]]
        # parse invocations are 1..total; the curve call is total+1.
        assert len(doc_rows) == stats["used"]


class TestProcessValidationUseCase:
    def test_buggy_routine_runs_identified(self, system):
        """Which outputs descend from BOTH the new library version and
        the calculation routine?  (Neither layer alone can answer.)"""
        generate_logs(system, "/pass/thermo", experiments=8, specimens=2)
        write_file(system, "/pass/lib/calc-v1.py", b"# library v1")
        write_file(system, "/pass/lib/calc-v2.py", b"# library v2 (buggy)")
        run_analysis(system, "/pass/thermo", "/pass/plot-old.dat",
                     library_path="/pass/lib/calc-v1.py")
        run_analysis(system, "/pass/thermo", "/pass/plot-new.dat",
                     calc=buggy_crack_heating_curve,
                     library_path="/pass/lib/calc-v2.py")
        system.sync()
        db = system.database("pass")
        suspect = []
        for plot in ("/pass/plot-old.dat", "/pass/plot-new.dat"):
            ref = db.find_by_name(plot)[0]
            ancestors = transitive_ancestors(db, ref)
            names, types = names_and_types(db, ancestors)
            used_buggy_lib = "/pass/lib/calc-v2.py" in names
            used_calc_routine = "crack_heating" in names
            if used_buggy_lib and used_calc_routine:
                suspect.append(plot)
        assert suspect == ["/pass/plot-new.dat"]

    def test_buggy_output_actually_differs(self, system):
        generate_logs(system, "/pass/thermo", experiments=8, specimens=2)
        run_analysis(system, "/pass/thermo", "/pass/good.dat")
        run_analysis(system, "/pass/thermo", "/pass/bad.dat",
                     calc=buggy_crack_heating_curve)
        good = read_file(system, "/pass/good.dat")
        bad = read_file(system, "/pass/bad.dat")
        assert good != bad
        assert b"\t0.0000" in bad
