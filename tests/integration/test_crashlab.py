"""Crash-point explorer acceptance + determinism regression tests.

These are the issue's headline checks: every reachable crash point in
the standard workloads recovers with zero WAP violations, and the whole
harness -- explorer report and per-scenario recovery fingerprint -- is
byte-deterministic for a fixed plan + seed.
"""

import json

import pytest

from repro.crashlab import (
    WORKLOADS,
    explore,
    run_crash_scenario,
    scenario_fingerprint,
)
from repro.faults import FaultPlan
from repro import cli


class TestExplorer:
    @pytest.fixture(scope="class")
    def report(self):
        return explore(seed=0)

    def test_covers_at_least_100_crash_points(self, report):
        assert report.crash_points >= 100
        assert set(report.workloads) == set(WORKLOADS)

    def test_zero_wap_violations(self, report):
        assert report.wap_violation_count == 0

    def test_every_point_fired_and_recovered_idempotently(self, report):
        assert report.non_idempotent == 0
        assert report.unfired == 0
        assert report.fsck_dirty == 0
        assert report.ok

    def test_totals_match_point_list(self, report):
        payload = report.to_dict()
        assert payload["schema"] == "repro-crashtest/1"
        assert payload["totals"]["crash_points"] == len(payload["points"])
        assert payload["totals"]["ok"] is True


class TestDeterminism:
    def test_explorer_report_is_byte_identical(self):
        """Satellite 4: identical plans + seed => byte-identical output."""
        first = explore(workloads=["quickstart"], seed=3).render_json()
        second = explore(workloads=["quickstart"], seed=3).render_json()
        assert first == second
        json.loads(first)               # and it is valid JSON

    def test_scenario_fingerprint_is_byte_identical(self):
        def fingerprint():
            plan = FaultPlan(seed=5).add("log.flush.append", "torn",
                                         nth=2, param=0.5)
            result = run_crash_scenario(WORKLOADS["churn"], plan)
            return json.dumps(scenario_fingerprint(result), sort_keys=True)

        assert fingerprint() == fingerprint()

    def test_seed_changes_probability_outcomes_not_structure(self):
        reports = [explore(workloads=["quickstart"], seed=seed)
                   for seed in (0, 1)]
        # nth-triggered exploration is seed-independent: same points.
        assert (sorted((p.site, p.hit, p.action) for p in reports[0].points)
                == sorted((p.site, p.hit, p.action) for p in reports[1].points))


class TestLiveEngineAcrossCrash:
    """The live OEM graph stays equivalent to a batch rebuild even when
    the records arrive through crashlab's crash/recover replay path:
    recovery inserts into the same database, so the push feed carries
    the replayed records into the already-attached engine."""

    @pytest.mark.parametrize("site,nth", [
        ("waldo.drain.segment", 1),
        ("log.flush.append", 2),
    ])
    def test_live_graph_equals_batch_after_recovery(self, site, nth):
        from repro.crashlab.workloads import BOOT, churn
        from repro.faults import FaultError, FaultInjector
        from repro.pql.oem import OEMGraph
        from repro.storage.recovery import recover
        from repro.system import System
        from tests.conftest import graph_fingerprint

        plan = FaultPlan().add(site, "crash", nth=nth)
        system = System.boot(config=BOOT, faults=FaultInjector(plan))
        # Attach the live engine *before* the crash, like a long-lived
        # query client would.
        engine = system.query_engine()
        with pytest.raises(FaultError):
            churn(system)
        waldo = system.waldos["pass"]
        lasagna = system.kernel.volume("pass").lasagna
        waldo.crash()
        lasagna.crash()
        recover(lasagna, database=waldo.database, consume=True)
        assert system.fsck().clean
        # The surviving engine saw every recovered record through the
        # push feed; a from-scratch build agrees exactly.
        batch = OEMGraph.build(waldo.database.all_records())
        assert graph_fingerprint(engine.graph) == graph_fingerprint(batch)
        assert system.query_engine() is engine


class TestGroupCommitCrashCoverage:
    """Satellite: with group commit enabled (the default boot), the
    explorer reaches crash points at ``log.flush.pre`` and the Waldo
    drain, and every replay still recovers with zero WAP violations."""

    def test_default_boot_has_batching_and_group_commit(self):
        from repro.crashlab.workloads import BOOT
        assert BOOT.batching is True

    def test_churn_actually_group_commits(self):
        """The churn workload's disclosure burst crosses the threshold,
        so the crash points below really sit inside group commits."""
        from repro.crashlab.workloads import BOOT, churn
        from repro.system import System

        system = System.boot(config=BOOT)
        churn(system)
        log = system.kernel.volume("pass").lasagna.log
        assert log.batch_flushes > 0
        assert log.batch_records > 0

    def test_flush_and_drain_sites_covered_with_zero_violations(self):
        report = explore(workloads=["churn"], seed=0)
        hits = report.site_hits["churn"]
        assert hits.get("log.flush.pre", 0) > 0
        assert hits.get("waldo.drain.segment", 0) > 0
        assert report.wap_violation_count == 0
        assert report.non_idempotent == 0
        assert report.ok


class TestCrashtestCli:
    def test_json_mode_emits_the_report(self, capsys):
        code = cli.main(["crashtest", "--workload", "quickstart", "--json"])
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["totals"]["wap_violations"] == 0
        assert payload["totals"]["crash_points"] > 0

    def test_text_mode_summarises(self, capsys):
        code = cli.main(["crashtest", "--workload", "quickstart"])
        assert code == 0
        out = capsys.readouterr().out
        assert "crash points" in out
        assert "wap violations" in out

    def test_unknown_workload_is_an_error(self, capsys):
        assert cli.main(["crashtest", "--workload", "nope"]) == 2
