"""PA-links integration tests: the section 3.2 use cases."""

import pytest

from repro.apps.links import Browser, Web
from repro.core.errors import BrowserError
from repro.core.records import Attr, ObjType
from repro.query.helpers import descendant_refs
from tests.integration.test_pipeline import transitive_ancestors


def make_web():
    web = Web()
    web.publish("http://trusted.example/", links=["http://codecs.example/"],
                content=b"<html>portal</html>")
    web.publish("http://codecs.example/",
                links=["http://codecs.example/downloads"],
                content=b"<html>codecs</html>")
    web.publish("http://codecs.example/downloads",
                links=["http://codecs.example/files/codec.bin"],
                content=b"<html>downloads</html>")
    web.publish("http://codecs.example/files/codec.bin",
                content=b"CODEC-V1", content_type="application/octet-stream")
    web.publish("http://short.example/c",
                redirect="http://codecs.example/files/codec.bin")
    web.publish("http://graphs.example/q3.png", content=b"PNGDATA-Q3",
                content_type="image/png")
    return web


def run_browser(system, body, argv=("links",)):
    """Run a browser interaction inside a simulated process."""
    web = make_web()
    out = {}

    def program(sc):
        browser = Browser(sc, web)
        out["result"] = body(browser, sc)
        return 0

    system.register_program("/pass/bin/links", program)
    system.run("/pass/bin/links", argv=list(argv))
    return web, out.get("result")


class TestWebModel:
    def test_fetch_follows_redirects(self):
        web = make_web()
        page, chain = web.fetch("http://short.example/c")
        assert page.content == b"CODEC-V1"
        assert chain == ["http://short.example/c",
                         "http://codecs.example/files/codec.bin"]

    def test_redirect_loop_detected(self):
        web = Web()
        web.publish("http://a/", redirect="http://b/")
        web.publish("http://b/", redirect="http://a/")
        with pytest.raises(BrowserError):
            web.fetch("http://a/")

    def test_404(self):
        web = Web()
        with pytest.raises(BrowserError):
            web.fetch("http://missing/")

    def test_take_down(self):
        web = make_web()
        web.take_down("http://graphs.example/q3.png")
        assert not web.exists("http://graphs.example/q3.png")


class TestSessions:
    def test_session_object_in_database(self, system):
        def body(browser, sc):
            session = browser.new_session()
            browser.visit(session, "http://trusted.example/")
            browser.download(session, "http://graphs.example/q3.png",
                             "/pass/q3.png")

        run_browser(system, body)
        system.sync()
        db = system.database("pass")
        sessions = [ref for ref in db.subjects_with_attr(Attr.TYPE)
                    if ObjType.SESSION in db.attribute_values(ref, Attr.TYPE)]
        assert sessions
        visited = db.attribute_values(sessions[0], Attr.VISITED_URL)
        assert "http://trusted.example/" in visited

    def test_download_carries_three_records(self, system):
        def body(browser, sc):
            session = browser.new_session()
            browser.visit(session, "http://codecs.example/downloads")
            browser.download(session,
                             "http://codecs.example/files/codec.bin",
                             "/pass/codec.bin")

        run_browser(system, body)
        system.sync()
        db = system.database("pass")
        file_ref = db.find_by_name("/pass/codec.bin")[0]
        records = db.records_of(file_ref.pnode)
        attrs = {r.attr for r in records}
        assert Attr.FILE_URL in attrs
        assert Attr.CURRENT_URL in attrs
        assert Attr.INPUT in attrs
        urls = [r.value for r in records if r.attr == Attr.FILE_URL]
        assert urls == ["http://codecs.example/files/codec.bin"]
        current = [r.value for r in records if r.attr == Attr.CURRENT_URL]
        assert current == ["http://codecs.example/downloads"]


class TestAttributionUseCase:
    def test_renamed_file_keeps_browser_provenance(self, system):
        """Section 3.2: the professor copies the graph into her talk
        directory; the URL must still be recoverable even after the
        page is gone from the Web."""
        def body(browser, sc):
            session = browser.new_session()
            browser.visit(session, "http://graphs.example/q3.png")
            browser.download(session, "http://graphs.example/q3.png",
                             "/pass/downloads/q3.png")

        with system.process() as proc:
            proc.mkdir("/pass/downloads")
            proc.mkdir("/pass/talk")
        web, _ = run_browser(system, body)
        with system.process() as proc:
            proc.rename("/pass/downloads/q3.png", "/pass/talk/q3.png")
        web.take_down("http://graphs.example/q3.png")
        system.sync()
        db = system.database("pass")
        refs = db.find_by_name("/pass/talk/q3.png")
        assert refs
        urls = [r.value for r in db.records_of(refs[0].pnode)
                if r.attr == Attr.FILE_URL]
        assert urls == ["http://graphs.example/q3.png"]


class TestMalwareUseCase:
    def test_find_source_site_and_spread(self, system):
        """Section 3.2: find where the malware came from (browser layer)
        and everything it corrupted (PASS layer)."""
        def body(browser, sc):
            session = browser.new_session()
            browser.visit(session, "http://trusted.example/")
            browser.follow_link(session, 0)          # codecs.example
            browser.follow_link(session, 0)          # downloads page
            browser.download(session,
                             "http://codecs.example/files/codec.bin",
                             "/pass/codec.bin")

        web = make_web()
        web.compromise("http://codecs.example/files/codec.bin",
                       b"MALWARE-PAYLOAD")

        def program(sc):
            browser = Browser(sc, web)
            body(browser, sc)
            return 0

        system.register_program("/pass/bin/links", program)
        system.run("/pass/bin/links", argv=["links"])
        # The malware runs and corrupts other files.
        def infected(sc):
            fd = sc.open("/pass/codec.bin", "r")
            payload = sc.read(fd)
            sc.close(fd)
            for victim in ("/pass/doc1", "/pass/doc2"):
                fd = sc.open(victim, "w")
                sc.write(fd, payload + b" infected")
                sc.close(fd)

        system.register_program("/pass/bin/codec", infected, size=4096)
        system.run("/pass/bin/codec")
        system.sync()
        db = system.database("pass")
        codec_ref = db.find_by_name("/pass/codec.bin")[0]
        # Layer 1 (browser): which site?  The session's history.
        ancestors = transitive_ancestors(db, codec_ref)
        session_refs = [ref for ref in ancestors
                        if ObjType.SESSION in db.attribute_values(
                            ref, Attr.TYPE)]
        assert session_refs
        visited = db.attribute_values(session_refs[0], Attr.VISITED_URL)
        assert "http://trusted.example/" in visited
        assert "http://codecs.example/downloads" in visited
        # Layer 2 (PASS): what did the malware touch?
        tainted = descendant_refs([db], codec_ref)
        names = set()
        for ref in tainted:
            for record in db.records_of(ref.pnode):
                if record.attr == Attr.NAME:
                    names.add(record.value)
        assert {"/pass/doc1", "/pass/doc2"} <= names


class TestSessionRevival:
    def test_save_and_restore_session(self, system):
        """The pass_reviveobj flow: provenance recorded after revival
        lands on the same session object."""
        def first_run(browser, sc):
            session = browser.new_session()
            browser.visit(session, "http://trusted.example/")
            browser.save_session(session, "/pass/session.json")

        def second_run(browser, sc):
            session = browser.restore_session("/pass/session.json")
            browser.visit(session, "http://codecs.example/")
            browser.save_session(session, "/pass/session.json")

        web = make_web()

        def program1(sc):
            first_run(Browser(sc, web), sc)
            return 0

        def program2(sc):
            second_run(Browser(sc, web), sc)
            return 0

        system.register_program("/pass/bin/links", program1)
        system.run("/pass/bin/links")
        system.run("/pass/bin/links", program=program2)
        system.sync()
        db = system.database("pass")
        sessions = {ref.pnode for ref in db.subjects_with_attr(Attr.TYPE)
                    if ObjType.SESSION in db.attribute_values(ref, Attr.TYPE)}
        assert len(sessions) == 1          # same object across both runs
        pnode = sessions.pop()
        visited = {r.value for r in db.records_of(pnode)
                   if r.attr == Attr.VISITED_URL}
        assert {"http://trusted.example/", "http://codecs.example/"} <= visited

    def test_restore_bad_version_rejected(self, system):
        def body(browser, sc):
            session = browser.new_session()
            browser.save_session(session, "/pass/s.json")

        run_browser(system, body)

        def tamper(sc):
            fd = sc.open("/pass/s.json", "r")
            import json
            state = json.loads(sc.read(fd).decode())
            sc.close(fd)
            state["version"] = 99
            fd = sc.open("/pass/s.json", "w")
            sc.write(fd, json.dumps(state).encode())
            sc.close(fd)
            browser = Browser(sc, make_web())
            from repro.core.errors import StalePnodeVersion
            try:
                browser.restore_session("/pass/s.json")
            except StalePnodeVersion:
                return 0
            raise AssertionError("bad version accepted")

        system.register_program("/pass/bin/tamper", tamper)
        system.run("/pass/bin/tamper")
