"""PA-Kepler integration tests (paper section 6.2)."""

import pytest

from repro.apps.kepler import (
    Director,
    FileSink,
    FileSource,
    Transformer,
    Workflow,
    run_workflow,
)
from repro.apps.kepler.actors import ColumnExtractor, ExpressionEvaluator, LineParser
from repro.apps.kepler.challenge import (
    build_challenge,
    ensure_dirs,
    generate_inputs,
)
from repro.core.errors import WorkflowError
from repro.core.records import Attr, ObjType
from tests.conftest import read_file, write_file
from tests.integration.test_pipeline import transitive_ancestors


def simple_workflow(in_path, out_path):
    wf = Workflow("simple")
    wf.add(FileSource("src", path=in_path))
    wf.add(Transformer("upper", fn=lambda data: data.upper()))
    wf.add(FileSink("sink", path=out_path))
    wf.connect("src", "out", "upper", "in")
    wf.connect("upper", "out", "sink", "in")
    return wf


class TestWorkflowConstruction:
    def test_duplicate_actor_rejected(self):
        wf = Workflow("w")
        wf.add(FileSource("a", path="/x"))
        with pytest.raises(WorkflowError):
            wf.add(FileSource("a", path="/y"))

    def test_unknown_port_rejected(self):
        wf = Workflow("w")
        wf.add(FileSource("a", path="/x"))
        wf.add(FileSink("b", path="/y"))
        with pytest.raises(WorkflowError):
            wf.connect("a", "nope", "b", "in")
        with pytest.raises(WorkflowError):
            wf.connect("a", "out", "b", "nope")

    def test_unwired_input_rejected(self):
        wf = Workflow("w")
        wf.add(FileSink("b", path="/y"))
        with pytest.raises(WorkflowError):
            wf.validate()

    def test_cycle_rejected(self):
        wf = Workflow("w")
        wf.add(Transformer("a", fn=lambda x: x))
        wf.add(Transformer("b", fn=lambda x: x))
        wf.connect("a", "out", "b", "in")
        wf.connect("b", "out", "a", "in")
        with pytest.raises(WorkflowError):
            wf.validate()

    def test_topological_order(self):
        wf = simple_workflow("/pass/in", "/pass/out")
        names = [actor.name for actor in wf.topological_order()]
        assert names.index("src") < names.index("upper") < names.index("sink")


class TestExecution:
    def test_simple_pipeline_runs(self, system):
        write_file(system, "/pass/in.txt", b"hello kepler")
        wf = simple_workflow("/pass/in.txt", "/pass/out.txt")
        director = run_workflow(system, wf, recording=None)
        assert director.firings == 3
        assert read_file(system, "/pass/out.txt") == b"HELLO KEPLER"

    def test_fan_out_duplicates_tokens(self, system):
        write_file(system, "/pass/in.txt", b"abc")
        wf = Workflow("fan")
        wf.add(FileSource("src", path="/pass/in.txt"))
        wf.add(FileSink("s1", path="/pass/o1"))
        wf.add(FileSink("s2", path="/pass/o2"))
        wf.connect("src", "out", "s1", "in")
        wf.connect("src", "out", "s2", "in")
        run_workflow(system, wf, recording=None)
        assert read_file(system, "/pass/o1") == b"abc"
        assert read_file(system, "/pass/o2") == b"abc"

    def test_tabular_pipeline(self, system):
        """The PA-Kepler workload shape: parse, extract, reformat."""
        write_file(system, "/pass/table.tsv",
                   b"a\t1\nb\t2\nc\t3\n")
        wf = Workflow("tabular")
        wf.add(FileSource("src", path="/pass/table.tsv"))
        wf.add(LineParser("parse"))
        wf.add(ColumnExtractor("extract", column=1))
        wf.add(ExpressionEvaluator("fmt", expression="value=%s"))
        wf.add(FileSink("sink", path="/pass/formatted.txt"))
        wf.connect("src", "out", "parse", "in")
        wf.connect("parse", "out", "extract", "in")
        wf.connect("extract", "out", "fmt", "in")
        wf.connect("fmt", "out", "sink", "in")
        run_workflow(system, wf, recording=None)
        assert read_file(system, "/pass/formatted.txt") == (
            b"value=1\nvalue=2\nvalue=3")

    def test_iterations(self, system):
        write_file(system, "/pass/in", b"x")
        wf = simple_workflow("/pass/in", "/pass/out")
        director = run_workflow(system, wf, recording=None, iterations=3)
        assert director.firings == 9


class TestRecordingBackends:
    def test_text_recorder(self, system):
        write_file(system, "/pass/in", b"x")
        wf = simple_workflow("/pass/in", "/pass/out")
        run_workflow(system, wf, recording="text",
                     text_log="/pass/kepler.log")
        log = read_file(system, "/pass/kepler.log").decode()
        assert "BEGIN workflow simple" in log
        assert "OPERATOR src" in log
        assert "TRANSFER src -> upper" in log
        assert "END workflow simple" in log

    def test_database_recorder(self, system):
        write_file(system, "/pass/in", b"x")
        wf = simple_workflow("/pass/in", "/pass/out")
        director = run_workflow(system, wf, recording="database")
        kinds = [row[0] for row in director.recorder.rows]
        assert kinds.count("operator") == 3
        assert "transfer" in kinds
        assert kinds[0] == "workflow_start"
        assert kinds[-1] == "workflow_end"

    def test_pass_recorder_creates_operator_objects(self, system):
        write_file(system, "/pass/in", b"x")
        wf = simple_workflow("/pass/in", "/pass/out")
        run_workflow(system, wf, recording="pass")
        system.sync()
        db = system.database("pass")
        operators = [ref for ref in db.subjects_with_attr(Attr.TYPE)
                     if ObjType.OPERATOR in db.attribute_values(ref, Attr.TYPE)]
        names = set()
        for ref in operators:
            names.update(db.attribute_values(ref, Attr.NAME))
        assert {"src", "upper", "sink"} <= names

    def test_pass_recorder_links_output_to_input_file(self, system):
        write_file(system, "/pass/in", b"data")
        wf = simple_workflow("/pass/in", "/pass/out")
        run_workflow(system, wf, recording="pass")
        system.sync()
        db = system.database("pass")
        out_ref = db.find_by_name("/pass/out")[0]
        ancestors = transitive_ancestors(db, out_ref)
        names = set()
        types = set()
        for ref in ancestors:
            names.update(db.attribute_values(ref, Attr.NAME))
            types.update(db.attribute_values(ref, Attr.TYPE))
        # Through the operator chain back to the input file.
        assert "/pass/in" in names
        assert ObjType.OPERATOR in types
        assert {"src", "upper", "sink"} <= names

    def test_pass_recorder_records_params(self, system):
        write_file(system, "/pass/in", b"x")
        wf = simple_workflow("/pass/in", "/pass/out")
        run_workflow(system, wf, recording="pass")
        system.sync()
        db = system.database("pass")
        params = [r.value for r in db.all_records() if r.attr == Attr.PARAMS]
        assert any("path='/pass/in'" in value for value in params)


class TestChallengeWorkflow:
    def test_produces_three_atlases(self, system):
        ensure_dirs(system, "/pass/inputs", "/pass/work", "/pass/out")
        generate_inputs(system, "/pass/inputs")
        wf = build_challenge("/pass/inputs", "/pass/work", "/pass/out")
        director = run_workflow(system, wf, recording="pass")
        assert director.firings == 4 + 4 + 1 + 3 + 3
        for axis in "xyz":
            data = read_file(system, f"/pass/out/atlas-{axis}.gif")
            assert data.startswith(b"GIF89a")

    def test_atlas_ancestry_reaches_anatomy_inputs(self, system):
        ensure_dirs(system, "/pass/inputs", "/pass/work", "/pass/out")
        generate_inputs(system, "/pass/inputs")
        wf = build_challenge("/pass/inputs", "/pass/work", "/pass/out")
        run_workflow(system, wf, recording="pass")
        system.sync()
        rows = system.query("""
            select Ancestor
            from Provenance.file as Atlas
                 Atlas.input* as Ancestor
            where Atlas.name = "/pass/out/atlas-x.gif"
        """)
        names = {row.name for row in rows if hasattr(row, "name")}
        for i in (1, 2, 3, 4):
            assert f"/pass/inputs/anatomy{i}.img" in names
        assert "/pass/inputs/reference.img" in names

    def test_modified_input_changes_output(self, system):
        ensure_dirs(system, "/pass/inputs", "/pass/work", "/pass/out")
        generate_inputs(system, "/pass/inputs")
        wf = build_challenge("/pass/inputs", "/pass/work", "/pass/out")
        run_workflow(system, wf, recording="pass")
        first = read_file(system, "/pass/out/atlas-x.gif")
        write_file(system, "/pass/inputs/anatomy2.img", b"TAMPERED" * 64)
        run_workflow(system, wf, recording="pass")
        second = read_file(system, "/pass/out/atlas-x.gif")
        assert first != second
