"""The paper's layering claim: 'the DPAPI enables an arbitrary number of
layers of provenance-aware applications' (section 5.2), illustrated with
its five-layer example: a PA-Python application, using a PA-Python
library, on an interpreter(-process), over PA-NFS, on a PASS server.

This test builds that stack and checks that one query walks all five
layers: output file -> library-routine invocation -> application
objects -> interpreter process -> remote file on the server's volume.
"""

from repro.apps.papython import ProvenanceTracker
from repro.core.records import Attr, ObjType
from repro.kernel.clock import SimClock
from repro.nfs import NFSClient, NFSServer
from repro.query.helpers import ancestry_refs, newest_ref_by_name
from repro.system import System


def test_five_layer_stack():
    clock = SimClock()
    server_sys = System.boot(hostname="server", clock=clock,
                             pass_volumes=("export",), plain_volumes=())
    server = NFSServer(server_sys, "export")
    workstation = System.boot(hostname="ws", clock=clock,
                              pass_volumes=("local",), plain_volumes=())
    client = NFSClient(workstation, server, mountpoint="/nfs")

    # Layer 5 (remote PASS storage): the raw data lives on the server.
    with server_sys.process(argv=["data-loader"]) as proc:
        fd = proc.open("/export/readings.csv", "w")
        proc.write(fd, b"3\n1\n2\n")
        proc.close(fd)

    # Layers 1-3: a PA-Python *application* calling a PA-Python *library*
    # inside an interpreter process on the workstation.
    def application(sc):
        tracker = ProvenanceTracker(sc)
        # The library layer: a wrapped module of analysis routines.
        library = tracker.wrap_module({
            "parse": lambda raw: sorted(int(x)
                                        for x in raw.decode().split()),
            "summarize": lambda xs: f"n={len(xs)} max={max(xs)}".encode(),
        })
        raw = tracker.read_file("/nfs/readings.csv")   # layer 4: PA-NFS
        parsed = library["parse"](raw)
        summary = library["summarize"](parsed)
        tracker.write_file("/nfs/summary.txt", summary)
        return 0

    workstation.register_program("/local/bin/python", application,
                                 size=1 << 20)
    workstation.run("/local/bin/python", argv=["python", "analysis.py"])

    client.sync()
    workstation.sync()
    server_sys.sync()
    dbs = workstation.databases() + server_sys.databases()

    summary_ref = newest_ref_by_name(dbs, "/nfs/summary.txt")
    ancestry = ancestry_refs(dbs, summary_ref)

    names, types = set(), set()
    for db in dbs:
        for ref in ancestry:
            for record in db.records_of(ref.pnode):
                if record.attr == Attr.NAME:
                    names.add(str(record.value))
                elif record.attr == Attr.TYPE:
                    types.add(str(record.value))

    # Layer 1: application objects (the tracked values).
    assert ObjType.PYOBJECT in types
    # Layer 2: the library routines and their invocations.
    assert "parse" in names and "summarize" in names
    assert ObjType.INVOCATION in types
    # Layer 3: the interpreter process and its binary.
    assert "python" in names
    assert "/local/bin/python" in names
    assert ObjType.PROCESS in types
    # Layer 4/5: the remote input file (named at the client) whose data
    # lives on the server volume, plus the loader process server-side.
    assert "/nfs/readings.csv" in names
    assert "data-loader" in names

    # And the data content is correct end to end.
    with workstation.process() as proc:
        fd = proc.open("/nfs/summary.txt", "r")
        assert proc.read(fd) == b"n=3 max=3"
        proc.close(fd)


def test_layers_accept_and_issue_dpapi():
    """'Layers that are a substrate to higher level applications must
    export the DPAPI' -- the wrapped library both accepts DPAPI-visible
    inputs (tracked values) and issues DPAPI calls downward."""
    system = System.boot()

    def application(sc):
        tracker = ProvenanceTracker(sc)
        lower = tracker.wrap_function(lambda x: x + 1, name="lower")
        upper = tracker.wrap_function(
            lambda x: x * 2, name="upper")
        value = tracker.wrap_value(10, "seed")
        result = upper(lower(value))      # upper consumes lower's output
        tracker.write_file("/pass/result", result)
        return 0

    system.register_program("/pass/bin/app", application)
    system.run("/pass/bin/app")
    system.sync()
    db = system.database("pass")
    out_ref = db.find_by_name("/pass/result")[0]
    ancestry = ancestry_refs([db], out_ref)
    names = set()
    for ref in ancestry:
        names.update(str(v) for v in db.attribute_values(ref, Attr.NAME))
    # The chain crosses both wrapped layers and reaches the seed.
    assert {"upper", "lower", "seed"} <= names
