"""Tests for the PA-links browser cache (revalidate-or-store)."""

import pytest

from repro.apps.links import Browser, Web
from repro.core.records import Attr


def run_browser(system, web, body):
    out = {}

    def program(sc):
        browser = Browser(sc, web, cache_dir="/pass/browser-cache")
        out["result"] = body(browser, sc)
        out["hits"] = browser.cache_hits
        out["validations"] = browser.cache_validations
        return 0

    path = "/pass/bin/links"
    if not system.kernel.vfs.exists(path):
        system.register_program(path, program)
        system.run(path, argv=["links"])
    else:
        system.run(path, argv=["links"], program=program)
    return out


@pytest.fixture
def web():
    instance = Web()
    instance.publish("http://news.example/", content=b"headline v1")
    return instance


class TestCacheBehavior:
    def test_first_visit_stores(self, system, web):
        def body(browser, sc):
            session = browser.new_session()
            browser.visit(session, "http://news.example/")
            return browser.cached_copy("http://news.example/")

        out = run_browser(system, web, body)
        assert out["result"] == b"headline v1"
        assert out["validations"] == 0

    def test_revisit_validates_and_hits(self, system, web):
        def body(browser, sc):
            session = browser.new_session()
            browser.visit(session, "http://news.example/")
            browser.visit(session, "http://news.example/")
            return None

        out = run_browser(system, web, body)
        assert out["validations"] == 1
        assert out["hits"] == 1

    def test_changed_page_invalidates(self, system, web):
        def body(browser, sc):
            session = browser.new_session()
            browser.visit(session, "http://news.example/")
            web.compromise("http://news.example/", b"headline v2")
            browser.visit(session, "http://news.example/")
            return browser.cached_copy("http://news.example/")

        out = run_browser(system, web, body)
        assert out["validations"] == 1
        assert out["hits"] == 0
        assert out["result"] == b"headline v2"

    def test_cached_copy_survives_takedown(self, system, web):
        def body(browser, sc):
            session = browser.new_session()
            browser.visit(session, "http://news.example/")
            web.take_down("http://news.example/")
            return browser.cached_copy("http://news.example/")

        out = run_browser(system, web, body)
        assert out["result"] == b"headline v1"

    def test_cache_files_carry_provenance(self, system, web):
        def body(browser, sc):
            session = browser.new_session()
            browser.visit(session, "http://news.example/")
            return None

        run_browser(system, web, body)
        system.sync()
        db = system.database("pass")
        cache_urls = [r.value for r in db.all_records()
                      if r.attr == Attr.FILE_URL]
        assert "http://news.example/" in cache_urls

    def test_no_cache_dir_disables(self, system, web):
        def program(sc):
            browser = Browser(sc, web)       # no cache_dir
            session = browser.new_session()
            browser.visit(session, "http://news.example/")
            assert browser.cached_copy("http://news.example/") is None
            return 0

        system.register_program("/pass/bin/nocache", program)
        system.run("/pass/bin/nocache")
