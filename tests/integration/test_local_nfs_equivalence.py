"""Provenance equivalence: the same activity on a local PASS volume and
on a PA-NFS mount must yield the same *semantic* provenance graph.

The paper's DPAPI-everywhere design means the storage location is
transparent to provenance semantics; only pnode numbers, volumes, and
timings differ.  We normalize the graph to (subject label, attr, value
label) triples over ancestry-relevant records and compare.
"""

from repro.core.pnode import ObjectRef
from repro.core.records import Attr
from repro.kernel.clock import SimClock
from repro.nfs import NFSClient, NFSServer
from repro.system import System

#: Attributes whose structure must be location-independent.
SEMANTIC_ATTRS = {Attr.INPUT, Attr.EXEC, Attr.FORKPARENT, Attr.TYPE,
                  Attr.NAME, Attr.PREV_VERSION}


def run_scenario(system, root):
    """A fixed multi-process scenario against ``root``."""
    def producer(sc):
        fd = sc.open(f"{root}/raw", "w")
        sc.write(fd, b"line1\nline2\n")
        sc.close(fd)
        return 0

    def transformer(sc):
        fd = sc.open(f"{root}/raw", "r")
        data = sc.read(fd)
        sc.close(fd)
        out = sc.open(f"{root}/cooked", "w")
        sc.write(out, data.upper())
        sc.close(out)
        # Read-modify-write to force a freeze.
        fd = sc.open(f"{root}/cooked", "r+")
        sc.read(fd)
        sc.write(fd, b"COOKED!")
        sc.close(fd)
        return 0

    system.register_program(f"{root}/bin/producer", producer)
    system.register_program(f"{root}/bin/transformer", transformer)
    system.run(f"{root}/bin/producer", argv=["producer"])
    system.run(f"{root}/bin/transformer", argv=["transformer"])


def normalized_graph(databases, strip_prefix):
    """Location-independent triples: labels instead of pnode numbers."""
    labels: dict[int, str] = {}
    for db in databases:
        for record in db.all_records():
            if record.attr == Attr.NAME:
                name = str(record.value)
                for prefix in strip_prefix:
                    if name.startswith(prefix):
                        name = "<root>" + name[len(prefix):]
                labels.setdefault(record.subject.pnode, name)
    triples = set()
    for db in databases:
        for record in db.all_records():
            if record.attr not in SEMANTIC_ATTRS:
                continue
            subject = (labels.get(record.subject.pnode,
                                  f"?{record.subject.pnode}"),
                       record.subject.version)
            if isinstance(record.value, ObjectRef):
                value = (labels.get(record.value.pnode,
                                    f"?{record.value.pnode}"),
                         record.value.version)
            else:
                value = str(record.value)
                for prefix in strip_prefix:
                    if value.startswith(prefix):
                        value = "<root>" + value[len(prefix):]
            triples.add((subject, record.attr, value))
    return triples


def test_local_and_nfs_graphs_match():
    # Local run.
    local = System.boot(pass_volumes=("pass",), plain_volumes=())
    run_scenario(local, "/pass")
    local.sync()
    local_graph = normalized_graph(local.databases(), ["/pass"])

    # NFS run of the identical scenario.
    clock = SimClock()
    server_sys = System.boot(hostname="server", clock=clock,
                             pass_volumes=("export",), plain_volumes=())
    server = NFSServer(server_sys, "export")
    client_sys = System.boot(hostname="client", clock=clock,
                             pass_volumes=("local",), plain_volumes=())
    client = NFSClient(client_sys, server, mountpoint="/nfs")
    run_scenario(client_sys, "/nfs")
    client.sync()
    client_sys.sync()
    server_sys.sync()
    nfs_graph = normalized_graph(
        server_sys.databases() + client_sys.databases(), ["/nfs"])

    # The NFS side adds NFS-only bookkeeping (e.g. FREEZE arrives as a
    # record) but every semantic triple of the local run must be there,
    # and vice versa.
    missing_on_nfs = local_graph - nfs_graph
    extra_on_nfs = nfs_graph - local_graph
    assert not missing_on_nfs, f"missing over NFS: {missing_on_nfs}"
    assert not extra_on_nfs, f"extra over NFS: {extra_on_nfs}"


def test_kernel_environment_recorded():
    system = System.boot()
    with system.process(argv=["env-check"]) as proc:
        fd = proc.open("/pass/f", "w")
        proc.write(fd, b"x")
        proc.close(fd)
    system.sync()
    db = system.database("pass")
    kernels = {r.value for r in db.all_records() if r.attr == Attr.KERNEL}
    assert kernels == {"sim-linux-2.6.23.17-pass"}
