"""Crashing one shard mid-drain leaves the other shards consistent.

The sharded tier's crash story: ``shard.drain.pre`` fires before each
shard's Waldo drains, so a plan that crashes there dies *between*
shards -- some shard databases already hold their drained records, the
remaining shards still hold theirs in closed log segments.  Recovery
must replay exactly the undrained shards, end fsck-clean, preserve the
WAP invariant, and be idempotent; crashing at the last shard of the
final drain must recover the full clean-run record count (nothing was
buffered, so nothing is allowed to be lost).
"""

import dataclasses

import pytest

from repro.crashlab import WORKLOADS, discover, run_crash_scenario
from repro.crashlab.workloads import BOOT
from repro.faults import FaultPlan

SHARDED = dataclasses.replace(BOOT, shards=4)


def _clean_total(config) -> int:
    """Record count a fault-free run of churn leaves in the tier."""
    result = run_crash_scenario(WORKLOADS["churn"], plan=None,
                                config=config)
    assert result.fault is None
    return result.db_records


class TestShardCrashMidDrain:
    @pytest.fixture(scope="class")
    def shard_drain_hits(self):
        injector = discover(WORKLOADS["churn"], config=SHARDED)
        return injector.hits.get("shard.drain.pre", 0)

    def test_sharded_boot_reaches_the_shard_drain_site(
            self, shard_drain_hits):
        # One hit per (volume, shard) per drain: 4 shards, >=1 sync.
        assert shard_drain_hits >= 4

    def test_crash_between_shards_recovers_clean(self, shard_drain_hits):
        """Crash before the *second* shard of a drain: shard 0's records
        are in its database, shards 1-3 recover from their logs."""
        plan = FaultPlan().add("shard.drain.pre", "crash", nth=2)
        result = run_crash_scenario(WORKLOADS["churn"], plan,
                                    config=SHARDED)
        assert result.fault is not None
        assert getattr(result.fault, "site", None) == "shard.drain.pre"
        assert result.wap_violations == []
        assert result.fsck_report.clean
        assert result.idempotent

    def test_crash_at_last_shard_loses_nothing(self, shard_drain_hits):
        """Crash before the final shard of the final drain: every record
        already reached a log, so recovery restores the exact clean-run
        total across the union of shard databases."""
        plan = FaultPlan().add("shard.drain.pre", "crash",
                               nth=shard_drain_hits)
        result = run_crash_scenario(WORKLOADS["churn"], plan,
                                    config=SHARDED)
        assert result.fault is not None
        assert result.wap_violations == []
        assert result.fsck_report.clean
        assert result.idempotent
        assert result.db_records == _clean_total(SHARDED)

    def test_other_shards_keep_their_records(self):
        """After a crash between shards and recovery, several shard
        databases are populated -- the dead shard did not take the
        others down with it."""
        plan = FaultPlan().add("shard.drain.pre", "crash", nth=3)
        result = run_crash_scenario(WORKLOADS["churn"], plan,
                                    config=SHARDED)
        populated = [db for db in result.system.tier.databases("pass")
                     if len(db)]
        assert len(result.system.tier.databases("pass")) == 4
        assert len(populated) >= 2
        assert result.fsck_report.clean


class TestShardedVsSingleShardTotals:
    def test_clean_runs_agree_across_topologies(self):
        assert _clean_total(SHARDED) == _clean_total(BOOT)
