"""Test package."""
