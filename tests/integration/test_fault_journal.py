"""Fault firings land in the event journal, correlated to spans.

A crashtest post-mortem needs to answer "which fault fired, at which
site, inside which span" from the journal alone: the injector emits a
``fault.fired`` event (unsampled) before raising, stamped with the
trace/span ids of whatever span was open at that moment.
"""

import pytest

from repro.faults import CrashFault, FaultInjector, FaultPlan
from repro.storage.recovery import recover
from repro.system import System


def write_files(system: System, count: int = 3) -> None:
    with system.process(argv=["writer"]) as proc:
        for index in range(count):
            fd = proc.open(f"/pass/f{index}", "w")
            proc.write(fd, b"payload" * 8)
            proc.close(fd)


class TestFaultFiringsAreJournaled:
    def test_crash_event_carries_site_hit_kind_and_trace(self):
        plan = FaultPlan().add("waldo.drain.segment", "crash", nth=1)
        injector = FaultInjector(plan)
        system = System.boot(tracing=True, journal=True, faults=injector)
        write_files(system)
        with pytest.raises(CrashFault):
            system.sync()

        (event,) = system.journal_events("fault.fired")
        assert event["site"] == "waldo.drain.segment"
        assert event["hit"] == 1
        assert event["action"] == "crash"
        assert event["kind"] == "fault.fired"
        assert event["layer"] == "faults"
        # The fault fired inside the waldo.drain span: the event must
        # correlate to an actual finished span.
        assert event["trace_id"] is not None
        span_ids = {s["span_id"] for s in system.trace()}
        assert event["span_id"] in span_ids
        by_id = {s["span_id"]: s for s in system.trace()}
        assert by_id[event["span_id"]]["name"] == "waldo.drain"

    def test_fault_kind_field_names_the_action(self):
        plan = FaultPlan().add("waldo.drain.segment", "io_error", nth=1)
        injector = FaultInjector(plan)
        system = System.boot(tracing=True, journal=True, faults=injector)
        write_files(system)
        from repro.faults import IOFault
        with pytest.raises(IOFault):
            system.sync()
        (event,) = system.journal_events("fault.fired")
        assert event["action"] == "io_error"
        assert event["site"] == "waldo.drain.segment"

    def test_disarmed_injector_emits_nothing(self):
        system = System.boot(tracing=True, journal=True,
                             faults=FaultInjector())
        write_files(system)
        system.sync()
        assert system.journal_events("fault.fired") == []

    def test_journal_off_costs_the_injector_nothing(self):
        plan = FaultPlan().add("waldo.drain.segment", "crash", nth=1)
        injector = FaultInjector(plan)
        system = System.boot(faults=injector)        # journal off
        write_files(system)
        with pytest.raises(CrashFault):
            system.sync()
        assert system.journal_events() == []


class TestRecoveryIsJournaled:
    def test_recovery_replay_event_after_crash(self):
        plan = FaultPlan().add("waldo.drain.segment", "crash", nth=1)
        injector = FaultInjector(plan)
        system = System.boot(tracing=True, journal=True, faults=injector)
        write_files(system)
        with pytest.raises(CrashFault):
            system.sync()

        waldo = system.waldos["pass"]
        lasagna = system.kernel.volume("pass").lasagna
        waldo.crash()
        lasagna.crash()
        report = recover(lasagna, database=waldo.database, consume=True)
        assert report.committed_records

        (event,) = system.journal_events("recovery.replay")
        assert event["volume"] == "pass"
        assert event["committed"] == len(report.committed_records)
        assert event["consumed"] is True
        assert event["inserted"] is True


class TestGroupCommitAndPlanCompileEvents:
    def test_batched_ingest_emits_group_commits(self):
        from repro.core.records import Attr

        system = System.boot(journal=True)
        # Records-only DPAPI disclosures: no data write intervenes, so
        # no WAP ordering point flushes the buffer before it crosses
        # the 512-record group-commit threshold.
        with system.process(argv=["writer"]) as proc:
            fd = proc.open("/pass/burst", "w")
            burst = proc.dpapi.record_many(
                fd, Attr.ANNOTATION, (f"note-{i}" for i in range(700)))
            proc.dpapi.pass_write(fd, records=burst)
            proc.close(fd)
        system.sync()
        events = system.journal_events("log.group_commit")
        assert events
        for event in events:
            assert event["layer"] == "lasagna"
            assert event["volume"] == "pass"
            assert event["records"] > 0

    def test_plan_compile_event_once_per_distinct_query(self):
        system = System.boot(journal=True)
        write_files(system)
        system.sync()
        text = "select F from Provenance.file as F"
        system.query(text)
        system.query(text)                         # plan-cache hit
        events = system.journal_events("pql.plan_compile")
        assert len(events) == 1
        assert events[0]["query"] == text

    def test_slow_query_log_records_cache_status(self):
        system = System.boot(journal=True)
        write_files(system)
        system.sync()
        system.obs.journal.slow_query_threshold_s = 0.0   # everything
        text = "select F from Provenance.file as F"
        system.query(text)
        system.query(text)
        slow = system.obs.journal.slow_queries()
        assert len(slow) == 2
        assert slow[0]["cache_hit"] is False
        assert slow[1]["cache_hit"] is True
        assert slow[0]["plan"]
        assert slow[0]["rows"] == slow[1]["rows"]
