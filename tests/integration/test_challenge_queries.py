"""The First Provenance Challenge's canonical queries, in PQL.

The paper runs the PC1 fMRI workflow (sections 3.1, 5.7); the challenge
itself defined a set of standard queries every provenance system was
asked to answer.  This suite adapts the core ones to our layered store:

* Q1 -- the entire ancestry of one atlas graphic;
* Q2 -- only the *process/operator* steps in that ancestry;
* Q3 -- the final stages (softmean onward) that produced it;
* Q4 -- everything born inside a time window (TIME atoms);
* Q5 -- which atlas graphics derive from one anatomy image;
* Q6 -- outputs of align_warp runs with a particular parameter.
"""

import pytest

from repro.apps.kepler.challenge import (
    build_challenge,
    ensure_dirs,
    generate_inputs,
)
from repro.apps.kepler.director import run_workflow
from repro.core.records import Attr, ObjType


@pytest.fixture
def challenge_system(system):
    ensure_dirs(system, "/pass/inputs", "/pass/work", "/pass/out")
    generate_inputs(system, "/pass/inputs")
    workflow = build_challenge("/pass/inputs", "/pass/work", "/pass/out")
    run_workflow(system, workflow, recording="pass")
    system.sync()
    return system


def names(rows):
    out = set()
    for row in rows:
        if hasattr(row, "name"):
            out.add(row.name)
        else:
            out.add(str(row))
    return out


class TestChallengeQueries:
    def test_q1_full_ancestry(self, challenge_system):
        rows = challenge_system.query("""
            select A
            from Provenance.file as Atlas
                 Atlas.input* as A
            where Atlas.name = "/pass/out/atlas-x.gif"
        """)
        reached = names(rows)
        for i in (1, 2, 3, 4):
            assert f"/pass/inputs/anatomy{i}.img" in reached
        assert "/pass/inputs/reference.img" in reached
        assert "softmean" in reached

    def test_q2_process_steps_only(self, challenge_system):
        rows = challenge_system.query("""
            select Step.name
            from Provenance.file as Atlas
                 Atlas.input* as Step
            where Atlas.name = "/pass/out/atlas-x.gif"
                  and Step.type = "OPERATOR"
        """)
        steps = names(rows)
        assert {"align_warp1", "align_warp2", "align_warp3",
                "align_warp4", "reslice1", "softmean", "slicer_x",
                "convert_x"} <= steps
        # Stages feeding other axes must not appear.
        assert "slicer_y" not in steps
        assert "convert_z" not in steps

    def test_q3_final_stages(self, challenge_system):
        """The last processing stages: operators within a few hops."""
        rows = challenge_system.query("""
            select Step.name
            from Provenance.file as Atlas
                 Atlas.input{1,6} as Step
            where Atlas.name = "/pass/out/atlas-x.gif"
                  and Step.type = "OPERATOR"
        """)
        steps = names(rows)
        assert {"convert_x", "slicer_x", "softmean"} <= steps
        assert "align_warp1" not in steps     # stage 1 is further back

    def test_q4_time_window(self, challenge_system):
        """Everything born after the inputs were staged: the inputs'
        TIME atoms precede the workflow objects'."""
        input_times = challenge_system.query("""
            select max(F.time) from Provenance.file as F
            where F.name like "/pass/inputs/%"
        """)
        cutoff = input_times[0]
        rows = challenge_system.query(f"""
            select F.name from Provenance.file as F
            where F.time > {cutoff} and F.name like "/pass/out/%"
        """)
        produced = names(rows)
        assert {"/pass/out/atlas-x.gif", "/pass/out/atlas-y.gif",
                "/pass/out/atlas-z.gif"} <= produced

    def test_q5_outputs_from_one_anatomy_image(self, challenge_system):
        rows = challenge_system.query("""
            select D.name
            from Provenance.file as Anatomy
                 Anatomy.^input* as D
            where Anatomy.name = "/pass/inputs/anatomy3.img"
                  and D.name like "%.gif"
        """)
        assert names(rows) == {"/pass/out/atlas-x.gif",
                               "/pass/out/atlas-y.gif",
                               "/pass/out/atlas-z.gif"}

    def test_q6_operators_by_parameter(self, challenge_system):
        """Which outputs passed through the align_warp run configured
        with anatomy2's image?  (Parameter-based selection, PC1 Q6.)"""
        rows = challenge_system.query("""
            select D.name
            from Provenance.operator as Op
                 Op.^input* as D
            where Op.params like "%anatomy2.img%"
                  and D.name like "%.gif"
        """)
        assert names(rows) == {"/pass/out/atlas-x.gif",
                               "/pass/out/atlas-y.gif",
                               "/pass/out/atlas-z.gif"}

    def test_time_atoms_present_and_ordered(self, challenge_system):
        db = challenge_system.database("pass")
        ref_in = db.find_by_name("/pass/inputs/anatomy1.img")[0]
        ref_out = db.find_by_name("/pass/out/atlas-x.gif")[0]
        t_in = [r.value for r in db.records_of(ref_in.pnode)
                if r.attr == Attr.TIME]
        t_out = [r.value for r in db.records_of(ref_out.pnode)
                 if r.attr == Attr.TIME]
        assert t_in and t_out
        assert min(t_in) <= min(t_out)
