"""Tests for the provenance-aware interpreter (the paper's future work).

The wrapper loses provenance across built-in operators; the interpreter
must not: ``(a + b) * c`` written to a file leaves an ancestry chain
that reaches all three inputs.
"""

import pytest

from repro.apps.papython.interpreter import (
    InterpreterError,
    ProvenanceInterpreter,
)
from repro.core.records import Attr
from repro.query.helpers import ancestry_refs


def run_interp(system, body):
    out = {}

    def program(sc):
        interp = ProvenanceInterpreter(sc)
        out["result"] = body(interp, sc)
        return 0

    system.register_program("/pass/bin/pa-python", program, size=1 << 20)
    system.run("/pass/bin/pa-python", argv=["pa-python", "script.py"])
    return out["result"]


def ancestry_labels(system, path):
    system.sync()
    db = system.database("pass")
    ref = db.find_by_name(path)[0]
    names = set()
    for anc in ancestry_refs([db], ref):
        names.update(str(v) for v in db.attribute_values(anc, Attr.NAME))
    return names


class TestExpressions:
    def test_arithmetic_propagates_provenance(self, system):
        def body(interp, sc):
            env = {
                "a": interp.lift(2, "input-a"),
                "b": interp.lift(3, "input-b"),
                "c": interp.lift(4, "input-c"),
            }
            result = interp.eval("(a + b) * c", env)
            assert result.value == 20
            interp.write_result("/pass/answer", result)

        run_interp(system, body)
        labels = ancestry_labels(system, "/pass/answer")
        # Every input AND the operator applications are ancestors.
        assert {"input-a", "input-b", "input-c"} <= labels
        assert any(label.startswith("add#") for label in labels)
        assert any(label.startswith("mul#") for label in labels)

    def test_unused_input_not_in_ancestry(self, system):
        def body(interp, sc):
            env = {
                "used": interp.lift(1, "used-input"),
                "ignored": interp.lift(99, "ignored-input"),
            }
            result = interp.eval("used + 1", env)
            interp.write_result("/pass/out", result)

        run_interp(system, body)
        labels = ancestry_labels(system, "/pass/out")
        assert "used-input" in labels
        assert "ignored-input" not in labels

    def test_comparisons_and_boolean_ops(self, system):
        def body(interp, sc):
            env = {"x": interp.lift(5, "x"), "y": interp.lift(3, "y")}
            result = interp.eval("x > y and not y > x", env)
            assert result.value is True
            return result

        run_interp(system, body)

    def test_subscript_and_collections(self, system):
        def body(interp, sc):
            env = {"xs": interp.lift([10, 20, 30], "the-list"),
                   "i": interp.lift(1, "the-index")}
            result = interp.eval("xs[i] + 1", env)
            assert result.value == 21
            interp.write_result("/pass/pick", result)

        run_interp(system, body)
        labels = ancestry_labels(system, "/pass/pick")
        assert {"the-list", "the-index"} <= labels

    def test_conditional_expression(self, system):
        def body(interp, sc):
            env = {"flag": interp.lift(True, "flag"),
                   "a": interp.lift(1, "a"), "b": interp.lift(2, "b")}
            assert interp.eval("a if flag else b", env).value == 1

        run_interp(system, body)

    def test_calls_track_function_and_args(self, system):
        def body(interp, sc):
            env = {"double": interp.lift(lambda v: v * 2, "double-fn"),
                   "n": interp.lift(21, "n")}
            result = interp.eval("double(n)", env)
            assert result.value == 42
            interp.write_result("/pass/called", result)

        run_interp(system, body)
        labels = ancestry_labels(system, "/pass/called")
        assert {"double-fn", "n"} <= labels


class TestStatements:
    def test_assignment_and_augassign(self, system):
        def body(interp, sc):
            env = {"seed": interp.lift(10, "seed")}
            interp.exec("total = seed\ntotal += 5", env)
            assert env["total"].value == 15
            interp.write_result("/pass/total", env["total"])

        run_interp(system, body)
        assert "seed" in ancestry_labels(system, "/pass/total")

    def test_loop_accumulation_tracks_every_item(self, system):
        def body(interp, sc):
            env = {"xs": interp.lift([1, 2, 3, 4], "data"),
                   "total": interp.lift(0, "zero")}
            interp.exec("for x in xs:\n    total = total + x", env)
            assert env["total"].value == 10
            interp.write_result("/pass/sum", env["total"])

        run_interp(system, body)
        labels = ancestry_labels(system, "/pass/sum")
        assert "data" in labels
        assert "data[2]" in labels        # per-item provenance

    def test_while_and_if(self, system):
        def body(interp, sc):
            env = {"n": interp.lift(5, "n"),
                   "acc": interp.lift(1, "one")}
            interp.exec(
                "while n > 1:\n"
                "    acc = acc * n\n"
                "    n = n - 1\n",
                env)
            assert env["acc"].value == 120

        run_interp(system, body)

    def test_the_wrapper_gap_is_closed(self, system):
        """The exact §6.5 regret: with the wrapper, plain ``a + b`` on
        unwrapped values loses provenance.  With the interpreter, the
        same expression keeps it."""
        from repro.apps.papython import ProvenanceTracker

        def body(interp, sc):
            tracker = ProvenanceTracker(sc)
            a = tracker.wrap_value(1, "wrapped-a")
            b = tracker.wrap_value(2, "wrapped-b")
            lost = a.value + b.value           # wrapper world: plain int
            assert not hasattr(lost, "fd")
            env = {"a": interp.lift(1, "interp-a"),
                   "b": interp.lift(2, "interp-b")}
            kept = interp.eval("a + b", env)
            interp.write_result("/pass/kept", kept)

        run_interp(system, body)
        labels = ancestry_labels(system, "/pass/kept")
        assert {"interp-a", "interp-b"} <= labels


class TestErrors:
    def test_unbound_name(self, system):
        def body(interp, sc):
            with pytest.raises(InterpreterError):
                interp.eval("missing + 1", {})

        run_interp(system, body)

    def test_unsupported_construct(self, system):
        def body(interp, sc):
            with pytest.raises(InterpreterError):
                interp.exec("import os", {})
            with pytest.raises(InterpreterError):
                interp.eval("[x for x in y]", {})

        run_interp(system, body)

    def test_non_callable_call(self, system):
        def body(interp, sc):
            env = {"n": interp.lift(5, "n")}
            with pytest.raises(InterpreterError):
                interp.eval("n(1)", env)

        run_interp(system, body)
