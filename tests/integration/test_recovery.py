"""Crash-recovery tests: WAP guarantees after simulated failures."""

import pytest

from repro.core.records import Attr
from repro.storage.lasagna import CrashPoint
from repro.storage.recovery import recover
from repro.system import System
from tests.conftest import write_file


class TestCleanRecovery:
    def test_recovery_of_healthy_volume_is_clean(self, system):
        write_file(system, "/pass/a", b"data")
        # Crash *before* Waldo drains: the log still holds everything.
        report = recover(system.kernel.volume("pass").lasagna)
        assert report.clean
        assert report.committed_records

    def test_recovered_records_match_what_waldo_would_insert(self, system):
        write_file(system, "/pass/a", b"data")
        from repro.storage.database import ProvenanceDatabase
        rebuilt = ProvenanceDatabase("rebuilt")
        recover(system.kernel.volume("pass").lasagna, database=rebuilt)
        system.sync()                    # now let Waldo process the same log
        original = system.database("pass")
        assert {r.key() for r in rebuilt.all_records()} >= {
            r.key() for r in original.all_records()
        }

    def test_recovery_after_waldo_drain_sees_empty_log(self, system):
        """Waldo removes processed log files; recovery then has nothing
        to replay -- the database is already the durable truth."""
        write_file(system, "/pass/a", b"data")
        system.sync()
        report = recover(system.kernel.volume("pass").lasagna)
        assert report.clean
        assert not report.committed_records


class TestCrashBeforeDataWrite:
    def test_inflight_data_flagged_inconsistent(self, system):
        """Crash between the WAP flush and the data write: provenance is
        durable, the data is not -- recovery must flag that file."""
        write_file(system, "/pass/victim", b"original")
        lasagna = system.kernel.volume("pass").lasagna
        lasagna.fail_before_data_write = True
        with pytest.raises(CrashPoint):
            write_file(system, "/pass/victim", b"NEW CONTENT")
        lasagna.crash()
        report = recover(lasagna)
        flagged_pnodes = {ref.pnode for ref, _, _ in report.inconsistent_data}
        victim = system.kernel.vfs.resolve("/pass/victim")
        assert victim.pnode in flagged_pnodes
        # The original (completed) write must NOT be flagged: its MD5
        # matches offset 0..8 which still holds "original".
        offsets = [(off, ln) for ref, off, ln in report.inconsistent_data
                   if ref.pnode == victim.pnode]
        assert (0, len(b"NEW CONTENT")) in offsets

    def test_unflushed_buffer_lost_silently(self, system):
        """Records still in the log buffer (never flushed) vanish on
        crash; that is allowed because the data they describe was never
        written either (WAP)."""
        lasagna = system.kernel.volume("pass").lasagna
        write_file(system, "/pass/r", b"x")
        with system.process() as proc:
            # rename puts a fresh NAME record about a persistent file in
            # the log buffer; no data write follows, so nothing flushes.
            proc.rename("/pass/r", "/pass/renamed")
            assert lasagna.log.buffered_records > 0
            lost = lasagna.crash()
        assert lost > 0
        assert lasagna.log.buffered_records == 0


class TestTornLog:
    def test_torn_tail_recovers_prefix(self, system):
        write_file(system, "/pass/a", b"aaa")
        write_file(system, "/pass/b", b"bbb")
        lasagna = system.kernel.volume("pass").lasagna
        lasagna.crash(drop_tail_bytes=5)
        report = recover(lasagna)
        # The first file's provenance survived in full.
        names = {r.value for r in report.committed_records
                 if r.attr == Attr.NAME}
        assert "/pass/a" in names

    def test_torn_txn_is_orphaned_or_dropped(self, system):
        """Tearing into the last transaction must not let its records
        into the recovered database."""
        write_file(system, "/pass/a", b"aaa")
        lasagna = system.kernel.volume("pass").lasagna
        # Tear off the ENDTXN of the last flush (ENDTXN encodes to
        # ~ 22 bytes; drop a bit more to be sure).
        lasagna.crash(drop_tail_bytes=25)
        report = recover(lasagna)
        assert report.orphaned_records or report.torn_bytes > 0


class TestOrphanedNfsStyleTxn:
    def test_recovery_drops_uncommitted_txn_records(self, system):
        """Simulates a client that sent BEGINTXN + records but died
        before ENDTXN."""
        from repro.core.pnode import ObjectRef
        from repro.core.records import ProvenanceRecord
        lasagna = system.kernel.volume("pass").lasagna
        log = lasagna.log
        subject = ObjectRef(999, 0)
        txn = log.next_txn_id()
        # Hand-write an unterminated transaction into the segment.
        from repro.storage import codec
        for record in (
            ProvenanceRecord(subject, Attr.BEGINTXN, txn),
            ProvenanceRecord(subject, Attr.NAME, "half-sent"),
        ):
            log.current.append(record, codec.encode_record(record))
        report = recover(lasagna)
        orphan_names = {r.value for r in report.orphaned_records
                        if r.attr == Attr.NAME}
        assert "half-sent" in orphan_names
        committed_names = {r.value for r in report.committed_records
                           if r.attr == Attr.NAME}
        assert "half-sent" not in committed_names
