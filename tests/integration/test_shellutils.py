"""Tests for the provenance-aware core utilities."""

import pytest

from repro.apps.shellutils import UsageError, install
from repro.core.records import Attr
from tests.conftest import read_file, write_file
from tests.integration.test_pipeline import transitive_ancestors


@pytest.fixture
def tools(system):
    return install(system)


def ancestors_names(system, path):
    system.sync()
    db = system.database("pass")
    ref = db.find_by_name(path)[0]
    names = set()
    for anc in transitive_ancestors(db, ref):
        names.update(str(v) for v in db.attribute_values(anc, Attr.NAME))
    return names


class TestCp:
    def test_copies_bytes(self, system, tools):
        write_file(system, "/pass/src", b"copy me")
        system.run(tools["cp"], argv=["cp", "/pass/src", "/pass/dst"])
        assert read_file(system, "/pass/dst") == b"copy me"

    def test_copy_descends_from_source_and_cp(self, system, tools):
        write_file(system, "/pass/src", b"copy me")
        system.run(tools["cp"], argv=["cp", "/pass/src", "/pass/dst"])
        names = ancestors_names(system, "/pass/dst")
        assert "/pass/src" in names
        assert "cp" in names

    def test_bad_args(self, system, tools):
        with pytest.raises(UsageError):
            system.run(tools["cp"], argv=["cp", "/pass/one-arg"])


class TestTextTools:
    def test_grep(self, system, tools):
        write_file(system, "/pass/log",
                   b"ok line\nERROR bad\nok again\nERROR worse\n")
        system.run(tools["grep"],
                   argv=["grep", "ERROR", "/pass/log", "/pass/errors"])
        assert read_file(system, "/pass/errors") == (
            b"ERROR bad\nERROR worse")

    def test_sort(self, system, tools):
        write_file(system, "/pass/unsorted", b"pear\napple\nmango\n")
        system.run(tools["sort"],
                   argv=["sort", "/pass/unsorted", "/pass/sorted"])
        assert read_file(system, "/pass/sorted") == (
            b"apple\nmango\npear\n")

    def test_wc(self, system, tools):
        write_file(system, "/pass/text", b"one two\nthree\n")
        system.run(tools["wc"], argv=["wc", "/pass/text", "/pass/counts"])
        assert read_file(system, "/pass/counts") == (
            b"2 3 14 /pass/text\n")

    def test_cat_multiple_inputs(self, system, tools):
        write_file(system, "/pass/a", b"AA")
        write_file(system, "/pass/b", b"BB")
        system.run(tools["cat"],
                   argv=["cat", "/pass/a", "/pass/b", "/pass/ab"])
        assert read_file(system, "/pass/ab") == b"AABB"
        names = ancestors_names(system, "/pass/ab")
        assert {"/pass/a", "/pass/b"} <= names


class TestPipelines:
    def test_grep_sort_pipeline_provenance(self, system, tools):
        """grep | sort as two processes over a pipe: the sorted output's
        ancestry spans both tools and the raw log."""
        write_file(system, "/pass/raw",
                   b"b ERROR\nz ok\na ERROR\nc ok\n")
        system.run(tools["grep"],
                   argv=["grep", "ERROR", "/pass/raw", "/pass/hits"])
        system.run(tools["sort"],
                   argv=["sort", "/pass/hits", "/pass/final"])
        assert read_file(system, "/pass/final") == b"a ERROR\nb ERROR\n"
        names = ancestors_names(system, "/pass/final")
        assert {"/pass/raw", "/pass/hits", "grep", "sort"} <= names

    def test_tee_through_pipe(self, system, tools):
        def producer(sc):
            sc.write(sc.stdout, b"streamed")
            return 0

        system.register_program("/pass/bin/producer", producer)
        with system.process() as shell:
            rfd, wfd = shell.pipe()
            shell.spawn("/pass/bin/producer", stdout=wfd)
            shell.close(wfd)
            shell.spawn(tools["tee"], argv=["tee", "/pass/copy"],
                        stdin=rfd)
            shell.close(rfd)
        assert read_file(system, "/pass/copy") == b"streamed"
        names = ancestors_names(system, "/pass/copy")
        # The producer's default argv[0] is its path.
        assert "/pass/bin/producer" in names
        assert "tee" in names


class TestToyTar:
    def test_roundtrip(self, system, tools):
        with system.process() as proc:
            proc.mkdir("/pass/project")
        write_file(system, "/pass/project/one.txt", b"first file")
        write_file(system, "/pass/project/two.txt", b"second")
        system.run(tools["tar"],
                   argv=["tar", "/pass/project", "/pass/project.tar"])
        system.run(tools["untar"],
                   argv=["untar", "/pass/project.tar", "/pass/restore"])
        assert read_file(system, "/pass/restore/one.txt") == b"first file"
        assert read_file(system, "/pass/restore/two.txt") == b"second"

    def test_extracted_files_descend_from_archive(self, system, tools):
        with system.process() as proc:
            proc.mkdir("/pass/project")
        write_file(system, "/pass/project/one.txt", b"data")
        system.run(tools["tar"],
                   argv=["tar", "/pass/project", "/pass/p.tar"])
        system.run(tools["untar"],
                   argv=["untar", "/pass/p.tar", "/pass/out"])
        names = ancestors_names(system, "/pass/out/one.txt")
        assert "/pass/p.tar" in names
        assert "/pass/project/one.txt" in names   # through the archive

    def test_untar_rejects_garbage(self, system, tools):
        write_file(system, "/pass/not-a-tar", b"junk")
        with pytest.raises(UsageError):
            system.run(tools["untar"],
                       argv=["untar", "/pass/not-a-tar", "/pass/x"])
