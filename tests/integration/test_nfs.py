"""PA-NFS integration tests (paper section 6.1)."""

import pytest

from repro.core.errors import StalePnodeVersion
from repro.core.records import Attr, ObjType
from repro.kernel.clock import SimClock
from repro.nfs import NFSClient, NFSServer, Network
from repro.system import System
from tests.integration.test_pipeline import transitive_ancestors


def make_env(provenance=True, clients=1, export="export",
             server_faults=None, net_faults=None):
    """One server exporting a PASS volume + N client machines.

    ``server_faults`` arms a FaultInjector on the server machine,
    ``net_faults`` on every client's network (crashlab harnesses).
    """
    clock = SimClock()
    server_sys = System.boot(provenance=provenance, hostname="server",
                             clock=clock, pass_volumes=(export,),
                             plain_volumes=(), faults=server_faults)
    server = NFSServer(server_sys, export)
    out = []
    for index in range(clients):
        client_sys = System.boot(
            provenance=provenance, hostname=f"client{index}", clock=clock,
            pass_volumes=(f"local{index}",) if provenance else (),
            plain_volumes=(f"scratch{index}",),
        )
        network = Network(clock, client_sys.kernel.params.net,
                          faults=net_faults)
        client = NFSClient(client_sys, server, network,
                           mountpoint="/nfs", name=f"nfs{index}")
        out.append((client_sys, client))
    return server_sys, server, out


def sync_all(server_sys, clients):
    for client_sys, client in clients:
        client.sync()
    return server_sys.sync()


class TestDataPath:
    def test_write_read_roundtrip(self):
        server_sys, server, clients = make_env()
        client_sys, client = clients[0]
        with client_sys.process() as proc:
            fd = proc.open("/nfs/remote.txt", "w")
            proc.write(fd, b"over the wire")
            proc.close(fd)
            fd = proc.open("/nfs/remote.txt", "r")
            assert proc.read(fd) == b"over the wire"
            proc.close(fd)

    def test_data_lands_on_server_volume(self):
        server_sys, server, clients = make_env()
        client_sys, client = clients[0]
        with client_sys.process() as proc:
            fd = proc.open("/nfs/f", "w")
            proc.write(fd, b"payload")
            proc.close(fd)
        inode = server_sys.kernel.vfs.resolve("/export/f")
        assert inode.data.read(0, 7) == b"payload"

    def test_network_charged(self):
        server_sys, server, clients = make_env()
        client_sys, client = clients[0]
        t0 = client_sys.kernel.clock.now
        with client_sys.process() as proc:
            fd = proc.open("/nfs/f", "w")
            proc.write(fd, b"x" * 10000)
            proc.close(fd)
        assert client.network.calls > 0
        assert client_sys.kernel.clock.category("network") > 0
        assert client_sys.kernel.clock.now > t0

    def test_metadata_ops_propagate(self):
        server_sys, server, clients = make_env()
        client_sys, client = clients[0]
        with client_sys.process() as proc:
            proc.mkdir("/nfs/dir")
            fd = proc.open("/nfs/dir/a", "w")
            proc.write(fd, b"1")
            proc.close(fd)
            proc.rename("/nfs/dir/a", "/nfs/dir/b")
            assert proc.readdir("/nfs/dir") == ["b"]
        assert server_sys.kernel.vfs.exists("/export/dir/b")
        assert not server_sys.kernel.vfs.exists("/export/dir/a")

    def test_unlink_propagates(self):
        server_sys, server, clients = make_env()
        client_sys, client = clients[0]
        with client_sys.process() as proc:
            fd = proc.open("/nfs/gone", "w")
            proc.write(fd, b"1")
            proc.close(fd)
            proc.unlink("/nfs/gone")
        assert not server_sys.kernel.vfs.exists("/export/gone")

    def test_lazy_lookup_of_preexisting_files(self):
        server_sys, server, clients = make_env()
        client_sys, client = clients[0]
        # File created directly on the server before the client looks.
        with server_sys.process() as proc:
            fd = proc.open("/export/preexisting", "w")
            proc.write(fd, b"server-side")
            proc.close(fd)
        with client_sys.process() as proc:
            fd = proc.open("/nfs/preexisting", "r")
            assert proc.read(fd) == b"server-side"
            proc.close(fd)

    def test_baseline_uses_plain_ops(self):
        server_sys, server, clients = make_env(provenance=False)
        client_sys, client = clients[0]
        with client_sys.process() as proc:
            fd = proc.open("/nfs/f", "w")
            proc.write(fd, b"x")
            proc.close(fd)
            fd = proc.open("/nfs/f", "r")
            proc.read(fd)
            proc.close(fd)
        assert server.op_counts["WRITE"] > 0
        assert server.op_counts["READ"] > 0
        assert server.op_counts["PASSWRITE"] == 0
        assert server.op_counts["PASSREAD"] == 0


class TestProvenanceOverTheWire:
    def test_client_process_ancestry_reaches_server_db(self):
        server_sys, server, clients = make_env()
        client_sys, client = clients[0]
        with client_sys.process(argv=["remote-writer"]) as proc:
            fd = proc.open("/nfs/out", "w")
            proc.write(fd, b"data")
            proc.close(fd)
        sync_all(server_sys, clients)
        db = server_sys.database("export")
        refs = db.find_by_name("/nfs/out")
        assert refs
        ancestors = transitive_ancestors(db, refs[0])
        names = set()
        for ref in ancestors:
            names.update(db.attribute_values(ref, Attr.NAME))
        assert "remote-writer" in names

    def test_passread_passwrite_ops_used(self):
        server_sys, server, clients = make_env()
        client_sys, client = clients[0]
        with client_sys.process() as proc:
            fd = proc.open("/nfs/f", "w")
            proc.write(fd, b"x")
            proc.close(fd)
            fd = proc.open("/nfs/f", "r")
            proc.read(fd)
            proc.close(fd)
        assert server.op_counts["PASSWRITE"] > 0
        assert server.op_counts["PASSREAD"] > 0

    def test_large_bundle_goes_through_txn(self):
        server_sys, server, clients = make_env()
        client_sys, client = clients[0]
        # Generate > 64 KB of provenance: many distinct input files read
        # by one process whose cached ancestry flushes with one write.
        count = 2800
        with client_sys.process(argv=["reader"]) as proc:
            for index in range(count):
                fd = proc.open(f"/nfs/in-{index}", "w")
                proc.write(fd, b"1")
                proc.close(fd)
        with client_sys.process(argv=["aggregator"]) as proc:
            for index in range(count):
                fd = proc.open(f"/nfs/in-{index}", "r")
                proc.read(fd)
                proc.close(fd)
            out = proc.open("/nfs/combined", "w")
            proc.write(out, b"all")
            proc.close(out)
        assert server.op_counts["BEGINTXN"] > 0
        assert server.op_counts["PASSPROV"] > 0

    def test_freeze_record_applied_at_server(self):
        server_sys, server, clients = make_env()
        client_sys, client = clients[0]
        with client_sys.process() as proc:
            fd = proc.open("/nfs/v", "w")
            proc.write(fd, b"v0")
            proc.close(fd)
            fd = proc.open("/nfs/v", "r+")
            proc.read(fd)
            proc.write(fd, b"v1")        # freeze -> FREEZE record
            proc.close(fd)
        server_inode = server_sys.kernel.vfs.resolve("/export/v")
        assert server_inode.version >= 1
        sync_all(server_sys, clients)
        db = server_sys.database("export")
        freezes = [r for r in db.all_records() if r.attr == Attr.FREEZE]
        assert freezes

    def test_cross_server_ancestry(self):
        """The Figure 1 shape: read input from one server, write output
        to another; merged databases answer the full ancestry."""
        clock = SimClock()
        serverA_sys = System.boot(provenance=True, hostname="sA",
                                  clock=clock, pass_volumes=("expA",),
                                  plain_volumes=())
        serverB_sys = System.boot(provenance=True, hostname="sB",
                                  clock=clock, pass_volumes=("expB",),
                                  plain_volumes=())
        serverA = NFSServer(serverA_sys, "expA")
        serverB = NFSServer(serverB_sys, "expB")
        client_sys = System.boot(provenance=True, hostname="client",
                                 clock=clock, pass_volumes=("local",),
                                 plain_volumes=())
        clientA = NFSClient(client_sys, serverA, mountpoint="/inputs",
                            name="nfsA")
        clientB = NFSClient(client_sys, serverB, mountpoint="/outputs",
                            name="nfsB")
        with client_sys.process(argv=["seed"]) as proc:
            fd = proc.open("/inputs/raw", "w")
            proc.write(fd, b"input-data")
            proc.close(fd)
        with client_sys.process(argv=["transform"]) as proc:
            fd = proc.open("/inputs/raw", "r")
            data = proc.read(fd)
            proc.close(fd)
            out = proc.open("/outputs/result", "w")
            proc.write(out, data.upper())
            proc.close(out)
        clientA.sync()
        clientB.sync()
        serverA_sys.sync()
        serverB_sys.sync()
        dbs = serverA_sys.databases() + serverB_sys.databases()
        from repro.query.helpers import ancestry_refs, newest_ref_by_name
        out_ref = newest_ref_by_name(dbs, "/outputs/result")
        ancestry = ancestry_refs(dbs, out_ref)
        names = set()
        for db in dbs:
            for ref in ancestry:
                for record in db.records_of(ref.pnode):
                    if record.attr == Attr.NAME:
                        names.add(record.value)
        assert "/inputs/raw" in names
        assert "transform" in names


class TestTransactionsAndCrashes:
    def test_client_crash_orphans_half_sent_txn(self):
        server_sys, server, clients = make_env()
        client_sys, client = clients[0]
        from repro.core.pnode import ObjectRef
        from repro.core.records import ProvenanceRecord
        subject = ObjectRef(server.volume.pnodes.allocate(), 0)
        txn = server.op_begintxn(subject)
        server.op_passprov(txn, [
            ProvenanceRecord(subject, Attr.NAME, "half-sent-nfs"),
        ])
        # Client dies here: no ENDTXN ever arrives.  Force what is
        # buffered to disk, then let Waldo look.
        server.volume.lasagna.log.flush()
        server.volume.lasagna.log.rotate()
        server_sys.waldos["export"].drain()
        db = server_sys.database("export")
        names = {r.value for r in db.all_records() if r.attr == Attr.NAME}
        assert "half-sent-nfs" not in names
        orphaned = server_sys.waldos["export"].orphaned
        assert any(r.value == "half-sent-nfs" for r in orphaned)

    def test_mkobj_survives_server_restart(self):
        """'The pnode is just a number': after a server crash the client
        keeps using it, and reviveobj revalidates without recovery."""
        server_sys, server, clients = make_env()
        client_sys, client = clients[0]
        obj = client.remote_mkobj()
        server.crash()
        server.restart()
        revived = client.remote_reviveobj(obj.pnode, 0)
        assert revived.pnode == obj.pnode

    def test_reviveobj_rejects_unknown_pnode(self):
        server_sys, server, clients = make_env()
        client_sys, client = clients[0]
        from repro.core.pnode import make_pnode
        bogus = make_pnode(server.volume.volume_id, 999999)
        with pytest.raises(StalePnodeVersion):
            client.remote_reviveobj(bogus, 0)

    def test_remote_mkobj_provenance_routes_to_export(self):
        server_sys, server, clients = make_env()
        client_sys, client = clients[0]
        obj = client.remote_mkobj()
        analyzer = client_sys.kernel.analyzer
        from repro.core.analyzer import ProtoRecord
        analyzer.submit(ProtoRecord(obj, Attr.TYPE, ObjType.SESSION))
        analyzer.submit(ProtoRecord(obj, Attr.NAME, "remote-session"))
        sync_all(server_sys, clients)
        db = server_sys.database("export")
        names = {r.value for r in db.all_records() if r.attr == Attr.NAME}
        assert "remote-session" in names


class TestVersionBranching:
    def test_two_clients_branch_detected(self):
        """Close-to-open consistency lets two clients freeze from the
        same base version; the server notes the branch."""
        server_sys, server, clients = make_env(clients=2)
        (sysA, clientA), (sysB, clientB) = clients
        with sysA.process() as proc:
            fd = proc.open("/nfs/shared", "w")
            proc.write(fd, b"base")
            proc.close(fd)
        # Both clients open the same version *before* either writes
        # (close-to-open allows this), then each read-modify-writes:
        # both freeze version 0 -> 1 independently.
        procA = sysA.kernel.spawn_shell(["editorA"])
        procB = sysB.kernel.spawn_shell(["editorB"])
        fdA = procA.open("/nfs/shared", "r+")
        fdB = procB.open("/nfs/shared", "r+")
        procA.read(fdA)
        procB.read(fdB)
        procA.write(fdA, b"from-A")
        procB.write(fdB, b"from-B")
        procA.close(fdA)
        procB.close(fdB)
        sysA.kernel.reap(procA.proc, 0)
        sysB.kernel.reap(procB.proc, 0)
        sync_all(server_sys, clients)
        db = server_sys.database("export")
        branches = [r for r in db.all_records() if r.attr == Attr.BRANCH_OF]
        assert branches
