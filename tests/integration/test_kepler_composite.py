"""Tests for composite (hierarchical) workflow actors."""

import pytest

from repro.apps.kepler import (
    FileSink,
    FileSource,
    Transformer,
    Workflow,
    run_workflow,
)
from repro.apps.kepler.composite import Collector, CompositeActor, Injector
from repro.core.errors import WorkflowError
from repro.core.records import Attr, ObjType
from tests.conftest import read_file, write_file
from tests.integration.test_pipeline import transitive_ancestors


def make_normalizer() -> Workflow:
    """Inner workflow: strip -> lower (two stages)."""
    inner = Workflow("normalizer")
    inner.add(Injector("feed"))
    inner.add(Transformer("strip", fn=lambda data: data.strip()))
    inner.add(Transformer("lower", fn=lambda data: data.lower()))
    inner.add(Collector("result"))
    inner.connect("feed", "out", "strip", "in")
    inner.connect("strip", "out", "lower", "in")
    inner.connect("lower", "out", "result", "in")
    return inner


def make_outer(in_path, out_path) -> Workflow:
    outer = Workflow("outer")
    outer.add(FileSource("src", path=in_path))
    outer.add(CompositeActor("normalize", make_normalizer(),
                             inputs={"in": "feed"},
                             outputs={"out": "result"}))
    outer.add(FileSink("sink", path=out_path))
    outer.connect("src", "out", "normalize", "in")
    outer.connect("normalize", "out", "sink", "in")
    return outer


class TestExecution:
    def test_composite_transforms_data(self, system):
        write_file(system, "/pass/in", b"  HELLO Composite  ")
        run_workflow(system, make_outer("/pass/in", "/pass/out"),
                     recording=None)
        assert read_file(system, "/pass/out") == b"hello composite"

    def test_composite_fires_inner_stages(self, system):
        write_file(system, "/pass/in", b"X")
        director = run_workflow(system,
                                make_outer("/pass/in", "/pass/out"),
                                recording=None)
        # Outer firings only (src, composite, sink); the inner director
        # counts its own.
        assert director.firings == 3

    def test_multiple_firings_reuse_inner(self, system):
        write_file(system, "/pass/in", b" A ")
        wf = make_outer("/pass/in", "/pass/out")
        run_workflow(system, wf, recording=None, iterations=3)
        assert read_file(system, "/pass/out") == b"a"

    def test_bad_port_mapping_rejected(self):
        inner = make_normalizer()
        with pytest.raises(WorkflowError):
            CompositeActor("bad", inner, inputs={"in": "strip"},
                           outputs={"out": "result"})
        with pytest.raises(WorkflowError):
            CompositeActor("bad", inner, inputs={"in": "feed"},
                           outputs={"out": "lower"})


class TestCompositeProvenance:
    def test_inner_operators_recorded(self, system):
        write_file(system, "/pass/in", b" DATA ")
        run_workflow(system, make_outer("/pass/in", "/pass/out"),
                     recording="pass")
        system.sync()
        db = system.database("pass")
        operator_names = set()
        for ref in db.subjects_with_attr(Attr.TYPE):
            if ObjType.OPERATOR in db.attribute_values(ref, Attr.TYPE):
                operator_names.update(
                    db.attribute_values(ref, Attr.NAME))
        # Both granularities are present: the composite and its insides.
        assert "normalize" in operator_names
        assert {"strip", "lower"} <= operator_names

    def test_output_ancestry_crosses_both_levels(self, system):
        write_file(system, "/pass/in", b" DATA ")
        run_workflow(system, make_outer("/pass/in", "/pass/out"),
                     recording="pass")
        system.sync()
        db = system.database("pass")
        out_ref = db.find_by_name("/pass/out")[0]
        names = set()
        for ref in transitive_ancestors(db, out_ref):
            names.update(db.attribute_values(ref, Attr.NAME))
        assert "normalize" in names          # the composite operator
        assert "src" in names                # outer neighbors

    def test_nested_composites(self, system):
        """A composite inside a composite still runs and records."""
        innermost = Workflow("innermost")
        innermost.add(Injector("feed"))
        innermost.add(Transformer("exclaim", fn=lambda d: d + b"!"))
        innermost.add(Collector("result"))
        innermost.connect("feed", "out", "exclaim", "in")
        innermost.connect("exclaim", "out", "result", "in")

        middle = Workflow("middle")
        middle.add(Injector("feed"))
        middle.add(CompositeActor("shout", innermost,
                                  inputs={"in": "feed"},
                                  outputs={"out": "result"}))
        middle.add(Collector("result"))
        middle.connect("feed", "out", "shout", "in")
        middle.connect("shout", "out", "result", "in")

        outer = Workflow("outer")
        outer.add(FileSource("src", path="/pass/in"))
        outer.add(CompositeActor("wrap", middle,
                                 inputs={"in": "feed"},
                                 outputs={"out": "result"}))
        outer.add(FileSink("sink", path="/pass/out"))
        outer.connect("src", "out", "wrap", "in")
        outer.connect("wrap", "out", "sink", "in")

        write_file(system, "/pass/in", b"deep")
        run_workflow(system, outer, recording="pass")
        assert read_file(system, "/pass/out") == b"deep!"
