"""Full-stack concurrency: interleaved processes and cycle avoidance.

Section 5.4: "cycles can occur when multiple processes are concurrently
reading and writing the same files."  These tests run *interleaved*
generator programs through the real syscall layer and verify that the
database graph stays acyclic and versions record the interleaving.
"""

from repro.core.records import Attr
from tests.conftest import write_file


def db_edges(db):
    edges = {}
    for record in db.all_records():
        if record.is_ancestry:
            edges.setdefault(record.subject, []).append(record.value)
    return edges


def assert_acyclic(db):
    edges = db_edges(db)
    state = {}

    def visit(node):
        state[node] = 1
        for child in edges.get(node, ()):
            code = state.get(child, 0)
            assert code != 1, f"cycle through {child}"
            if code == 0:
                visit(child)
        state[node] = 2

    for node in list(edges):
        if state.get(node, 0) == 0:
            visit(node)


class TestInterleavedReadersWriters:
    def test_pingpong_two_processes_two_files(self, system):
        """P: read A, write B; Q: read B, write A -- interleaved at
        syscall granularity for several rounds."""
        write_file(system, "/pass/A", b"seed-a")
        write_file(system, "/pass/B", b"seed-b")

        def pingpong(source, target):
            def program(sc):
                for _ in range(4):
                    fd = sc.open(source, "r")
                    data = sc.read(fd)
                    sc.close(fd)
                    yield
                    fd = sc.open(target, "w")
                    sc.write(fd, data + b"!")
                    sc.close(fd)
                    yield
                return 0
            return program

        kernel = system.kernel
        kernel.register_program("/pass/bin/p", pingpong("/pass/A",
                                                        "/pass/B"))
        kernel.register_program("/pass/bin/q", pingpong("/pass/B",
                                                        "/pass/A"))
        kernel.start("/pass/bin/p")
        kernel.start("/pass/bin/q")
        kernel.schedule()
        system.sync()
        db = system.database("pass")
        assert_acyclic(db)
        # Both files must have been versioned by the back-and-forth.
        for name in ("/pass/A", "/pass/B"):
            ref = db.find_by_name(name)[0]
            assert db.max_version(ref.pnode) >= 1

    def test_many_writers_single_file(self, system):
        write_file(system, "/pass/shared", b"v0")

        def writer(tag):
            def program(sc):
                for _ in range(3):
                    fd = sc.open("/pass/shared", "r+")
                    sc.read(fd)
                    yield
                    sc.write(fd, tag)
                    sc.close(fd)
                    yield
                return 0
            return program

        kernel = system.kernel
        for index in range(4):
            kernel.register_program(f"/pass/bin/w{index}",
                                    writer(f"w{index}".encode()))
            kernel.start(f"/pass/bin/w{index}")
        kernel.schedule()
        system.sync()
        db = system.database("pass")
        assert_acyclic(db)
        ref = db.find_by_name("/pass/shared")[0]
        # Multiple writers + read-modify-write cycles force versioning.
        assert db.max_version(ref.pnode) >= 4

    def test_version_history_chain_complete(self, system):
        """Every version > 0 in the database links to its predecessor."""
        write_file(system, "/pass/f", b"0")
        for round_no in range(3):
            with system.process(argv=[f"editor{round_no}"]) as proc:
                fd = proc.open("/pass/f", "r+")
                proc.read(fd)
                proc.write(fd, b"x")
                proc.close(fd)
        system.sync()
        db = system.database("pass")
        ref = db.find_by_name("/pass/f")[0]
        top = db.max_version(ref.pnode)
        assert top >= 3
        for version in range(1, top + 1):
            from repro.core.pnode import ObjectRef
            prev = [r for r in db.records_of_version(
                        ObjectRef(ref.pnode, version))
                    if r.attr == Attr.PREV_VERSION]
            assert prev, f"version {version} lacks a PREV_VERSION link"
            assert prev[0].value == ObjectRef(ref.pnode, version - 1)

    def test_pipeline_with_interleaved_stages(self, system):
        """A generator pipeline where the consumer starts before the
        producer finishes (true streaming through the pipe)."""
        results = {}

        def producer(sc):
            for index in range(5):
                sc.write(sc.stdout, f"chunk{index};".encode())
                yield
            return 0

        def consumer(sc):
            collected = b""
            while True:
                if sc.pipe_available(sc.stdin):
                    collected += sc.read(sc.stdin)
                    yield
                else:
                    fdesc = sc.proc.lookup_fd(sc.stdin)
                    if fdesc.pipe.writers == 0:
                        break
                    yield
            fd = sc.open("/pass/collected", "w")
            sc.write(fd, collected)
            sc.close(fd)
            results["data"] = collected
            return 0

        kernel = system.kernel
        kernel.register_program("/pass/bin/prod", producer)
        kernel.register_program("/pass/bin/cons", consumer)
        with system.process() as shell:
            rfd, wfd = shell.pipe()
            prod_fd = shell.proc.lookup_fd(wfd)
            cons_fd = shell.proc.lookup_fd(rfd)
            kernel.start("/pass/bin/prod", stdout=prod_fd)
            kernel.start("/pass/bin/cons", stdin=cons_fd)
            shell.close(wfd)
            shell.close(rfd)
            kernel.schedule()
        assert results["data"] == b"".join(
            f"chunk{i};".encode() for i in range(5))
        system.sync()
        db = system.database("pass")
        assert_acyclic(db)
        out_ref = db.find_by_name("/pass/collected")[0]
        from tests.integration.test_pipeline import transitive_ancestors
        types = set()
        for ref in transitive_ancestors(db, out_ref):
            types.update(db.attribute_values(ref, Attr.TYPE))
        assert "PIPE" in types
