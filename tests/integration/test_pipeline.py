"""End-to-end tests: syscalls -> observer -> analyzer -> distributor ->
Lasagna -> Waldo -> database."""

import pytest

from repro.core.pnode import ObjectRef
from repro.core.records import Attr, ObjType
from repro.system import System
from tests.conftest import read_file, write_file


class TestBasicFlow:
    def test_write_creates_provenance(self, system):
        write_file(system, "/pass/out.txt", b"payload")
        system.sync()
        db = system.database("pass")
        refs = db.find_by_name("/pass/out.txt")
        assert refs
        records = db.records_of(refs[0].pnode)
        attrs = {r.attr for r in records}
        assert Attr.TYPE in attrs and Attr.NAME in attrs
        assert Attr.INPUT in attrs          # written by the process

    def test_file_depends_on_writing_process(self, system):
        with system.process(argv=["writer-prog"]) as proc:
            fd = proc.open("/pass/x", "w")
            proc.write(fd, b"data")
            proc.close(fd)
        system.sync()
        db = system.database("pass")
        file_ref = db.find_by_name("/pass/x")[0]
        parents = db.ancestors(file_ref)
        assert parents
        # The ancestor process carries NAME=writer-prog.
        names = []
        for parent in parents:
            names.extend(db.attribute_values(parent, Attr.NAME))
        assert "writer-prog" in names

    def test_process_reading_creates_dependency(self, system):
        write_file(system, "/pass/in.txt", b"input-data")
        with system.process(argv=["transformer"]) as proc:
            fd = proc.open("/pass/in.txt", "r")
            data = proc.read(fd)
            proc.close(fd)
            out = proc.open("/pass/out.txt", "w")
            proc.write(out, data.upper())
            proc.close(out)
        system.sync()
        db = system.database("pass")
        out_ref = db.find_by_name("/pass/out.txt")[0]
        in_ref = db.find_by_name("/pass/in.txt")[0]
        assert in_ref in transitive_ancestors(db, out_ref)

    def test_data_round_trips(self, system):
        write_file(system, "/pass/data.bin", b"\x01\x02\x03")
        assert read_file(system, "/pass/data.bin") == b"\x01\x02\x03"

    def test_baseline_records_nothing(self, baseline):
        write_file(baseline, "/pass/x", b"data")
        assert baseline.kernel.observer is None
        assert not baseline.waldos


class TestPipelineProvenance:
    def test_shell_pipeline_ancestry_crosses_pipe(self, system):
        """producer | consumer > /pass/out: the output's ancestry must
        reach back through the pipe to the producer process."""
        write_file(system, "/pass/source", b"line1\nline2\n")

        def producer(sc):
            fd = sc.open("/pass/source", "r")
            data = sc.read(fd)
            sc.close(fd)
            sc.write(sc.stdout, data)

        def consumer(sc):
            data = sc.read(sc.stdin)
            fd = sc.open("/pass/out", "w")
            sc.write(fd, data.replace(b"line", b"row "))
            sc.close(fd)

        system.register_program("/pass/bin/producer", producer)
        system.register_program("/pass/bin/consumer", consumer)
        with system.process(argv=["shell"]) as shell:
            rfd, wfd = shell.pipe()
            shell.spawn("/pass/bin/producer", stdout=wfd)
            shell.close(wfd)
            shell.spawn("/pass/bin/consumer", stdin=rfd)
            shell.close(rfd)
        system.sync()
        db = system.database("pass")
        out_ref = db.find_by_name("/pass/out")[0]
        ancestors = transitive_ancestors(db, out_ref)
        source_ref = db.find_by_name("/pass/source")[0]
        assert source_ref in ancestors
        types = set()
        for ref in ancestors:
            types.update(db.attribute_values(ref, Attr.TYPE))
        assert ObjType.PIPE in types
        assert ObjType.PROCESS in types

    def test_exec_edge_points_at_binary(self, system):
        def prog(sc):
            fd = sc.open("/pass/result", "w")
            sc.write(fd, b"done")
            sc.close(fd)

        system.register_program("/pass/bin/tool", prog)
        system.run("/pass/bin/tool")
        system.sync()
        db = system.database("pass")
        out_ref = db.find_by_name("/pass/result")[0]
        ancestors = transitive_ancestors(db, out_ref)
        binary_ref = db.find_by_name("/pass/bin/tool")[0]
        assert binary_ref in ancestors


class TestVersioning:
    def test_read_modify_write_freezes(self, system):
        write_file(system, "/pass/f", b"v0")
        with system.process() as proc:
            fd = proc.open("/pass/f", "r+")
            proc.read(fd)
            proc.write(fd, b"v1")
            proc.close(fd)
        system.sync()
        db = system.database("pass")
        ref = db.find_by_name("/pass/f")[0]
        assert db.max_version(ref.pnode) >= 1

    def test_same_process_rewrite_does_not_freeze(self, system):
        with system.process() as proc:
            for _ in range(3):
                fd = proc.open("/pass/f", "w")
                proc.write(fd, b"data")
                proc.close(fd)
        inode = system.kernel.vfs.resolve("/pass/f")
        assert inode.version == 0

    def test_new_writer_process_freezes(self, system):
        """Independent producing runs must not merge ancestry into one
        version: a write by a different process starts a new version."""
        for _ in range(3):
            write_file(system, "/pass/f", b"data")   # new process each time
        inode = system.kernel.vfs.resolve("/pass/f")
        assert inode.version == 2

    def test_rename_keeps_provenance_and_adds_name(self, system):
        write_file(system, "/pass/a", b"data")
        with system.process() as proc:
            proc.rename("/pass/a", "/pass/b")
        system.sync()
        db = system.database("pass")
        refs_b = db.find_by_name("/pass/b")
        refs_a = db.find_by_name("/pass/a")
        assert refs_b
        assert refs_a and refs_a[0].pnode == refs_b[0].pnode


class TestDistributorIntegration:
    def test_process_provenance_lands_only_with_descendants(self, system):
        """A process that writes nothing persistent leaves no trace in
        the database; one that writes does."""
        with system.process(argv=["idle-proc"]) as proc:
            proc.compute(0.001)
        system.sync()
        db = system.database("pass")
        assert not _find_process_by_name(db, "idle-proc")

        with system.process(argv=["busy-proc"]) as proc:
            fd = proc.open("/pass/made", "w")
            proc.write(fd, b"x")
            proc.close(fd)
        system.sync()
        assert _find_process_by_name(system.database("pass"), "busy-proc")

    def test_scratch_file_dependency_flows_to_pass_volume(self, system):
        """Reading a non-PASS file then writing a PASS file records the
        non-PASS ancestry on the PASS volume."""
        write_file(system, "/scratch/input", b"raw")
        with system.process() as proc:
            fd = proc.open("/scratch/input", "r")
            data = proc.read(fd)
            proc.close(fd)
            out = proc.open("/pass/output", "w")
            proc.write(out, data)
            proc.close(out)
        system.sync()
        db = system.database("pass")
        out_ref = db.find_by_name("/pass/output")[0]
        ancestors = transitive_ancestors(db, out_ref)
        names = set()
        for ref in ancestors:
            names.update(db.attribute_values(ref, Attr.NAME))
        assert "/scratch/input" in names

    def test_two_pass_volumes(self, two_volume_system):
        system = two_volume_system
        write_file(system, "/pass2/on-second", b"hello")
        system.sync()
        db2 = system.database("pass2")
        assert db2.find_by_name("/pass2/on-second")


class TestWapInvariant:
    def test_no_data_write_without_prior_log_flush(self, system):
        """Every Lasagna data write must be preceded by its log flush."""
        write_file(system, "/pass/wap", b"z" * 100_000)
        lasagna = system.kernel.volume("pass").lasagna
        assert lasagna.log.flushes >= lasagna.data_writes > 0

    def test_md5_recorded_for_each_write(self, system):
        write_file(system, "/pass/sums", b"payload")
        system.sync()
        db = system.database("pass")
        ref = db.find_by_name("/pass/sums")[0]
        md5s = [r for r in db.records_of(ref.pnode) if r.attr == Attr.MD5]
        assert md5s


def transitive_ancestors(db, ref: ObjectRef) -> set[ObjectRef]:
    """All ancestors reachable over ancestry edges."""
    seen: set[ObjectRef] = set()
    frontier = [ref]
    while frontier:
        node = frontier.pop()
        for parent in db.ancestors(node):
            if parent not in seen:
                seen.add(parent)
                frontier.append(parent)
    return seen


def _find_process_by_name(db, name):
    return [ref for ref in db.subjects_with_attr(Attr.TYPE)
            if ObjType.PROCESS in db.attribute_values(ref, Attr.TYPE)
            and name in db.attribute_values(ref, Attr.NAME)]
