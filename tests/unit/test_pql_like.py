"""Tests for the PQL LIKE operator (pattern matching over atoms)."""

import pytest

from repro.core.pnode import ObjectRef
from repro.core.records import Attr, ObjType, ProvenanceRecord
from repro.pql import ast
from repro.pql.engine import QueryEngine
from repro.pql.parser import parse


@pytest.fixture
def engine():
    def R(pnode, attr, value):
        return ProvenanceRecord(ObjectRef(pnode, 0), attr, value)

    return QueryEngine.from_records([
        R(1, Attr.TYPE, ObjType.FILE),
        R(1, Attr.NAME, "/data/exp001.xml"),
        R(2, Attr.TYPE, ObjType.FILE),
        R(2, Attr.NAME, "/data/exp002.xml"),
        R(3, Attr.TYPE, ObjType.FILE),
        R(3, Attr.NAME, "/data/readme.txt"),
        R(4, Attr.TYPE, ObjType.FILE),
        R(4, Attr.NAME, "/etc/config"),
    ])


def names(rows):
    return sorted(str(row) for row in rows)


class TestLikeParsing:
    def test_like_parses_as_comparison(self):
        query = parse('select F from Provenance.file as F '
                      'where F.name like "%.xml"')
        assert isinstance(query.where, ast.Compare)
        assert query.where.op == "like"

    def test_not_like(self):
        query = parse('select F from Provenance.file as F '
                      'where F.name not like "%.xml"')
        assert isinstance(query.where, ast.Not)


class TestLikeSemantics:
    def test_suffix_wildcard(self, engine):
        rows = engine.execute('select F.name from Provenance.file as F '
                              'where F.name like "%.xml"')
        assert names(rows) == ["/data/exp001.xml", "/data/exp002.xml"]

    def test_prefix_wildcard(self, engine):
        rows = engine.execute('select F.name from Provenance.file as F '
                              'where F.name like "/data/%"')
        assert len(rows) == 3

    def test_underscore_single_char(self, engine):
        rows = engine.execute('select F.name from Provenance.file as F '
                              'where F.name like "/data/exp00_.xml"')
        assert len(rows) == 2

    def test_exact_match_without_wildcards(self, engine):
        rows = engine.execute('select F.name from Provenance.file as F '
                              'where F.name like "/etc/config"')
        assert names(rows) == ["/etc/config"]

    def test_no_match(self, engine):
        rows = engine.execute('select F from Provenance.file as F '
                              'where F.name like "%.pdf"')
        assert rows == []

    def test_not_like(self, engine):
        rows = engine.execute('select F.name from Provenance.file as F '
                              'where F.name not like "%.xml"')
        assert names(rows) == ["/data/readme.txt", "/etc/config"]

    def test_regex_metacharacters_are_literal(self, engine):
        # '.' in the pattern must not act as a regex wildcard.
        rows = engine.execute('select F.name from Provenance.file as F '
                              'where F.name like "/data/exp001.xml"')
        assert names(rows) == ["/data/exp001.xml"]
        rows = engine.execute('select F from Provenance.file as F '
                              'where F.name like "/data/exp001Zxml"')
        assert rows == []

    def test_like_against_non_string_is_false(self, engine):
        rows = engine.execute('select F from Provenance.file as F '
                              'where F.version like "%"')
        assert rows == []

    def test_like_in_combination(self, engine):
        rows = engine.execute(
            'select F.name from Provenance.file as F '
            'where F.name like "/data/%" and not F.name like "%.txt"')
        assert names(rows) == ["/data/exp001.xml", "/data/exp002.xml"]
