"""Unit tests for provenance records and bundles."""

import pytest

from repro.core.errors import InvalidRecord
from repro.core.pnode import ObjectRef
from repro.core.records import Attr, Bundle, ProvenanceRecord


def rec(pnode=1, version=0, attr=Attr.NAME, value="x"):
    return ProvenanceRecord(ObjectRef(pnode, version), attr, value)


class TestProvenanceRecord:
    def test_plain_value_record(self):
        record = rec(value="hello")
        assert not record.is_xref
        assert not record.is_ancestry

    def test_xref_record(self):
        record = rec(attr=Attr.INPUT, value=ObjectRef(2, 0))
        assert record.is_xref
        assert record.is_ancestry

    def test_xref_with_non_ancestry_attr(self):
        record = rec(attr=Attr.CURRENT_URL, value=ObjectRef(2, 0))
        assert record.is_xref
        assert not record.is_ancestry

    def test_ancestry_attr_with_plain_value_is_not_ancestry(self):
        record = rec(attr=Attr.INPUT, value="not-a-ref")
        assert not record.is_ancestry

    def test_rejects_bad_subject(self):
        with pytest.raises(InvalidRecord):
            ProvenanceRecord((1, 0), Attr.NAME, "x")  # plain tuple

    def test_rejects_empty_attr(self):
        with pytest.raises(InvalidRecord):
            ProvenanceRecord(ObjectRef(1, 0), "", "x")

    def test_rejects_bad_value_type(self):
        with pytest.raises(InvalidRecord):
            ProvenanceRecord(ObjectRef(1, 0), Attr.NAME, ["list"])

    def test_key_distinguishes_value_types(self):
        # 1 == True in Python; the dedup key must keep them apart.
        a = rec(attr=Attr.ANNOTATION, value=1)
        b = rec(attr=Attr.ANNOTATION, value=True)
        assert a.key() != b.key()

    def test_key_distinguishes_ref_from_tuple_like_int(self):
        a = rec(attr=Attr.INPUT, value=ObjectRef(5, 1))
        b = rec(attr=Attr.INPUT, value=5)
        assert a.key() != b.key()

    def test_frozen(self):
        record = rec()
        with pytest.raises(AttributeError):
            record.attr = "other"


class TestBundle:
    def test_iteration_preserves_order(self):
        records = [rec(value=str(i)) for i in range(5)]
        bundle = Bundle(records)
        assert list(bundle) == records

    def test_add_and_len(self):
        bundle = Bundle()
        assert not bundle
        bundle.add(rec())
        assert len(bundle) == 1
        assert bundle

    def test_subjects_first_occurrence_order(self):
        bundle = Bundle([
            rec(pnode=2), rec(pnode=1), rec(pnode=2, attr=Attr.TYPE),
        ])
        assert [ref.pnode for ref in bundle.subjects()] == [2, 1]

    def test_rejects_non_records(self):
        with pytest.raises(InvalidRecord):
            Bundle(["nope"])
        bundle = Bundle()
        with pytest.raises(InvalidRecord):
            bundle.add("nope")

    def test_extend(self):
        bundle = Bundle()
        bundle.extend([rec(), rec(attr=Attr.TYPE)])
        assert len(bundle) == 2
