"""Tests for passfsck and explain_dependency."""

import pytest

from repro.core.pnode import ObjectRef
from repro.core.records import Attr, ObjType, ProvenanceRecord
from repro.query.helpers import explain_dependency
from repro.storage.database import ProvenanceDatabase
from repro.storage.fsck import fsck


def R(pnode, version, attr, value):
    return ProvenanceRecord(ObjectRef(pnode, version), attr, value)


def healthy_db():
    db = ProvenanceDatabase()
    db.insert_many([
        R(1, 0, Attr.TYPE, ObjType.FILE),
        R(1, 0, Attr.NAME, "/in"),
        R(2, 0, Attr.TYPE, ObjType.PROCESS),
        R(2, 0, Attr.INPUT, ObjectRef(1, 0)),
        R(3, 0, Attr.TYPE, ObjType.FILE),
        R(3, 0, Attr.INPUT, ObjectRef(2, 0)),
        R(3, 1, Attr.PREV_VERSION, ObjectRef(3, 0)),
        R(3, 1, Attr.INPUT, ObjectRef(2, 0)),
    ])
    return db


class TestFsckClean:
    def test_healthy_store_is_clean(self):
        report = fsck([healthy_db()])
        assert report.clean, str(report.findings)
        assert report.objects_checked == 3
        assert report.records_checked == 8

    def test_live_system_is_clean(self, system):
        from tests.conftest import write_file
        write_file(system, "/pass/a", b"1")
        with system.process() as proc:
            fd = proc.open("/pass/a", "r+")
            proc.read(fd)
            proc.write(fd, b"2")
            proc.close(fd)
        system.sync()
        report = fsck(system.databases())
        assert report.clean, str(report.findings)

    def test_str_form(self):
        report = fsck([healthy_db()])
        assert "clean" in str(report)


class TestFsckFindings:
    def test_cycle_detected(self):
        db = ProvenanceDatabase()
        db.insert_many([
            R(1, 0, Attr.TYPE, ObjType.FILE),
            R(2, 0, Attr.TYPE, ObjType.FILE),
            R(1, 0, Attr.INPUT, ObjectRef(2, 0)),
            R(2, 0, Attr.INPUT, ObjectRef(1, 0)),
        ])
        report = fsck([db])
        assert report.by_check("cycle")

    def test_missing_prev_version(self):
        db = healthy_db()
        db.insert(R(5, 2, Attr.TYPE, ObjType.FILE))
        report = fsck([db])
        assert report.by_check("version-chain")
        assert report.by_check("version-gap")

    def test_wrong_prev_version_target(self):
        db = ProvenanceDatabase()
        db.insert_many([
            R(1, 0, Attr.TYPE, ObjType.FILE),
            R(1, 1, Attr.PREV_VERSION, ObjectRef(1, 0)),
            R(1, 2, Attr.PREV_VERSION, ObjectRef(1, 0)),   # skips v1!
        ])
        report = fsck([db])
        assert any("expected" in str(finding)
                   for finding in report.by_check("version-chain"))

    def test_dangling_reference(self):
        db = healthy_db()
        db.insert(R(3, 1, Attr.INPUT, ObjectRef(999, 0)))
        report = fsck([db])
        assert report.by_check("dangling-ref")

    def test_future_version_reference(self):
        db = healthy_db()
        db.insert(R(3, 1, Attr.INPUT, ObjectRef(1, 7)))
        report = fsck([db])
        assert report.by_check("dangling-ref")

    def test_missing_type(self):
        db = ProvenanceDatabase()
        db.insert_many([
            R(1, 0, Attr.TYPE, ObjType.FILE),
            R(9, 0, Attr.INPUT, ObjectRef(1, 0)),    # untyped subject
        ])
        report = fsck([db])
        assert report.by_check("missing-type")

    def test_framing_leak(self):
        db = healthy_db()
        db.insert(R(1, 0, Attr.BEGINTXN, 3))
        report = fsck([db])
        assert report.by_check("framing-leak")


class TestExplainDependency:
    def test_single_path(self):
        db = healthy_db()
        paths = explain_dependency([db], ObjectRef(3, 0), ObjectRef(1, 0))
        assert paths == [[ObjectRef(3, 0), ObjectRef(2, 0),
                          ObjectRef(1, 0)]]

    def test_multiple_paths_shortest_first(self):
        db = healthy_db()
        # Add a direct shortcut 3 -> 1.
        db.insert(R(3, 0, Attr.INPUT, ObjectRef(1, 0)))
        paths = explain_dependency([db], ObjectRef(3, 0), ObjectRef(1, 0))
        assert paths[0] == [ObjectRef(3, 0), ObjectRef(1, 0)]
        assert len(paths) >= 2

    def test_no_dependency(self):
        db = healthy_db()
        paths = explain_dependency([db], ObjectRef(1, 0), ObjectRef(3, 0))
        assert paths == []

    def test_max_paths_respected(self):
        db = ProvenanceDatabase()
        db.insert(R(1, 0, Attr.TYPE, ObjType.FILE))
        # Many parallel 2-hop routes from 100 to 1.
        for middle in range(10, 20):
            db.insert(R(100, 0, Attr.INPUT, ObjectRef(middle, 0)))
            db.insert(R(middle, 0, Attr.INPUT, ObjectRef(1, 0)))
        paths = explain_dependency([db], ObjectRef(100, 0),
                                   ObjectRef(1, 0), max_paths=3)
        assert len(paths) == 3

    def test_live_system_explanation(self, system):
        """The malware question: why is the doc tainted by the codec?"""
        from tests.conftest import write_file
        write_file(system, "/pass/codec.bin", b"MALWARE")
        with system.process(argv=["codec-run"]) as proc:
            fd = proc.open("/pass/codec.bin", "r")
            payload = proc.read(fd)
            proc.close(fd)
            out = proc.open("/pass/infected.doc", "w")
            proc.write(out, payload)
            proc.close(out)
        system.sync()
        db = system.database("pass")
        doc = db.find_by_name("/pass/infected.doc")[0]
        codec = db.find_by_name("/pass/codec.bin")[0]
        paths = explain_dependency([db], doc, codec)
        assert paths
        middle_names = set()
        for path in paths:
            for ref in path[1:-1]:
                middle_names.update(
                    str(v) for v in db.attribute_values(ref, Attr.NAME))
        assert "codec-run" in middle_names
