"""Per-rule tests for the layer-discipline checker (PL2xx), plus the
gate that the shipped tree itself is violation-free."""

import os

import pytest

from repro.lint import check_source, check_tree

SRC_ROOT = os.path.join(os.path.dirname(__file__), os.pardir, os.pardir,
                        "src", "repro")


def codes(source, module):
    return [d.code for d in check_source(source, module)]


#: (code, module the source pretends to be, violating source,
#:  clean source for the same module)
RULE_CASES = [
    ("PL201", "repro.apps.badapp",
     "from repro.kernel.kernel import Kernel\n",
     "from repro.core.records import Attr\n"),
    ("PL201", "repro.apps.badapp",
     "import repro.storage.lasagna\n",
     "import repro.apps.shellutils\n"),
    ("PL202", "repro.core.badcore",
     "from repro.storage.database import ProvenanceDatabase\n",
     "from repro.kernel.process import Process\n"),
    ("PL202", "repro.core.badcore",
     "from repro.kernel.disk import SimulatedDisk\n",
     "from repro.kernel.vfs import Inode\n"),
    ("PL203", "repro.pql.badpql",
     "from repro.nfs.server import NFSServer\n",
     "from repro.core.records import Attr\n"),
    ("PL203", "repro.kernel.badkernel",
     "from repro.nfs.server import NFSServer\n",
     "from repro.core.pnode import ObjectRef\n"),
    ("PL205", "repro.apps.badapp",
     "from repro.core.records import Attr\nX = Attr.BEGINTXN\n",
     "from repro.core.records import Attr\nX = Attr.FREEZE\n"),
    ("PL205", "repro.query.badquery",
     'FRAME = "ENDTXN"\n',
     'FRAME = "INPUT"\n'),
    ("PL206", "repro.query.badquery",
     "def f(record):\n    object.__setattr__(record, 'value', 1)\n",
     "class C:\n    def __init__(self):\n"
     "        object.__setattr__(self, 'x', 1)\n"),
    ("PL206", "repro.query.badquery",
     "def f(record, v):\n    record.value = v\n",
     "def f(node, v):\n    node.payload = v\n"),
    ("PL207", "repro.workloads.sloppy",
     "from repro.core.records import *\n",
     "from repro.core.records import Attr\n"),
    ("PL208", "repro.obs.badobs",
     "from repro.storage.log import ProvenanceLog\n",
     "from repro.obs.metrics import MetricsRegistry\n"),
    ("PL208", "repro.obs.badobs",
     "from repro.core.records import Attr\n",
     "import collections\n"),
    ("PL209", "repro.faults.badfault",
     "from repro.storage.log import ProvenanceLog\n",
     "from repro.kernel.clock import SimClock\n"),
    ("PL209", "repro.faults.badfault",
     "from repro.core.errors import NetworkPartition\n",
     "from repro.obs import NULL_OBS\n"),
    ("PL210", "repro.pql.badpql",
     "from repro.storage.waldo import Waldo\n",
     "from repro.core.records import Attr\n"),
    ("PL210", "repro.pql.badpql",
     "import repro.storage.database\n",
     "from repro.lint.pqlcheck import Vocabulary\n"),
]


class TestEveryRule:
    @pytest.mark.parametrize(
        "code,module,bad,clean", RULE_CASES,
        ids=[f"{c[0]}-{i}" for i, c in enumerate(RULE_CASES)])
    def test_rule_triggers_and_clears(self, code, module, bad, clean):
        assert code in codes(bad, module)
        assert code not in codes(clean, module)


class TestBoundaries:
    def test_facade_unreachable_from_below(self):
        assert "PL202" in codes("import repro.system\n",
                                "repro.core.badcore")
        assert "PL203" in codes("from repro.cli import main\n",
                                "repro.storage.badstore")

    def test_nfs_may_drive_whole_systems(self):
        assert codes("from repro.system import System\n",
                     "repro.nfs.client") == []

    def test_storage_may_serve_queries(self):
        assert codes("from repro.pql.engine import QueryEngine\n",
                     "repro.storage.waldo") == []

    def test_obs_importable_from_every_layer(self):
        # The observability layer is a leaf: anything may use it.
        for module in ("repro.kernel.badk", "repro.core.badc",
                       "repro.storage.bads", "repro.pql.badp",
                       "repro.nfs.badn", "repro.apps.bada",
                       "repro.query.badq", "repro.workloads.badw",
                       "repro.lint.badl"):
            assert codes("from repro.obs import NULL_OBS\n", module) == []

    def test_obs_must_stay_a_leaf(self):
        # ...and in exchange it may import nothing from repro itself.
        found = codes("from repro.kernel.clock import SimClock\n",
                      "repro.obs.badobs")
        assert "PL208" in found

    def test_fault_layer_is_widely_importable(self):
        # Any component that hosts an injection site may take a
        # FaultInjector; the harness layers above use the plans too.
        for module in ("repro.kernel.badk", "repro.core.badc",
                       "repro.storage.bads", "repro.nfs.badn"):
            assert codes("from repro.faults import FaultInjector\n",
                         module) == []

    def test_fault_layer_reaches_only_kernel_and_obs(self):
        # ...and in exchange it sees nothing above the kernel: the
        # injector must never depend on the components it perturbs.
        assert "PL209" in codes(
            "from repro.storage.waldo import Waldo\n",
            "repro.faults.badfault")
        assert "PL209" in codes(
            "from repro.nfs.network import Network\n",
            "repro.faults.badfault")
        assert codes("from repro.kernel.clock import SimClock\n"
                     "from repro.obs import NULL_OBS\n",
                     "repro.faults.goodfault") == []

    def test_relative_import_resolves_against_module(self):
        # "from ..storage import codec" inside repro.apps.x is a
        # repro.storage import, caught despite the relative spelling.
        assert "PL201" in codes("from ..storage import codec\n",
                                "repro.apps.badapp")

    def test_non_repro_imports_unconstrained(self):
        assert codes("import json\nfrom collections import deque\n",
                     "repro.apps.goodapp") == []

    def test_unparseable_module_is_reported_not_raised(self):
        found = check_source("def broken(:\n", "repro.apps.badapp")
        assert [d.code for d in found] == ["PL203"]
        assert found[0].line == 1


class TestPositions:
    def test_import_violation_is_positioned(self):
        source = "import json\nfrom repro.kernel.kernel import Kernel\n"
        found = [d for d in check_source(source, "repro.apps.badapp")
                 if d.code == "PL201"]
        assert found and found[0].line == 2


class TestShippedTree:
    def test_shipped_tree_is_clean(self):
        """The acceptance gate: `repro lint` finds zero violations on
        the tree as shipped."""
        assert check_tree(SRC_ROOT) == []

    def test_tree_walk_finds_planted_violation(self, tmp_path):
        pkg = tmp_path / "repro" / "apps"
        pkg.mkdir(parents=True)
        (pkg / "evil.py").write_text(
            "from repro.storage.lasagna import Lasagna\n")
        found = check_tree(str(tmp_path))
        assert [d.code for d in found] == ["PL201"]
        assert found[0].source.endswith("evil.py")
