"""Tests for PQL ORDER BY and evaluator edge cases."""

import pytest

from repro.core.errors import PQLSyntaxError, PQLTypeError
from repro.core.pnode import ObjectRef
from repro.core.records import Attr, ObjType, ProvenanceRecord
from repro.pql.engine import QueryEngine


def R(pnode, attr, value):
    return ProvenanceRecord(ObjectRef(pnode, 0), attr, value)


@pytest.fixture
def engine():
    return QueryEngine.from_records([
        R(1, Attr.TYPE, ObjType.PROCESS), R(1, Attr.NAME, "charlie"),
        R(1, Attr.PID, 30),
        R(2, Attr.TYPE, ObjType.PROCESS), R(2, Attr.NAME, "alpha"),
        R(2, Attr.PID, 10),
        R(3, Attr.TYPE, ObjType.PROCESS), R(3, Attr.NAME, "bravo"),
        R(3, Attr.PID, 20),
        R(4, Attr.TYPE, ObjType.PROCESS), R(4, Attr.NAME, "delta"),
        # no PID: sorts last ascending
    ])


class TestOrderBy:
    def test_ascending_by_string(self, engine):
        rows = engine.execute(
            "select P.name from Provenance.process as P order by P.name")
        assert rows == ["alpha", "bravo", "charlie", "delta"]

    def test_descending(self, engine):
        rows = engine.execute(
            "select P.name from Provenance.process as P "
            "order by P.name desc")
        assert rows == ["delta", "charlie", "bravo", "alpha"]

    def test_explicit_asc(self, engine):
        rows = engine.execute(
            "select P.pid from Provenance.process as P "
            "where P.pid order by P.pid asc")
        assert rows == [10, 20, 30]

    def test_order_by_different_attr_than_selected(self, engine):
        rows = engine.execute(
            "select P.name from Provenance.process as P "
            "where P.pid order by P.pid desc")
        assert rows == ["charlie", "bravo", "alpha"]

    def test_missing_key_sorts_last_ascending(self, engine):
        rows = engine.execute(
            "select P.name from Provenance.process as P order by P.pid")
        assert rows[-1] == "delta"

    def test_order_with_limit(self, engine):
        rows = engine.execute(
            "select P.name from Provenance.process as P "
            "order by P.name desc limit 2")
        assert rows == ["delta", "charlie"]

    def test_order_by_expression(self, engine):
        rows = engine.execute(
            "select P.pid from Provenance.process as P "
            "where P.pid order by 0 - P.pid")
        assert rows == [30, 20, 10]

    def test_order_requires_by(self, engine):
        with pytest.raises(PQLSyntaxError):
            engine.execute(
                "select P from Provenance.process as P order P.name")


class TestEvaluatorEdgeCases:
    def test_division_by_zero(self, engine):
        with pytest.raises(PQLTypeError):
            engine.execute(
                "select P from Provenance.process as P "
                "where P.pid / 0 > 1")

    def test_modulo_by_zero(self, engine):
        with pytest.raises(PQLTypeError):
            engine.execute(
                "select P from Provenance.process as P "
                "where P.pid % 0 = 1")

    def test_arithmetic_skips_non_numbers(self, engine):
        rows = engine.execute(
            "select P.name + 1 from Provenance.process as P "
            'where P.name = "alpha"')
        assert rows == []          # string + int silently yields nothing

    def test_negation_of_string_is_empty(self, engine):
        rows = engine.execute(
            "select -P.name from Provenance.process as P")
        assert rows == []

    def test_aggregates_over_empty_sets(self, engine):
        assert engine.execute(
            'select sum(P.pid) from Provenance.pipe as P') == [0]
        assert engine.execute(
            'select min(P.pid) from Provenance.pipe as P') == [None]
        assert engine.execute(
            'select avg(P.pid) from Provenance.pipe as P') == [0.0]
        assert engine.execute(
            'select count(P) from Provenance.pipe as P') == [0]

    def test_float_division_result(self, engine):
        rows = engine.execute(
            "select P.pid / 4 from Provenance.process as P "
            'where P.name = "alpha"')
        assert rows == [2.5]

    def test_bool_literal_comparison(self, engine):
        rows = engine.execute(
            "select P from Provenance.process as P where true")
        assert len(rows) == 4
        rows = engine.execute(
            "select P from Provenance.process as P where false")
        assert rows == []
