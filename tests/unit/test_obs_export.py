"""Unit tests for the exporters (repro.obs.export) and rollups
(repro.obs.rollup)."""

import json

import pytest

from repro.obs.export import (
    chrome_trace,
    chrome_trace_json,
    collapsed_stacks,
    profile_table,
    prom_label_value,
    prom_name,
    prometheus_text,
)
from repro.obs.rollup import journal_rollup, merge_summaries, rollup
from repro.obs.trace import Tracer


def traced_spans():
    """A small real span tree: root -> (child-a, child-b)."""
    tracer = Tracer(enabled=True)
    with tracer.span("root", layer="system"):
        with tracer.span("child-a", layer="waldo", volume="pass") as a:
            a.tag("records", 3)
        with tracer.span("child-b", layer="pql"):
            pass
    return tracer.export()["spans"]


SNAPSHOT = {
    "lasagna": {
        "counters": {"flushes": 5, "batch_records": 23},
        "gauges": {},
        "histograms": {},
        "volumes": {
            "pass": {"counters": {"flushes": 3, "batch_records": 23},
                     "gauges": {}, "histograms": {}},
            "export": {"counters": {"flushes": 2},
                       "gauges": {}, "histograms": {}},
        },
    },
    "pql": {
        "counters": {"queries_executed": 4},
        "gauges": {"plan_cache_size": 2},
        "histograms": {
            "execute_wall_s": {"count": 4, "sum": 0.4, "min": 0.05,
                               "max": 0.2, "mean": 0.1, "p50": 0.08,
                               "p90": 0.18, "p99": 0.2},
        },
    },
}


class TestChromeTrace:
    def test_document_shape(self):
        spans = traced_spans()
        document = chrome_trace(spans)
        events = document["traceEvents"]
        assert events[0]["ph"] == "M"            # process_name metadata
        xs = [e for e in events if e["ph"] == "X"]
        assert {e["name"] for e in xs} == {"root", "child-a", "child-b"}
        for event in xs:
            assert event["ts"] >= 0.0
            assert event["dur"] >= 0.0
            assert event["pid"] == 1

    def test_children_sit_on_deeper_tid(self):
        spans = traced_spans()
        events = {e["name"]: e for e in chrome_trace(spans)["traceEvents"]
                  if e["ph"] == "X"}
        assert events["root"]["tid"] == 1
        assert events["child-a"]["tid"] == 2

    def test_parent_id_and_tags_in_args(self):
        spans = traced_spans()
        events = {e["name"]: e for e in chrome_trace(spans)["traceEvents"]
                  if e["ph"] == "X"}
        root_id = events["root"]["args"]["span_id"]
        assert events["child-a"]["args"]["parent_id"] == root_id
        assert events["child-a"]["args"]["records"] == 3

    def test_sim_clock_selectable(self):
        spans = traced_spans()
        document = chrome_trace(spans, clock="sim")
        assert document["otherData"]["clock"] == "sim"
        with pytest.raises(ValueError):
            chrome_trace(spans, clock="nonsense")

    def test_json_is_deterministic_and_parseable(self):
        spans = traced_spans()
        first = chrome_trace_json(spans)
        second = chrome_trace_json(spans)
        assert first == second                   # byte-identical
        parsed = json.loads(first)
        assert parsed["otherData"]["spans"] == 3


class TestPromNames:
    def test_dotted_parts_join_with_underscores(self):
        assert prom_name("repro", "execute_wall_s") == "repro_execute_wall_s"

    def test_illegal_characters_collapse(self):
        assert prom_name("repro", "a.b-c d") == "repro_a_b_c_d"

    def test_leading_digit_gains_an_underscore(self):
        assert prom_name("9lives") == "_9lives"

    def test_empty_input(self):
        assert prom_name("") == "_"


class TestPromEscaping:
    def test_backslash_quote_newline(self):
        assert prom_label_value('a\\b"c\nd') == 'a\\\\b\\"c\\nd'

    def test_unusual_label_values_survive_exposition(self):
        snapshot = {
            'we"ird\nlayer\\name': {
                "counters": {"events": 1}, "gauges": {}, "histograms": {},
            },
        }
        text = prometheus_text(snapshot)
        assert 'layer="we\\"ird\\nlayer\\\\name"' in text
        # No raw newline may survive inside a sample line.
        for line in text.splitlines():
            assert line.startswith("#") or " " in line


class TestPrometheusText:
    def test_exposition_is_deterministic(self):
        assert prometheus_text(SNAPSHOT) == prometheus_text(SNAPSHOT)

    def test_counters_carry_layer_and_volume_labels(self):
        text = prometheus_text(SNAPSHOT)
        assert 'repro_flushes{layer="lasagna"} 5' in text
        assert 'repro_flushes{layer="lasagna",volume="pass"} 3' in text
        assert 'repro_flushes{layer="lasagna",volume="export"} 2' in text

    def test_histograms_become_summaries(self):
        text = prometheus_text(SNAPSHOT)
        assert "# TYPE repro_execute_wall_s summary" in text
        assert ('repro_execute_wall_s{layer="pql",quantile="0.99"} 0.2'
                in text)
        assert 'repro_execute_wall_s_sum{layer="pql"} 0.4' in text
        assert 'repro_execute_wall_s_count{layer="pql"} 4' in text

    def test_type_comment_precedes_samples(self):
        lines = prometheus_text(SNAPSHOT).splitlines()
        seen_types = set()
        for line in lines:
            if line.startswith("# TYPE "):
                seen_types.add(line.split()[2])
            else:
                metric = line.split("{")[0].split(" ")[0]
                base = metric
                for suffix in ("_sum", "_count"):
                    if metric.endswith(suffix) \
                            and metric[:-len(suffix)] in seen_types:
                        base = metric[:-len(suffix)]
                assert base in seen_types, line

    def test_every_sample_line_parses(self):
        for line in prometheus_text(SNAPSHOT).splitlines():
            if line.startswith("#"):
                continue
            name_and_labels, _, value = line.rpartition(" ")
            assert name_and_labels
            float(value)                     # must be numeric


class TestCollapsedStacks:
    def test_folded_paths_and_self_time(self):
        spans = traced_spans()
        lines = collapsed_stacks(spans).splitlines()
        paths = [line.rsplit(" ", 1)[0] for line in lines]
        assert "system:root" in paths
        assert "system:root;waldo:child-a" in paths
        assert "system:root;pql:child-b" in paths
        for line in lines:
            int(line.rsplit(" ", 1)[1])      # integer microseconds

    def test_output_is_deterministic(self):
        spans = traced_spans()
        assert collapsed_stacks(spans) == collapsed_stacks(spans)

    def test_self_time_excludes_children(self):
        # Root's self time must be <= its elapsed minus children's.
        spans = traced_spans()
        by_name = {s["name"]: s for s in spans}
        lines = dict(line.rsplit(" ", 1)
                     for line in collapsed_stacks(spans).splitlines())
        root_self = int(lines["system:root"])
        root_total = int(round(by_name["root"]["wall_elapsed"] * 1e6))
        assert root_self <= root_total

    def test_empty_input(self):
        assert collapsed_stacks([]) == ""


class TestProfileTable:
    def test_top_frames_render(self):
        table = profile_table(traced_spans())
        assert "system:root" in table
        assert "%" in table.splitlines()[0]

    def test_top_limits_rows(self):
        table = profile_table(traced_spans(), top=1)
        assert len(table.splitlines()) == 2      # header + one row


class TestRollup:
    def test_by_layer_uses_folded_totals(self):
        rolled = rollup(SNAPSHOT, by=("layer",))
        assert rolled["lasagna"]["counters"]["flushes"] == 5
        assert rolled["pql"]["counters"]["queries_executed"] == 4

    def test_by_volume_aggregates_across_layers(self):
        rolled = rollup(SNAPSHOT, by=("volume",))
        assert rolled["pass"]["counters"]["flushes"] == 3
        assert rolled["export"]["counters"]["flushes"] == 2
        # Layers without volumes land under the wildcard.
        assert rolled["*"]["counters"]["queries_executed"] == 4

    def test_by_layer_and_volume(self):
        rolled = rollup(SNAPSHOT, by=("layer", "volume"))
        assert rolled["lasagna/pass"]["counters"]["flushes"] == 3
        assert rolled["pql/*"]["counters"]["queries_executed"] == 4

    def test_unknown_dimension_raises(self):
        with pytest.raises(ValueError):
            rollup(SNAPSHOT, by=("site",))

    def test_histograms_merge_conservatively(self):
        merged = merge_summaries([
            {"count": 2, "sum": 1.0, "min": 0.1, "max": 0.9,
             "mean": 0.5, "p50": 0.5, "p90": 0.8, "p99": 0.9},
            {"count": 2, "sum": 3.0, "min": 1.0, "max": 2.0,
             "mean": 1.5, "p50": 1.5, "p90": 1.9, "p99": 2.0},
        ])
        assert merged["count"] == 4
        assert merged["sum"] == 4.0
        assert merged["min"] == 0.1 and merged["max"] == 2.0
        assert merged["mean"] == 1.0
        assert merged["p99"] == 2.0              # max = upper bound


class TestJournalRollup:
    def test_counts_by_kind(self):
        events = [{"kind": "a", "records": 5},
                  {"kind": "a", "records": 2},
                  {"kind": "b"}]
        rolled = journal_rollup(events, by="kind", value_field="records")
        assert rolled["a"] == {"events": 2, "records": 7}
        assert rolled["b"] == {"events": 1}
