"""Unit tests for the high-level query helpers."""

import pytest

from repro.core.errors import UnknownPnode
from repro.core.pnode import ObjectRef
from repro.core.records import Attr, ObjType, ProvenanceRecord
from repro.query.helpers import (
    ancestry_refs,
    descendant_refs,
    describe,
    newest_ref_by_name,
    provenance_diff,
)
from repro.storage.database import ProvenanceDatabase


def R(pnode, version, attr, value):
    return ProvenanceRecord(ObjectRef(pnode, version), attr, value)


@pytest.fixture
def db():
    """out(4) <- proc(3) <- {in1(1), in2(2)}; out has versions 0 and 1."""
    database = ProvenanceDatabase()
    database.insert_many([
        R(1, 0, Attr.NAME, "/in1"),
        R(2, 0, Attr.NAME, "/in2"),
        R(3, 0, Attr.TYPE, ObjType.PROCESS),
        R(3, 0, Attr.INPUT, ObjectRef(1, 0)),
        R(3, 0, Attr.INPUT, ObjectRef(2, 0)),
        R(4, 0, Attr.NAME, "/out"),
        R(4, 0, Attr.INPUT, ObjectRef(3, 0)),
        R(4, 1, Attr.PREV_VERSION, ObjectRef(4, 0)),
    ])
    return database


class TestAncestry:
    def test_transitive_closure(self, db):
        ancestry = ancestry_refs([db], ObjectRef(4, 0))
        assert ancestry == {ObjectRef(3, 0), ObjectRef(1, 0),
                            ObjectRef(2, 0)}

    def test_version_chain_included(self, db):
        ancestry = ancestry_refs([db], ObjectRef(4, 1))
        assert ObjectRef(4, 0) in ancestry
        assert ObjectRef(1, 0) in ancestry

    def test_leaf_has_empty_ancestry(self, db):
        assert ancestry_refs([db], ObjectRef(1, 0)) == set()

    def test_multi_database_merge(self, db):
        other = ProvenanceDatabase("other")
        other.insert(R(1, 0, Attr.INPUT, ObjectRef(99, 0)))
        ancestry = ancestry_refs([db, other], ObjectRef(4, 0))
        assert ObjectRef(99, 0) in ancestry


class TestDescendants:
    def test_taint_flow(self, db):
        tainted = descendant_refs([db], ObjectRef(1, 0))
        assert ObjectRef(3, 0) in tainted
        assert ObjectRef(4, 0) in tainted

    def test_taint_crosses_versions(self, db):
        tainted = descendant_refs([db], ObjectRef(4, 0))
        assert ObjectRef(4, 1) in tainted


class TestNewestRefByName:
    def test_picks_latest_version(self, db):
        ref = newest_ref_by_name([db], "/out")
        assert ref == ObjectRef(4, 1)

    def test_unknown_name_raises(self, db):
        with pytest.raises(UnknownPnode):
            newest_ref_by_name([db], "/nonexistent")


class TestDescribe:
    def test_collects_version_records_and_identity(self, db):
        info = describe([db], ObjectRef(4, 1))
        assert info["attrs"][Attr.NAME] == ["/out"]
        assert Attr.PREV_VERSION in info["attrs"]


class TestProvenanceDiff:
    def test_disjoint_and_common(self, db):
        # Give version 1 an extra, private ancestor.
        db.insert(R(4, 1, Attr.INPUT, ObjectRef(7, 0)))
        diff = provenance_diff([db], ObjectRef(4, 0), ObjectRef(4, 1))
        assert ObjectRef(7, 0) in diff["only_right"]
        assert ObjectRef(3, 0) in diff["common"]
        assert diff["only_left"] == set()

    def test_identical_objects(self, db):
        diff = provenance_diff([db], ObjectRef(4, 0), ObjectRef(4, 0))
        assert not diff["only_left"] and not diff["only_right"]


class TestDatabaseIndexes:
    def test_subjects_with_attr(self, db):
        procs = db.subjects_with_attr(Attr.TYPE)
        assert ObjectRef(3, 0) in procs

    def test_records_of_version_filters(self, db):
        v1_records = db.records_of_version(ObjectRef(4, 1))
        assert all(r.subject.version == 1 for r in v1_records)

    def test_max_version(self, db):
        assert db.max_version(4) == 1
        assert db.max_version(999) is None

    def test_referencing(self, db):
        backrefs = db.referencing(ObjectRef(3, 0))
        assert (ObjectRef(4, 0), Attr.INPUT) in backrefs

    def test_sizes_accumulate(self, db):
        sizes = db.sizes()
        assert sizes["database"] > 0
        assert sizes["indexes"] > 0
        assert sizes["total"] == sizes["database"] + sizes["indexes"]
