"""Test package."""
