"""Unit tests for SparseFile and VFS path operations."""

import pytest

from repro.core.errors import (
    CrossDeviceLink,
    DirectoryNotEmpty,
    FileExists,
    FileNotFound,
    IsADirectory,
    NotADirectory,
)
from repro.kernel.cache import PageCache
from repro.kernel.clock import SimClock
from repro.kernel.disk import SimulatedDisk
from repro.kernel.vfs import VFS, SparseFile
from repro.kernel.volume import Volume


class TestSparseFile:
    def test_write_read_roundtrip(self):
        f = SparseFile()
        f.write(0, b"hello world")
        assert f.read(0, 11) == b"hello world"
        assert f.size == 11

    def test_read_past_eof_truncates(self):
        f = SparseFile()
        f.write(0, b"abc")
        assert f.read(0, 100) == b"abc"
        assert f.read(5, 10) == b""

    def test_holes_read_as_zeros(self):
        f = SparseFile()
        f.write_hole(0, 10)
        assert f.read(0, 10) == b"\x00" * 10
        assert f.real_bytes == 0

    def test_hole_then_real_write(self):
        f = SparseFile()
        f.write_hole(0, 100)
        f.write(50, b"XY")
        assert f.read(48, 6) == b"\x00\x00XY\x00\x00"
        assert f.real_bytes == 2

    def test_overwrite_middle(self):
        f = SparseFile()
        f.write(0, b"aaaaaaaaaa")
        f.write(3, b"BBB")
        assert f.read(0, 10) == b"aaaBBBaaaa"

    def test_overwrite_spanning_chunks(self):
        f = SparseFile()
        f.write(0, b"aaa")
        f.write(6, b"ccc")
        f.write(2, b"BBBBB")
        assert f.read(0, 9) == b"aaBBBBBcc"

    def test_hole_punches_through_real_data(self):
        f = SparseFile()
        f.write(0, b"abcdef")
        f.write_hole(2, 2)
        assert f.read(0, 6) == b"ab\x00\x00ef"

    def test_append_pattern_coalesces(self):
        f = SparseFile()
        for i in range(50):
            f.write(i * 4, b"abcd")
        assert f.read(0, 200) == b"abcd" * 50
        # Sequential appends should not leave 50 fragments behind.
        assert len(f._chunks) < 10

    def test_truncate_discards_tail(self):
        f = SparseFile()
        f.write(0, b"abcdef")
        f.truncate(3)
        assert f.size == 3
        assert f.read(0, 10) == b"abc"

    def test_truncate_extends_with_zeros(self):
        f = SparseFile()
        f.write(0, b"ab")
        f.truncate(5)
        assert f.size == 5
        assert f.read(0, 5) == b"ab\x00\x00\x00"

    def test_sparse_writes_far_apart(self):
        f = SparseFile()
        f.write(1_000_000, b"far")
        f.write(0, b"near")
        assert f.read(999_998, 7) == b"\x00\x00far"   # EOF at 1,000,003
        assert f.size == 1_000_003

    def test_negative_offsets_rejected(self):
        f = SparseFile()
        with pytest.raises(ValueError):
            f.write(-1, b"x")
        with pytest.raises(ValueError):
            f.read(-1, 5)


def make_vfs(names=("root",), pass_capable=False):
    clock = SimClock()
    disk = SimulatedDisk(clock)
    cache = PageCache()
    vfs = VFS()
    volumes = []
    for index, name in enumerate(names):
        volume = Volume(name, index + 1, clock, disk, cache,
                        pass_capable=pass_capable)
        mountpoint = "/" if index == 0 else f"/{name}"
        vfs.mount(volume, mountpoint)
        volumes.append(volume)
    return vfs, volumes


class TestVFSPaths:
    def test_create_and_resolve(self):
        vfs, _ = make_vfs()
        inode = vfs.create("/a.txt")
        assert vfs.resolve("/a.txt") is inode

    def test_nested_dirs(self):
        vfs, _ = make_vfs()
        vfs.mkdir("/d")
        vfs.mkdir("/d/e")
        inode = vfs.create("/d/e/f.txt")
        assert vfs.resolve("/d/e/f.txt") is inode

    def test_missing_path_raises(self):
        vfs, _ = make_vfs()
        with pytest.raises(FileNotFound):
            vfs.resolve("/nope")

    def test_exclusive_create_conflict(self):
        vfs, _ = make_vfs()
        vfs.create("/a")
        with pytest.raises(FileExists):
            vfs.create("/a", exclusive=True)

    def test_nonexclusive_create_returns_existing(self):
        vfs, _ = make_vfs()
        first = vfs.create("/a")
        second = vfs.create("/a", exclusive=False)
        assert first is second

    def test_file_component_in_path_raises(self):
        vfs, _ = make_vfs()
        vfs.create("/a")
        with pytest.raises(NotADirectory):
            vfs.resolve("/a/b")

    def test_unlink_removes_name(self):
        vfs, _ = make_vfs()
        vfs.create("/a")
        vfs.unlink("/a")
        assert not vfs.exists("/a")

    def test_unlink_directory_raises(self):
        vfs, _ = make_vfs()
        vfs.mkdir("/d")
        with pytest.raises(IsADirectory):
            vfs.unlink("/d")

    def test_rmdir_nonempty_raises(self):
        vfs, _ = make_vfs()
        vfs.mkdir("/d")
        vfs.create("/d/x")
        with pytest.raises(DirectoryNotEmpty):
            vfs.rmdir("/d")

    def test_rename_same_volume(self):
        vfs, _ = make_vfs()
        inode = vfs.create("/a")
        vfs.rename("/a", "/b")
        assert vfs.resolve("/b") is inode
        assert not vfs.exists("/a")

    def test_rename_replaces_target(self):
        vfs, volumes = make_vfs()
        vfs.create("/a")
        victim = vfs.create("/b")
        vfs.rename("/a", "/b")
        assert victim.ino not in [i.ino for i in volumes[0].live_inodes()]

    def test_rename_across_volumes_is_exdev(self):
        vfs, _ = make_vfs(names=("root", "other"))
        vfs.create("/a")
        with pytest.raises(CrossDeviceLink):
            vfs.rename("/a", "/other/a")

    def test_readdir_sorted(self):
        vfs, _ = make_vfs()
        for name in ("c", "a", "b"):
            vfs.create(f"/{name}")
        assert vfs.readdir("/") == ["a", "b", "c"]

    def test_mount_routing(self):
        vfs, volumes = make_vfs(names=("root", "pass"))
        inode = vfs.create("/pass/x")
        assert inode.volume is volumes[1]

    def test_relative_path_rejected(self):
        vfs, _ = make_vfs()
        with pytest.raises(FileNotFound):
            vfs.resolve("relative")

    def test_dot_and_dotdot_normalization(self):
        vfs, _ = make_vfs()
        vfs.mkdir("/d")
        inode = vfs.create("/d/x")
        assert vfs.resolve("/d/./x") is inode
        assert vfs.resolve("/d/../d/x") is inode

    def test_walk(self):
        vfs, _ = make_vfs()
        vfs.mkdir("/d")
        vfs.create("/d/x")
        vfs.create("/y")
        paths = [path for path, _ in vfs.walk("/")]
        assert paths == ["/", "/d", "/d/x", "/y"]


class TestVolumeIO:
    def test_write_read_with_cost(self):
        vfs, volumes = make_vfs()
        volume = volumes[0]
        inode = vfs.create("/f")
        clock_before = volume.clock.now
        volume.write_bytes(inode, 0, b"data" * 1000)
        assert volume.clock.now > clock_before
        assert volume.read_bytes(inode, 0, 8) == b"datadata"

    def test_hole_write_counts_bytes(self):
        vfs, volumes = make_vfs()
        volume = volumes[0]
        inode = vfs.create("/f")
        volume.write_bytes(inode, 0, None, 1 << 20)
        assert inode.size == 1 << 20
        assert volume.data_bytes_written == 1 << 20
        assert inode.data.real_bytes == 0

    def test_pass_volume_assigns_pnodes(self):
        vfs, volumes = make_vfs(pass_capable=True)
        a = vfs.create("/a")
        b = vfs.create("/b")
        assert a.pnode and b.pnode and a.pnode != b.pnode

    def test_plain_volume_pnode_zero(self):
        vfs, _ = make_vfs()
        assert vfs.create("/a").pnode == 0

    def test_used_bytes(self):
        vfs, volumes = make_vfs()
        inode = vfs.create("/f")
        volumes[0].write_bytes(inode, 0, None, 5000)
        assert volumes[0].used_bytes() == 5000

    def test_cached_read_costs_nothing(self):
        vfs, volumes = make_vfs()
        volume = volumes[0]
        inode = vfs.create("/f")
        volume.write_bytes(inode, 0, b"x" * 8192)
        t0 = volume.clock.now
        volume.read_bytes(inode, 0, 8192)   # cache hit (write-through)
        assert volume.clock.now == t0
