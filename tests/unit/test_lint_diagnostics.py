"""Tests for the diagnostics framework: registry, report, reporters."""

import json

import pytest

from repro.lint import LintReport, all_rules, render_json, render_text
from repro.lint.diagnostics import ERROR, WARNING, Diagnostic, rule


class TestRegistry:
    def test_rules_cover_both_analyzers(self):
        codes = {r.code for r in all_rules()}
        assert any(c.startswith("PL1") for c in codes)
        assert any(c.startswith("PL2") for c in codes)
        assert len(codes) >= 8

    def test_codes_are_unique_and_ordered(self):
        codes = [r.code for r in all_rules()]
        assert codes == sorted(codes)
        assert len(codes) == len(set(codes))

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            rule("PL101", ERROR, "imposter")

    def test_unknown_severity_rejected(self):
        with pytest.raises(ValueError):
            rule("PL999", "fatal", "no such severity")

    def test_every_rule_has_title_and_detail(self):
        for registered in all_rules():
            assert registered.title
            assert registered.detail


class TestDiagnostic:
    def test_str_with_position(self):
        diag = Diagnostic("PL101", ERROR, "boom", "q.pql", 3, 7)
        assert str(diag) == "q.pql:3:7: error PL101: boom"

    def test_str_without_position(self):
        diag = Diagnostic("PL203", ERROR, "boom", "mod.py")
        assert str(diag) == "mod.py: error PL203: boom"


class TestReport:
    def make(self):
        report = LintReport(targets_checked=2)
        report.extend([
            Diagnostic("PL101", ERROR, "bad attr", "<query>", 1, 4),
            Diagnostic("PL107", WARNING, "closure", "<query>", 2, 0),
        ])
        return report

    def test_partition_and_ok(self):
        report = self.make()
        assert len(report.errors) == 1
        assert len(report.warnings) == 1
        assert not report.ok
        assert LintReport().ok

    def test_by_code(self):
        report = self.make()
        assert [d.message for d in report.by_code("PL107")] == ["closure"]

    def test_text_reporter(self):
        text = render_text(self.make())
        assert "<query>:1:4: error PL101: bad attr" in text
        assert "2 target(s) checked" in text

    def test_json_reporter_round_trips(self):
        payload = json.loads(render_json(self.make()))
        assert payload["ok"] is False
        assert payload["errors"] == 1
        assert payload["warnings"] == 1
        assert payload["diagnostics"][0]["code"] == "PL101"
        assert payload["diagnostics"][0]["line"] == 1
