"""BootConfig: one value for System.boot, with kwargs as overrides."""

import pytest

from repro.system import BootConfig, System


class TestBootConfig:
    def test_defaults_match_legacy_boot(self):
        config = BootConfig()
        assert config.pass_volumes == ("pass",)
        assert config.plain_volumes == ("scratch",)
        assert config.provenance is True
        assert config.observability is True
        assert config.tracing is False
        assert config.faults is None

    def test_with_overrides_replaces_only_given_fields(self):
        quiet = BootConfig(observability=False)
        traced = quiet.with_overrides(tracing=True)
        assert traced.tracing is True
        assert traced.observability is False
        assert quiet.tracing is False           # original untouched

    def test_boot_from_config(self):
        system = System.boot(config=BootConfig(
            pass_volumes=("vol",), plain_volumes=(), hostname="boxy"))
        assert list(system.waldos) == ["vol"]
        assert system.kernel.hostname == "boxy"

    def test_kwargs_override_config(self):
        quiet = BootConfig(observability=False)
        system = System.boot(config=quiet, tracing=True)
        # tracing flipped on, observability kept from the config
        assert system.obs.tracer.enabled
        assert not system.obs.metrics.enabled

    def test_explicit_none_overrides_config(self):
        class Marker:
            def bind_obs(self, obs):
                pass
        config = BootConfig(faults=Marker())
        system = System.boot(config=config, faults=None, provenance=False)
        assert system.kernel.faults is None

    def test_legacy_kwarg_style_still_boots(self):
        system = System.boot(provenance=False, plain_volumes=("p",))
        assert not system.provenance
