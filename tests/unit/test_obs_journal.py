"""Unit tests for the event journal (repro.obs.journal)."""

import json

import pytest

from repro.obs import Observability
from repro.obs.journal import EventJournal
from repro.obs.trace import Tracer


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestEmit:
    def test_disabled_journal_records_nothing(self):
        journal = EventJournal(enabled=False)
        assert journal.emit("log.group_commit", records=5) is None
        assert journal.events() == []
        assert journal.stats()["events_emitted"] == 0

    def test_event_schema(self):
        clock = FakeClock()
        clock.now = 1.5
        journal = EventJournal(enabled=True, sim_now=clock)
        event = journal.emit("waldo.drain", layer="waldo", volume="pass",
                             records=25)
        assert event["kind"] == "waldo.drain"
        assert event["layer"] == "waldo"
        assert event["volume"] == "pass"
        assert event["records"] == 25
        assert event["sim_t"] == 1.5
        assert event["seq"] == 1
        assert event["trace_id"] is None and event["span_id"] is None

    def test_sequence_numbers_are_monotonic(self):
        journal = EventJournal(enabled=True)
        seqs = [journal.emit("k")["seq"] for _ in range(3)]
        assert seqs == [1, 2, 3]

    def test_kind_filter(self):
        journal = EventJournal(enabled=True)
        journal.emit("a")
        journal.emit("b")
        journal.emit("a")
        assert [e["kind"] for e in journal.events("a")] == ["a", "a"]


class TestSampling:
    def test_counter_sampling_keeps_one_in_n(self):
        journal = EventJournal(enabled=True, sample_interval=3)
        for _ in range(9):
            journal.emit("hot.kind")
        assert len(journal.events()) == 3        # 1st, 4th, 7th
        assert journal.stats()["events_sampled_out"] == 6

    def test_sampling_is_per_kind(self):
        journal = EventJournal(enabled=True, sample_interval=2)
        journal.emit("a")          # kept (1st a)
        journal.emit("b")          # kept (1st b)
        journal.emit("a")          # sampled out
        journal.emit("b")          # sampled out
        assert {e["kind"] for e in journal.events()} == {"a", "b"}
        assert len(journal.events()) == 2

    def test_always_bypasses_sampling(self):
        journal = EventJournal(enabled=True, sample_interval=100)
        for _ in range(5):
            journal.emit("fault.fired", always=True)
        assert len(journal.events()) == 5

    def test_rejects_zero_interval(self):
        with pytest.raises(ValueError):
            EventJournal(sample_interval=0)


class TestRing:
    def test_overflow_counts_drops(self):
        journal = EventJournal(enabled=True, capacity=3)
        for _ in range(5):
            journal.emit("k")
        assert len(journal.events()) == 3
        assert journal.stats()["events_dropped"] == 2
        # The retained window is the newest events.
        assert [e["seq"] for e in journal.events()] == [3, 4, 5]

    def test_reset_zeroes_everything(self):
        journal = EventJournal(enabled=True, capacity=1)
        journal.emit("k")
        journal.emit("k")
        journal.reset()
        assert journal.events() == []
        stats = journal.stats()
        assert stats["events_emitted"] == stats["events_dropped"] == 0


class TestCorrelation:
    def test_events_carry_the_open_span_ids(self):
        tracer = Tracer(enabled=True)
        journal = EventJournal(enabled=True)
        journal.bind_tracer(tracer)
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                event = journal.emit("k")
        assert event["trace_id"] == outer.span_id
        assert event["span_id"] == inner.span_id

    def test_observability_wires_tracer_and_journal(self):
        obs = Observability(trace_enabled=True, journal_enabled=True)
        with obs.span("work", layer="waldo"):
            obs.event("waldo.drain", layer="waldo")
        (event,) = obs.journal_events()
        assert event["trace_id"] is not None
        assert event["span_id"] is not None


class TestSlowQueries:
    def test_fast_query_not_recorded(self):
        journal = EventJournal(enabled=True, slow_query_threshold_s=0.05)
        assert journal.slow_query("select F", 0.001, cache_hit=True) is None
        assert journal.slow_queries() == []

    def test_slow_query_recorded_with_plan_and_cache_status(self):
        journal = EventJournal(enabled=True, slow_query_threshold_s=0.05)
        event = journal.slow_query("select F from Provenance.file as F",
                                   0.2, cache_hit=False, rows=7,
                                   plan="<Query select F>")
        assert event["kind"] == "pql.slow_query"
        assert event["wall_s"] == 0.2
        assert event["cache_hit"] is False
        assert event["rows"] == 7
        assert event["plan"] == "<Query select F>"
        assert journal.slow_queries() == [event]
        assert journal.stats()["slow_queries_recorded"] == 1

    def test_slow_queries_bypass_sampling(self):
        journal = EventJournal(enabled=True, sample_interval=100,
                               slow_query_threshold_s=0.0)
        for _ in range(5):
            journal.slow_query("q", 0.1, cache_hit=True)
        assert len(journal.slow_queries()) == 5


class TestExport:
    def test_jsonl_round_trips(self):
        journal = EventJournal(enabled=True)
        journal.emit("a", layer="waldo", records=1)
        journal.emit("b", layer="pql")
        lines = journal.to_jsonl().splitlines()
        assert len(lines) == 2
        parsed = [json.loads(line) for line in lines]
        assert [e["kind"] for e in parsed] == ["a", "b"]

    def test_jsonl_is_deterministic(self):
        journal = EventJournal(enabled=True)
        journal.emit("a", zebra=1, alpha=2)
        assert journal.to_jsonl() == journal.to_jsonl()

    def test_dump_writes_the_export(self, tmp_path):
        journal = EventJournal(enabled=True)
        journal.emit("a")
        path = tmp_path / "journal.jsonl"
        assert journal.dump(str(path)) == 1
        assert path.read_text() == journal.to_jsonl()


class TestFacade:
    def test_event_facade_guards_on_enabled(self):
        obs = Observability(journal_enabled=False)
        obs.event("k", layer="waldo")
        assert obs.journal_events() == []

    def test_enable_flips_the_journal_too(self):
        obs = Observability(journal_enabled=False)
        obs.enable(journal=True)
        obs.event("k")
        assert len(obs.journal_events()) == 1
        obs.disable()
        obs.event("k")                  # no longer collected
        assert len(obs.journal_events()) == 1
