"""Unit tests for the provenance log, Waldo, and crash recovery."""

from repro.core.pnode import ObjectRef
from repro.core.records import Attr, ProvenanceRecord
from repro.kernel.clock import SimClock
from repro.kernel.params import LogParams
from repro.storage.log import (
    LogSegment,
    ProvenanceLog,
    data_digest,
    md5_unpack,
    md5_value,
)
from repro.storage.waldo import Waldo


def rec(pnode=1, version=0, attr=Attr.NAME, value="x"):
    return ProvenanceRecord(ObjectRef(pnode, version), attr, value)


def make_log(**params):
    clock = SimClock()
    written = []
    log = ProvenanceLog(clock, LogParams(**params),
                        disk_write=written.append)
    return log, clock, written


class TestLogBuffering:
    def test_append_is_not_durable(self):
        log, _, written = make_log()
        log.append(rec())
        assert written == []
        assert log.buffered_records == 1

    def test_flush_writes_once_with_framing(self):
        log, _, written = make_log()
        log.append(rec())
        log.append(rec(attr=Attr.TYPE))
        txn = log.flush()
        assert txn == 1
        assert len(written) == 1
        # 2 records + BEGINTXN + ENDTXN live in the current segment.
        assert len(log.current.records) == 4
        attrs = [r.attr for r in log.current.records]
        assert attrs[0] == Attr.BEGINTXN
        assert attrs[-1] == Attr.ENDTXN

    def test_empty_flush_is_noop(self):
        log, _, written = make_log()
        assert log.flush() is None
        assert written == []

    def test_txn_ids_increase(self):
        log, _, _ = make_log()
        log.append(rec())
        first = log.flush()
        log.append(rec(attr=Attr.TYPE))
        second = log.flush()
        assert second == first + 1


class TestRotation:
    def test_size_based_rotation(self):
        log, _, _ = make_log(max_size=200)
        closed = []
        log.on_segment_closed = closed.append
        for i in range(50):
            log.append(rec(value=f"name-{i}"))
            log.flush()
        assert closed
        assert all(segment.closed for segment in closed)

    def test_dormancy_rotation(self):
        log, clock, _ = make_log(dormancy=5.0)
        log.append(rec())
        log.flush()
        clock.advance(10.0)
        log.tick()
        assert log.closed_segments or log.current.nbytes == 0

    def test_rotate_empty_is_noop(self):
        log, _, _ = make_log()
        assert log.rotate() is None


class TestCrash:
    def test_buffered_records_lost(self):
        log, _, _ = make_log()
        log.append(rec())
        assert log.crash() == 1
        assert log.buffered_records == 0

    def test_torn_tail_reparses(self):
        log, _, _ = make_log()
        for i in range(5):
            log.append(rec(value=f"n{i}"))
        log.flush()
        before = len(log.current.records)
        log.crash(drop_tail_bytes=3)
        assert len(log.current.records) == before - 1


class TestWaldo:
    def test_drain_inserts_committed_records(self):
        log, _, _ = make_log()
        waldo = Waldo(log)
        log.append(rec(pnode=1))
        log.append(rec(pnode=2, attr=Attr.TYPE, value="FILE"))
        log.flush()
        log.rotate()
        inserted = waldo.drain()
        assert inserted == 2
        assert len(waldo.database) == 2

    def test_txn_framing_not_inserted(self):
        log, _, _ = make_log()
        waldo = Waldo(log)
        log.append(rec())
        log.flush()
        log.rotate()
        waldo.drain()
        attrs = {r.attr for r in waldo.database.all_records()}
        assert Attr.BEGINTXN not in attrs
        assert Attr.ENDTXN not in attrs

    def test_orphaned_txn_kept_aside(self):
        """A BEGINTXN with no ENDTXN (client died) must not enter the DB."""
        log, _, _ = make_log()
        waldo = Waldo(log)
        segment = LogSegment(0)
        subject = ObjectRef(9, 0)
        orphan = ProvenanceRecord(subject, Attr.NAME, "never-committed")
        for record in (
            ProvenanceRecord(subject, Attr.BEGINTXN, 77),
            orphan,
        ):
            segment.append(record, b"")
        segment.closed = True
        waldo._pending_segments.append(segment)
        waldo.drain()
        assert len(waldo.database) == 0
        assert waldo.orphaned == [orphan]

    def test_drain_is_idempotent(self):
        log, _, _ = make_log()
        waldo = Waldo(log)
        log.append(rec())
        log.flush()
        log.rotate()
        waldo.drain()
        assert waldo.drain() == 0

    def test_multiple_segments(self):
        log, _, _ = make_log(max_size=100)
        waldo = Waldo(log)
        for i in range(30):
            log.append(rec(value=f"long-name-{i:04d}"))
            log.flush()
        log.rotate()
        waldo.drain()
        assert len(waldo.database) == 30


class TestMd5Helpers:
    def test_digest_of_real_bytes(self):
        assert data_digest(b"abc", 3) == data_digest(b"abc", 999)

    def test_hole_digest_equals_zeros(self):
        assert data_digest(None, 16) == data_digest(b"\x00" * 16, 16)

    def test_md5_value_roundtrip(self):
        digest = data_digest(b"payload", 7)
        value = md5_value(1024, 7, digest)
        assert md5_unpack(value) == (1024, 7, digest)
