"""Unit tests for pnode numbers and object identity."""

import pytest

from repro.core.pnode import (
    TRANSIENT_VOLUME,
    ObjectRef,
    PnodeAllocator,
    local_of,
    make_pnode,
    volume_of,
)


class TestMakePnode:
    def test_roundtrip_volume_and_local(self):
        pnode = make_pnode(7, 123)
        assert volume_of(pnode) == 7
        assert local_of(pnode) == 123

    def test_distinct_volumes_never_collide(self):
        assert make_pnode(1, 5) != make_pnode(2, 5)

    def test_transient_volume_is_zero(self):
        assert volume_of(make_pnode(TRANSIENT_VOLUME, 9)) == 0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            make_pnode(-1, 1)
        with pytest.raises(ValueError):
            make_pnode(1, -1)

    def test_rejects_counter_overflow(self):
        with pytest.raises(ValueError):
            make_pnode(1, 1 << 40)


class TestPnodeAllocator:
    def test_monotonic_and_unique(self):
        alloc = PnodeAllocator(3)
        issued = [alloc.allocate() for _ in range(100)]
        assert len(set(issued)) == 100
        assert issued == sorted(issued)

    def test_first_local_counter_is_one(self):
        alloc = PnodeAllocator(3)
        assert local_of(alloc.allocate()) == 1

    def test_volume_id_embedded(self):
        alloc = PnodeAllocator(5)
        assert volume_of(alloc.allocate()) == 5

    def test_restore_moves_forward_only(self):
        alloc = PnodeAllocator(1)
        alloc.allocate()
        alloc.restore(10)
        assert local_of(alloc.allocate()) == 10
        with pytest.raises(ValueError):
            alloc.restore(2)

    def test_zero_start_rejected(self):
        with pytest.raises(ValueError):
            PnodeAllocator(1, start=0)


class TestObjectRef:
    def test_is_a_tuple(self):
        ref = ObjectRef(10, 2)
        assert ref == (10, 2)
        assert ref.pnode == 10
        assert ref.version == 2

    def test_str_form(self):
        assert str(ObjectRef(10, 2)) == "10:2"

    def test_volume_id_property(self):
        ref = ObjectRef(make_pnode(4, 77), 0)
        assert ref.volume_id == 4

    def test_hashable_and_distinct_by_version(self):
        assert len({ObjectRef(1, 0), ObjectRef(1, 1)}) == 2
