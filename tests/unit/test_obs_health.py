"""Unit tests for SLO health gating (repro.obs.health)."""

from repro.obs.health import (
    OVERHEAD_BUDGET_PCT,
    SLOPolicy,
    compare_bench,
    evaluate_health,
    render_compare,
)


def snapshot_with_latencies(p50: float, p99: float) -> dict:
    return {"pql": {"counters": {}, "gauges": {}, "histograms": {
        "execute_wall_s": {"count": 10, "sum": p50 * 10, "min": p50,
                           "max": p99, "mean": p50, "p50": p50,
                           "p90": p99, "p99": p99}}}}


class TestEvaluateHealth:
    def test_healthy_snapshot_passes(self):
        verdict = evaluate_health(snapshot_with_latencies(0.01, 0.05))
        assert verdict.ok
        assert verdict.failures == []

    def test_dropped_spans_breach(self):
        verdict = evaluate_health(snapshot_with_latencies(0.01, 0.05),
                                  dropped_spans=3)
        assert not verdict.ok
        (failure,) = verdict.failures
        assert failure.name == "span_buffer_drops"
        assert failure.value == 3

    def test_latency_slo_breach(self):
        verdict = evaluate_health(
            snapshot_with_latencies(0.01, 5.0),
            slos=SLOPolicy(max_query_p99_s=2.0))
        assert [f.name for f in verdict.failures] == ["query_p99_s"]

    def test_journal_drops_report_only_by_default(self):
        verdict = evaluate_health(snapshot_with_latencies(0.01, 0.05),
                                  journal_stats={"events_dropped": 99})
        assert verdict.ok                      # limit None = report only

    def test_journal_drops_gate_when_limited(self):
        verdict = evaluate_health(
            snapshot_with_latencies(0.01, 0.05),
            journal_stats={"events_dropped": 99},
            slos=SLOPolicy(max_journal_dropped=0))
        assert [f.name for f in verdict.failures] == ["journal_drops"]

    def test_wap_violations_from_crashtest(self):
        verdict = evaluate_health(
            snapshot_with_latencies(0.01, 0.05),
            crashtest={"totals": {"wap_violations": 2}})
        assert [f.name for f in verdict.failures] == ["wap_violations"]

    def test_ingest_speedup_from_bench(self):
        bench = {"suites": {"ingest": {
            "speedup": 1.2, "batched": {"records_per_sec": 1000.0}}}}
        verdict = evaluate_health(snapshot_with_latencies(0.01, 0.05),
                                  bench=bench)
        assert [f.name for f in verdict.failures] == ["ingest_speedup"]

    def test_obs_overhead_from_bench(self):
        bench = {"suites": {"obs_overhead": {"overhead_pct": 9.0}}}
        verdict = evaluate_health(snapshot_with_latencies(0.01, 0.05),
                                  bench=bench)
        assert [f.name for f in verdict.failures] == ["obs_overhead_pct"]

    def test_absent_inputs_are_ok_not_failing(self):
        verdict = evaluate_health({})
        assert verdict.ok
        by_name = {c.name: c for c in verdict.checks}
        assert "not supplied" in by_name["wap_violations"].detail
        assert "not supplied" in by_name["ingest_speedup"].detail

    def test_verdict_serializes(self):
        verdict = evaluate_health(snapshot_with_latencies(0.01, 0.05))
        document = verdict.to_dict()
        assert document["ok"] is True
        assert all(set(c) == {"name", "ok", "value", "limit", "detail"}
                   for c in document["checks"])
        assert "health: OK" in verdict.render_text()


BASELINE = {"suites": {
    "ingest": {"speedup": 4.0,
               "batched": {"records_per_sec": 30000.0}},
    "obs_overhead": {"overhead_pct": 2.0, "disabled_overhead_pct": 0.5},
}}


class TestCompareBench:
    def test_no_change_is_ok(self):
        report = compare_bench(BASELINE, BASELINE)
        assert report["ok"]
        assert report["regressions"] == []
        assert report["suites"]["ingest"]["status"] == "ok"

    def test_speedup_regression_beyond_tolerance(self):
        current = {"suites": {"ingest": {"speedup": 2.0}}}
        report = compare_bench(BASELINE, current, tolerance=0.25)
        assert not report["ok"]
        assert report["regressions"] == ["ingest"]
        assert report["suites"]["ingest"]["status"] == "regressed"

    def test_speedup_drop_within_tolerance_is_ok(self):
        current = {"suites": {"ingest": {"speedup": 3.5}}}
        report = compare_bench(BASELINE, current, tolerance=0.25)
        assert report["ok"]

    def test_overhead_within_budget_never_regresses(self):
        # Baseline 2% -> current 4.9%: still under the 5% budget, ok.
        current = {"suites": {"obs_overhead": {"overhead_pct": 4.9}}}
        report = compare_bench(BASELINE, current)
        assert report["ok"]

    def test_overhead_above_budget_and_slack_regresses(self):
        current = {"suites": {"obs_overhead": {
            "overhead_pct": OVERHEAD_BUDGET_PCT + 3.0}}}
        report = compare_bench(BASELINE, current)
        assert not report["ok"]
        assert report["regressions"] == ["obs_overhead"]

    def test_new_suite_never_gates(self):
        current = {"suites": {"ingest": {"speedup": 0.1}}}
        report = compare_bench({}, current)
        assert report["ok"]
        assert report["suites"]["ingest"]["status"] == "new"

    def test_unknown_suites_are_ignored(self):
        current = {"suites": {"workloads": {"anything": 1}}}
        report = compare_bench(BASELINE, current)
        assert report["ok"]
        assert "workloads" not in report["suites"]

    def test_info_metrics_reported(self):
        report = compare_bench(BASELINE, BASELINE)
        info = report["suites"]["ingest"]["info"]
        assert info["batched.records_per_sec"] == 30000.0

    def test_render_compare(self):
        current = {"suites": {"ingest": {"speedup": 2.0}}}
        text = render_compare(compare_bench(BASELINE, current))
        assert "REGRESSED" in text
        assert "ingest" in text
        new_text = render_compare(compare_bench({}, current))
        assert "no baseline" in new_text
