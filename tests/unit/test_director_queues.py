"""Director queueing semantics: multi-token channels."""

from repro.apps.kepler import FileSink, Transformer, Workflow, run_workflow
from repro.apps.kepler.actors import Actor, Combiner
from tests.conftest import read_file


class Burst(Actor):
    """Source emitting several tokens in one firing."""

    output_ports = ("out",)

    def fire(self, ctx):
        for index in range(int(ctx.params.get("count", 3))):
            ctx.emit("out", f"t{index}".encode())


class Accumulate(Actor):
    """Sink appending every token it consumes to a file."""

    input_ports = ("in",)

    def fire(self, ctx):
        path = ctx.params["path"]
        existing = b""
        if ctx.sc.exists(path):
            fd = ctx.sc.open(path, "r")
            existing = ctx.sc.read(fd)
            ctx.sc.close(fd)
        ctx.write_file(path, existing + ctx.inputs["in"].value)


class TestMultiTokenChannels:
    def test_burst_tokens_all_consumed(self, baseline):
        wf = Workflow("burst")
        wf.add(Burst("src", count=4))
        wf.add(Accumulate("sink", path="/pass/acc"))
        wf.connect("src", "out", "sink", "in")
        director = run_workflow(baseline, wf, recording=None)
        assert read_file(baseline, "/pass/acc") == b"t0t1t2t3"
        assert director.firings == 1 + 4       # one burst, four consumes

    def test_fan_in_pairs_tokens(self, baseline):
        """A Combiner consumes one token per port per firing, pairing
        queued bursts positionally (SDF semantics)."""
        wf = Workflow("pairs")
        wf.add(Burst("left", count=2))
        wf.add(Burst("right", count=2))
        wf.add(Combiner("zip", arity=2))
        wf.add(Accumulate("sink", path="/pass/pairs"))
        wf.connect("left", "out", "zip", "in0")
        wf.connect("right", "out", "zip", "in1")
        wf.connect("zip", "out", "sink", "in")
        run_workflow(baseline, wf, recording=None)
        assert read_file(baseline, "/pass/pairs") == b"t0t0t1t1"

    def test_chained_bursts(self, baseline):
        wf = Workflow("chain")
        wf.add(Burst("src", count=3))
        wf.add(Transformer("bang", fn=lambda d: d + b"!"))
        wf.add(Accumulate("sink", path="/pass/chain"))
        wf.connect("src", "out", "bang", "in")
        wf.connect("bang", "out", "sink", "in")
        run_workflow(baseline, wf, recording=None)
        assert read_file(baseline, "/pass/chain") == b"t0!t1!t2!"
