"""Tests for PQL scalar functions and the Waldo query service."""

import pytest

from repro.core.errors import PQLError
from repro.core.pnode import ObjectRef
from repro.core.records import Attr, ObjType, ProvenanceRecord
from repro.pql.engine import QueryEngine


def R(pnode, attr, value):
    return ProvenanceRecord(ObjectRef(pnode, 0), attr, value)


@pytest.fixture
def engine():
    return QueryEngine.from_records([
        R(1, Attr.TYPE, ObjType.FILE), R(1, Attr.NAME, "/data/Report.TXT"),
        R(2, Attr.TYPE, ObjType.FILE), R(2, Attr.NAME, "/data/notes.md"),
        R(2, Attr.PID, 7),
    ])


class TestScalarFunctions:
    def test_len(self, engine):
        rows = engine.execute(
            "select len(F.name) from Provenance.file as F "
            'where F.name = "/data/notes.md"')
        assert rows == [len("/data/notes.md")]

    def test_lower_upper(self, engine):
        rows = engine.execute(
            "select lower(F.name) from Provenance.file as F "
            'where F.name like "%Report%"')
        assert rows == ["/data/report.txt"]
        rows = engine.execute(
            "select upper(F.name) from Provenance.file as F "
            'where F.name like "%notes%"')
        assert rows == ["/DATA/NOTES.MD"]

    def test_basename(self, engine):
        rows = engine.execute(
            "select basename(F.name) from Provenance.file as F "
            "order by basename(F.name)")
        assert rows == ["Report.TXT", "notes.md"]

    def test_scalar_in_where(self, engine):
        rows = engine.execute(
            "select F.name from Provenance.file as F "
            'where lower(F.name) like "%report%"')
        assert rows == ["/data/Report.TXT"]

    def test_scalar_skips_non_strings(self, engine):
        rows = engine.execute(
            "select lower(F.pid) from Provenance.file as F")
        assert rows == []

    def test_len_of_missing_attr_is_empty(self, engine):
        rows = engine.execute(
            "select len(F.argv) from Provenance.file as F")
        assert rows == []

    def test_wrong_arity_rejected(self, engine):
        with pytest.raises(PQLError):
            engine.execute("select len(F.name, F.pid) "
                           "from Provenance.file as F")

    def test_scalar_composes_with_aggregate(self, engine):
        rows = engine.execute(
            "select max(len(F.name)) from Provenance.file as F")
        assert rows == [len("/data/Report.TXT")]


class TestWaldoQueryService:
    def test_waldo_answers_queries(self, system):
        from tests.conftest import write_file
        write_file(system, "/pass/through-waldo", b"x")
        system.sync()
        waldo = system.waldos["pass"]
        rows = waldo.query(
            'select F.name from Provenance.file as F '
            'where F.name = "/pass/through-waldo"')
        assert rows == ["/pass/through-waldo"]

    def test_waldo_engine_is_fresh_per_call(self, system):
        from tests.conftest import write_file
        write_file(system, "/pass/a", b"1")
        system.sync()
        waldo = system.waldos["pass"]
        assert waldo.query("select count(F) from Provenance.file as F")
        write_file(system, "/pass/b", b"2")
        system.sync()
        counts = waldo.query("select count(F) from Provenance.file as F")
        assert counts[0] >= 2
