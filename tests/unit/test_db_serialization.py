"""Tests for provenance-database export/import."""

import pytest

from repro.core.errors import LogCorruption
from repro.core.pnode import ObjectRef
from repro.core.records import Attr, ObjType, ProvenanceRecord
from repro.storage.database import ProvenanceDatabase


def R(pnode, version, attr, value):
    return ProvenanceRecord(ObjectRef(pnode, version), attr, value)


@pytest.fixture
def db():
    database = ProvenanceDatabase("original")
    database.insert_many([
        R(1, 0, Attr.TYPE, ObjType.FILE),
        R(1, 0, Attr.NAME, "/data"),
        R(2, 0, Attr.TYPE, ObjType.PROCESS),
        R(2, 0, Attr.INPUT, ObjectRef(1, 0)),
        R(1, 1, Attr.PREV_VERSION, ObjectRef(1, 0)),
        R(2, 0, Attr.MD5, b"\x00\x01binary"),
        R(2, 0, Attr.PID, 42),
    ])
    return database


class TestRoundtrip:
    def test_records_identical(self, db):
        clone = ProvenanceDatabase.from_bytes(db.to_bytes())
        assert sorted(r.key() for r in clone.all_records()) \
            == sorted(r.key() for r in db.all_records())

    def test_indexes_rebuilt(self, db):
        clone = ProvenanceDatabase.from_bytes(db.to_bytes())
        assert clone.find_by_name("/data") == db.find_by_name("/data")
        # Reload groups records by pnode, so index *order* may differ.
        assert set(clone.descendants(ObjectRef(1, 0))) \
            == set(db.descendants(ObjectRef(1, 0)))
        assert clone.max_version(1) == 1

    def test_sizes_preserved(self, db):
        clone = ProvenanceDatabase.from_bytes(db.to_bytes())
        assert clone.main_bytes == db.main_bytes
        assert clone.index_bytes == db.index_bytes

    def test_empty_database(self):
        clone = ProvenanceDatabase.from_bytes(
            ProvenanceDatabase().to_bytes())
        assert len(clone) == 0

    def test_file_roundtrip(self, db, tmp_path):
        path = tmp_path / "prov.passdb"
        written = db.save(str(path))
        assert path.stat().st_size == written
        clone = ProvenanceDatabase.load(str(path))
        assert len(clone) == len(db)


class TestCorruption:
    def test_bad_magic_rejected(self):
        with pytest.raises(LogCorruption):
            ProvenanceDatabase.from_bytes(b"NOT A DATABASE")

    def test_truncated_payload_rejected(self, db):
        blob = db.to_bytes()
        with pytest.raises(LogCorruption):
            ProvenanceDatabase.from_bytes(blob[:-3])

    def test_appended_garbage_rejected(self, db):
        blob = db.to_bytes() + b"\xff\xff\xff"
        with pytest.raises(LogCorruption):
            ProvenanceDatabase.from_bytes(blob)


class TestCliIntegration:
    def test_save_then_query(self, tmp_path, capsys):
        from repro.cli import main
        export = tmp_path / "demo.passdb"
        assert main(["demo", "--scenario", "quickstart",
                     "--save", str(export)]) == 0
        capsys.readouterr()
        assert main(["query", "--db", str(export),
                     "select F.name from Provenance.file as F "
                     'where F.name like "/pass/%"']) == 0
        out = capsys.readouterr().out
        assert "/pass/result.dat" in out
