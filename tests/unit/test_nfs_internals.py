"""Unit tests for PA-NFS internals: network, chunking, proxy namespace."""

import pytest

from repro.core.errors import NetworkPartition, StaleHandle, TransactionError
from repro.core.pnode import ObjectRef
from repro.core.records import Attr, ProvenanceRecord
from repro.kernel.clock import SimClock
from repro.kernel.params import NetParams
from repro.nfs import NFSClient, NFSServer, Network
from repro.nfs.client import _chunk_records
from repro.storage import codec
from repro.system import System


class TestNetwork:
    def test_call_charges_rtt_and_wire(self):
        clock = SimClock()
        params = NetParams(rtt=0.001, bandwidth=1e6)
        net = Network(clock, params)
        net.call(1000, 2000)
        assert clock.now == pytest.approx(0.001 + 3000 / 1e6)
        assert net.calls == 1
        assert net.bytes_sent == 1000
        assert net.bytes_received == 2000

    def test_partition_blocks_calls(self):
        net = Network(SimClock())
        net.partition()
        with pytest.raises(NetworkPartition):
            net.call(1, 1)
        net.heal()
        net.call(1, 1)

    def test_chunked_calls(self):
        net = Network(SimClock(), NetParams(max_block=100))
        assert net.chunked_calls(0) == 1
        assert net.chunked_calls(100) == 1
        assert net.chunked_calls(101) == 2
        assert net.chunked_calls(1000) == 10


class TestChunkRecords:
    def records(self, count):
        return [ProvenanceRecord(ObjectRef(i, 0), Attr.NAME, f"f{i}")
                for i in range(count)]

    def test_all_records_preserved_in_order(self):
        records = self.records(50)
        out = [record for chunk, _ in _chunk_records(records, 100)
               for record in chunk]
        assert out == records

    def test_chunks_respect_limit(self):
        records = self.records(50)
        for chunk, nbytes in _chunk_records(records, 100):
            assert nbytes <= 100 or len(chunk) == 1
            assert nbytes == sum(codec.encoded_size(r) for r in chunk)

    def test_single_oversized_record_gets_own_chunk(self):
        big = ProvenanceRecord(ObjectRef(1, 0), Attr.ANNOTATION, "x" * 500)
        chunks = list(_chunk_records([big], 100))
        assert len(chunks) == 1

    def test_empty_input(self):
        assert list(_chunk_records([], 100)) == []


def make_pair(provenance=True):
    clock = SimClock()
    server_sys = System.boot(provenance=provenance, hostname="s",
                             clock=clock, pass_volumes=("export",),
                             plain_volumes=())
    server = NFSServer(server_sys, "export")
    client_sys = System.boot(provenance=provenance, hostname="c",
                             clock=clock,
                             pass_volumes=("local",) if provenance else (),
                             plain_volumes=("scratch",))
    client = NFSClient(client_sys, server)
    return server_sys, server, client_sys, client


class TestProxyNamespace:
    def test_lazy_lookup_caches(self):
        server_sys, server, client_sys, client = make_pair()
        with server_sys.process() as proc:
            fd = proc.open("/export/pre", "w")
            proc.write(fd, b"1")
            proc.close(fd)
        lookups_before = server.op_counts["LOOKUP"]
        with client_sys.process() as proc:
            proc.exists("/nfs/pre")
            proc.exists("/nfs/pre")
            proc.exists("/nfs/pre")
        # Only the first resolution goes over the wire.
        assert server.op_counts["LOOKUP"] == lookups_before + 1

    def test_negative_lookup_not_cached(self):
        server_sys, server, client_sys, client = make_pair()
        with client_sys.process() as proc:
            assert not proc.exists("/nfs/ghost")
            before = server.op_counts["LOOKUP"]
            assert not proc.exists("/nfs/ghost")
        assert server.op_counts["LOOKUP"] == before + 1

    def test_readdir_fetches_full_listing(self):
        server_sys, server, client_sys, client = make_pair()
        with server_sys.process() as proc:
            for name in ("a", "b", "c"):
                fd = proc.open(f"/export/{name}", "w")
                proc.write(fd, b"1")
                proc.close(fd)
        with client_sys.process() as proc:
            assert proc.readdir("/nfs") == ["a", "b", "c"]

    def test_proxy_size_tracks_writes(self):
        server_sys, server, client_sys, client = make_pair()
        with client_sys.process() as proc:
            fd = proc.open("/nfs/grow", "w")
            proc.write(fd, b"12345")
            proc.close(fd)
            assert proc.stat("/nfs/grow")["size"] == 5

    def test_revalidate_refreshes_attributes(self):
        server_sys, server, client_sys, client = make_pair()
        with client_sys.process() as proc:
            fd = proc.open("/nfs/shared", "w")
            proc.write(fd, b"base")
            proc.close(fd)
        # Server-side growth invisible to the client until revalidate.
        with server_sys.process() as proc:
            fd = proc.open("/export/shared", "a")
            proc.write(fd, b"-more")
            proc.close(fd)
        client.revalidate("/nfs/shared")
        with client_sys.process() as proc:
            assert proc.stat("/nfs/shared")["size"] == 9


class TestServerFaults:
    def test_crashed_server_rejects_ops(self):
        server_sys, server, client_sys, client = make_pair()
        server.crash()
        with pytest.raises(StaleHandle):
            server.op_root()
        server.restart()
        server.op_root()

    def test_stale_handle(self):
        server_sys, server, client_sys, client = make_pair()
        with pytest.raises(StaleHandle):
            server.op_getattr(424242)

    def test_unknown_txn_rejected(self):
        server_sys, server, client_sys, client = make_pair()
        with pytest.raises(TransactionError):
            server.op_passprov(999, [])
        with pytest.raises(TransactionError):
            server.op_endtxn(999, ObjectRef(1, 0))

    def test_op_counters_track(self):
        server_sys, server, client_sys, client = make_pair()
        with client_sys.process() as proc:
            fd = proc.open("/nfs/f", "w")
            proc.write(fd, b"data")
            proc.close(fd)
        assert server.op_counts["CREATE"] == 1
        assert server.op_counts["LINK"] == 1
        assert server.op_counts["PASSWRITE"] == 1
