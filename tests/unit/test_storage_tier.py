"""StorageTier facade unit tests: routing, topology, rollups, archive.

The facade contract: ``shards=1`` is the classic pipeline (same labels,
same single database), sharded topologies route records stably by
subject pnode, ``sizes()`` never undercounts, the drained-segment
archive stays within its compaction policy, and the legacy accessors
(``System.waldos``, ``Waldo.query_engine``) still work but warn.
"""

import pytest

from repro.core.pnode import shard_of
from repro.storage.tier import (
    CompactionPolicy,
    SegmentArchive,
    StorageTier,
)
from repro.system import BootConfig, System


def _write_files(system, count=6, payload=b"x" * 64):
    with system.process(argv=["writer"]) as proc:
        for index in range(count):
            fd = proc.open(f"/pass/f{index}.dat", "w")
            proc.write(fd, payload)
            proc.close(fd)
    system.sync()


class TestShardRouting:
    def test_stable_and_in_range(self):
        for pnode in range(0, 5000, 7):
            index = shard_of(pnode, 4)
            assert 0 <= index < 4
            assert shard_of(pnode, 4) == index

    def test_single_shard_is_identity(self):
        assert all(shard_of(pnode, 1) == 0 for pnode in range(100))

    def test_spreads_consecutive_pnodes(self):
        """Pnode numbers are near-consecutive per volume; the mix must
        not map runs of them onto one shard."""
        counts = [0, 0, 0, 0]
        for pnode in range(1000):
            counts[shard_of(pnode, 4)] += 1
        assert min(counts) > 125          # perfectly even would be 250

    def test_invalid_topology_rejected(self):
        with pytest.raises(ValueError):
            StorageTier(shards=0)
        with pytest.raises(ValueError):
            StorageTier(shards=2, shard_key="rack")


class TestSingleShardIdentity:
    def test_labels_and_layout_match_the_classic_pipeline(self):
        system = System.boot()
        tier = system.tier
        assert tier.shard_count("pass") == 1
        assert tier.waldo("pass").name == "pass"
        assert tier.lasagna("pass").log is tier.lasagna("pass").shard_logs[0]
        assert len(system.databases()) == 1

    def test_volume_key_ignores_shard_count(self):
        system = System.boot(shards=4, shard_key="volume")
        assert system.tier.shard_count("pass") == 1


class TestShardedTopology:
    def test_shard_labels_carry_the_shard_suffix(self):
        system = System.boot(shards=3)
        names = [waldo.name for waldo in system.tier.waldos("pass")]
        assert names == ["pass/s0", "pass/s1", "pass/s2"]

    def test_records_route_across_shard_databases(self):
        system = System.boot(shards=4)
        _write_files(system, count=12)
        populated = [db for db in system.tier.databases("pass")
                     if len(db)]
        assert len(populated) >= 2

    def test_parallel_drain_runs_with_quiet_observability(self):
        system = System.boot(shards=4, observability=False)
        _write_files(system)
        assert system.tier.parallel_drains > 0

    def test_tracing_forces_serial_drain(self):
        system = System.boot(shards=4, tracing=True)
        _write_files(system)
        assert system.tier.parallel_drains == 0


class TestSizesRollup:
    def test_totals_are_the_sum_of_every_shard(self):
        system = System.boot(shards=4)
        _write_files(system, count=10)
        rollup = system.tier.sizes("pass")
        shard_sizes = [waldo.database.sizes()
                       for waldo in system.tier.waldos("pass")]
        for key in ("database", "indexes", "total"):
            assert rollup[key] == sum(sizes[key] for sizes in shard_sizes)
        assert set(rollup["per_shard"]) == {
            waldo.name for waldo in system.tier.waldos("pass")}
        assert rollup["total"] > 0

    def test_system_sizes_matches_tier_rollup(self):
        system = System.boot(shards=2)
        _write_files(system)
        assert system.sizes() == system.tier.sizes()

    def test_single_shard_rollup_matches_waldo_sizes(self):
        system = System.boot()
        _write_files(system)
        waldo_sizes = system.tier.waldo("pass").sizes()
        rollup = system.tier.sizes("pass")
        for key in ("database", "indexes", "total"):
            assert rollup[key] == waldo_sizes[key]


class TestObservability:
    def test_tier_layer_reports_counters(self):
        system = System.boot(shards=2)
        _write_files(system)
        system.query_engine()
        stats = system.stats()
        assert "tier" in stats
        counters = stats["tier"]["counters"]
        assert counters["shards"] == 2
        assert counters["drains"] > 0
        assert counters["federations"] == 1
        assert counters["segments_archived"] > 0

    def test_per_shard_waldo_metrics_have_shard_labels(self):
        system = System.boot(shards=2)
        _write_files(system)
        volumes = system.stats()["waldo"].get("volumes", {})
        assert {"pass/s0", "pass/s1"} <= set(volumes)


class TestArchiveCompaction:
    def _segment(self, index, records=3, nbytes=100):
        class FakeSegment:
            pass

        segment = FakeSegment()
        segment.index = index
        segment.records = [None] * records
        segment.nbytes = nbytes
        return segment

    def test_add_keeps_archive_within_policy(self):
        archive = SegmentArchive(CompactionPolicy(max_segments=3,
                                                  max_bytes=10_000))
        for index in range(10):
            archive.add(self._segment(index))
        assert len(archive.segments) <= 3
        assert archive.segments_archived == 10
        assert archive.segments_compacted == 7
        assert archive.bytes_reclaimed == 700
        # Folded history stays summarized, oldest-first, contiguous.
        assert archive.extents[0].first_index == 0
        assert archive.extents[-1].last_index == 6
        assert sum(extent.records for extent in archive.extents) == 21

    def test_byte_bound_triggers_compaction(self):
        archive = SegmentArchive(CompactionPolicy(max_segments=100,
                                                  max_bytes=250))
        for index in range(4):
            archive.add(self._segment(index, nbytes=100))
        assert archive.archived_bytes <= 250

    def test_force_compact_reclaims_everything(self):
        archive = SegmentArchive(CompactionPolicy())
        for index in range(5):
            archive.add(self._segment(index))
        reclaimed = archive.compact(force=True)
        assert not archive.segments
        assert reclaimed == 500
        assert archive.stats()["segments_compacted"] == 5

    def test_drained_segments_reach_the_tier_archives(self):
        system = System.boot(shards=2)
        _write_files(system, count=8)
        archived = sum(archive.segments_archived
                       for archive in system.tier.archives("pass"))
        assert archived > 0
        rollup = system.tier.compact()
        assert rollup["bytes_reclaimed"] >= 0
        assert all(not archive.segments
                   for archive in system.tier.archives("pass"))


class TestDeprecationWrappers:
    def test_system_waldos_warns_and_returns_shard_zero(self):
        system = System.boot(shards=4)
        with pytest.warns(DeprecationWarning, match="System.tier"):
            view = system.waldos
        assert list(view) == ["pass"]
        assert view["pass"] is system.tier.waldo("pass", shard=0)

    def test_waldo_query_engine_warns_but_still_serves(self):
        system = System.boot()
        _write_files(system, count=2)
        waldo = system.tier.waldo("pass")
        with pytest.warns(DeprecationWarning, match="query_engine"):
            engine = waldo.query_engine()
        with pytest.warns(DeprecationWarning):
            assert waldo.query_engine() is engine


class TestCrashRecover:
    def test_tier_crash_and_recover_round_trip(self):
        system = System.boot(shards=4)
        with system.process(argv=["writer"]) as proc:
            for index in range(6):
                fd = proc.open(f"/pass/g{index}.dat", "w")
                proc.write(fd, b"y" * 48)
                proc.close(fd)
        # Rotate segments out but never drain: everything is in logs.
        for log in system.tier.lasagna("pass").shard_logs:
            log.flush()
            log.rotate()
        before = sum(len(db) for db in system.databases())
        assert before == 0
        system.tier.crash()
        report = system.tier.recover(consume=True)
        assert report.committed_records
        after = sum(len(db) for db in system.databases())
        assert after == len(report.committed_records)
        second = system.tier.recover(consume=True)
        assert second.clean and not second.committed_records
