"""Symbol-table / call-graph construction over fixture modules, and
determinism of the graph export."""

import json
import os

from repro.lint import build_program, graph_payload, render_graph_dot
from repro.lint.callgraph import GRAPH_SCHEMA, scan_suppressions
from repro.lint.flowcheck import check_program

SRC_ROOT = os.path.join(os.path.dirname(__file__), os.pardir, os.pardir,
                        "src", "repro")

FIXTURE = {
    "kernel/machine.py": (
        "class Machine:\n"
        "    def __init__(self):\n"
        "        self._parts = []\n"
        "    def start(self):\n"
        "        return len(self._parts)\n"
    ),
    "core/driver.py": (
        "from repro.kernel.machine import Machine\n"
        "\n"
        "class Driver:\n"
        "    def __init__(self, machine: Machine):\n"
        "        self.machine = machine\n"
        "    def go(self):\n"
        "        return self.machine.start()\n"
    ),
    "apps/ui.py": (
        "from repro.core.driver import Driver\n"
        "def press(driver: Driver):\n"
        "    return driver.go()\n"
    ),
}


def write_tree(tmp_path, files):
    root = tmp_path / "repro"
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source)
    return str(root)


class TestConstruction:
    def test_module_class_and_function_tables(self, tmp_path):
        program = build_program(write_tree(tmp_path, FIXTURE))
        assert set(program.modules) == {
            "repro.kernel.machine", "repro.core.driver", "repro.apps.ui"}
        assert "repro.kernel.machine.Machine" in program.classes
        assert "repro.core.driver.Driver.go" in program.functions
        assert program.functions["repro.apps.ui.press"].cls is None

    def test_attribute_types_from_param_annotations(self, tmp_path):
        program = build_program(write_tree(tmp_path, FIXTURE))
        driver = program.classes["repro.core.driver.Driver"]
        types = driver.attr_types["machine"]
        assert {t.qual for t in types} == {"repro.kernel.machine.Machine"}

    def test_private_ownership_index(self, tmp_path):
        program = build_program(write_tree(tmp_path, FIXTURE))
        assert program.private_owners["_parts"] == {"repro.kernel.machine"}

    def test_import_edges(self, tmp_path):
        program = build_program(write_tree(tmp_path, FIXTURE))
        assert program.edges[("repro.core.driver",
                              "repro.kernel.machine", "import")] == 1
        assert program.edges[("repro.apps.ui",
                              "repro.core.driver", "import")] == 1

    def test_flow_pass_adds_call_edges(self, tmp_path):
        program = build_program(write_tree(tmp_path, FIXTURE))
        check_program(program)
        # Driver.go reaches Machine.start through its typed attribute;
        # ui.press reaches Driver.go through its parameter.
        assert ("repro.core.driver", "repro.kernel.machine",
                "call") in program.edges
        assert ("repro.apps.ui", "repro.core.driver",
                "call") in program.edges


class TestSuppressionScanner:
    def test_trailing_comment(self):
        found = scan_suppressions("x = 1  # lint: disable=PL201,PL304\n")
        assert found == {1: {"PL201", "PL304"}}

    def test_string_literal_is_ignored(self):
        assert scan_suppressions('x = "# lint: disable=PL201"\n') == {}

    def test_unterminated_source_does_not_raise(self):
        assert scan_suppressions('x = "unclosed\n') == {}


class TestGraphExport:
    def test_payload_shape(self, tmp_path):
        program = build_program(write_tree(tmp_path, FIXTURE))
        check_program(program)
        payload = graph_payload(program)
        assert payload["schema"] == GRAPH_SCHEMA
        names = [m["name"] for m in payload["modules"]]
        assert names == sorted(names)
        layers = {m["name"]: m["layer"] for m in payload["modules"]}
        assert layers["repro.kernel.machine"] == "repro.kernel"
        assert layers["repro.apps.ui"] == "repro.apps"

    def test_export_is_deterministic_across_builds(self, tmp_path):
        root = write_tree(tmp_path, FIXTURE)
        dumps = []
        for _ in range(2):
            program = build_program(root)
            check_program(program)
            dumps.append(json.dumps(graph_payload(program), sort_keys=True))
        assert dumps[0] == dumps[1]

    def test_dot_rendering_mentions_every_module(self, tmp_path):
        program = build_program(write_tree(tmp_path, FIXTURE))
        dot = render_graph_dot(program)
        assert dot.startswith("digraph passflow {")
        for name in program.modules:
            assert f'"{name}"' in dot

    def test_shipped_tree_graph_is_deterministic(self):
        dumps = []
        for _ in range(2):
            program = build_program(SRC_ROOT)
            check_program(program)
            dumps.append(json.dumps(graph_payload(program), sort_keys=True))
        assert dumps[0] == dumps[1]
        payload = json.loads(dumps[0])
        # The batched ingest path must appear as real call edges.
        kinds = {(e["src"], e["dst"], e["kind"]) for e in payload["edges"]}
        assert ("repro.core.observer", "repro.kernel.volume",
                "call") in kinds
