"""Unit tests for the PQL evaluator over a hand-built provenance graph.

Graph fixture (a miniature workflow)::

    out.gif --input--> convert(P) --input--> mid.dat --input--> align(P)
                                                     \\--input--> raw2.dat
    align --input--> raw.dat
    convert --forkparent--> shell(P)
    raw.dat, raw2.dat, mid.dat, out.gif: files; align, convert, shell: processes
"""

import pytest

from repro.core.errors import PQLError, PQLNameError
from repro.core.pnode import ObjectRef
from repro.core.records import Attr, ObjType, ProvenanceRecord
from repro.pql.engine import QueryEngine
from repro.pql.oem import OEMNode


def R(pnode, version, attr, value):
    return ProvenanceRecord(ObjectRef(pnode, version), attr, value)


RAW, RAW2, MID, OUT = 1, 2, 3, 4
ALIGN, CONVERT, SHELL = 10, 11, 12


@pytest.fixture
def engine():
    records = [
        R(RAW, 0, Attr.TYPE, ObjType.FILE),
        R(RAW, 0, Attr.NAME, "/data/raw.dat"),
        R(RAW2, 0, Attr.TYPE, ObjType.FILE),
        R(RAW2, 0, Attr.NAME, "/data/raw2.dat"),
        R(MID, 0, Attr.TYPE, ObjType.FILE),
        R(MID, 0, Attr.NAME, "/data/mid.dat"),
        R(OUT, 0, Attr.TYPE, ObjType.FILE),
        R(OUT, 0, Attr.NAME, "/data/out.gif"),
        R(ALIGN, 0, Attr.TYPE, ObjType.PROCESS),
        R(ALIGN, 0, Attr.NAME, "align"),
        R(ALIGN, 0, Attr.PID, 100),
        R(CONVERT, 0, Attr.TYPE, ObjType.PROCESS),
        R(CONVERT, 0, Attr.NAME, "convert"),
        R(CONVERT, 0, Attr.PID, 101),
        R(SHELL, 0, Attr.TYPE, ObjType.PROCESS),
        R(SHELL, 0, Attr.NAME, "shell"),
        R(ALIGN, 0, Attr.INPUT, ObjectRef(RAW, 0)),
        R(MID, 0, Attr.INPUT, ObjectRef(ALIGN, 0)),
        R(MID, 0, Attr.INPUT, ObjectRef(RAW2, 0)),
        R(CONVERT, 0, Attr.INPUT, ObjectRef(MID, 0)),
        R(OUT, 0, Attr.INPUT, ObjectRef(CONVERT, 0)),
        R(CONVERT, 0, Attr.FORKPARENT, ObjectRef(SHELL, 0)),
    ]
    return QueryEngine.from_records(records)


def names(rows):
    out = set()
    for row in rows:
        if isinstance(row, OEMNode):
            out.add(row.name)
        else:
            out.add(row)
    return out


class TestFromBindings:
    def test_root_member_iteration(self, engine):
        rows = engine.execute("select F.name from Provenance.file as F")
        assert names(rows) == {"/data/raw.dat", "/data/raw2.dat",
                               "/data/mid.dat", "/data/out.gif"}

    def test_process_member(self, engine):
        rows = engine.execute("select P.name from Provenance.process as P")
        assert names(rows) == {"align", "convert", "shell"}

    def test_node_member_covers_everything(self, engine):
        rows = engine.execute("select count(N) from Provenance.node as N")
        assert rows == [7]

    def test_unknown_member_is_empty(self, engine):
        assert engine.execute("select X from Provenance.martian as X") == []

    def test_unbound_variable_raises(self, engine):
        with pytest.raises(PQLNameError):
            engine.execute("select B from Nope.input as B")


class TestPathTraversal:
    def test_single_step(self, engine):
        rows = engine.execute(
            "select A from Provenance.file as F F.input as A "
            'where F.name = "/data/out.gif"')
        assert names(rows) == {"convert"}

    def test_star_closure_is_full_ancestry(self, engine):
        rows = engine.execute(
            "select A from Provenance.file as F F.input* as A "
            'where F.name = "/data/out.gif"')
        # input* includes the starting node itself (zero repetitions).
        assert names(rows) == {"/data/out.gif", "convert", "/data/mid.dat",
                               "align", "/data/raw.dat", "/data/raw2.dat"}

    def test_plus_excludes_self(self, engine):
        rows = engine.execute(
            "select A from Provenance.file as F F.input+ as A "
            'where F.name = "/data/out.gif"')
        assert "/data/out.gif" not in names(rows)

    def test_question_is_self_or_one(self, engine):
        rows = engine.execute(
            "select A from Provenance.file as F F.input? as A "
            'where F.name = "/data/out.gif"')
        assert names(rows) == {"/data/out.gif", "convert"}

    def test_bounded_range(self, engine):
        rows = engine.execute(
            "select A from Provenance.file as F F.input{2,3} as A "
            'where F.name = "/data/out.gif"')
        assert names(rows) == {"/data/mid.dat", "align", "/data/raw2.dat"}

    def test_reverse_traversal_finds_descendants(self, engine):
        rows = engine.execute(
            "select D from Provenance.file as F F.^input* as D "
            'where F.name = "/data/raw.dat"')
        assert names(rows) == {"/data/raw.dat", "align", "/data/mid.dat",
                               "convert", "/data/out.gif"}

    def test_alternation_crosses_fork_edges(self, engine):
        rows = engine.execute(
            "select A from Provenance.file as F "
            "F.(input|forkparent)* as A "
            'where F.name = "/data/out.gif"')
        assert "shell" in names(rows)

    def test_plain_input_star_does_not_cross_fork(self, engine):
        rows = engine.execute(
            "select A from Provenance.file as F F.input* as A "
            'where F.name = "/data/out.gif"')
        assert "shell" not in names(rows)


class TestWhere:
    def test_equality_on_atom(self, engine):
        rows = engine.execute(
            'select F from Provenance.file as F where F.name = "/data/mid.dat"')
        assert len(rows) == 1

    def test_inequality(self, engine):
        rows = engine.execute(
            'select F.name from Provenance.file as F '
            'where F.name != "/data/mid.dat"')
        assert "/data/mid.dat" not in names(rows)
        assert len(rows) == 3

    def test_numeric_comparison(self, engine):
        rows = engine.execute(
            "select P.name from Provenance.process as P where P.pid >= 101")
        assert names(rows) == {"convert"}

    def test_and(self, engine):
        rows = engine.execute(
            "select P.name from Provenance.process as P "
            'where P.pid >= 100 and P.name = "align"')
        assert names(rows) == {"align"}

    def test_or(self, engine):
        rows = engine.execute(
            "select P.name from Provenance.process as P "
            'where P.name = "align" or P.name = "shell"')
        assert names(rows) == {"align", "shell"}

    def test_not(self, engine):
        rows = engine.execute(
            "select P.name from Provenance.process as P "
            'where not P.name = "shell"')
        assert names(rows) == {"align", "convert"}

    def test_bare_path_is_existence_test(self, engine):
        rows = engine.execute(
            "select P.name from Provenance.process as P where P.pid")
        assert names(rows) == {"align", "convert"}   # shell has no pid

    def test_node_equality(self, engine):
        rows = engine.execute(
            "select F.name from Provenance.file as F, Provenance.file as G "
            'where F = G and G.name = "/data/mid.dat"')
        assert names(rows) == {"/data/mid.dat"}

    def test_type_mismatch_comparison_is_false(self, engine):
        rows = engine.execute(
            'select P from Provenance.process as P where P.pid = "100"')
        assert rows == []


class TestAggregates:
    def test_count_over_whole_query(self, engine):
        assert engine.execute(
            "select count(F) from Provenance.file as F") == [4]

    def test_count_per_tuple(self, engine):
        rows = engine.execute(
            "select F.name, count(F.input) from Provenance.file as F "
            'where F.name = "/data/mid.dat"')
        assert rows == [("/data/mid.dat", 2)]

    def test_sum_avg_min_max(self, engine):
        assert engine.execute(
            "select sum(P.pid) from Provenance.process as P") == [201]
        assert engine.execute(
            "select min(P.pid) from Provenance.process as P") == [100]
        assert engine.execute(
            "select max(P.pid) from Provenance.process as P") == [101]
        assert engine.execute(
            "select avg(P.pid) from Provenance.process as P") == [100.5]

    def test_count_in_where(self, engine):
        rows = engine.execute(
            "select F.name from Provenance.file as F "
            "where count(F.input) > 1")
        assert names(rows) == {"/data/mid.dat"}

    def test_unknown_function_raises(self, engine):
        with pytest.raises(PQLError):
            engine.execute("select frob(F) from Provenance.file as F")


class TestSubqueries:
    def test_in_subquery(self, engine):
        rows = engine.execute(
            "select P.name from Provenance.process as P "
            "where P.name in (select F.name from Provenance.file as F)")
        assert rows == []

    def test_correlated_exists(self, engine):
        rows = engine.execute(
            "select F.name from Provenance.file as F "
            "where exists (select P from F.input as P "
            '              where P.name = "convert")')
        assert names(rows) == {"/data/out.gif"}

    def test_in_with_node_values(self, engine):
        rows = engine.execute(
            "select F.name from Provenance.file as F "
            "where F in (select G.input from Provenance.file as G)")
        # The only file that is a *direct* input of another file is
        # raw2.dat (mid.dat feeds a process, not a file).
        assert names(rows) == {"/data/raw2.dat"}


class TestSelectShapes:
    def test_multi_item_tuples(self, engine):
        rows = engine.execute(
            "select P.name, P.pid from Provenance.process as P "
            "where P.pid > 0")
        assert set(rows) == {("align", 100), ("convert", 101)}

    def test_distinct_dedup(self, engine):
        # Two bindings reaching the same ancestor dedup into one row.
        rows = engine.execute(
            "select A.name from Provenance.file as F F.input* as A")
        assert len(rows) == len(set(rows))

    def test_arithmetic_in_select(self, engine):
        rows = engine.execute(
            "select P.pid + 1 from Provenance.process as P "
            'where P.name = "align"')
        assert rows == [101]

    def test_empty_result(self, engine):
        assert engine.execute(
            'select F from Provenance.file as F where F.name = "nope"') == []

    def test_execute_refs(self, engine):
        refs = engine.execute_refs(
            'select F from Provenance.file as F where F.name = "/data/mid.dat"')
        assert refs == [ObjectRef(MID, 0)]
