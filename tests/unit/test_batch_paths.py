"""Unit tests for the batched ingest path, stage by stage.

Each batched entry point -- ``Analyzer.submit_batch``,
``Distributor.flush_batch``, ``ProvenanceLog.append_batch``,
``ProvenanceDatabase.insert_many`` / ``subscribe_batch``, and
``OEMGraph.apply_batch`` -- must be observationally equivalent to its
per-record twin: same records, same order, same counters where the
counters mean the same thing.  The end-to-end property lives in
``tests/properties/test_batch_equivalence.py``; these tests pin the
stage-local contracts (validation, thresholds, framing, laziness).
"""

import pytest

from repro.core.analyzer import Analyzer, ProtoRecord
from repro.core.distributor import Distributor
from repro.core.errors import InvalidRecord
from repro.core.pnode import ObjectRef, make_pnode
from repro.core.records import Attr, ProvenanceRecord, RecordBatch
from repro.kernel.clock import SimClock
from repro.kernel.params import LogParams
from repro.storage import codec
from repro.storage.database import ProvenanceDatabase
from repro.storage.log import ProvenanceLog


class FakeObject:
    """Minimal freezable analyzer subject."""

    def __init__(self, pnode):
        self.pnode = pnode
        self.version = 0

    def ref(self):
        return ObjectRef(self.pnode, self.version)


def rec(pnode=1, version=0, attr=Attr.NAME, value="x"):
    return ProvenanceRecord(ObjectRef(pnode, version), attr, value)


# -- analyzer ---------------------------------------------------------------------


def batch_analyzer():
    batches = []
    singles = []
    analyzer = Analyzer(emit=singles.append, emit_batch=batches.append)
    return analyzer, batches, singles


class TestSubmitBatch:
    def test_matches_per_record_path_exactly(self):
        """Same protos through submit() and submit_batch() produce the
        same records in the same order with the same counters."""
        def protos(proc, file_):
            return [
                ProtoRecord(proc, Attr.NAME, "churner"),
                ProtoRecord(proc, Attr.INPUT, file_.ref()),
                ProtoRecord(proc, Attr.INPUT, file_.ref()),   # duplicate
                ProtoRecord(file_, Attr.ANNOTATION, "a"),
                ProtoRecord(file_, Attr.ANNOTATION, "b"),
                # Self-dependency: forces a freeze, whose PREV_VERSION
                # record must land at this position in the stream.
                ProtoRecord(file_, Attr.INPUT, file_.ref()),
            ]

        legacy, legacy_out = [], []
        reference = Analyzer(emit=legacy_out.append)
        reference.submit_many(protos(FakeObject(1), FakeObject(2)))

        analyzer, batches, singles = batch_analyzer()
        emitted = analyzer.submit_batch(protos(FakeObject(1), FakeObject(2)))

        assert not singles
        assert len(batches) == 1 and isinstance(batches[0], RecordBatch)
        assert list(batches[0]) == legacy_out
        assert emitted == len(legacy_out)
        assert analyzer.records_in == reference.records_in
        assert analyzer.records_out == reference.records_out
        assert analyzer.duplicates_dropped == reference.duplicates_dropped
        assert analyzer.freezes == reference.freezes == 1

    def test_falls_back_to_per_record_emit_without_batch_sink(self):
        out = []
        analyzer = Analyzer(emit=out.append)
        analyzer.submit_batch([ProtoRecord(FakeObject(1), Attr.NAME, "n")])
        assert [r.attr for r in out] == [Attr.NAME]

    def test_hot_triple_lru_drops_cross_batch_duplicates(self):
        analyzer, batches, _ = batch_analyzer()
        file_ = FakeObject(2)
        for _ in range(4):
            # One-record batches: every record sits at a run boundary,
            # so the LRU (not the run cache) must classify the repeats.
            analyzer.submit_batch([ProtoRecord(file_, Attr.TYPE, "file")])
        assert sum(len(list(b)) for b in batches) == 1
        assert analyzer.duplicates_dropped == 3

    def test_dedup_disabled_keeps_duplicates(self):
        analyzer, batches, _ = batch_analyzer()
        analyzer.dedup_enabled = False
        file_ = FakeObject(2)
        analyzer.submit_batch(
            [ProtoRecord(file_, Attr.TYPE, "file")] * 3)
        assert sum(len(list(b)) for b in batches) == 3
        assert analyzer.duplicates_dropped == 0

    def test_invalid_value_type_raises(self):
        analyzer, _, _ = batch_analyzer()
        with pytest.raises(InvalidRecord):
            analyzer.submit_batch(
                [ProtoRecord(FakeObject(1), Attr.NAME, ["not", "a", "value"])])

    def test_empty_attr_raises(self):
        analyzer, _, _ = batch_analyzer()
        with pytest.raises(InvalidRecord):
            analyzer.submit_batch([ProtoRecord(FakeObject(1), "", "x")])

    def test_finalized_records_pass_through_in_order(self):
        analyzer, batches, _ = batch_analyzer()
        file_ = FakeObject(2)
        finalized = rec(pnode=9, attr=Attr.TYPE, value="wire")
        analyzer.submit_batch([
            ProtoRecord(file_, Attr.NAME, "local"),
            finalized,
            ProtoRecord(file_, Attr.ANNOTATION, "after"),
        ])
        assert [r.attr for r in batches[0]] == [Attr.NAME, Attr.TYPE,
                                                Attr.ANNOTATION]


# -- distributor ------------------------------------------------------------------


PASS_VOL_ID = 3
VOLUME_NAMES = {PASS_VOL_ID: "pass"}


def make_distributor():
    sunk = []
    dist = Distributor(lambda volume, bundle: sunk.append((volume, bundle)),
                       lambda vid: VOLUME_NAMES[vid],
                       default_volume="pass")
    return dist, sunk


def persistent_ref(local=1, version=0):
    return ObjectRef(make_pnode(PASS_VOL_ID, local), version)


def transient_ref(local=1, version=0):
    return ObjectRef(make_pnode(0, local), version)


class TestFlushBatch:
    def test_one_bundle_per_volume(self):
        dist, sunk = make_distributor()
        batch = RecordBatch([
            ProvenanceRecord(persistent_ref(1), Attr.NAME, "a"),
            ProvenanceRecord(persistent_ref(1), Attr.TYPE, "file"),
            ProvenanceRecord(persistent_ref(2), Attr.NAME, "b"),
        ])
        dist.flush_batch(batch)
        assert len(sunk) == 1
        volume, bundle = sunk[0]
        assert volume == "pass"
        assert [r.attr for r in bundle] == [Attr.NAME, Attr.TYPE, Attr.NAME]
        assert dist.records_flushed == 3
        assert dist.batches_dispatched == 1

    def test_transient_subjects_cached_not_flushed(self):
        dist, sunk = make_distributor()
        dist.flush_batch(RecordBatch([
            ProvenanceRecord(transient_ref(7), Attr.NAME, "proc"),
        ]))
        assert sunk == []
        assert dist.records_cached == 1

    def test_ancestor_cache_flushes_before_descendant(self):
        """A persistent record referencing a cached transient flushes the
        transient's records first -- WAP inside one batch."""
        dist, sunk = make_distributor()
        parent = transient_ref(7)
        dist.flush_batch(RecordBatch([
            ProvenanceRecord(parent, Attr.NAME, "proc"),
        ]))
        dist.flush_batch(RecordBatch([
            ProvenanceRecord(persistent_ref(1), Attr.INPUT, parent),
        ]))
        flat = [(volume, record) for volume, bundle in sunk
                for record in bundle]
        assert [r.attr for _, r in flat] == [Attr.NAME, Attr.INPUT]

    def test_same_run_after_assignment_routes_to_volume(self):
        """Follow-on records of an assigned transient leave with the
        batch even when the subject run spans the assignment."""
        dist, sunk = make_distributor()
        parent = transient_ref(7)
        dist.flush_batch(RecordBatch([
            ProvenanceRecord(parent, Attr.NAME, "proc"),
        ]))
        dist.flush(parent.pnode, "pass")
        sunk.clear()
        dist.flush_batch(RecordBatch([
            ProvenanceRecord(parent, Attr.ANNOTATION, "late"),
        ]))
        assert len(sunk) == 1
        assert sunk[0][0] == "pass"


# -- provenance log ---------------------------------------------------------------


def make_log(**params):
    clock = SimClock()
    written = []
    log = ProvenanceLog(clock, LogParams(**params),
                        disk_write=written.append)
    return log, written


class TestAppendBatch:
    def test_below_thresholds_stays_buffered(self):
        log, written = make_log(group_commit_records=10,
                                group_commit_bytes=1 << 20)
        log.append_batch([rec(value=f"v{i}") for i in range(9)])
        assert written == []
        assert log.buffered_records == 9
        assert log.batch_records == 9
        assert log.batch_flushes == 0

    def test_record_threshold_group_commits_once(self):
        log, written = make_log(group_commit_records=8,
                                group_commit_bytes=0)
        log.append_batch([rec(value=f"v{i}") for i in range(8)])
        assert log.batch_flushes == 1
        assert log.buffered_records == 0
        assert len(written) == 1
        # One transaction frames the whole group.
        attrs = [r.attr for r in log.current.records]
        assert attrs[0] == Attr.BEGINTXN and attrs[-1] == Attr.ENDTXN
        assert attrs.count(Attr.BEGINTXN) == 1

    def test_byte_threshold_group_commits(self):
        log, written = make_log(group_commit_records=0,
                                group_commit_bytes=64)
        log.append_batch([rec(value="x" * 200)])
        assert log.batch_flushes == 1
        assert written and written[0] >= 200

    def test_zeroed_thresholds_disable_group_commit(self):
        log, written = make_log(group_commit_records=0,
                                group_commit_bytes=0)
        log.append_batch([rec(value=f"v{i}") for i in range(5000)])
        assert written == []
        assert log.batch_flushes == 0

    def test_batched_bytes_match_per_record_path(self):
        """append_batch + flush writes byte-identical log content (and
        charges identical disk bytes) to append-per-record + flush."""
        records = [rec(value=f"v{i}", attr=a)
                   for i in range(40)
                   for a in (Attr.NAME, Attr.ANNOTATION)]
        one, written_one = make_log()
        for record in records:
            one.append(record)
        one.flush()
        many, written_many = make_log()
        many.append_batch(records)
        many.flush()
        assert bytes(one.current.raw) == bytes(many.current.raw)
        assert written_one == written_many
        assert one.bytes_logged == many.bytes_logged == len(one.current.raw)

    def test_flush_charges_exactly_the_appended_bytes(self):
        """Satellite: one byte counter -- the disk charge equals the
        encoded buffer plus framing, with no re-encoding pass."""
        log, written = make_log()
        records = [rec(value=f"value-{i}") for i in range(10)]
        for record in records:
            log.append(record)
        log.flush()
        assert written == [len(log.current.raw)]


# -- database ---------------------------------------------------------------------


class TestInsertMany:
    def records(self):
        subject_a = ObjectRef(1, 0)
        subject_b = ObjectRef(2, 3)
        return [
            ProvenanceRecord(subject_a, Attr.NAME, "/pass/a"),
            ProvenanceRecord(subject_a, Attr.INPUT, subject_b),
            ProvenanceRecord(subject_b, Attr.NAME, "/pass/b"),
            ProvenanceRecord(subject_b, Attr.ANNOTATION, "x"),
            ProvenanceRecord(ObjectRef(1, 2), Attr.TYPE, "file"),
        ]

    def test_matches_per_record_inserts(self):
        loop, bulk = ProvenanceDatabase("loop"), ProvenanceDatabase("bulk")
        for record in self.records():
            loop.insert(record)
        bulk.insert_many(self.records())
        assert list(loop.all_records()) == list(bulk.all_records())
        assert loop.sizes() == bulk.sizes()
        assert loop.record_count == bulk.record_count
        for pnode in (1, 2):
            assert loop.max_version(pnode) == bulk.max_version(pnode)
        assert (loop.subjects_with_attr(Attr.NAME)
                == bulk.subjects_with_attr(Attr.NAME))
        assert loop.find_by_name("/pass/a") == bulk.find_by_name("/pass/a")
        assert (loop.referencing(ObjectRef(2, 3))
                == bulk.referencing(ObjectRef(2, 3)))

    def test_main_bytes_accounting_is_lazy_but_exact(self):
        database = ProvenanceDatabase()
        records = self.records()
        database.insert_many(records)
        assert database._unsized          # deferred until first read
        expected = sum(codec.encoded_size(record) for record in records)
        assert database.main_bytes == expected
        assert not database._unsized      # folded exactly once
        assert database.main_bytes == expected

    def test_per_record_listeners_replay_in_order(self):
        database = ProvenanceDatabase()
        seen = []
        database.subscribe(seen.append)
        database.insert_many(self.records())
        assert seen == self.records()

    def test_batch_listener_sees_each_record_once_via_both_paths(self):
        database = ProvenanceDatabase()
        groups = []
        database.subscribe_batch(lambda batch: groups.append(list(batch)))
        records = self.records()
        database.insert_many(records[:3])
        database.insert(records[3])
        assert [len(g) for g in groups] == [3, 1]
        assert [r for g in groups for r in g] == records[:4]


# -- OEM graph --------------------------------------------------------------------


class TestApplyBatch:
    def test_matches_per_record_apply(self):
        from repro.pql.oem import OEMGraph
        from tests.conftest import graph_fingerprint

        records = [
            ProvenanceRecord(ObjectRef(1, 0), Attr.TYPE, "file"),
            ProvenanceRecord(ObjectRef(1, 0), Attr.NAME, "/pass/a"),
            ProvenanceRecord(ObjectRef(2, 0), Attr.TYPE, "process"),
            ProvenanceRecord(ObjectRef(1, 0), Attr.INPUT, ObjectRef(2, 0)),
            ProvenanceRecord(ObjectRef(2, 0), Attr.ANNOTATION, "note"),
        ]
        one = OEMGraph()
        for record in records:
            one.apply(record)
        many = OEMGraph()
        assert many.apply_batch(records) == len(records)
        assert graph_fingerprint(one) == graph_fingerprint(many)
