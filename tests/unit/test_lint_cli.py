"""CLI integration: `repro lint` and the fsck JSON reporter."""

import json

import pytest

from repro.cli import main
from repro.core.pnode import ObjectRef
from repro.core.records import Attr, ProvenanceRecord
from repro.storage.database import ProvenanceDatabase


class TestLintCommand:
    def test_shipped_tree_is_clean(self, capsys):
        assert main(["lint", "src/repro"]) == 0
        assert "clean" in capsys.readouterr().out

    def test_bad_query_fails_with_position(self, capsys):
        code = main(["lint", "--query",
                     'select F from Provenance.file as F '
                     'where F.nmae = "x"'])
        assert code == 1
        out = capsys.readouterr().out
        assert "PL101" in out
        assert "<query>:1:43" in out

    def test_good_query_passes(self, capsys):
        assert main(["lint", "--query",
                     "select F from Provenance.file as F"]) == 0

    def test_warnings_pass_unless_strict(self, capsys):
        query = "select A from Provenance.file as F F.input* as A"
        assert main(["lint", "--query", query]) == 0
        assert main(["lint", "--strict", "--query", query]) == 1

    def test_json_output(self, capsys):
        main(["lint", "--json", "--query",
              "select B from Nope.input as B"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        assert payload["diagnostics"][0]["code"] == "PL103"

    def test_pql_file_target(self, tmp_path, capsys):
        target = tmp_path / "q.pql"
        target.write_text("select F from Provenance.file as F\n"
                          'where F.nmae = "x"\n')
        assert main(["lint", str(target)]) == 1
        assert f"{target}:2:8" in capsys.readouterr().out

    def test_violating_module_target(self, tmp_path, capsys):
        pkg = tmp_path / "repro" / "apps"
        pkg.mkdir(parents=True)
        bad = pkg / "evil.py"
        bad.write_text("from repro.kernel.kernel import Kernel\n")
        assert main(["lint", str(bad)]) == 1
        assert "PL201" in capsys.readouterr().out

    def test_nothing_to_check_is_usage_error(self, capsys):
        assert main(["lint"]) == 2

    def test_missing_target_is_usage_error(self, capsys):
        assert main(["lint", "/does/not/exist.py"]) == 2
        assert "no such file" in capsys.readouterr().err

    def test_rules_listing(self, capsys):
        assert main(["lint", "--rules"]) == 0
        out = capsys.readouterr().out
        assert "PL101" in out and "PL201" in out and "PL301" in out

    def test_disguised_dynamic_import_is_rejected(self, tmp_path, capsys):
        # Regression: a constant importlib.import_module must be held
        # to the same layer rules as a static import (PL305 folding).
        pkg = tmp_path / "repro" / "apps"
        pkg.mkdir(parents=True)
        bad = pkg / "sneaky.py"
        bad.write_text(
            "import importlib\n"
            "def load():\n"
            '    return importlib.import_module("repro.storage.waldo")\n')
        assert main(["lint", str(bad)]) == 1
        out = capsys.readouterr().out
        assert "PL201" in out and "via dynamic import" in out

    def test_suppression_honored_in_strict_accounting(self, tmp_path,
                                                      capsys):
        pkg = tmp_path / "repro" / "apps"
        pkg.mkdir(parents=True)
        excused = pkg / "excused.py"
        excused.write_text("from repro.storage.waldo import Waldo"
                           "  # lint: disable=PL201\n")
        assert main(["lint", "--strict", str(excused)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_unused_suppression_fails_strict(self, tmp_path, capsys):
        pkg = tmp_path / "repro" / "apps"
        pkg.mkdir(parents=True)
        stale = pkg / "stale.py"
        stale.write_text("X = 1  # lint: disable=PL201\n")
        assert main(["lint", str(stale)]) == 0
        assert "PL306" in capsys.readouterr().out
        assert main(["lint", "--strict", str(stale)]) == 1

    def test_graph_json_export(self, capsys):
        assert main(["lint", "--graph", "json", "src/repro"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema"].startswith("repro-lint-graph/")
        assert any(m["name"] == "repro.storage.waldo"
                   for m in payload["modules"])
        assert any(e["kind"] == "call" for e in payload["edges"])

    def test_graph_dot_export(self, capsys):
        assert main(["lint", "--graph", "dot", "src/repro"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph passflow {")
        assert '"repro.storage.waldo"' in out

    def test_graph_without_tree_target_is_usage_error(self, capsys):
        assert main(["lint", "--graph", "json"]) == 2


def _store(tmp_path, records):
    database = ProvenanceDatabase("t")
    database.insert_many(records)
    path = tmp_path / "store.db"
    database.save(str(path))
    return str(path)


def _ref(pnode, version=0):
    return ObjectRef(pnode, version)


class TestFsckCommand:
    def clean_records(self):
        return [
            ProvenanceRecord(_ref(1), Attr.TYPE, "FILE"),
            ProvenanceRecord(_ref(1), Attr.NAME, "/pass/a"),
        ]

    def dirty_records(self):
        # Ancestry without a TYPE record anywhere -> "missing-type".
        return [ProvenanceRecord(_ref(1), Attr.INPUT, _ref(2))]

    def test_clean_store_exits_zero(self, tmp_path, capsys):
        path = _store(tmp_path, self.clean_records())
        assert main(["fsck", "--db", path]) == 0
        assert "clean" in capsys.readouterr().out

    def test_violations_exit_nonzero(self, tmp_path, capsys):
        path = _store(tmp_path, self.dirty_records())
        assert main(["fsck", "--db", path]) == 1
        assert "missing-type" in capsys.readouterr().out

    def test_json_reporter(self, tmp_path, capsys):
        path = _store(tmp_path, self.dirty_records())
        assert main(["fsck", "--db", path, "--json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["clean"] is False
        checks = {finding["check"] for finding in payload["findings"]}
        assert "missing-type" in checks
        assert payload["records_checked"] == 1

    def test_json_reporter_clean(self, tmp_path, capsys):
        path = _store(tmp_path, self.clean_records())
        assert main(["fsck", "--db", path, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["clean"] is True
        assert payload["findings"] == []
