"""Per-rule tests for the passflow dataflow checker (PL3xx), plus the
suppression machinery it shares with the PL2xx import rules."""

import os

from repro.lint import analyze_tree

SRC_ROOT = os.path.join(os.path.dirname(__file__), os.pardir, os.pardir,
                        "src", "repro")


def write_tree(tmp_path, files):
    """Materialize ``{relpath: source}`` under a ``repro`` package."""
    root = tmp_path / "repro"
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(source)
    return str(root)


def codes_of(tmp_path, files):
    return [d.code for d in analyze_tree(write_tree(tmp_path, files))]


#: A core class that legitimately holds a kernel object (core may
#: import the interception boundary), used by the reach fixtures.
CORE_THING = (
    "from repro.kernel.kernel import Kernel\n"
    "\n"
    "class Thing:\n"
    "    def __init__(self, kernel: Kernel):\n"
    "        self.kernel = kernel\n"
    "    def run(self) -> int:\n"
    "        return 1\n"
)

KERNEL_KERNEL = (
    "class Kernel:\n"
    "    def __init__(self):\n"
    "        self.started = False\n"
    "        self._plist = []\n"
    "    def boot(self):\n"
    "        self.started = True\n"
)


class TestPL301ObjectReach:
    def test_reach_through_object_crosses_layer(self, tmp_path):
        found = codes_of(tmp_path, {
            "kernel/kernel.py": KERNEL_KERNEL,
            "core/thing.py": CORE_THING,
            "apps/tool.py": (
                "from repro.core.thing import Thing\n"
                "def run(thing: Thing):\n"
                "    thing.kernel.boot()\n"),
        })
        assert found == ["PL301"]

    def test_reach_within_allowed_layer_is_clean(self, tmp_path):
        found = codes_of(tmp_path, {
            "kernel/kernel.py": KERNEL_KERNEL,
            "core/thing.py": CORE_THING,
            "apps/tool.py": (
                "from repro.core.thing import Thing\n"
                "def run(thing: Thing):\n"
                "    return thing.run()\n"),
        })
        assert found == []

    def test_reach_via_local_rebinding(self, tmp_path):
        found = codes_of(tmp_path, {
            "kernel/kernel.py": KERNEL_KERNEL,
            "core/thing.py": CORE_THING,
            "apps/tool.py": (
                "from repro.core.thing import Thing\n"
                "def run(thing: Thing):\n"
                "    k = thing.kernel\n"
                "    k.boot()\n"),
        })
        assert found == ["PL301"]


class TestPL302PrivateReach:
    def test_typed_private_reach(self, tmp_path):
        found = codes_of(tmp_path, {
            "kernel/kernel.py": KERNEL_KERNEL,
            "core/thing.py": CORE_THING,
            "apps/tool.py": (
                "from repro.core.thing import Thing\n"
                "def run(thing: Thing):\n"
                "    return thing.kernel._plist\n"),
        })
        assert found == ["PL302"]

    def test_untyped_reach_falls_back_to_ownership_index(self, tmp_path):
        # No annotation anywhere: only the private-name ownership index
        # can tell that _plist lives in the kernel layer.
        found = codes_of(tmp_path, {
            "kernel/kernel.py": KERNEL_KERNEL,
            "apps/tool.py": (
                "def poke(k):\n"
                "    return k._plist\n"),
        })
        assert found == ["PL302"]

    def test_same_component_private_reach_is_idiomatic(self, tmp_path):
        found = codes_of(tmp_path, {
            "kernel/kernel.py": KERNEL_KERNEL,
            "kernel/tools.py": (
                "from repro.kernel.kernel import Kernel\n"
                "def drain(k: Kernel):\n"
                "    return k._plist\n"),
        })
        assert found == []


class TestPL303BatchMutation:
    def test_entry_point_mutating_its_batch(self, tmp_path):
        found = codes_of(tmp_path, {
            "storage/store.py": (
                "class Log:\n"
                "    def __init__(self):\n"
                "        self._records = []\n"
                "    def append_batch(self, records):\n"
                "        records.append(None)\n"),
        })
        assert found == ["PL303"]

    def test_copying_into_own_state_is_clean(self, tmp_path):
        found = codes_of(tmp_path, {
            "storage/store.py": (
                "class Log:\n"
                "    def __init__(self):\n"
                "        self._records = []\n"
                "    def append_batch(self, records):\n"
                "        self._records.extend(records)\n"),
        })
        assert found == []

    def test_defensive_copy_rebind_is_clean(self, tmp_path):
        found = codes_of(tmp_path, {
            "storage/store.py": (
                "class Log:\n"
                "    def __init__(self):\n"
                "        self._records = []\n"
                "    def append_batch(self, records):\n"
                "        records = list(records)\n"
                "        records.append(None)\n"
                "        self._records.extend(records)\n"),
        })
        assert found == []

    def test_retained_and_mutated_batch(self, tmp_path):
        found = codes_of(tmp_path, {
            "storage/store.py": (
                "class Log:\n"
                "    def append_batch(self, records):\n"
                "        self._pending = records\n"
                "    def poke(self):\n"
                "        self._pending.append(1)\n"),
        })
        assert found == ["PL303"]

    def test_retained_but_never_mutated_is_clean(self, tmp_path):
        found = codes_of(tmp_path, {
            "storage/store.py": (
                "class Log:\n"
                "    def append_batch(self, records):\n"
                "        self._pending = records\n"
                "    def peek(self):\n"
                "        return len(self._pending)\n"),
        })
        assert found == []


class TestPL304SharedState:
    def test_module_mutable_written_from_function(self, tmp_path):
        found = codes_of(tmp_path, {
            "storage/cache.py": (
                "_CACHE = {}\n"
                "def put(key, value):\n"
                "    _CACHE[key] = value\n"),
        })
        assert found == ["PL304"]

    def test_global_rebinding_counter(self, tmp_path):
        found = codes_of(tmp_path, {
            "kernel/ids.py": (
                "_next = 1\n"
                "def mint():\n"
                "    global _next\n"
                "    _next += 1\n"
                "    return _next\n"),
        })
        assert found == ["PL304"]

    def test_itertools_count_mint_is_clean(self, tmp_path):
        found = codes_of(tmp_path, {
            "kernel/ids.py": (
                "import itertools\n"
                "_IDS = itertools.count(1)\n"
                "def mint():\n"
                "    return next(_IDS)\n"),
        })
        assert found == []

    def test_class_level_counter_write(self, tmp_path):
        found = codes_of(tmp_path, {
            "kernel/ids.py": (
                "class Minter:\n"
                "    count = 0\n"
                "def bump():\n"
                "    Minter.count += 1\n"),
        })
        assert found == ["PL304"]

    def test_storage_state_written_from_outside(self, tmp_path):
        found = codes_of(tmp_path, {
            "storage/waldo.py": (
                "class Waldo:\n"
                "    def __init__(self):\n"
                "        self.pending = []\n"),
            "query/feed.py": (
                "from repro.storage.waldo import Waldo\n"
                "def reset(w: Waldo, items):\n"
                "    w.pending = list(items)\n"),
        })
        assert found == ["PL304"]

    def test_storage_writing_its_own_state_is_clean(self, tmp_path):
        found = codes_of(tmp_path, {
            "storage/waldo.py": (
                "class Waldo:\n"
                "    def __init__(self):\n"
                "        self.pending = []\n"),
            "storage/drainer.py": (
                "from repro.storage.waldo import Waldo\n"
                "def reset(w: Waldo, items):\n"
                "    w.pending = list(items)\n"),
        })
        assert found == []


class TestPL305DynamicImports:
    def test_non_constant_argument_is_flagged(self, tmp_path):
        found = codes_of(tmp_path, {
            "apps/dyn.py": (
                "import importlib\n"
                "def load(name):\n"
                "    return importlib.import_module(name)\n"),
        })
        assert found == ["PL305"]

    def test_constant_argument_folds_into_layer_rules(self, tmp_path):
        # The disguised import is judged exactly like the static
        # equivalent: an app reaching storage is PL201.
        found = codes_of(tmp_path, {
            "apps/dyn.py": (
                "import importlib\n"
                "def load():\n"
                '    return importlib.import_module("repro.storage.waldo")\n'),
        })
        assert found == ["PL201"]

    def test_dunder_import_also_folds(self, tmp_path):
        found = codes_of(tmp_path, {
            "apps/dyn.py": (
                "def load():\n"
                '    return __import__("repro.storage.waldo")\n'),
        })
        assert found == ["PL201"]

    def test_constant_import_of_allowed_layer_is_clean(self, tmp_path):
        found = codes_of(tmp_path, {
            "apps/dyn.py": (
                "import importlib\n"
                "def load():\n"
                '    return importlib.import_module("repro.core.records")\n'),
        })
        assert found == []

    def test_function_local_importlib_is_seen(self, tmp_path):
        # The deferred-import disguise: importlib itself only bound
        # inside the function body.
        found = codes_of(tmp_path, {
            "apps/dyn.py": (
                "def load():\n"
                "    import importlib\n"
                '    return importlib.import_module("repro.storage.waldo")\n'),
        })
        assert found == ["PL201"]


class TestSuppressions:
    def test_suppression_silences_the_diagnostic(self, tmp_path):
        found = codes_of(tmp_path, {
            "apps/tool.py": (
                "from repro.kernel.kernel import Kernel"
                "  # lint: disable=PL201\n"),
            "kernel/kernel.py": KERNEL_KERNEL,
        })
        assert found == []

    def test_wrong_code_does_not_suppress(self, tmp_path):
        found = codes_of(tmp_path, {
            "apps/tool.py": (
                "from repro.kernel.kernel import Kernel"
                "  # lint: disable=PL305\n"),
            "kernel/kernel.py": KERNEL_KERNEL,
        })
        assert sorted(found) == ["PL201", "PL306"]

    def test_unused_suppression_is_reported(self, tmp_path):
        found = codes_of(tmp_path, {
            "apps/tool.py": "X = 1  # lint: disable=PL201\n",
        })
        assert found == ["PL306"]

    def test_marker_inside_string_is_not_a_suppression(self, tmp_path):
        found = codes_of(tmp_path, {
            "apps/tool.py": 'DOC = "# lint: disable=PL201"\n',
        })
        assert found == []


class TestShippedTree:
    def test_shipped_tree_is_flow_clean(self):
        assert analyze_tree(SRC_ROOT) == []
