"""Unit tests for the PQL parser."""

import pytest

from repro.core.errors import PQLSyntaxError
from repro.pql import ast
from repro.pql.parser import parse

PAPER_QUERY = """
select Ancestor
from Provenance.file as Atlas
     Atlas.input* as Ancestor
where Atlas.name = "atlas-x.gif"
"""


class TestQueryShape:
    def test_paper_query_parses(self):
        query = parse(PAPER_QUERY)
        assert len(query.select) == 1
        assert len(query.bindings) == 2
        assert query.where is not None

    def test_bindings(self):
        query = parse(PAPER_QUERY)
        first, second = query.bindings
        assert first.name == "Atlas"
        assert first.path.root == "Provenance"
        assert first.path.steps[0].edge == ast.EdgeName("file")
        assert second.name == "Ancestor"
        assert second.path.root == "Atlas"
        assert second.path.steps[0].quantifier == ast.Quantifier.star()

    def test_where_comparison(self):
        query = parse(PAPER_QUERY)
        where = query.where
        assert isinstance(where, ast.Compare)
        assert where.op == "="
        assert isinstance(where.left, ast.PathValue)
        assert where.right == ast.Literal("atlas-x.gif")

    def test_comma_separated_bindings(self):
        query = parse("select A from Provenance.file as A, A.input as B")
        assert [b.name for b in query.bindings] == ["A", "B"]

    def test_missing_from_raises(self):
        with pytest.raises(PQLSyntaxError):
            parse("select A where x = 1")

    def test_missing_alias_raises(self):
        with pytest.raises(PQLSyntaxError):
            parse("select A from Provenance.file")

    def test_trailing_garbage_raises(self):
        with pytest.raises(PQLSyntaxError):
            parse("select A from Provenance.file as A zzz blah +")


class TestPathSyntax:
    def binding_path(self, text):
        return parse(f"select A from {text} as A").bindings[0].path

    def test_plus_quantifier(self):
        path = self.binding_path("Provenance.file.input+")
        assert path.steps[1].quantifier == ast.Quantifier.plus()

    def test_question_quantifier(self):
        path = self.binding_path("Provenance.file.input?")
        assert path.steps[1].quantifier == ast.Quantifier.opt()

    def test_bounded_quantifier(self):
        path = self.binding_path("Provenance.file.input{2,5}")
        assert path.steps[1].quantifier == ast.Quantifier(2, 5)

    def test_exact_quantifier(self):
        path = self.binding_path("Provenance.file.input{3}")
        assert path.steps[1].quantifier == ast.Quantifier(3, 3)

    def test_open_quantifier(self):
        path = self.binding_path("Provenance.file.input{2,}")
        assert path.steps[1].quantifier == ast.Quantifier(2, None)

    def test_bad_bounds_raise(self):
        with pytest.raises(PQLSyntaxError):
            self.binding_path("Provenance.file.input{5,2}")

    def test_reverse_edge(self):
        path = self.binding_path("Provenance.file.^input")
        assert path.steps[1].edge == ast.EdgeName("input", reverse=True)

    def test_alternation(self):
        path = self.binding_path("Provenance.file.(input|forkparent)*")
        edge = path.steps[1].edge
        assert isinstance(edge, ast.EdgeAlt)
        assert edge.options == (ast.EdgeName("input"),
                                ast.EdgeName("forkparent"))

    def test_alternation_with_reverse(self):
        path = self.binding_path("Provenance.file.(input|^input)*")
        assert path.steps[1].edge.options[1].reverse


class TestExpressions:
    def where_of(self, text):
        return parse(f"select A from Provenance.file as A where {text}").where

    def test_and_or_precedence(self):
        expr = self.where_of("a = 1 or b = 2 and c = 3")
        assert isinstance(expr, ast.BoolOp) and expr.op == "or"
        assert isinstance(expr.operands[1], ast.BoolOp)
        assert expr.operands[1].op == "and"

    def test_not(self):
        expr = self.where_of("not A.name = 'x'")
        assert isinstance(expr, ast.Not)

    def test_parenthesized(self):
        expr = self.where_of("(a = 1 or b = 2) and c = 3")
        assert expr.op == "and"

    def test_arithmetic_precedence(self):
        expr = self.where_of("x = 1 + 2 * 3")
        right = expr.right
        assert isinstance(right, ast.Arith) and right.op == "+"
        assert isinstance(right.right, ast.Arith) and right.right.op == "*"

    def test_star_disambiguation_multiplication(self):
        expr = self.where_of("A.version * 2 = 4")
        assert isinstance(expr.left, ast.Arith)

    def test_star_disambiguation_quantifier(self):
        expr = self.where_of("count(A.input*) > 3")
        call = expr.left
        assert isinstance(call, ast.Call)
        path = call.args[0].path
        assert path.steps[0].quantifier == ast.Quantifier.star()

    def test_in_subquery(self):
        expr = self.where_of(
            "A.name in (select B.name from Provenance.process as B)")
        assert isinstance(expr, ast.InQuery)
        assert len(expr.query.bindings) == 1

    def test_exists_subquery(self):
        expr = self.where_of(
            "exists (select B from A.input as B)")
        assert isinstance(expr, ast.ExistsQuery)

    def test_aggregate_calls(self):
        for func in ("count", "sum", "avg", "min", "max"):
            expr = self.where_of(f"{func}(A.input) > 0")
            assert isinstance(expr.left, ast.Call)
            assert expr.left.name == func

    def test_boolean_literals(self):
        expr = self.where_of("A.tainted = true")
        assert expr.right == ast.Literal(True)

    def test_negative_number(self):
        expr = self.where_of("A.version > -1")
        assert isinstance(expr.right, ast.Neg)

    def test_select_alias(self):
        query = parse("select A.name as FileName from Provenance.file as A")
        assert query.select[0].alias == "FileName"

    def test_multiple_select_items(self):
        query = parse("select A.name, A.version from Provenance.file as A")
        assert len(query.select) == 2


class TestPositions:
    """Lexer line/column survives into the AST (and equality ignores it)."""

    def test_binding_paths_carry_positions(self):
        query = parse("select F from Provenance.file as F\n"
                      "              F.input as G")
        first, second = query.bindings
        assert (first.path.line, first.path.column) == (1, 14)
        assert (second.path.line, second.path.column) == (2, 14)
        assert second.path.steps[0].edge.line == 2

    def test_compare_carries_operator_position(self):
        query = parse('select F from Provenance.file as F\n'
                      'where F.name = "x"')
        assert (query.where.line, query.where.column) == (2, 13)

    def test_call_carries_name_position(self):
        query = parse("select count(F) from Provenance.file as F")
        assert (query.select[0].expr.line,
                query.select[0].expr.column) == (1, 7)

    def test_positions_do_not_affect_equality(self):
        a = parse("select F from Provenance.file as F")
        b = parse("select F\nfrom\n  Provenance.file as F")
        assert a == b
