"""Soundness tests for the evaluator's name-index selection pushdown."""

import pytest

from repro.core.pnode import ObjectRef
from repro.core.records import Attr, ObjType, ProvenanceRecord
from repro.pql.engine import QueryEngine


def R(pnode, attr, value):
    return ProvenanceRecord(ObjectRef(pnode, 0), attr, value)


@pytest.fixture
def engine():
    return QueryEngine.from_records([
        R(1, Attr.TYPE, ObjType.FILE), R(1, Attr.NAME, "/a"),
        R(2, Attr.TYPE, ObjType.FILE), R(2, Attr.NAME, "/b"),
        R(3, Attr.TYPE, ObjType.PROCESS), R(3, Attr.NAME, "/a"),
        R(2, Attr.INPUT, ObjectRef(1, 0)),
    ])


class TestPushdownCorrectness:
    def test_simple_equality_uses_index_transparently(self, engine):
        rows = engine.execute(
            'select F from Provenance.file as F where F.name = "/a"')
        assert [row.ref for row in rows] == [ObjectRef(1, 0)]

    def test_member_filter_respected(self, engine):
        """The name index holds the process named '/a' too; pushdown
        must still honour the member class."""
        rows = engine.execute(
            'select P from Provenance.process as P where P.name = "/a"')
        assert [row.ref for row in rows] == [ObjectRef(3, 0)]

    def test_node_member_gets_both(self, engine):
        rows = engine.execute(
            'select N from Provenance.node as N where N.name = "/a"')
        assert len(rows) == 2

    def test_or_clause_not_pushed(self, engine):
        rows = engine.execute(
            'select F.name from Provenance.file as F '
            'where F.name = "/a" or F.name = "/b"')
        assert sorted(map(str, rows)) == ["/a", "/b"]

    def test_conjunct_with_other_conditions(self, engine):
        rows = engine.execute(
            'select F from Provenance.file as F, F.input as A '
            'where F.name = "/b" and A.name = "/a"')
        assert [row.ref for row in rows] == [ObjectRef(2, 0)]

    def test_reversed_operand_order(self, engine):
        rows = engine.execute(
            'select F from Provenance.file as F where "/a" = F.name')
        assert [row.ref for row in rows] == [ObjectRef(1, 0)]

    def test_shadowed_variable_not_pruned(self, engine):
        """F is bound twice; pruning the first binding would be unsound.
        The final (rebinding) F decides the WHERE outcome."""
        rows = engine.execute(
            'select G.name from Provenance.file as F, F.input as G, '
            'Provenance.file as F '
            'where F.name = "/a"')
        # The second F-binding scans all files; G came from the *first*
        # F (which must not have been pruned to "/a"-named files only):
        # /b's input is /a, so G = /a must appear.
        assert "/a" in set(map(str, rows))

    def test_inequality_not_pushed(self, engine):
        rows = engine.execute(
            'select F.name from Provenance.file as F '
            'where F.name != "/a"')
        assert list(map(str, rows)) == ["/b"]

    def test_matches_unoptimized_semantics(self, engine):
        """Force the slow path by aliasing through a non-member root."""
        fast = engine.execute(
            'select F from Provenance.file as F where F.name = "/b"')
        slow = engine.execute(
            'select F from Provenance.file as F '
            'where F.name = "/b" and 1 = 1')   # extra conjunct, same set
        assert [r.ref for r in fast] == [r.ref for r in slow]
