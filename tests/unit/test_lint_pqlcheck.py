"""Per-rule tests for the PQL static analyzer (PL1xx).

Every rule gets at least one query that triggers it and one that stays
clean of it.
"""

import pytest

from repro.lint import check_query_text
from repro.lint.diagnostics import ERROR, WARNING
from repro.lint.pqlcheck import Vocabulary

BASE = "select F from Provenance.file as F"


def codes(text, vocabulary=None):
    return [d.code for d in check_query_text(text, vocabulary)]


def diag(text, code):
    found = [d for d in check_query_text(text) if d.code == code]
    assert found, f"expected {code} for {text!r}"
    return found[0]


#: (code, triggering query, clean query)
RULE_CASES = [
    ("PL100",
     "select from where",
     BASE),
    ("PL101",
     'select F from Provenance.file as F where F.nmae = "x"',
     'select F from Provenance.file as F where F.name = "x"'),
    ("PL102",
     "select A from Provenance.file as F F.name as A",
     "select A from Provenance.file as F F.input as A"),
    ("PL103",
     "select B from Nope.input as B",
     "select B from Provenance.file as F F.input as B"),
    ("PL104",
     "select F from Provenance.file as F, Provenance.process as F",
     "select F, G from Provenance.file as F, Provenance.process as G"),
    ("PL105",
     "select X from Provenance.martian as X",
     "select X from Provenance.process as X"),
    ("PL106",
     "select X from Provenance.file* as X",
     BASE),
    ("PL107",
     "select A from Provenance.file as F F.input* as A",
     "select A from Provenance.file as F F.input{1,6} as A"),
    ("PL108",
     "select frob(F) from Provenance.file as F",
     "select count(F) from Provenance.file as F"),
    ("PL109",
     "select count(F, F) from Provenance.file as F",
     "select count(F) from Provenance.file as F"),
    ("PL110",
     "select F from Provenance.file as F where F.name = 5",
     'select F from Provenance.file as F where F.name = "x"'),
    ("PL111",
     "select F from Provenance.file as F where 1 = 2",
     "select F from Provenance.file as F where F.pid = 2"),
    ("PL112",
     "select F from Provenance.file as F limit 0",
     "select F from Provenance.file as F limit 1"),
    ("PL113",
     "select F.name from Provenance.file as F, Provenance.file as G",
     "select F.name, G.name from Provenance.file as F, "
     "Provenance.file as G"),
]


class TestEveryRule:
    @pytest.mark.parametrize("code,bad,clean", RULE_CASES,
                             ids=[case[0] for case in RULE_CASES])
    def test_rule_triggers_and_clears(self, code, bad, clean):
        assert code in codes(bad)
        assert code not in codes(clean)

    def test_clean_paper_query_is_quiet_modulo_closure_warning(self):
        text = ('select A from Provenance.file as Atlas '
                'Atlas.input{1,8} as A '
                'where Atlas.name = "/pass/out/atlas-x.gif"')
        assert check_query_text(text) == []


class TestPositions:
    def test_unknown_attribute_is_positioned(self):
        found = diag('select F from Provenance.file as F\n'
                     'where F.nmae = "x"', "PL101")
        assert (found.line, found.column) == (2, 8)
        assert found.severity == ERROR

    def test_unbound_variable_is_positioned(self):
        found = diag("select B from Nope.input as B", "PL103")
        assert (found.line, found.column) == (1, 14)

    def test_closure_warning_is_positioned(self):
        found = diag("select A from Provenance.file as F\n"
                     "     F.input* as A", "PL107")
        assert found.severity == WARNING
        assert (found.line, found.column) == (2, 7)

    def test_syntax_error_becomes_pl100(self):
        found = diag("select )", "PL100")
        assert found.line == 1


class TestScopes:
    def test_subquery_sees_outer_bindings(self):
        text = ("select F from Provenance.file as F where F in "
                "(select G.input from Provenance.file as G "
                "where G.name = F.name)")
        assert "PL103" not in codes(text)

    def test_subquery_shadowing_warns(self):
        text = ("select F from Provenance.file as F where exists "
                "(select F from Provenance.process as F)")
        assert "PL104" in codes(text)

    def test_later_binding_roots_at_earlier(self):
        text = ("select A from Provenance.file as F F.input as A "
                "where A.name like \"%\"")
        assert codes(text) == []

    def test_edge_alternation_checked_per_option(self):
        text = ("select A from Provenance.file as F "
                "F.(input|nmae) as A")
        assert "PL101" in codes(text)

    def test_reversed_edges_are_fine(self):
        text = ("select D from Provenance.file as F F.^input{1,4} as D")
        assert codes(text) == []


class TestVocabulary:
    def test_default_vocabulary_knows_core_labels(self):
        vocab = Vocabulary.default()
        assert "input" in vocab.edges
        assert "name" in vocab.atoms
        assert "file" in vocab.members
        assert "version" in vocab.atoms          # identity pseudo-atom

    def test_framing_is_not_queryable(self):
        vocab = Vocabulary.default()
        assert "begintxn" not in vocab.atoms
        assert "endtxn" not in vocab.atoms
        assert "PL101" in codes(
            "select F.begintxn from Provenance.file as F")

    def test_custom_vocabulary_widens(self):
        vocab = Vocabulary.default()
        wider = Vocabulary(vocab.edges, vocab.atoms | {"custom"},
                           vocab.members)
        text = "select F.custom from Provenance.file as F"
        assert "PL101" in codes(text)
        assert "PL101" not in codes(text, wider)
