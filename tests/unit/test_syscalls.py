"""Unit tests for the syscall layer, processes, and pipes."""

import pytest

from repro.core.errors import (
    BadFileDescriptor,
    FileExists,
    FileNotFound,
    IsADirectory,
)
from repro.kernel.process import DeadlockError
from repro.system import System


@pytest.fixture
def shell(baseline):
    with baseline.process(argv=["sh"]) as proc:
        yield proc


class TestOpenModes:
    def test_read_missing_raises(self, shell):
        with pytest.raises(FileNotFound):
            shell.open("/pass/missing", "r")

    def test_write_creates(self, shell):
        fd = shell.open("/pass/new", "w")
        shell.write(fd, b"x")
        shell.close(fd)
        assert shell.exists("/pass/new")

    def test_write_truncates(self, shell):
        fd = shell.open("/pass/t", "w")
        shell.write(fd, b"long content here")
        shell.close(fd)
        fd = shell.open("/pass/t", "w")
        shell.close(fd)
        assert shell.stat("/pass/t")["size"] == 0

    def test_append_mode(self, shell):
        fd = shell.open("/pass/a", "a")
        shell.write(fd, b"one")
        shell.close(fd)
        fd = shell.open("/pass/a", "a")
        shell.write(fd, b"two")
        shell.close(fd)
        fd = shell.open("/pass/a", "r")
        assert shell.read(fd) == b"onetwo"

    def test_exclusive_create(self, shell):
        fd = shell.open("/pass/x", "x")
        shell.close(fd)
        with pytest.raises(FileExists):
            shell.open("/pass/x", "x")

    def test_rplus_reads_and_writes(self, shell):
        fd = shell.open("/pass/rw", "w")
        shell.write(fd, b"hello")
        shell.close(fd)
        fd = shell.open("/pass/rw", "r+")
        assert shell.read(fd, 2) == b"he"
        shell.write(fd, b"LLO")
        shell.close(fd)
        fd = shell.open("/pass/rw", "r")
        assert shell.read(fd) == b"heLLO"

    def test_bad_mode(self, shell):
        with pytest.raises(ValueError):
            shell.open("/pass/f", "q")

    def test_open_directory_raises(self, shell):
        shell.mkdir("/pass/d")
        with pytest.raises(IsADirectory):
            shell.open("/pass/d", "r")

    def test_read_from_writeonly_fd(self, shell):
        fd = shell.open("/pass/w", "w")
        with pytest.raises(BadFileDescriptor):
            shell.read(fd)

    def test_write_to_readonly_fd(self, shell):
        fd = shell.open("/pass/w", "w")
        shell.write(fd, b"x")
        shell.close(fd)
        fd = shell.open("/pass/w", "r")
        with pytest.raises(BadFileDescriptor):
            shell.write(fd, b"y")

    def test_closed_fd_rejected(self, shell):
        fd = shell.open("/pass/c", "w")
        shell.close(fd)
        with pytest.raises(BadFileDescriptor):
            shell.write(fd, b"x")

    def test_relative_paths_resolve_against_cwd(self, shell):
        shell.proc.cwd = "/pass"
        fd = shell.open("rel.txt", "w")
        shell.write(fd, b"data")
        shell.close(fd)
        assert shell.exists("/pass/rel.txt")


class TestReadWriteVariants:
    def test_pread_does_not_move_offset(self, shell):
        fd = shell.open("/pass/p", "w")
        shell.write(fd, b"abcdef")
        shell.close(fd)
        fd = shell.open("/pass/p", "r")
        assert shell.pread(fd, 2, 3) == b"cde"
        assert shell.read(fd, 2) == b"ab"

    def test_pwrite(self, shell):
        fd = shell.open("/pass/p", "w")
        shell.write(fd, b"000000")
        shell.pwrite(fd, 2, b"XX")
        shell.close(fd)
        fd = shell.open("/pass/p", "r")
        assert shell.read(fd) == b"00XX00"

    def test_readv_writev(self, shell):
        fd = shell.open("/pass/v", "w")
        assert shell.writev(fd, [b"ab", b"cd", b"ef"]) == 6
        shell.close(fd)
        fd = shell.open("/pass/v", "r")
        assert shell.readv(fd, [2, 2, 2]) == [b"ab", b"cd", b"ef"]

    def test_write_hole_counts_size(self, shell):
        fd = shell.open("/pass/h", "w")
        shell.write_hole(fd, 10000)
        shell.close(fd)
        assert shell.stat("/pass/h")["size"] == 10000

    def test_read_to_eof_default(self, shell):
        fd = shell.open("/pass/e", "w")
        shell.write(fd, b"abc")
        shell.close(fd)
        fd = shell.open("/pass/e", "r")
        assert shell.read(fd) == b"abc"
        assert shell.read(fd) == b""


class TestPipes:
    def test_roundtrip(self, shell):
        rfd, wfd = shell.pipe()
        shell.write(wfd, b"through the pipe")
        assert shell.read(rfd, 7) == b"through"
        assert shell.read(rfd) == b" the pipe"

    def test_eof_after_writer_closes(self, shell):
        rfd, wfd = shell.pipe()
        shell.write(wfd, b"x")
        shell.close(wfd)
        assert shell.read(rfd) == b"x"
        assert shell.read(rfd) == b""            # EOF

    def test_empty_pipe_with_writer_deadlocks(self, shell):
        rfd, wfd = shell.pipe()
        with pytest.raises(DeadlockError):
            shell.read(rfd)

    def test_pipe_available(self, shell):
        rfd, wfd = shell.pipe()
        shell.write(wfd, b"12345")
        assert shell.pipe_available(rfd) == 5

    def test_pipe_fd_directions(self, shell):
        rfd, wfd = shell.pipe()
        with pytest.raises(BadFileDescriptor):
            shell.write(rfd, b"x")
        with pytest.raises(BadFileDescriptor):
            shell.read(wfd)


class TestProcesses:
    def test_spawn_runs_to_completion(self, baseline):
        ran = []
        baseline.register_program("/pass/bin/child",
                                  lambda sc: ran.append(True) and 0 or 0)
        with baseline.process() as shell:
            child = shell.spawn("/pass/bin/child")
        assert ran == [True]
        assert not child.alive
        assert child.exit_code == 0

    def test_exit_code_propagates(self, baseline):
        baseline.register_program("/pass/bin/fail", lambda sc: 3)
        proc = baseline.run("/pass/bin/fail")
        assert proc.exit_code == 3

    def test_spawn_unregistered_raises(self, baseline):
        with baseline.process() as shell:
            with pytest.raises(FileNotFound):
                shell.spawn("/pass/bin/ghost")

    def test_fds_closed_at_exit(self, baseline):
        leaked = {}

        def leaky(sc):
            leaked["fd"] = sc.open("/pass/leak", "w")
            return 0

        baseline.register_program("/pass/bin/leaky", leaky)
        proc = baseline.run("/pass/bin/leaky")
        assert proc.open_fds() == []

    def test_stdin_stdout_inheritance(self, baseline):
        def producer(sc):
            sc.write(sc.stdout, b"payload")
            return 0

        def consumer(sc):
            out = sc.open("/pass/got", "w")
            sc.write(out, sc.read(sc.stdin))
            sc.close(out)
            return 0

        baseline.register_program("/pass/bin/p", producer)
        baseline.register_program("/pass/bin/c", consumer)
        with baseline.process() as shell:
            rfd, wfd = shell.pipe()
            shell.spawn("/pass/bin/p", stdout=wfd)
            shell.close(wfd)
            shell.spawn("/pass/bin/c", stdin=rfd)
            shell.close(rfd)
        fd_system = baseline
        with fd_system.process() as proc:
            fd = proc.open("/pass/got", "r")
            assert proc.read(fd) == b"payload"

    def test_no_stdin_raises(self, baseline):
        def orphan(sc):
            sc.read(sc.stdin)

        baseline.register_program("/pass/bin/orphan", orphan)
        with pytest.raises(BadFileDescriptor):
            baseline.run("/pass/bin/orphan")

    def test_generator_programs_interleave(self, baseline):
        order = []

        def gen_a(sc):
            order.append("a1")
            yield
            order.append("a2")
            yield
            return 0

        def gen_b(sc):
            order.append("b1")
            yield
            order.append("b2")
            return 0

        kernel = baseline.kernel
        kernel.register_program("/pass/bin/a", gen_a)
        kernel.register_program("/pass/bin/b", gen_b)
        kernel.start("/pass/bin/a")
        kernel.start("/pass/bin/b")
        kernel.schedule()
        assert order == ["a1", "b1", "a2", "b2"]

    def test_compute_charges_clock(self, baseline):
        with baseline.process() as shell:
            before = baseline.kernel.clock.now
            shell.compute(1.5)
            assert baseline.kernel.clock.now - before == pytest.approx(1.5)

    def test_mmap_requires_file(self, baseline):
        with baseline.process() as shell:
            rfd, wfd = shell.pipe()
            with pytest.raises(BadFileDescriptor):
                shell.mmap(rfd)
