"""Tests for workflow JSON (de)serialization."""

import pytest

from repro.apps.kepler import FileSink, FileSource, Transformer, Workflow
from repro.apps.kepler.actors import Combiner
from repro.apps.kepler.challenge import build_challenge
from repro.apps.kepler.serialization import (
    ACTOR_TYPES,
    dumps,
    loads,
    register_actor_type,
    workflow_from_dict,
    workflow_to_dict,
)
from repro.core.errors import WorkflowError


def simple_wf():
    wf = Workflow("simple")
    wf.add(FileSource("src", path="/pass/in"))
    wf.add(FileSink("sink", path="/pass/out"))
    wf.connect("src", "out", "sink", "in")
    return wf


class TestRoundtrip:
    def test_plain_workflow(self):
        restored = loads(dumps(simple_wf()))
        assert restored.name == "simple"
        assert {a.name for a in restored.actors()} == {"src", "sink"}
        assert restored.receivers("src", "out") == [("sink", "in")]
        restored.validate()

    def test_challenge_workflow_roundtrips(self):
        original = build_challenge("/i", "/w", "/o")
        restored = loads(dumps(original))
        assert {a.name for a in restored.actors()} \
            == {a.name for a in original.actors()}
        restored.validate()
        # Wiring identical.
        for actor in original.actors():
            for port in actor.output_ports:
                assert restored.receivers(actor.name, port) \
                    == original.receivers(actor.name, port)

    def test_params_preserved(self):
        restored = loads(dumps(simple_wf()))
        assert restored.actor("src").params["path"] == "/pass/in"

    def test_combiner_arity_preserved(self):
        wf = Workflow("w")
        wf.add(Combiner("merge", arity=3))
        restored = loads(dumps(wf))
        assert restored.actor("merge").input_ports == ("in0", "in1", "in2")

    def test_restored_workflow_runs(self, system):
        from repro.apps.kepler import run_workflow
        from tests.conftest import read_file, write_file
        write_file(system, "/pass/in", b"payload")
        restored = loads(dumps(simple_wf()))
        run_workflow(system, restored, recording=None)
        assert read_file(system, "/pass/out") == b"payload"


class TestCallables:
    def test_callable_marked_and_requires_override(self):
        wf = Workflow("w")
        wf.add(FileSource("src", path="/in"))
        wf.add(Transformer("xf", fn=lambda data: data))
        wf.add(FileSink("sink", path="/out"))
        wf.connect("src", "out", "xf", "in")
        wf.connect("xf", "out", "sink", "in")
        text = dumps(wf)
        assert "__callable__" in text
        with pytest.raises(WorkflowError):
            loads(text)
        restored = loads(text, param_overrides={
            "xf.fn": lambda data: data.upper()})
        assert restored.actor("xf").params["fn"](b"a") == b"A"

    def test_unused_override_rejected(self):
        with pytest.raises(WorkflowError):
            loads(dumps(simple_wf()),
                  param_overrides={"ghost.fn": lambda x: x})


class TestErrors:
    def test_unknown_actor_type(self):
        spec = {"name": "w",
                "actors": [{"type": "Martian", "name": "m", "params": {}}],
                "channels": []}
        with pytest.raises(WorkflowError):
            workflow_from_dict(spec)

    def test_malformed_spec(self):
        with pytest.raises(WorkflowError):
            workflow_from_dict({"nope": True})

    def test_register_custom_type(self):
        @register_actor_type
        class Doubler(Transformer):
            pass

        assert "Doubler" in ACTOR_TYPES
        spec = {"name": "w",
                "actors": [{"type": "Doubler", "name": "d", "params": {}}],
                "channels": []}
        restored = workflow_from_dict(spec)
        assert type(restored.actor("d")).__name__ == "Doubler"

    def test_register_non_actor_rejected(self):
        with pytest.raises(WorkflowError):
            register_actor_type(str)
