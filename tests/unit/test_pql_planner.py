"""The cost-based planner and its access paths.

Covers the access-path layer (equality/range indexes, CSR snapshot,
materialized ancestry view) in isolation, the planner's per-binding
choices, the EXPLAIN surface (engine dict, CLI rendering, journal
event), the passmon counters, engine detach, and the regression guard
for the old OEMNode defaultdict leak (queries must never grow a node's
footprint).
"""

import json

import pytest

from repro.cli import main
from repro.core.pnode import ObjectRef
from repro.core.records import Attr, ObjType, ProvenanceRecord
from repro.obs import Observability
from repro.pql.engine import QueryEngine
from repro.pql.indexes import (AncestryView, CSRSnapshot, EqualityIndex,
                               IndexCatalog, RangeIndex)
from repro.pql.oem import OEMGraph
from repro.storage.database import ProvenanceDatabase


def R(pnode, attr, value, version=0):
    return ProvenanceRecord(ObjectRef(pnode, version), attr, value)


def build_records():
    """A small DAG with md5/mtime atoms: 1 -> 2 -> 3 by input."""
    return [
        R(1, Attr.TYPE, ObjType.FILE), R(1, Attr.NAME, "/a"),
        R(1, "MD5", "aaa"), R(1, "MTIME", 10),
        R(2, Attr.TYPE, ObjType.PROCESS), R(2, Attr.NAME, "cc"),
        R(2, Attr.INPUT, ObjectRef(1, 0)), R(2, "MTIME", 20),
        R(3, Attr.TYPE, ObjType.FILE), R(3, Attr.NAME, "/b"),
        R(3, "MD5", "bbb"), R(3, "MTIME", 30),
        R(3, Attr.INPUT, ObjectRef(2, 0)),
    ]


@pytest.fixture
def graph():
    return OEMGraph.build(build_records())


@pytest.fixture
def engine():
    return QueryEngine.from_records(build_records())


class TestEqualityIndex:
    def test_build_and_lookup(self, graph):
        index = EqualityIndex("md5", graph.nodes())
        assert [n.ref for n in index.lookup("aaa")] == [ObjectRef(1, 0)]
        assert index.lookup("zzz") == []
        assert index.estimate("bbb") == 1

    def test_incremental_add_matches_rebuild(self, graph):
        catalog = IndexCatalog.attach(graph)
        index = catalog.equality("md5")
        graph.apply(R(9, "MD5", "ccc"))
        graph.apply(R(9, Attr.TYPE, ObjType.FILE))
        rebuilt = EqualityIndex("md5", graph.nodes())
        assert {v: sorted(n.ref for n in index.lookup(v))
                for v in ("aaa", "bbb", "ccc")} == \
               {v: sorted(n.ref for n in rebuilt.lookup(v))
                for v in ("aaa", "bbb", "ccc")}

    def test_unhashable_values_skipped(self, graph):
        index = EqualityIndex("md5", graph.nodes())
        index.add(["un", "hashable"], graph.named("/a")[0])
        assert index.lookup(["un", "hashable"]) == []


class TestRangeIndex:
    def test_bounds(self, graph):
        index = RangeIndex("mtime", graph.nodes())
        refs = lambda low, li, high, hi: sorted(
            n.ref.pnode for n in index.lookup(low, li, high, hi))
        assert refs(None, False, 15, False) == [1]      # mtime < 15
        assert refs(20, True, None, False) == [2, 3]    # mtime >= 20
        assert refs(20, False, None, False) == [3]      # mtime > 20
        assert refs(None, False, 20, True) == [1, 2]    # mtime <= 20
        assert index.estimate(None, False, None, False) == 3

    def test_non_numeric_values_skipped(self, graph):
        index = RangeIndex("md5", graph.nodes())       # strings: empty
        assert len(index) == 0

    def test_bool_not_indexed(self, graph):
        index = RangeIndex("mtime", graph.nodes())
        index.add(True, graph.named("/a")[0])
        assert index.estimate(None, False, None, False) == 3


class TestCSRSnapshot:
    def test_bfs_matches_dict_walk(self, graph):
        csr = CSRSnapshot(graph, epoch=None)
        root = csr.node_id[id(graph.named("/b")[0])]
        reached = csr.bfs([root], [("input", False)], 1, None)
        names = {csr.nodes[nid].name for nid in reached}
        assert names == {"cc", "/a"}

    def test_reverse_direction(self, graph):
        csr = CSRSnapshot(graph, epoch=None)
        root = csr.node_id[id(graph.named("/a")[0])]
        reached = csr.bfs([root], [("input", True)], 1, None)
        assert {csr.nodes[nid].name for nid in reached} == {"cc", "/b"}

    def test_depth_bounds(self, graph):
        csr = CSRSnapshot(graph, epoch=None)
        root = csr.node_id[id(graph.named("/b")[0])]
        one_hop = csr.bfs([root], [("input", False)], 1, 1)
        assert {csr.nodes[nid].name for nid in one_hop} == {"cc"}
        with_self = csr.bfs([root], [("input", False)], 0, 0)
        assert {csr.nodes[nid].name for nid in with_self} == {"/b"}

    def test_catalog_rebuilds_only_when_quiescent(self, graph):
        catalog = IndexCatalog.attach(graph)
        assert catalog.csr() is None            # first sight of epoch
        assert catalog.csr() is not None        # quiescent: build
        assert catalog.csr_rebuilds == 1
        graph.apply(R(9, Attr.TYPE, ObjType.FILE))
        assert catalog.csr() is None            # stale again
        assert catalog.csr_fallbacks == 2
        snapshot = catalog.csr()
        assert snapshot is not None
        assert len(snapshot.nodes) == len(graph)


class TestAncestryView:
    def test_closure_cached_and_patched(self, graph):
        catalog = IndexCatalog.attach(graph)
        root = graph.named("/b")[0]
        first = catalog.view.closure(root, ("input",), False)
        assert {n.name for n in first} == {"cc", "/a"}
        assert catalog.view.hits == 0
        again = catalog.view.closure(root, ("input",), False)
        assert again is first
        assert catalog.view.hits == 1
        # A new ancestry edge below the closure is patched in, not
        # recomputed: /a gains an input -> new node 9.
        graph.apply(R(9, Attr.TYPE, ObjType.FILE))
        graph.apply(R(9, Attr.NAME, "/deep"))
        graph.apply(R(1, Attr.INPUT, ObjectRef(9, 0)))
        patched = catalog.view.closure(root, ("input",), False)
        assert {n.name for n in patched} == {"cc", "/a", "/deep"}

    def test_irrelevant_edge_does_not_grow_closure(self, graph):
        catalog = IndexCatalog.attach(graph)
        root = graph.named("/b")[0]
        catalog.view.closure(root, ("input",), False)
        graph.apply(R(8, Attr.TYPE, ObjType.FILE))
        graph.apply(R(7, Attr.TYPE, ObjType.FILE))
        graph.apply(R(8, Attr.INPUT, ObjectRef(7, 0)))   # disconnected
        closure = catalog.view.closure(root, ("input",), False)
        assert {n.name for n in closure} == {"cc", "/a"}

    def test_pending_overflow_invalidates(self, graph):
        view = AncestryView(max_pending=2)
        catalog = IndexCatalog.attach(graph)
        catalog.view = view
        root = graph.named("/b")[0]
        view.closure(root, ("input",), False)
        for pnode in range(20, 24):
            graph.apply(R(pnode, Attr.INPUT, ObjectRef(1, 0)))
        assert view.invalidations == 1
        assert len(view) == 0
        # And the next read recomputes correctly from scratch.
        closure = view.closure(root, ("input",), False)
        assert {n.name for n in closure} >= {"cc", "/a"}

    def test_lru_bounded(self, graph):
        view = AncestryView(max_entries=2)
        nodes = graph.nodes()
        for node in nodes:
            view.closure(node, ("input",), False)
        assert len(view) == 2


class TestPlannerChoices:
    def _access(self, engine, query):
        engine.execute(query)
        plans = engine.plan(query).binding_plans
        return {plan.variable: plan for plan in plans}

    def test_equality_conjunct_uses_index(self, engine):
        plans = self._access(
            engine,
            'select F from Provenance.file as F where F.md5 = "aaa"')
        assert plans["F"].access == "equality_index"
        assert plans["F"].est_rows == 1
        assert plans["F"].actual_rows == 1

    def test_range_conjunct_uses_range_index(self, engine):
        plans = self._access(
            engine,
            "select F from Provenance.file as F where F.mtime < 15")
        assert plans["F"].access == "range_index"
        assert plans["F"].detail["index"] == "mtime"

    def test_unfiltered_member_scans(self, engine):
        plans = self._access(engine,
                             "select F from Provenance.file as F")
        assert plans["F"].access == "member_scan"

    def test_traversal_binding_marked(self, engine):
        plans = self._access(
            engine,
            "select A from Provenance.file as F, F.input* as A "
            'where F.name = "/b"')
        assert plans["A"].access == "traverse"
        assert plans["F"].access == "equality_index"

    def test_wider_bucket_than_member_class_scans(self, engine):
        """Cost model: an index whose bucket is no smaller than the
        member class must lose to the scan."""
        graph = engine.graph
        for pnode in range(50, 60):
            graph.apply(R(pnode, Attr.TYPE, ObjType.FILE))
            graph.apply(R(pnode, "FLAG", "common"))
        plans = self._access(
            engine,
            "select P from Provenance.process as P "
            'where P.flag = "common"')
        # 1 process total; the flag bucket holds 10 nodes.
        assert plans["P"].access == "member_scan"

    def test_planned_rows_match_naive(self, engine):
        for query in (
            'select F from Provenance.file as F where F.md5 = "bbb"',
            "select N from Provenance.node as N where N.mtime >= 20",
            "select A from Provenance.file as F, F.input* as A "
            'where F.md5 = "bbb"',
        ):
            planned = engine.execute_refs(query)
            naive_rows = engine.execute(query, optimize=False)
            naive = [row.ref if hasattr(row, "ref") else row
                     for row in naive_rows]
            assert sorted(map(repr, planned)) == sorted(map(repr, naive))


class TestFootprintRegression:
    def test_queries_never_mutate_node_footprints(self, engine):
        """The defaultdict leak: probing a missing label used to insert
        an empty entry into every node's atoms/edges/redges."""
        graph = engine.graph
        before = {id(n): (sorted(n.atoms), sorted(n.edges),
                          sorted(n.redges)) for n in graph.nodes()}
        for query in (
            'select F from Provenance.file as F where F.nosuch = "x"',
            "select A from Provenance.node as N, N.nosuchedge* as A",
            "select A from Provenance.node as N, N.^nosuchedge+ as A",
            "select F.missing from Provenance.file as F",
        ):
            engine.execute(query, check=False)
            engine.execute(query, check=False, optimize=False)
        after = {id(n): (sorted(n.atoms), sorted(n.edges),
                         sorted(n.redges)) for n in graph.nodes()}
        assert before == after

    def test_catalog_probes_do_not_mutate(self, graph):
        catalog = IndexCatalog.attach(graph)
        before = {id(n): (sorted(n.atoms), sorted(n.edges))
                  for n in graph.nodes()}
        catalog.equality("nosuch").lookup("x")
        catalog.range("nosuch2").lookup(None, False, None, False)
        root = graph.named("/b")[0]
        catalog.view.closure(root, ("nosuchedge",), False)
        after = {id(n): (sorted(n.atoms), sorted(n.edges))
                 for n in graph.nodes()}
        assert before == after


class TestExplain:
    def test_report_shape(self, engine):
        report = engine.explain(
            'select F from Provenance.file as F where F.md5 = "aaa"')
        assert report["rows"] == 1
        assert report["optimize"] is True
        (binding,) = report["bindings"]
        assert binding["variable"] == "F"
        assert binding["access"] == "equality_index"
        assert binding["detail"]["index"] == "md5"

    def test_traversal_steps_noted(self, engine):
        report = engine.explain(
            "select A from Provenance.file as F, F.input* as A "
            'where F.name = "/b"')
        traverse = [b for b in report["bindings"]
                    if b["access"] == "traverse"]
        assert traverse and "steps" in traverse[0]

    def test_journal_event_emitted(self):
        obs = Observability(journal_enabled=True)
        engine = QueryEngine(OEMGraph.build(build_records()), check=False,
                             obs=obs)
        engine.explain("select F from Provenance.file as F")
        assert obs.journal.events("pql.plan_explain")


class TestCounters:
    def test_counters_reach_obs_snapshot(self):
        obs = Observability(journal_enabled=True)
        engine = QueryEngine(OEMGraph.build(build_records()), check=False,
                             obs=obs)
        engine.execute(
            'select F from Provenance.file as F where F.md5 = "aaa"')
        engine.execute("select F from Provenance.file as F")
        counters = obs.metrics.snapshot()["pql"]["counters"]
        assert counters["index_hits"] >= 1
        assert counters["index_misses"] >= 1
        assert "view_refreshes" in counters
        assert "csr_rebuilds" in counters

    def test_shared_catalog_not_double_counted(self):
        obs = Observability(journal_enabled=True)
        graph = OEMGraph.build(build_records())
        first = QueryEngine(graph, check=False, obs=obs)
        second = QueryEngine(graph, check=False, obs=obs)
        first.execute(
            'select F from Provenance.file as F where F.md5 = "aaa"')
        second.execute(
            'select F from Provenance.file as F where F.md5 = "bbb"')
        counters = obs.metrics.snapshot()["pql"]["counters"]
        assert counters["index_hits"] == first.catalog.index_hits == 2


class TestDetach:
    def test_detach_unsubscribes_live_engine(self):
        database = ProvenanceDatabase("t")
        database.insert_many(build_records())
        engine = QueryEngine.live([database])
        assert database.has_subscribers
        assert engine.detach() == 1
        assert not database.has_subscribers
        assert engine.detach() == 0

    def test_database_unsubscribe_unknown_listener(self):
        database = ProvenanceDatabase("t")
        assert database.unsubscribe(lambda record: None) is False
        assert database.unsubscribe_batch(lambda batch: None) is False


class TestCLIExplain:
    @pytest.fixture
    def db_path(self, tmp_path):
        database = ProvenanceDatabase("cli")
        database.insert_many(build_records())
        path = tmp_path / "prov.db"
        database.save(str(path))
        return str(path)

    def test_text_output(self, db_path, capsys):
        assert main(["query", "--db", db_path, "--explain",
                     'select F from Provenance.file as F '
                     'where F.md5 = "aaa"']) == 0
        out = capsys.readouterr().out
        assert "equality_index" in out
        assert "est=1" in out

    def test_json_output(self, db_path, capsys):
        assert main(["query", "--db", db_path, "--explain", "--json",
                     "select F from Provenance.file as F"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["bindings"][0]["access"] == "member_scan"

    def test_plain_query_still_prints_rows(self, db_path, capsys):
        assert main(["query", "--db", db_path,
                     "select F.name from Provenance.file as F"]) == 0
        assert "/a" in capsys.readouterr().out
