"""Unit tests for the workload harness and the five workloads."""

import pytest

from repro.workloads import (
    ALL_WORKLOADS,
    BlastWorkload,
    CompileWorkload,
    KeplerWorkload,
    MercurialWorkload,
    PostmarkWorkload,
)
from repro.workloads.base import overhead_pct, run_local, run_nfs

SMALL = 0.05


class TestHarness:
    def test_result_fields_populated(self):
        result = run_local(BlastWorkload(scale=SMALL), provenance=True)
        assert result.workload == "Blast"
        assert result.config == "passv2"
        assert result.elapsed > 0
        assert result.bytes_written > 0
        assert result.provenance_bytes > 0
        assert result.index_bytes > 0
        assert result.breakdown

    def test_baseline_has_no_provenance(self):
        result = run_local(BlastWorkload(scale=SMALL), provenance=False)
        assert result.config == "ext3"
        assert result.provenance_bytes == 0
        assert "provenance_cpu" not in result.breakdown

    def test_overhead_pct(self):
        from repro.workloads.base import WorkloadResult
        base = WorkloadResult("w", "ext3", 100.0, 0)
        passv2 = WorkloadResult("w", "passv2", 110.0, 0)
        assert overhead_pct(base, passv2) == pytest.approx(10.0)
        zero = WorkloadResult("w", "ext3", 0.0, 0)
        assert overhead_pct(zero, passv2) == 0.0

    def test_nfs_harness_counts_network(self):
        result = run_nfs(BlastWorkload(scale=SMALL), provenance=False)
        assert result.config == "nfs"
        assert result.stats["network_calls"] > 0
        assert result.breakdown.get("network", 0) > 0


class TestDeterminism:
    @pytest.mark.parametrize("workload_cls", ALL_WORKLOADS,
                             ids=lambda cls: cls.name)
    def test_same_seed_same_elapsed(self, workload_cls):
        first = run_local(workload_cls(scale=SMALL, seed=7),
                          provenance=True)
        second = run_local(workload_cls(scale=SMALL, seed=7),
                           provenance=True)
        assert first.elapsed == second.elapsed
        assert first.provenance_bytes == second.provenance_bytes

    def test_different_seed_changes_postmark(self):
        first = run_local(PostmarkWorkload(scale=SMALL, seed=1),
                          provenance=False)
        second = run_local(PostmarkWorkload(scale=SMALL, seed=2),
                           provenance=False)
        assert first.elapsed != second.elapsed


class TestWorkloadShapes:
    def test_compile_stats(self):
        result = run_local(CompileWorkload(scale=0.1), provenance=True)
        assert result.stats["files"] == 32
        assert result.stats["headers"] == 2

    def test_postmark_transaction_mix(self):
        result = run_local(PostmarkWorkload(scale=0.1), provenance=False)
        stats = result.stats
        total = (stats["reads"] + stats["appends"] + stats["creates"]
                 + stats["deletes"])
        assert total == stats["transactions"]
        assert stats["reads"] > 0 and stats["deletes"] > 0

    def test_mercurial_patch_count(self):
        result = run_local(MercurialWorkload(scale=0.05), provenance=False)
        assert result.stats["patches"] == 6

    def test_blast_is_cpu_bound(self):
        result = run_local(BlastWorkload(scale=SMALL), provenance=False)
        cpu = result.breakdown.get("user_cpu", 0)
        assert cpu > result.elapsed * 0.5

    def test_kepler_workload_fires_all_stages(self):
        result = run_local(KeplerWorkload(scale=SMALL), provenance=True)
        assert result.stats["firings"] == 5

    def test_kepler_without_provenance_skips_recording(self):
        result = run_local(KeplerWorkload(scale=SMALL), provenance=False)
        assert result.provenance_bytes == 0

    def test_mercurial_setup_outside_measurement(self):
        """The checkout happens in setup(): measured elapsed time covers
        only the patch series."""
        workload = MercurialWorkload(scale=SMALL)
        result = run_local(workload, provenance=False)
        # If the checkout (hundreds of file creations) were measured,
        # bytes_written would include the whole tree.
        tree_bytes = 160 * 192 * 1024 * SMALL
        assert result.bytes_written < tree_bytes * 10
