"""Unit tests for the deterministic fault-injection layer."""

import pytest

from repro.core.errors import NetworkPartition
from repro.faults import (
    CRASHABLE,
    SITES,
    CrashFault,
    FaultInjector,
    FaultPlan,
    FaultRule,
    IOFault,
    site_names,
    spec,
)
from repro.kernel.clock import SimClock
from repro.nfs.network import Network
from repro.system import System


class TestFaultRule:
    def test_requires_exactly_one_trigger(self):
        with pytest.raises(ValueError):
            FaultRule("disk.write", "crash")
        with pytest.raises(ValueError):
            FaultRule("disk.write", "crash", nth=1, probability=0.5)

    def test_rejects_unknown_action(self):
        with pytest.raises(ValueError):
            FaultRule("disk.write", "explode", nth=1)

    def test_rejects_bad_ranges(self):
        with pytest.raises(ValueError):
            FaultRule("disk.write", "crash", nth=0)
        with pytest.raises(ValueError):
            FaultRule("disk.write", "crash", probability=1.5)
        with pytest.raises(ValueError):
            FaultRule("disk.write", "crash", nth=1, max_fires=0)

    def test_glob_site_matching(self):
        rule = FaultRule("log.flush.*", "crash", nth=1)
        assert rule.matches("log.flush.pre")
        assert rule.matches("log.flush.append")
        assert not rule.matches("disk.write")


class TestFaultInjector:
    def test_nth_rule_fires_exactly_once(self):
        plan = FaultPlan().add("site.a", "io_error", nth=3)
        injector = FaultInjector(plan)
        injector.fire("site.a")
        injector.fire("site.a")
        with pytest.raises(IOFault) as caught:
            injector.fire("site.a")
        assert caught.value.hit == 3
        # The 4th hit does not re-fire.
        injector.fire("site.a")
        assert injector.faults_fired == 1

    def test_hits_counted_per_site(self):
        injector = FaultInjector()
        injector.fire("site.a")
        injector.fire("site.b")
        injector.fire("site.a")
        assert injector.hits == {"site.a": 2, "site.b": 1}

    def test_trace_records_payloads(self):
        injector = FaultInjector(record_trace=True)
        injector.fire("site.a", nbytes=7)
        assert injector.trace == [("site.a", 1, {"nbytes": 7})]

    def test_probability_rules_deterministic_for_a_seed(self):
        def fired_pattern(seed):
            plan = FaultPlan(seed=seed).add(
                "site.a", "io_error", probability=0.3, max_fires=100)
            injector = FaultInjector(plan)
            pattern = []
            for _ in range(50):
                try:
                    injector.fire("site.a")
                    pattern.append(0)
                except IOFault:
                    pattern.append(1)
            return pattern

        assert fired_pattern(7) == fired_pattern(7)
        assert fired_pattern(7) != fired_pattern(8)

    def test_crash_halts_the_machine(self):
        plan = FaultPlan().add("site.a", "crash", nth=1)
        injector = FaultInjector(plan)
        with pytest.raises(CrashFault):
            injector.fire("site.a")
        assert injector.halted
        # Dead machines stay dead: any site now raises.
        with pytest.raises(CrashFault):
            injector.fire("site.unrelated")

    def test_io_error_does_not_halt(self):
        plan = FaultPlan().add("site.a", "io_error", nth=1)
        injector = FaultInjector(plan)
        with pytest.raises(IOFault):
            injector.fire("site.a")
        assert not injector.halted
        injector.fire("site.a")         # machine survives

    def test_plan_reset_rewinds_everything(self):
        plan = FaultPlan(seed=3).add("site.a", "crash", nth=2)
        injector = FaultInjector(plan)
        injector.fire("site.a")
        with pytest.raises(CrashFault):
            injector.fire("site.a")
        plan.reset()
        fresh = FaultInjector(plan)
        fresh.fire("site.a")
        with pytest.raises(CrashFault):
            fresh.fire("site.a")


class TestSiteCatalogue:
    def test_names_unique(self):
        names = site_names()
        assert len(names) == len(set(names))

    def test_crashable_is_a_subset(self):
        assert set(CRASHABLE) <= set(site_names())

    def test_spec_lookup(self):
        assert spec("net.call").layer == "nfs"
        with pytest.raises(KeyError):
            spec("no.such.site")

    def test_threaded_sites_match_catalogue(self):
        """Every site fired by a traced boot+workload appears in the
        catalogue (no undocumented sites in the tree)."""
        injector = FaultInjector(record_trace=True)
        system = System.boot(faults=injector)
        with system.process(argv=["w"]) as proc:
            fd = proc.open("/pass/f", "w")
            proc.write(fd, b"x" * 64)
            proc.close(fd)
            fd = proc.open("/pass/f", "r")
            proc.read(fd)
            proc.close(fd)
        system.sync()
        assert set(injector.hits) <= set(site_names())


class TestArmedSystem:
    def test_disk_io_error_surfaces(self):
        plan = FaultPlan().add("disk.write", "io_error", nth=1)
        system = System.boot(faults=FaultInjector(plan))
        with pytest.raises(IOFault):
            with system.process(argv=["w"]) as proc:
                fd = proc.open("/pass/f", "w")
                proc.write(fd, b"x" * 64)
                proc.close(fd)

    def test_torn_log_append_orphans_the_txn(self):
        from repro.storage.recovery import recover
        plan = FaultPlan().add("log.flush.append", "torn", nth=1,
                               param=0.5)
        injector = FaultInjector(plan)
        system = System.boot(faults=injector)
        with pytest.raises(CrashFault) as caught:
            with system.process(argv=["w"]) as proc:
                fd = proc.open("/pass/f", "w")
                proc.write(fd, b"x" * 64)
                proc.close(fd)
        assert caught.value.torn_bytes > 0
        lasagna = system.kernel.volume("pass").lasagna
        lasagna.crash()
        report = recover(lasagna)
        # The torn transaction never committed: no committed MD5
        # records, some tail bytes undecodable or orphaned.
        assert report.torn_bytes > 0 or report.orphaned_records

    def test_fired_faults_reach_obs_registry(self):
        plan = FaultPlan().add("log.flush.pre", "io_error", nth=1)
        injector = FaultInjector(plan)
        system = System.boot(faults=injector)
        with pytest.raises(IOFault):
            with system.process(argv=["w"]) as proc:
                fd = proc.open("/pass/f", "w")
                proc.write(fd, b"x")
                proc.close(fd)
        counters = system.stats()["faults"]["counters"]
        assert counters["faults_fired"] == 1
        assert counters["fired_io_error"] == 1
        assert counters["sites_hit"] >= 1

    def test_disarmed_system_has_no_faults_layer_activity(self):
        system = System.boot()
        assert "faults" not in system.stats()


class TestNetworkFaults:
    def _network(self, plan):
        return Network(SimClock(), faults=FaultInjector(plan))

    def test_drop_fails_one_call_only(self):
        net = self._network(FaultPlan().add("net.call", "drop", nth=2))
        net.call(10, 10)
        with pytest.raises(NetworkPartition):
            net.call(10, 10)
        net.call(10, 10)                # the wire is fine again
        assert net.failed_calls == 1

    def test_delay_charges_extra_latency(self):
        plan = FaultPlan().add("net.call", "delay", nth=1, param=0.25)
        net = self._network(plan)
        before = net.clock.now
        net.call(10, 10)
        assert net.clock.now - before >= 0.25

    def test_duplicate_charges_the_wire_twice(self):
        plan = FaultPlan().add("net.call", "duplicate", nth=1)
        net = self._network(plan)
        net.call(100, 10)
        assert net.calls == 2
        assert net.bytes_sent == 200

    def test_partition_window_fails_n_then_heals(self):
        plan = FaultPlan().add("net.call", "partition", nth=2, param=2)
        net = self._network(plan)
        net.call()
        for _ in range(3):              # the partition call + window of 2
            with pytest.raises(NetworkPartition):
                net.call()
        net.call()                      # healed
        assert net.failed_calls == 3


class TestWaldoCrashRequeue:
    def test_mid_drain_crash_loses_nothing(self):
        from repro.core.pnode import ObjectRef
        from repro.core.records import Attr, ProvenanceRecord
        from repro.kernel.clock import SimClock
        from repro.kernel.params import LogParams
        from repro.storage.log import ProvenanceLog
        from repro.storage.waldo import Waldo

        plan = FaultPlan().add("waldo.drain.segment", "crash", nth=2)
        injector = FaultInjector(plan)
        log = ProvenanceLog(SimClock(), LogParams(max_size=1 << 30))
        waldo = Waldo(log, faults=injector)
        for segment in range(3):
            for index in range(4):
                log.append(ProvenanceRecord(
                    ObjectRef(segment * 10 + index, 0), Attr.NAME,
                    f"seg{segment}-{index}"))
            log.flush()
            log.rotate()
        with pytest.raises(CrashFault):
            waldo.drain()
        # Segment 1 was ingested; 2 and 3 went back to the log.
        assert len(waldo.database) == 4
        assert waldo.crash() == 2
        assert [seg.index for seg in log.closed_segments] == [1, 2]
        # A fresh (restarted) Waldo drains the requeued segments once
        # its inotify stand-in hands them back.
        recovered = Waldo(log, database=waldo.database)
        for segment in log.take_closed():
            recovered._segment_closed(segment)
        recovered.drain()
        assert len(waldo.database) == 12
