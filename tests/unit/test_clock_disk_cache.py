"""Unit tests for the clock, disk cost model, and page cache."""

import pytest

from repro.core.errors import VolumeError
from repro.kernel.cache import PageCache
from repro.kernel.clock import SimClock, Stopwatch
from repro.kernel.disk import SimulatedDisk
from repro.kernel.params import CacheParams, DiskParams


class TestClock:
    def test_starts_at_zero(self):
        assert SimClock().now == 0.0

    def test_advance_accumulates(self):
        clock = SimClock()
        clock.advance(1.5)
        clock.advance(0.5)
        assert clock.now == 2.0

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            SimClock().advance(-1)

    def test_category_breakdown(self):
        clock = SimClock()
        clock.advance(1.0, "disk_read")
        clock.advance(2.0, "user_cpu")
        clock.advance(0.5, "disk_read")
        assert clock.category("disk_read") == 1.5
        assert clock.breakdown() == {"disk_read": 1.5, "user_cpu": 2.0}
        assert clock.category("missing") == 0.0

    def test_stopwatch(self):
        clock = SimClock()
        with Stopwatch(clock) as watch:
            clock.advance(3.25)
        assert watch.elapsed == 3.25


class TestDisk:
    def make(self):
        clock = SimClock()
        disk = SimulatedDisk(clock, DiskParams())
        disk.add_region("a", 10000)
        disk.add_region("b", 10000)
        return clock, disk

    def test_sequential_access_is_transfer_only(self):
        clock, disk = self.make()
        disk.write(0, 4096)
        t_after_first = clock.now
        disk.write(1, 4096)        # head is at block 1 already
        second_cost = clock.now - t_after_first
        assert second_cost == pytest.approx(4096 / disk.params.transfer_rate)
        # The first write (head already at block 0) was sequential too.
        assert disk.seeks == 0
        assert disk.sequential_accesses == 2

    def test_long_jump_costs_full_seek(self):
        clock, disk = self.make()
        disk.write(0, 4096)
        before = clock.now
        disk.read(9000, 4096)
        cost = clock.now - before
        expected = (disk.params.avg_seek + disk.params.rotational
                    + 4096 / disk.params.transfer_rate)
        assert cost == pytest.approx(expected)

    def test_short_jump_costs_track_seek(self):
        clock, disk = self.make()
        disk.write(0, 4096)
        before = clock.now
        disk.write(100, 4096)      # within short_seek_blocks
        cost = clock.now - before
        expected = disk.params.short_seek + 4096 / disk.params.transfer_rate
        assert cost == pytest.approx(expected)

    def test_clustered_write_does_not_move_head(self):
        clock, disk = self.make()
        disk.write(5000, 4096)
        head = disk.head
        disk.clustered_write(8192, barrier=0.001)
        assert disk.head == head

    def test_clustered_write_cost(self):
        clock, disk = self.make()
        before = clock.now
        disk.clustered_write(4096, barrier=0.002)
        expected = (disk.params.short_seek + 0.002
                    + 4096 / disk.params.transfer_rate)
        assert clock.now - before == pytest.approx(expected)

    def test_region_allocation_exhaustion(self):
        clock, disk = self.make()
        region = disk.region("a")
        region.allocate(10000)
        with pytest.raises(VolumeError):
            region.allocate(1)

    def test_duplicate_region_rejected(self):
        clock, disk = self.make()
        with pytest.raises(VolumeError):
            disk.add_region("a", 10)

    def test_unknown_region_rejected(self):
        clock, disk = self.make()
        with pytest.raises(VolumeError):
            disk.region("zzz")

    def test_negative_io_rejected(self):
        clock, disk = self.make()
        with pytest.raises(ValueError):
            disk.write(0, -5)

    def test_byte_counters(self):
        clock, disk = self.make()
        disk.write(0, 1000)
        disk.read(0, 500)
        assert disk.bytes_written == 1000
        assert disk.bytes_read == 500


class TestPageCacheUnit:
    def test_miss_then_hit(self):
        cache = PageCache(CacheParams(capacity_pages=4))
        assert not cache.lookup(1, 0)
        cache.insert(1, 0)
        assert cache.lookup(1, 0)
        assert cache.hits == 1 and cache.misses == 1

    def test_eviction_order(self):
        cache = PageCache(CacheParams(capacity_pages=2))
        cache.insert(1, 0)
        cache.insert(1, 1)
        cache.lookup(1, 0)           # refresh 0
        cache.insert(1, 2)           # evicts 1
        assert cache.lookup(1, 0)
        assert not cache.lookup(1, 1)
        assert cache.lookup(1, 2)

    def test_shrink_evicts(self):
        cache = PageCache(CacheParams(capacity_pages=10))
        for block in range(10):
            cache.insert(1, block)
        cache.shrink(0.5)
        assert len(cache) == 5
        assert cache.capacity == 5
        # The *oldest* pages went.
        assert not cache.lookup(1, 0)
        assert cache.lookup(1, 9)

    def test_shrink_bad_factor(self):
        cache = PageCache()
        with pytest.raises(ValueError):
            cache.shrink(0)
        with pytest.raises(ValueError):
            cache.shrink(1.5)

    def test_invalidate_volume(self):
        cache = PageCache(CacheParams(capacity_pages=10))
        cache.insert(1, 0)
        cache.insert(2, 0)
        cache.invalidate_volume(1)
        assert not cache.lookup(1, 0)
        assert cache.lookup(2, 0)

    def test_invalidate_single(self):
        cache = PageCache()
        cache.insert(1, 7)
        cache.invalidate(1, 7)
        assert not cache.lookup(1, 7)
        cache.invalidate(1, 7)       # idempotent
