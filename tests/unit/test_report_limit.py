"""Tests for the report module and the PQL LIMIT clause."""

import pytest

from repro.core.pnode import ObjectRef
from repro.core.records import Attr, ObjType, ProvenanceRecord
from repro.pql.engine import QueryEngine
from repro.query.report import ancestry_tree, summarize_object, to_dot
from repro.storage.database import ProvenanceDatabase


def R(pnode, version, attr, value):
    return ProvenanceRecord(ObjectRef(pnode, version), attr, value)


@pytest.fixture
def db():
    database = ProvenanceDatabase()
    database.insert_many([
        R(1, 0, Attr.NAME, "/in"),
        R(1, 0, Attr.TYPE, ObjType.FILE),
        R(2, 0, Attr.NAME, "cc"),
        R(2, 0, Attr.TYPE, ObjType.PROCESS),
        R(2, 0, Attr.INPUT, ObjectRef(1, 0)),
        R(3, 0, Attr.NAME, "/out"),
        R(3, 0, Attr.TYPE, ObjType.FILE),
        R(3, 0, Attr.INPUT, ObjectRef(2, 0)),
        # A second consumer of the same input (diamond).
        R(4, 0, Attr.NAME, "ld"),
        R(4, 0, Attr.TYPE, ObjType.PROCESS),
        R(4, 0, Attr.INPUT, ObjectRef(1, 0)),
        R(3, 0, Attr.INPUT, ObjectRef(4, 0)),
    ])
    return database


class TestAncestryTree:
    def test_tree_structure(self, db):
        tree = ancestry_tree([db], ObjectRef(3, 0))
        lines = tree.splitlines()
        assert lines[0] == "/out [FILE]"
        assert "  cc [PROCESS]" in lines
        assert "    /in [FILE]" in lines

    def test_repeated_nodes_folded(self, db):
        tree = ancestry_tree([db], ObjectRef(3, 0))
        assert tree.count("/in [FILE]") == 2
        assert "(see above)" in tree

    def test_depth_limit(self, db):
        # Build a deep chain: 10 <- 11 <- 12 ...
        for index in range(10, 30):
            db.insert(R(index, 0, Attr.INPUT, ObjectRef(index + 1, 0)))
        tree = ancestry_tree([db], ObjectRef(10, 0), max_depth=3)
        assert "beyond depth limit" in tree

    def test_unnamed_objects_fall_back_to_pnode(self, db):
        db.insert(R(99, 0, Attr.PID, 7))
        tree = ancestry_tree([db], ObjectRef(99, 0))
        assert "pnode 99" in tree

    def test_version_shown(self, db):
        db.insert(R(3, 2, Attr.PREV_VERSION, ObjectRef(3, 0)))
        tree = ancestry_tree([db], ObjectRef(3, 2))
        assert "v2" in tree


class TestDot:
    def test_dot_contains_nodes_and_edges(self, db):
        dot = to_dot([db], [ObjectRef(3, 0)])
        assert dot.startswith("digraph provenance")
        assert 'label="/out [FILE]"' in dot
        assert "n3_0 -> n2_0" in dot
        assert 'label="input"' in dot

    def test_dot_descendants_direction(self, db):
        dot = to_dot([db], [ObjectRef(1, 0)], direction="descendants")
        assert "n2_0 -> n1_0" in dot

    def test_dot_node_cap(self, db):
        for index in range(100, 160):
            db.insert(R(index, 0, Attr.INPUT, ObjectRef(index + 1, 0)))
        dot = to_dot([db], [ObjectRef(100, 0)], max_nodes=5)
        import re
        node_lines = [line for line in dot.splitlines()
                      if re.match(r"^  n\d+_\d+ \[label=", line)]
        assert len(node_lines) == 5

    def test_bad_direction(self, db):
        with pytest.raises(ValueError):
            to_dot([db], [ObjectRef(1, 0)], direction="sideways")


class TestSummarize:
    def test_summary_lists_records(self, db):
        text = summarize_object([db], ObjectRef(3, 0))
        assert "/out" in text
        assert Attr.INPUT in text
        assert "cc [PROCESS]" in text


class TestLimit:
    @pytest.fixture
    def engine(self, db):
        return QueryEngine.from_records(db.all_records())

    def test_limit_truncates(self, engine):
        rows = engine.execute("select N from Provenance.node as N limit 2")
        assert len(rows) == 2

    def test_limit_zero(self, engine):
        assert engine.execute(
            "select N from Provenance.node as N limit 0") == []

    def test_limit_larger_than_results(self, engine):
        rows = engine.execute(
            "select F from Provenance.file as F limit 100")
        assert len(rows) == 2

    def test_limit_after_where(self, engine):
        rows = engine.execute(
            'select F from Provenance.file as F '
            'where F.name like "%" limit 1')
        assert len(rows) == 1

    def test_negative_limit_rejected(self, engine):
        from repro.core.errors import PQLSyntaxError
        with pytest.raises(PQLSyntaxError):
            engine.execute("select F from Provenance.file as F limit -1")
