"""Unit tests for the analyzer: dedup and cycle avoidance."""

from repro.core.analyzer import Analyzer, ProtoRecord
from repro.core.pnode import ObjectRef
from repro.core.records import Attr, ProvenanceRecord


class FakeObject:
    """Minimal freezable object."""

    def __init__(self, pnode):
        self.pnode = pnode
        self.version = 0

    def ref(self):
        return ObjectRef(self.pnode, self.version)


def make_analyzer():
    out = []
    analyzer = Analyzer(emit=out.append)
    return analyzer, out


def edges(records):
    return [(r.subject, r.value) for r in records if r.is_ancestry]


class TestDedup:
    def test_identical_records_collapse(self):
        analyzer, out = make_analyzer()
        proc, file_ = FakeObject(1), FakeObject(2)
        for _ in range(10):
            analyzer.submit(ProtoRecord(proc, Attr.INPUT, file_.ref()))
        assert len(out) == 1
        assert analyzer.duplicates_dropped == 9

    def test_different_attrs_not_deduped(self):
        analyzer, out = make_analyzer()
        obj = FakeObject(1)
        analyzer.submit(ProtoRecord(obj, Attr.NAME, "a"))
        analyzer.submit(ProtoRecord(obj, Attr.TYPE, "a"))
        assert len(out) == 2

    def test_dedup_scope_is_one_version(self):
        analyzer, out = make_analyzer()
        proc, file_ = FakeObject(1), FakeObject(2)
        analyzer.submit(ProtoRecord(proc, Attr.INPUT, file_.ref()))
        analyzer.freeze(proc)
        analyzer.submit(ProtoRecord(proc, Attr.INPUT, file_.ref()))
        # Same logical statement about a *new* version is a new record.
        assert len(edges(out)) == 3  # input, prev_version, input

    def test_new_version_of_value_is_new_record(self):
        analyzer, out = make_analyzer()
        proc, file_ = FakeObject(1), FakeObject(2)
        analyzer.submit(ProtoRecord(proc, Attr.INPUT, file_.ref()))
        file_.version += 1
        analyzer.submit(ProtoRecord(proc, Attr.INPUT, file_.ref()))
        assert len(out) == 2


class TestCycleAvoidance:
    def test_read_then_write_back_freezes(self):
        """P reads A, P writes A: writing into the version P read would
        make A:0 -> P -> A:0; the analyzer must freeze A first."""
        analyzer, out = make_analyzer()
        proc, file_a = FakeObject(1), FakeObject(2)
        analyzer.submit(ProtoRecord(proc, Attr.INPUT, file_a.ref()))
        analyzer.submit(ProtoRecord(file_a, Attr.INPUT, proc.ref()))
        assert file_a.version == 1
        assert analyzer.freezes == 1

    def test_write_then_read_back_freezes_process(self):
        """P writes A then reads it back: P's current version would
        depend on A which depends on P -- P gets a new version."""
        analyzer, out = make_analyzer()
        proc, file_a = FakeObject(1), FakeObject(2)
        analyzer.submit(ProtoRecord(file_a, Attr.INPUT, proc.ref()))
        analyzer.submit(ProtoRecord(proc, Attr.INPUT, file_a.ref()))
        assert proc.version == 1

    def test_two_process_file_pingpong_stays_acyclic(self):
        """The classic concurrent scenario: P and Q alternately read the
        file the other writes.  Versions must keep the graph acyclic."""
        analyzer, out = make_analyzer()
        p, q = FakeObject(1), FakeObject(2)
        a, b = FakeObject(3), FakeObject(4)
        for _ in range(4):
            analyzer.submit(ProtoRecord(p, Attr.INPUT, a.ref()))
            analyzer.submit(ProtoRecord(b, Attr.INPUT, p.ref()))
            analyzer.submit(ProtoRecord(q, Attr.INPUT, b.ref()))
            analyzer.submit(ProtoRecord(a, Attr.INPUT, q.ref()))
        assert_acyclic(out)

    def test_self_reference_to_older_version_allowed(self):
        analyzer, out = make_analyzer()
        file_a = FakeObject(1)
        analyzer.freeze(file_a)
        # A:1 depends on A:0 -- legitimate (that is what freeze created).
        analyzer.submit(ProtoRecord(file_a, Attr.INPUT, ObjectRef(1, 0)))
        assert file_a.version == 1     # no extra freeze

    def test_self_reference_to_current_version_freezes(self):
        analyzer, out = make_analyzer()
        file_a = FakeObject(1)
        analyzer.submit(ProtoRecord(file_a, Attr.INPUT, file_a.ref()))
        assert file_a.version == 1
        assert_acyclic(out)

    def test_freeze_emits_prev_version_edge(self):
        analyzer, out = make_analyzer()
        obj = FakeObject(1)
        analyzer.freeze(obj)
        prev = [r for r in out if r.attr == Attr.PREV_VERSION]
        assert prev == [ProvenanceRecord(ObjectRef(1, 1),
                                         Attr.PREV_VERSION, ObjectRef(1, 0))]

    def test_on_freeze_hook_fires(self):
        analyzer, _ = make_analyzer()
        seen = []
        analyzer.on_freeze = lambda obj, version: seen.append((obj.pnode,
                                                               version))
        obj = FakeObject(9)
        analyzer.freeze(obj)
        assert seen == [(9, 1)]

    def test_transitive_cycle_detected_via_local_sets(self):
        """A -> P -> B -> Q; then Q writes A.  Q's local ancestry
        includes A:0 transitively, so A must be frozen first."""
        analyzer, out = make_analyzer()
        p, q = FakeObject(1), FakeObject(2)
        a, b = FakeObject(3), FakeObject(4)
        analyzer.submit(ProtoRecord(p, Attr.INPUT, a.ref()))      # P <- A
        analyzer.submit(ProtoRecord(b, Attr.INPUT, p.ref()))      # B <- P
        analyzer.submit(ProtoRecord(q, Attr.INPUT, b.ref()))      # Q <- B
        analyzer.submit(ProtoRecord(a, Attr.INPUT, q.ref()))      # A <- Q !
        assert a.version == 1
        assert_acyclic(out)

    def test_independent_objects_never_freeze(self):
        analyzer, out = make_analyzer()
        proc = FakeObject(1)
        for pnode in range(2, 50):
            analyzer.submit(ProtoRecord(proc, Attr.INPUT,
                                        FakeObject(pnode).ref()))
        assert analyzer.freezes == 0


class TestFinalizedRecords:
    def test_prefinalized_record_passes_through(self):
        analyzer, out = make_analyzer()
        record = ProvenanceRecord(ObjectRef(1, 0), Attr.NAME, "wire")
        analyzer.submit(record)
        assert out == [record]

    def test_prefinalized_record_deduped(self):
        analyzer, out = make_analyzer()
        record = ProvenanceRecord(ObjectRef(1, 0), Attr.NAME, "wire")
        analyzer.submit(record)
        analyzer.submit(record)
        assert len(out) == 1


class TestRegistry:
    def test_register_and_lookup(self):
        analyzer, _ = make_analyzer()
        obj = FakeObject(42)
        analyzer.register(obj)
        assert analyzer.lookup(42) is obj

    def test_forget(self):
        analyzer, _ = make_analyzer()
        obj = FakeObject(42)
        analyzer.register(obj)
        analyzer.forget(42)
        assert analyzer.lookup(42) is None


def assert_acyclic(records):
    """The emitted ancestry edges over (pnode, version) must be a DAG."""
    graph = {}
    for record in records:
        if record.is_ancestry:
            graph.setdefault(record.subject, []).append(record.value)
    WHITE, GRAY, BLACK = 0, 1, 2
    color = {}

    def visit(node):
        color[node] = GRAY
        for child in graph.get(node, ()):
            state = color.get(child, WHITE)
            if state == GRAY:
                raise AssertionError(f"cycle through {child}")
            if state == WHITE:
                visit(child)
        color[node] = BLACK

    for node in list(graph):
        if color.get(node, WHITE) == WHITE:
            visit(node)
