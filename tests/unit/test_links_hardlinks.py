"""Tests for hard links: shared inodes, shared provenance."""

import pytest

from repro.core.errors import CrossDeviceLink, FileExists, IsADirectory
from repro.core.records import Attr
from tests.conftest import write_file


class TestVfsLink:
    def test_both_names_resolve_to_same_inode(self, baseline):
        with baseline.process() as proc:
            fd = proc.open("/pass/orig", "w")
            proc.write(fd, b"shared content")
            proc.close(fd)
            proc.link("/pass/orig", "/pass/alias")
            assert proc.stat("/pass/orig")["ino"] \
                == proc.stat("/pass/alias")["ino"]
            fd = proc.open("/pass/alias", "r")
            assert proc.read(fd) == b"shared content"

    def test_writes_visible_through_either_name(self, baseline):
        with baseline.process() as proc:
            fd = proc.open("/pass/a", "w")
            proc.write(fd, b"v1")
            proc.close(fd)
            proc.link("/pass/a", "/pass/b")
            fd = proc.open("/pass/b", "w")
            proc.write(fd, b"v2")
            proc.close(fd)
            fd = proc.open("/pass/a", "r")
            assert proc.read(fd) == b"v2"

    def test_unlink_one_name_keeps_inode(self, baseline):
        with baseline.process() as proc:
            fd = proc.open("/pass/a", "w")
            proc.write(fd, b"data")
            proc.close(fd)
            proc.link("/pass/a", "/pass/b")
            proc.unlink("/pass/a")
            fd = proc.open("/pass/b", "r")
            assert proc.read(fd) == b"data"

    def test_unlink_last_name_drops_inode(self, baseline):
        with baseline.process() as proc:
            fd = proc.open("/pass/a", "w")
            proc.write(fd, b"data")
            proc.close(fd)
            proc.link("/pass/a", "/pass/b")
            proc.unlink("/pass/a")
            proc.unlink("/pass/b")
            assert not proc.exists("/pass/a")
            assert not proc.exists("/pass/b")

    def test_link_to_existing_name_rejected(self, baseline):
        with baseline.process() as proc:
            for name in ("a", "b"):
                fd = proc.open(f"/pass/{name}", "w")
                proc.write(fd, b"x")
                proc.close(fd)
            with pytest.raises(FileExists):
                proc.link("/pass/a", "/pass/b")

    def test_link_directory_rejected(self, baseline):
        with baseline.process() as proc:
            proc.mkdir("/pass/d")
            with pytest.raises(IsADirectory):
                proc.link("/pass/d", "/pass/d2")

    def test_cross_volume_link_rejected(self, baseline):
        with baseline.process() as proc:
            fd = proc.open("/pass/a", "w")
            proc.write(fd, b"x")
            proc.close(fd)
            with pytest.raises(CrossDeviceLink):
                proc.link("/pass/a", "/scratch/a")


class TestLinkProvenance:
    def test_provenance_shared_across_names(self, system):
        write_file(system, "/pass/downloaded", b"payload")
        with system.process() as proc:
            proc.mkdir("/pass/talk")
            proc.link("/pass/downloaded", "/pass/talk/figure")
        system.sync()
        db = system.database("pass")
        via_old = db.find_by_name("/pass/downloaded")
        via_new = db.find_by_name("/pass/talk/figure")
        assert via_old and via_new
        assert via_old[0].pnode == via_new[0].pnode

    def test_ancestry_reachable_from_link_name(self, system):
        write_file(system, "/pass/src", b"input")
        with system.process(argv=["builder"]) as proc:
            fd = proc.open("/pass/src", "r")
            data = proc.read(fd)
            proc.close(fd)
            out = proc.open("/pass/built", "w")
            proc.write(out, data)
            proc.close(out)
            proc.link("/pass/built", "/pass/release")
        system.sync()
        db = system.database("pass")
        ref = db.find_by_name("/pass/release")[0]
        from tests.integration.test_pipeline import transitive_ancestors
        names = set()
        for anc in transitive_ancestors(db, ref):
            names.update(db.attribute_values(anc, Attr.NAME))
        assert "/pass/src" in names
        assert "builder" in names
