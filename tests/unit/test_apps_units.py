"""Unit tests for the application layers' internals."""

import pytest

from repro.apps.kepler.actors import (
    ColumnExtractor,
    Combiner,
    ExpressionEvaluator,
    FileSink,
    FileSource,
    FiringContext,
    LineParser,
    Token,
    Transformer,
)
from repro.apps.kepler.workflow import Workflow
from repro.core.errors import WorkflowError
from repro.system import System


def fire(actor, inputs=None, params=None, sc=None):
    ctx = FiringContext(
        inputs={port: Token(value) for port, value in (inputs or {}).items()},
        params={**actor.params, **(params or {})},
        sc=sc,
    )
    actor.fire(ctx)
    return dict(ctx._emitted)


class TestActorLibrary:
    def test_transformer(self):
        actor = Transformer("t", fn=lambda x: x * 2)
        assert fire(actor, {"in": 3}) == {"out": 6}

    def test_transformer_requires_fn(self):
        with pytest.raises(WorkflowError):
            fire(Transformer("t"), {"in": 3})

    def test_line_parser_tabs(self):
        actor = LineParser("p")
        out = fire(actor, {"in": b"a\t1\nb\t2\n\n"})
        assert out["out"] == [["a", "1"], ["b", "2"]]

    def test_line_parser_custom_delimiter(self):
        actor = LineParser("p", delimiter=",")
        out = fire(actor, {"in": "x,1\ny,2"})
        assert out["out"] == [["x", "1"], ["y", "2"]]

    def test_column_extractor(self):
        actor = ColumnExtractor("c", column=1)
        out = fire(actor, {"in": [["a", "1"], ["b", "2"], ["short"]]})
        assert out["out"] == ["1", "2"]

    def test_expression_evaluator_format_string(self):
        actor = ExpressionEvaluator("e", expression="v=%s")
        out = fire(actor, {"in": ["1", "2"]})
        assert out["out"] == b"v=1\nv=2"

    def test_expression_evaluator_callable(self):
        actor = ExpressionEvaluator("e", expression=lambda v: int(v) * 10)
        out = fire(actor, {"in": ["1", "2"]})
        assert out["out"] == b"10\n20"

    def test_combiner_default_concat(self):
        actor = Combiner("c", arity=3)
        out = fire(actor, {"in0": b"a", "in1": b"b", "in2": b"c"})
        assert out["out"] == b"abc"

    def test_combiner_custom_fn(self):
        actor = Combiner("c", arity=2, fn=lambda vs: sum(vs))
        out = fire(actor, {"in0": 1, "in1": 2})
        assert out["out"] == 3

    def test_file_source_requires_path(self):
        with pytest.raises(WorkflowError):
            fire(FileSource("s"))

    def test_file_sink_accepts_filename_alias(self, baseline):
        with baseline.process() as proc:
            actor = FileSink("k", fileName="/pass/aliased")
            fire(actor, {"in": b"data"}, sc=proc)
            fd = proc.open("/pass/aliased", "r")
            assert proc.read(fd) == b"data"

    def test_ready_semantics(self):
        actor = Combiner("c", arity=2)
        assert not actor.ready({"in0": 1, "in1": 0})
        assert actor.ready({"in0": 1, "in1": 2})

    def test_emit_unknown_port_detected_by_director(self, baseline):
        class Rogue(Transformer):
            def fire(self, ctx):
                ctx.emit("bogus", 1)

        wf = Workflow("rogue")
        wf.add(FileSource("src", path="/pass/in"))
        wf.add(Rogue("r", fn=lambda x: x))
        wf.connect("src", "out", "r", "in")
        from repro.apps.kepler.director import run_workflow
        with baseline.process() as proc:
            fd = proc.open("/pass/in", "w")
            proc.write(fd, b"x")
            proc.close(fd)
        with pytest.raises(WorkflowError):
            run_workflow(baseline, wf, recording=None)


class TestWorkflowGraph:
    def test_upstream_of(self):
        wf = Workflow("w")
        wf.add(FileSource("a", path="/x"))
        wf.add(Transformer("b", fn=lambda x: x))
        wf.connect("a", "out", "b", "in")
        assert wf.upstream_of("b") == {"a"}
        assert wf.upstream_of("a") == set()

    def test_sources(self):
        wf = Workflow("w")
        wf.add(FileSource("a", path="/x"))
        wf.add(Transformer("b", fn=lambda x: x))
        assert [actor.name for actor in wf.sources()] == ["a"]

    def test_unknown_actor(self):
        wf = Workflow("w")
        with pytest.raises(WorkflowError):
            wf.actor("ghost")


class TestWebModelUnits:
    def test_publish_replaces(self):
        from repro.apps.links import Web
        web = Web()
        web.publish("http://a/", content=b"v1")
        web.publish("http://a/", content=b"v2")
        page, _ = web.fetch("http://a/")
        assert page.content == b"v2"

    def test_request_counter(self):
        from repro.apps.links import Web
        web = Web()
        web.publish("http://a/")
        web.fetch("http://a/")
        web.fetch("http://a/")
        assert web.requests == 2

    def test_urls_sorted(self):
        from repro.apps.links import Web
        web = Web()
        web.publish("http://b/")
        web.publish("http://a/")
        assert web.urls() == ["http://a/", "http://b/"]

    def test_follow_bad_link_index(self, system):
        from repro.apps.links import Browser, Web
        from repro.core.errors import BrowserError
        web = Web()
        web.publish("http://a/", links=[])

        def program(sc):
            browser = Browser(sc, web)
            session = browser.new_session()
            browser.visit(session, "http://a/")
            with pytest.raises(BrowserError):
                browser.follow_link(session, 5)
            return 0

        system.register_program("/pass/bin/links", program)
        system.run("/pass/bin/links")

    def test_download_without_visit_counts_as_visit(self, system):
        from repro.apps.links import Browser, Web
        web = Web()
        web.publish("http://direct/file", content=b"x")

        def program(sc):
            browser = Browser(sc, web)
            session = browser.new_session()
            browser.download(session, "http://direct/file", "/pass/dl")
            assert "http://direct/file" in session.history
            return 0

        system.register_program("/pass/bin/links", program)
        system.run("/pass/bin/links")


class TestPaPythonUnits:
    def test_wrapped_function_name(self, system):
        from repro.apps.papython import ProvenanceTracker

        def program(sc):
            tracker = ProvenanceTracker(sc)

            def compute(x):
                return x

            wrapped = tracker.wrap_function(compute)
            assert wrapped.__name__ == "pa_compute"
            assert hasattr(wrapped, "provenance_fd")
            return 0

        system.register_program("/pass/bin/app", program)
        system.run("/pass/bin/app")

    def test_kwargs_tracked(self, system):
        from repro.apps.papython import ProvenanceTracker

        def program(sc):
            tracker = ProvenanceTracker(sc)
            fn = tracker.wrap_function(lambda a, b=0: a + b, name="add")
            tracked = tracker.wrap_value(5, "five")
            result = fn(1, b=tracked)
            assert result.value == 6
            return 0

        system.register_program("/pass/bin/app", program)
        system.run("/pass/bin/app")

    def test_wrap_module_name_filter(self, system):
        from repro.apps.papython import ProvenanceTracker

        def program(sc):
            tracker = ProvenanceTracker(sc)
            module = {"keep": lambda: 1, "skip": lambda: 2}
            wrapped = tracker.wrap_module(module, names=["keep"])
            assert list(wrapped) == ["keep"]
            return 0

        system.register_program("/pass/bin/app", program)
        system.run("/pass/bin/app")

    def test_write_file_plain_value(self, system):
        from repro.apps.papython import ProvenanceTracker

        def program(sc):
            tracker = ProvenanceTracker(sc)
            tracker.write_file("/pass/plain", "not tracked")
            fd = sc.open("/pass/plain", "r")
            assert sc.read(fd) == b"not tracked"
            return 0

        system.register_program("/pass/bin/app", program)
        system.run("/pass/bin/app")
