"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import BENCH_SCHEMA, SCENARIOS, main
from repro.obs import FIGURE2_LAYERS, LAYERS


class TestDemoCommand:
    def test_quickstart_query(self, capsys):
        assert main(["demo", "--scenario", "quickstart", "--query",
                     "select F.name from Provenance.file as F "
                     'where F.name like "/pass/%"']) == 0
        out = capsys.readouterr().out
        assert "/pass/raw.dat" in out
        assert "/pass/result.dat" in out

    def test_tree_output(self, capsys):
        assert main(["demo", "--scenario", "quickstart",
                     "--tree", "/pass/result.dat"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("/pass/result.dat")
        assert "transform" in out

    def test_dot_to_stdout(self, capsys):
        assert main(["demo", "--scenario", "quickstart", "--dot", "-"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph provenance")

    def test_dot_to_file(self, tmp_path, capsys):
        target = tmp_path / "graph.dot"
        assert main(["demo", "--dot", str(target)]) == 0
        assert target.read_text().startswith("digraph provenance")

    def test_no_action_hint(self, capsys):
        assert main(["demo"]) == 0
        assert "nothing asked" in capsys.readouterr().err

    def test_malware_scenario_builds(self):
        system = SCENARIOS["malware"]()
        assert system.find_by_name("/pass/codec.bin")

    def test_challenge_scenario_builds(self):
        system = SCENARIOS["challenge"]()
        assert system.find_by_name("/pass/out/atlas-x.gif")

    def test_node_rows_rendered(self, capsys):
        assert main(["demo", "--query",
                     "select F from Provenance.file as F limit 1"]) == 0
        out = capsys.readouterr().out
        assert "[FILE]" in out

    def test_tuple_rows_rendered(self, capsys):
        assert main(["demo", "--query",
                     "select F, F.name from Provenance.file as F "
                     "limit 1"]) == 0
        assert "|" in capsys.readouterr().out


class TestOtherCommands:
    def test_inspect(self, capsys):
        assert main(["inspect"]) == 0
        out = capsys.readouterr().out
        for component in ("interceptor", "analyzer", "distributor",
                          "lasagna", "waldo"):
            assert component in out

    def test_bench_tiny(self, capsys):
        assert main(["bench", "--scale", "0.02", "--out", "-"]) == 0
        out = capsys.readouterr().out
        assert "Linux Compile" in out
        assert "%" in out

    def test_bench_writes_results_json(self, tmp_path, capsys):
        target = tmp_path / "BENCH_results.json"
        assert main(["bench", "--scale", "0.02",
                     "--out", str(target)]) == 0
        results = json.loads(target.read_text())
        assert results["schema"] == BENCH_SCHEMA
        assert results["scale"] == 0.02
        workload = results["workloads"]["Linux Compile"]
        for key in ("ext3_elapsed_s", "passv2_elapsed_s", "overhead_pct",
                    "provenance_bytes", "index_bytes", "layers"):
            assert key in workload
        # Per-layer breakdown covers the documented contract keys.
        for layer in LAYERS:
            assert layer in workload["layers"]

    def test_bench_suite_quick_merges_results(self, tmp_path, capsys):
        target = tmp_path / "BENCH_results.json"
        assert main(["bench", "--suite", "all", "--quick",
                     "--out", str(target)]) == 0
        document = json.loads(target.read_text())
        assert document["schema"] == "repro-bench-suite/1"
        suites = document["suites"]
        assert suites["ingest"]["schema"] == "repro-bench-ingest/1"
        assert (suites["incremental_query"]["schema"]
                == "repro-bench-incremental/1")
        for payload in suites.values():
            assert payload["records_total"] > 0
            assert payload["speedup"] > 0

    def test_bench_suite_merge_preserves_legacy_payload(self, tmp_path,
                                                        capsys):
        """A pre-suite BENCH_results.json is wrapped, not clobbered."""
        target = tmp_path / "BENCH_results.json"
        assert main(["bench", "--scale", "0.02", "--out", str(target)]) == 0
        assert main(["bench", "--suite", "ingest", "--quick",
                     "--out", str(target)]) == 0
        document = json.loads(target.read_text())
        assert document["schema"] == "repro-bench-suite/1"
        assert document["suites"]["workloads"]["schema"] == BENCH_SCHEMA
        assert "Linux Compile" in document["suites"]["workloads"]["workloads"]
        assert document["suites"]["ingest"]["schema"] == "repro-bench-ingest/1"

    def test_bench_suite_unknown_name_errors(self, capsys):
        assert main(["bench", "--suite", "nope", "--out", "-"]) == 2

    def test_stats_text(self, capsys):
        assert main(["stats"]) == 0
        out = capsys.readouterr().out
        for layer in FIGURE2_LAYERS:
            assert f"== {layer} ==" in out

    def test_stats_json_contract(self, capsys):
        assert main(["stats", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["scenario"] == "quickstart"
        assert payload["simulated_elapsed_s"] > 0
        for layer in LAYERS:
            assert layer in payload["layers"]
        for layer in FIGURE2_LAYERS:
            counters = payload["layers"][layer]["counters"]
            assert sum(counters.values()) > 0, layer

    def test_stats_with_tracing(self, capsys):
        assert main(["stats", "--trace", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["spans_collected"] > 0

    def test_trace_text(self, capsys):
        assert main(["trace"]) == 0
        out = capsys.readouterr().out
        assert "pql.execute" in out
        assert "waldo.drain" in out
        assert "sim=" in out and "wall=" in out

    def test_trace_json_with_limit(self, capsys):
        assert main(["trace", "--json", "--limit", "3"]) == 0
        spans = json.loads(capsys.readouterr().out)
        assert len(spans) == 3
        assert spans[-1]["name"] == "pql.execute"

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_unknown_scenario_rejected(self):
        with pytest.raises(SystemExit):
            main(["demo", "--scenario", "nope"])
