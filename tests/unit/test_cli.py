"""Tests for the command-line interface."""

import pytest

from repro.cli import SCENARIOS, main


class TestDemoCommand:
    def test_quickstart_query(self, capsys):
        assert main(["demo", "--scenario", "quickstart", "--query",
                     "select F.name from Provenance.file as F "
                     'where F.name like "/pass/%"']) == 0
        out = capsys.readouterr().out
        assert "/pass/raw.dat" in out
        assert "/pass/result.dat" in out

    def test_tree_output(self, capsys):
        assert main(["demo", "--scenario", "quickstart",
                     "--tree", "/pass/result.dat"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("/pass/result.dat")
        assert "transform" in out

    def test_dot_to_stdout(self, capsys):
        assert main(["demo", "--scenario", "quickstart", "--dot", "-"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph provenance")

    def test_dot_to_file(self, tmp_path, capsys):
        target = tmp_path / "graph.dot"
        assert main(["demo", "--dot", str(target)]) == 0
        assert target.read_text().startswith("digraph provenance")

    def test_no_action_hint(self, capsys):
        assert main(["demo"]) == 0
        assert "nothing asked" in capsys.readouterr().err

    def test_malware_scenario_builds(self):
        system = SCENARIOS["malware"]()
        assert system.find_by_name("/pass/codec.bin")

    def test_challenge_scenario_builds(self):
        system = SCENARIOS["challenge"]()
        assert system.find_by_name("/pass/out/atlas-x.gif")

    def test_node_rows_rendered(self, capsys):
        assert main(["demo", "--query",
                     "select F from Provenance.file as F limit 1"]) == 0
        out = capsys.readouterr().out
        assert "[FILE]" in out

    def test_tuple_rows_rendered(self, capsys):
        assert main(["demo", "--query",
                     "select F, F.name from Provenance.file as F "
                     "limit 1"]) == 0
        assert "|" in capsys.readouterr().out


class TestOtherCommands:
    def test_inspect(self, capsys):
        assert main(["inspect"]) == 0
        out = capsys.readouterr().out
        for component in ("interceptor", "analyzer", "distributor",
                          "lasagna", "waldo"):
            assert component in out

    def test_bench_tiny(self, capsys):
        assert main(["bench", "--scale", "0.02"]) == 0
        out = capsys.readouterr().out
        assert "Linux Compile" in out
        assert "%" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_unknown_scenario_rejected(self):
        with pytest.raises(SystemExit):
            main(["demo", "--scenario", "nope"])
