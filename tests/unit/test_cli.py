"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import BENCH_SCHEMA, SCENARIOS, main
from repro.obs import FIGURE2_LAYERS, LAYERS


class TestDemoCommand:
    def test_quickstart_query(self, capsys):
        assert main(["demo", "--scenario", "quickstart", "--query",
                     "select F.name from Provenance.file as F "
                     'where F.name like "/pass/%"']) == 0
        out = capsys.readouterr().out
        assert "/pass/raw.dat" in out
        assert "/pass/result.dat" in out

    def test_tree_output(self, capsys):
        assert main(["demo", "--scenario", "quickstart",
                     "--tree", "/pass/result.dat"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("/pass/result.dat")
        assert "transform" in out

    def test_dot_to_stdout(self, capsys):
        assert main(["demo", "--scenario", "quickstart", "--dot", "-"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph provenance")

    def test_dot_to_file(self, tmp_path, capsys):
        target = tmp_path / "graph.dot"
        assert main(["demo", "--dot", str(target)]) == 0
        assert target.read_text().startswith("digraph provenance")

    def test_no_action_hint(self, capsys):
        assert main(["demo"]) == 0
        assert "nothing asked" in capsys.readouterr().err

    def test_malware_scenario_builds(self):
        system = SCENARIOS["malware"]()
        assert system.find_by_name("/pass/codec.bin")

    def test_challenge_scenario_builds(self):
        system = SCENARIOS["challenge"]()
        assert system.find_by_name("/pass/out/atlas-x.gif")

    def test_node_rows_rendered(self, capsys):
        assert main(["demo", "--query",
                     "select F from Provenance.file as F limit 1"]) == 0
        out = capsys.readouterr().out
        assert "[FILE]" in out

    def test_tuple_rows_rendered(self, capsys):
        assert main(["demo", "--query",
                     "select F, F.name from Provenance.file as F "
                     "limit 1"]) == 0
        assert "|" in capsys.readouterr().out


class TestOtherCommands:
    def test_inspect(self, capsys):
        assert main(["inspect"]) == 0
        out = capsys.readouterr().out
        for component in ("interceptor", "analyzer", "distributor",
                          "lasagna", "waldo"):
            assert component in out

    def test_bench_tiny(self, capsys):
        assert main(["bench", "--scale", "0.02", "--out", "-"]) == 0
        out = capsys.readouterr().out
        assert "Linux Compile" in out
        assert "%" in out

    def test_bench_writes_results_json(self, tmp_path, capsys):
        target = tmp_path / "BENCH_results.json"
        assert main(["bench", "--scale", "0.02",
                     "--out", str(target)]) == 0
        results = json.loads(target.read_text())
        assert results["schema"] == BENCH_SCHEMA
        assert results["scale"] == 0.02
        workload = results["workloads"]["Linux Compile"]
        for key in ("ext3_elapsed_s", "passv2_elapsed_s", "overhead_pct",
                    "provenance_bytes", "index_bytes", "layers"):
            assert key in workload
        # Per-layer breakdown covers the documented contract keys.
        for layer in LAYERS:
            assert layer in workload["layers"]

    def test_bench_suite_quick_merges_results(self, tmp_path, capsys):
        target = tmp_path / "BENCH_results.json"
        assert main(["bench", "--suite", "all", "--quick",
                     "--out", str(target)]) == 0
        document = json.loads(target.read_text())
        assert document["schema"] == "repro-bench-suite/1"
        suites = document["suites"]
        assert suites["ingest"]["schema"] == "repro-bench-ingest/1"
        assert (suites["incremental_query"]["schema"]
                == "repro-bench-incremental/1")
        assert suites["obs_overhead"]["schema"] == "repro-bench-obs/1"
        for payload in suites.values():
            assert payload["records_total"] > 0
        assert suites["ingest"]["speedup"] > 0
        assert "overhead_pct" in suites["obs_overhead"]

    def test_bench_suite_merge_preserves_legacy_payload(self, tmp_path,
                                                        capsys):
        """A pre-suite BENCH_results.json is wrapped, not clobbered."""
        target = tmp_path / "BENCH_results.json"
        assert main(["bench", "--scale", "0.02", "--out", str(target)]) == 0
        assert main(["bench", "--suite", "ingest", "--quick",
                     "--out", str(target)]) == 0
        document = json.loads(target.read_text())
        assert document["schema"] == "repro-bench-suite/1"
        assert document["suites"]["workloads"]["schema"] == BENCH_SCHEMA
        assert "Linux Compile" in document["suites"]["workloads"]["workloads"]
        assert document["suites"]["ingest"]["schema"] == "repro-bench-ingest/1"

    def test_bench_suite_unknown_name_errors(self, capsys):
        assert main(["bench", "--suite", "nope", "--out", "-"]) == 2

    def test_stats_text(self, capsys):
        assert main(["stats"]) == 0
        out = capsys.readouterr().out
        for layer in FIGURE2_LAYERS:
            assert f"== {layer} ==" in out

    def test_stats_json_contract(self, capsys):
        assert main(["stats", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["scenario"] == "quickstart"
        assert payload["simulated_elapsed_s"] > 0
        for layer in LAYERS:
            assert layer in payload["layers"]
        for layer in FIGURE2_LAYERS:
            counters = payload["layers"][layer]["counters"]
            assert sum(counters.values()) > 0, layer

    def test_stats_with_tracing(self, capsys):
        assert main(["stats", "--trace", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["spans_collected"] > 0

    def test_trace_text(self, capsys):
        assert main(["trace"]) == 0
        out = capsys.readouterr().out
        assert "pql.execute" in out
        assert "waldo.drain" in out
        assert "sim=" in out and "wall=" in out

    def test_trace_json_with_limit(self, capsys):
        assert main(["trace", "--json", "--limit", "3"]) == 0
        document = json.loads(capsys.readouterr().out)
        assert document["dropped_spans"] == 0
        spans = document["spans"]
        assert len(spans) == 3
        assert spans[-1]["name"] == "pql.execute"

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])

    def test_unknown_scenario_rejected(self):
        with pytest.raises(SystemExit):
            main(["demo", "--scenario", "nope"])


class TestPassviewCommands:
    def test_stats_prom_format(self, capsys):
        assert main(["stats", "--format", "prom"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE repro_records_inserted counter" in out
        assert 'layer="waldo"' in out
        # Every non-comment line is "<name_and_labels> <value>".
        for line in out.splitlines():
            if line.startswith("#"):
                continue
            _, _, value = line.rpartition(" ")
            float(value)

    def test_stats_rollup_by_volume(self, capsys):
        assert main(["stats", "--rollup", "volume", "--format",
                     "json"]) == 0
        rolled = json.loads(capsys.readouterr().out)
        assert "pass" in rolled
        assert rolled["pass"]["counters"]["records_inserted"] > 0

    def test_trace_chrome_format(self, capsys):
        assert main(["trace", "--format", "chrome"]) == 0
        document = json.loads(capsys.readouterr().out)
        events = document["traceEvents"]
        assert events[0]["ph"] == "M"
        xs = [e for e in events if e["ph"] == "X"]
        assert any(e["name"] == "waldo.drain" for e in xs)
        for event in xs:
            assert event["dur"] >= 0

    def test_trace_chrome_to_file(self, tmp_path, capsys):
        target = tmp_path / "trace.json"
        assert main(["trace", "--format", "chrome",
                     "--out", str(target)]) == 0
        json.loads(target.read_text())

    def test_profile_table(self, capsys):
        assert main(["profile"]) == 0
        out = capsys.readouterr().out
        assert "pql:pql.execute" in out
        assert "%" in out

    def test_profile_collapsed(self, capsys):
        assert main(["profile", "--format", "collapsed"]) == 0
        out = capsys.readouterr().out
        assert "waldo:waldo.drain" in out
        for line in out.splitlines():
            int(line.rsplit(" ", 1)[1])

    def test_journal_text(self, capsys):
        assert main(["journal"]) == 0
        captured = capsys.readouterr()
        assert "waldo.drain" in captured.out
        assert "events" in captured.err

    def test_journal_jsonl_and_kind_filter(self, capsys):
        assert main(["journal", "--jsonl", "--kind", "waldo.drain"]) == 0
        lines = capsys.readouterr().out.splitlines()
        assert lines
        for line in lines:
            assert json.loads(line)["kind"] == "waldo.drain"

    def test_journal_slow_threshold_zero_records_queries(self, capsys):
        assert main(["journal", "--jsonl", "--kind", "pql.slow_query",
                     "--slow-ms", "0"]) == 0
        lines = capsys.readouterr().out.splitlines()
        assert lines
        event = json.loads(lines[0])
        assert "cache_hit" in event and "wall_s" in event

    def test_health_ok(self, capsys):
        assert main(["health"]) == 0
        assert "health: OK" in capsys.readouterr().out

    def test_health_injected_breach_exits_nonzero(self, capsys):
        assert main(["health", "--max-p99", "0.0"]) == 1
        out = capsys.readouterr().out
        assert "health: FAIL" in out
        assert "query_p99_s" in out

    def test_health_json_verdict(self, capsys):
        assert main(["health", "--json"]) == 0
        verdict = json.loads(capsys.readouterr().out)
        assert verdict["ok"] is True
        names = {check["name"] for check in verdict["checks"]}
        assert {"span_buffer_drops", "query_p99_s",
                "wap_violations"} <= names

    def test_bench_against_compares_two_documents(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        current = tmp_path / "current.json"
        baseline.write_text(json.dumps(
            {"suites": {"ingest": {"speedup": 4.0}}}))
        current.write_text(json.dumps(
            {"suites": {"ingest": {"speedup": 3.8}}}))
        assert main(["bench", "--against", str(baseline),
                     "--out", str(current)]) == 0
        assert "bench compare: OK" in capsys.readouterr().out

    def test_bench_against_regression_exits_nonzero(self, tmp_path,
                                                    capsys):
        baseline = tmp_path / "baseline.json"
        current = tmp_path / "current.json"
        baseline.write_text(json.dumps(
            {"suites": {"ingest": {"speedup": 4.0}}}))
        current.write_text(json.dumps(
            {"suites": {"ingest": {"speedup": 1.0}}}))
        assert main(["bench", "--against", str(baseline),
                     "--out", str(current)]) == 1
        assert "REGRESSED" in capsys.readouterr().out

    def test_bench_against_missing_file_errors(self, tmp_path, capsys):
        assert main(["bench", "--against", str(tmp_path / "nope.json"),
                     "--out", "-"]) == 2

    def test_bench_compare_runs_suites_then_gates(self, tmp_path, capsys):
        target = tmp_path / "BENCH_results.json"
        # First run: no baseline yet -- results become the baseline.
        assert main(["bench", "--suite", "ingest", "--quick",
                     "--out", str(target),
                     "--compare", str(target)]) == 0
        assert "become the baseline" in capsys.readouterr().err
        # Second run compares against the first.  Quick-scale speedup
        # is noisy run to run; a wide tolerance keeps this a test of
        # the compare mechanics, not of benchmark stability.
        assert main(["bench", "--suite", "ingest", "--quick",
                     "--out", str(target),
                     "--compare", str(target),
                     "--tolerance", "0.9"]) == 0
        assert "bench compare:" in capsys.readouterr().out
