"""Unit tests for the PQL lexer."""

import pytest

from repro.core.errors import PQLSyntaxError
from repro.pql.lexer import tokenize


def kinds(text):
    return [(t.kind, t.text) for t in tokenize(text)[:-1]]


class TestBasics:
    def test_keywords_case_insensitive(self):
        assert kinds("SELECT Select select") == [("keyword", "select")] * 3

    def test_identifiers_case_sensitive(self):
        assert kinds("Atlas atlas") == [("ident", "Atlas"), ("ident", "atlas")]

    def test_eof_token_always_present(self):
        assert tokenize("")[-1].kind == "eof"
        assert tokenize("x")[-1].kind == "eof"

    def test_string_double_and_single_quotes(self):
        assert kinds('"abc"') == [("string", "abc")]
        assert kinds("'abc'") == [("string", "abc")]

    def test_string_escapes(self):
        assert kinds(r'"a\"b\n"') == [("string", 'a"b\n')]

    def test_unterminated_string_raises(self):
        with pytest.raises(PQLSyntaxError):
            tokenize('"oops')

    def test_numbers(self):
        assert kinds("42 3.5") == [("number", "42"), ("number", "3.5")]

    def test_number_dot_ident_not_float(self):
        # 'x.3' is invalid anyway; '3.input' must lex as number-dot-ident.
        assert kinds("3.input")[0] == ("number", "3")

    def test_operators(self):
        assert kinds("<= >= != = < >") == [
            ("op", "<="), ("op", ">="), ("op", "!="),
            ("op", "="), ("op", "<"), ("op", ">"),
        ]

    def test_double_equals_normalized(self):
        assert kinds("a == b")[1] == ("op", "=")

    def test_path_symbols(self):
        assert kinds("A.input*") == [
            ("ident", "A"), ("op", "."), ("ident", "input"), ("op", "*"),
        ]

    def test_caret(self):
        assert ("op", "^") in kinds("A.^input")

    def test_comments_skipped(self):
        assert kinds("a # comment\n b") == [("ident", "a"), ("ident", "b")]

    def test_unknown_char_raises_with_position(self):
        with pytest.raises(PQLSyntaxError) as info:
            tokenize("a\n  @")
        assert info.value.line == 2

    def test_positions_tracked(self):
        tokens = tokenize("select\n  Foo")
        assert tokens[0].line == 1
        assert tokens[1].line == 2
        assert tokens[1].column == 2
