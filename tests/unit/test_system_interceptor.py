"""Unit tests for System assembly and the interceptor."""

import pytest

from repro.core.errors import VolumeError
from repro.kernel.interceptor import HANDLED_EVENTS, Interceptor
from repro.system import System


class TestInterceptor:
    def test_disabled_by_default(self):
        interceptor = Interceptor()
        assert interceptor.event("read") is None
        assert interceptor.counts["read"] == 1

    def test_attach_enables(self):
        interceptor = Interceptor()
        sentinel = object()
        interceptor.attach(sentinel)
        assert interceptor.event("write") is sentinel

    def test_detach_disables_but_keeps_counting(self):
        interceptor = Interceptor()
        interceptor.attach(object())
        interceptor.detach()
        assert interceptor.event("write") is None
        assert interceptor.counts["write"] == 1

    def test_unknown_events_ignored(self):
        interceptor = Interceptor()
        interceptor.attach(object())
        assert interceptor.event("ioctl") is None
        assert interceptor.counts["ioctl"] == 0

    def test_paper_syscall_list_covered(self):
        expected = {"execve", "fork", "exit", "read", "readv", "write",
                    "writev", "mmap", "open", "pipe", "drop_inode"}
        assert expected == HANDLED_EVENTS


class TestSystemAssembly:
    def test_default_boot_layout(self):
        system = System.boot()
        mounts = system.kernel.vfs.mounts()
        assert "/pass" in mounts and "/scratch" in mounts
        assert mounts["/pass"].pass_capable
        assert not mounts["/scratch"].pass_capable
        assert system.kernel.provenance_on

    def test_baseline_boot(self):
        system = System.boot(provenance=False)
        assert not system.kernel.provenance_on
        assert system.kernel.volume("pass").lasagna is None
        assert system.waldos == {}

    def test_cache_shrunk_only_with_provenance(self):
        base = System.boot(provenance=False)
        prov = System.boot(provenance=True)
        assert prov.kernel.cache.capacity < base.kernel.cache.capacity

    def test_duplicate_volume_rejected(self):
        system = System.boot()
        with pytest.raises(VolumeError):
            system.kernel.add_volume("pass", "/elsewhere")

    def test_sync_returns_inserted_count(self):
        system = System.boot()
        with system.process() as proc:
            fd = proc.open("/pass/f", "w")
            proc.write(fd, b"x")
            proc.close(fd)
        assert system.sync() > 0
        assert system.sync() == 0          # drained

    def test_database_default_volume(self):
        system = System.boot()
        assert system.database() is system.database("pass")

    def test_find_by_name_spans_volumes(self, ):
        system = System.boot(pass_volumes=("p1", "p2"))
        with system.process() as proc:
            for volume in ("p1", "p2"):
                fd = proc.open(f"/{volume}/same-name", "w")
                proc.write(fd, b"x")
                proc.close(fd)
        system.sync()
        # Names are full paths, so query each volume's name.
        assert system.find_by_name("/p1/same-name")
        assert system.find_by_name("/p2/same-name")

    def test_elapsed_monotonic(self):
        system = System.boot()
        t0 = system.elapsed()
        with system.process() as proc:
            proc.compute(1.0)
        assert system.elapsed() >= t0 + 1.0

    def test_repr_mentions_mode(self):
        assert "PASSv2" in repr(System.boot())
        assert "baseline" in repr(System.boot(provenance=False))

    def test_disable_reenable_provenance(self):
        system = System.boot()
        system.kernel.disable_provenance()
        with system.process() as proc:
            fd = proc.open("/pass/quiet", "w")
            proc.write(fd, b"x")
            proc.close(fd)
        system.sync()
        assert not system.database("pass").find_by_name("/pass/quiet")
        system.kernel.interceptor.enabled = True
        with system.process() as proc:
            fd = proc.open("/pass/loud", "w")
            proc.write(fd, b"x")
            proc.close(fd)
        system.sync()
        assert system.database("pass").find_by_name("/pass/loud")


class TestLogRotationPolicy:
    def test_size_rotation_in_live_system(self):
        from repro.kernel.params import SimParams
        params = SimParams()
        params.log.max_size = 2048
        system = System.boot(params=params)
        with system.process() as proc:
            for index in range(60):
                fd = proc.open(f"/pass/f{index}", "w")
                proc.write(fd, b"x")
                proc.close(fd)
        waldo = system.waldos["pass"]
        assert waldo.drain() > 0          # rotated segments arrived early

    def test_dormancy_rotation_via_tick(self):
        system = System.boot()
        with system.process() as proc:
            fd = proc.open("/pass/f", "w")
            proc.write(fd, b"x")
            proc.close(fd)
        log = system.kernel.volume("pass").lasagna.log
        system.kernel.clock.advance(60.0)
        log.tick()
        assert log.closed_segments or system.waldos["pass"]._pending_segments
