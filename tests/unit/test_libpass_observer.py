"""Unit tests for libpass (the user-level DPAPI) and observer details."""

import pytest

from repro.core.errors import (
    BadFileDescriptor,
    ProvenanceError,
    StalePnodeVersion,
    UnknownPnode,
)
from repro.core.pnode import ObjectRef
from repro.core.records import Attr, ObjType
from repro.system import System


@pytest.fixture
def shell(system):
    with system.process(argv=["app"]) as proc:
        yield proc


class TestPassReadWrite:
    def test_pass_read_returns_exact_identity(self, system, shell):
        fd = shell.open("/pass/f", "w")
        shell.write(fd, b"hello")
        shell.close(fd)
        fd = shell.open("/pass/f", "r")
        data, ref = shell.dpapi.pass_read(fd)
        assert data == b"hello"
        inode = system.kernel.vfs.resolve("/pass/f")
        assert ref == ObjectRef(inode.pnode, inode.version)

    def test_pass_read_moves_offset(self, shell):
        fd = shell.open("/pass/f", "w")
        shell.write(fd, b"abcdef")
        shell.close(fd)
        fd = shell.open("/pass/f", "r")
        data1, _ = shell.dpapi.pass_read(fd, 3)
        data2, _ = shell.dpapi.pass_read(fd)
        assert (data1, data2) == (b"abc", b"def")

    def test_pass_read_requires_file_fd(self, shell):
        rfd, _ = shell.pipe()
        with pytest.raises(BadFileDescriptor):
            shell.dpapi.pass_read(rfd)

    def test_pass_write_with_disclosed_record(self, system, shell):
        fd = shell.open("/pass/out", "w")
        record = shell.dpapi.record(fd, Attr.ANNOTATION, "from-app")
        written = shell.dpapi.pass_write(fd, b"payload", [record])
        assert written == 7
        shell.close(fd)
        system.sync()
        db = system.database("pass")
        ref = db.find_by_name("/pass/out")[0]
        notes = [r.value for r in db.records_of(ref.pnode)
                 if r.attr == Attr.ANNOTATION]
        assert notes == ["from-app"]

    def test_pass_write_adds_kernel_record_too(self, system, shell):
        """Disclosing does not exempt the kernel from recording the
        application -> file dependency (section 5.3)."""
        fd = shell.open("/pass/out", "w")
        shell.dpapi.pass_write(fd, b"data", [])
        shell.close(fd)
        system.sync()
        db = system.database("pass")
        ref = db.find_by_name("/pass/out")[0]
        inputs = [r.value for r in db.records_of(ref.pnode)
                  if r.attr == Attr.INPUT]
        assert ObjectRef(shell.proc.pnode, 0) in inputs


class TestMkobjLifecycle:
    def test_mkobj_returns_object_descriptor(self, shell):
        fd = shell.dpapi.pass_mkobj()
        ref = shell.dpapi.ref_of(fd)
        assert ref.version == 0
        assert ref.volume_id == 0          # transient space

    def test_mkobj_cannot_carry_data(self, shell):
        fd = shell.dpapi.pass_mkobj()
        with pytest.raises(BadFileDescriptor):
            shell.dpapi.pass_write(fd, b"data")

    def test_mkobj_provenance_stays_cached_without_descendants(
            self, system, shell):
        fd = shell.dpapi.pass_mkobj()
        shell.dpapi.pass_write(fd, records=[
            shell.dpapi.record(fd, Attr.TYPE, ObjType.DATASET),
        ])
        system.sync()
        db = system.database("pass")
        assert not [r for r in db.all_records()
                    if r.attr == Attr.TYPE and r.value == ObjType.DATASET]

    def test_pass_sync_forces_persistence(self, system, shell):
        fd = shell.dpapi.pass_mkobj()
        shell.dpapi.pass_write(fd, records=[
            shell.dpapi.record(fd, Attr.TYPE, ObjType.DATASET),
        ])
        shell.dpapi.pass_sync(fd)
        system.sync()
        db = system.database("pass")
        assert [r for r in db.all_records()
                if r.attr == Attr.TYPE and r.value == ObjType.DATASET]

    def test_mkobj_volume_hint_routes(self, two_volume_system):
        system = two_volume_system
        with system.process() as shell:
            fd = shell.dpapi.pass_mkobj(volume_hint="pass2")
            shell.dpapi.pass_write(fd, records=[
                shell.dpapi.record(fd, Attr.NAME, "hinted-object"),
            ])
            shell.dpapi.pass_sync(fd)
        system.sync()
        names2 = [r.value for r in system.database("pass2").all_records()
                  if r.attr == Attr.NAME]
        assert "hinted-object" in names2

    def test_reviveobj_roundtrip(self, shell):
        fd = shell.dpapi.pass_mkobj()
        ref = shell.dpapi.ref_of(fd)
        revived_fd = shell.dpapi.pass_reviveobj(ref.pnode, ref.version)
        assert shell.dpapi.ref_of(revived_fd) == ref

    def test_reviveobj_bad_pnode(self, shell):
        with pytest.raises(StalePnodeVersion):
            shell.dpapi.pass_reviveobj(999999, 0)

    def test_reviveobj_bad_version(self, shell):
        fd = shell.dpapi.pass_mkobj()
        ref = shell.dpapi.ref_of(fd)
        with pytest.raises(StalePnodeVersion):
            shell.dpapi.pass_reviveobj(ref.pnode, 42)

    def test_pass_freeze_bumps_version(self, shell):
        fd = shell.dpapi.pass_mkobj()
        assert shell.dpapi.pass_freeze(fd) == 1
        assert shell.dpapi.ref_of(fd).version == 1

    def test_dpapi_unavailable_without_provenance(self, baseline):
        with baseline.process() as shell:
            with pytest.raises(ProvenanceError):
                shell.dpapi.pass_mkobj()

    def test_pass_sync_unknown_object(self, system):
        with pytest.raises(UnknownPnode):
            system.kernel.observer.sync(123456789)


class TestObserverDetails:
    def test_identity_emitted_once_per_object(self, system):
        from tests.conftest import write_file
        for _ in range(3):
            with system.process() as proc:
                fd = proc.open("/pass/same", "r" if
                               system.kernel.vfs.exists("/pass/same")
                               else "w")
                if fd is not None and proc.proc.lookup_fd(fd).writable:
                    proc.write(fd, b"x")
                else:
                    proc.read(fd)
                proc.close(fd)
        system.sync()
        db = system.database("pass")
        ref = db.find_by_name("/pass/same")[0]
        type_records = [r for r in db.records_of(ref.pnode)
                        if r.attr == Attr.TYPE]
        assert len(type_records) == 1

    def test_env_and_argv_recorded(self, system):
        def prog(sc):
            fd = sc.open("/pass/out", "w")
            sc.write(fd, b"x")
            sc.close(fd)
            return 0

        system.register_program("/pass/bin/tool", prog)
        system.run("/pass/bin/tool", argv=["tool", "--flag", "value"],
                   env={"LANG": "C", "USER": "alice"})
        system.sync()
        db = system.database("pass")
        argvs = [r.value for r in db.all_records() if r.attr == Attr.ARGV]
        envs = [r.value for r in db.all_records() if r.attr == Attr.ENV]
        assert any("--flag" in value for value in argvs)
        assert any("USER=alice" in value for value in envs)

    def test_mmap_read_creates_dependency(self, system):
        from tests.conftest import write_file
        write_file(system, "/pass/mapped", b"data")
        with system.process(argv=["mapper"]) as proc:
            fd = proc.open("/pass/mapped", "r")
            proc.mmap(fd, readable=True, writable=False)
            proc.close(fd)
            out = proc.open("/pass/out", "w")
            proc.write(out, b"derived")
            proc.close(out)
        system.sync()
        db = system.database("pass")
        out_ref = db.find_by_name("/pass/out")[0]
        from tests.integration.test_pipeline import transitive_ancestors
        names = set()
        for ref in transitive_ancestors(db, out_ref):
            names.update(db.attribute_values(ref, Attr.NAME))
        assert "/pass/mapped" in names

    def test_mmap_write_creates_reverse_dependency(self, system):
        from tests.conftest import write_file
        write_file(system, "/pass/shared", b"data")
        with system.process(argv=["mapper"]) as proc:
            fd = proc.open("/pass/shared", "r+")
            proc.mmap(fd, readable=False, writable=True)
            proc.close(fd)
        system.sync()
        db = system.database("pass")
        ref = db.find_by_name("/pass/shared")[0]
        all_inputs = [r for r in db.records_of(ref.pnode)
                      if r.attr == Attr.INPUT]
        assert len(all_inputs) >= 2     # writer process + mapper process

    def test_nonpass_file_discarded_on_unlink(self, system):
        """drop_inode on a scratch file with no persistent descendants
        discards its cached provenance (section 5.5)."""
        with system.process() as proc:
            fd = proc.open("/scratch/tmp", "w")
            proc.write(fd, b"x")
            proc.close(fd)
            inode = system.kernel.vfs.resolve("/scratch/tmp")
            pnode = inode.pnode
            assert system.kernel.distributor.cached_records(pnode)
            proc.unlink("/scratch/tmp")
            assert not system.kernel.distributor.cached_records(pnode)
        assert system.kernel.distributor.records_discarded > 0
