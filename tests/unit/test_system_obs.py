"""System-level observability: stats/trace/elapsed through System.boot.

Exercises the wiring that ISSUE 2 calls the acceptance bar: after real
pipeline activity plus one query, every Figure-2 layer reports non-zero
counters, tracing captures the span tree, and elapsed() stays monotonic
when clocks are shared across boots.
"""

from repro.kernel.clock import SimClock
from repro.obs import FIGURE2_LAYERS, LAYERS
from repro.system import System


def run_pipeline(system: System) -> None:
    with system.process(argv=["writer"]) as proc:
        fd = proc.open("/pass/a.txt", "w")
        proc.write(fd, b"payload")
        proc.close(fd)
    with system.process(argv=["copier"]) as proc:
        fd = proc.open("/pass/a.txt", "r")
        data = proc.read(fd)
        proc.close(fd)
        out = proc.open("/pass/b.txt", "w")
        proc.write(out, data)
        proc.close(out)
    system.sync()


class TestStats:
    def test_every_figure2_layer_reports_activity(self):
        system = System.boot()
        run_pipeline(system)
        system.query("select F from Provenance.file as F")
        stats = system.stats()
        for layer in FIGURE2_LAYERS:
            counters = stats[layer]["counters"]
            assert sum(counters.values()) > 0, layer

    def test_all_documented_layers_present(self):
        system = System.boot()
        run_pipeline(system)
        stats = system.stats()
        for layer in LAYERS:
            assert layer in stats      # nfs present even when idle

    def test_per_volume_breakdown(self):
        system = System.boot()
        run_pipeline(system)
        stats = system.stats()
        assert "pass" in stats["lasagna"]["volumes"]
        assert "pass" in stats["waldo"]["volumes"]

    def test_fresh_boot_starts_from_zero(self):
        first = System.boot()
        run_pipeline(first)
        second = System.boot()
        emitted = second.stats()["observer"]["counters"]["records_emitted"]
        assert emitted == 0

    def test_observability_off_reports_nothing(self):
        system = System.boot(observability=False)
        run_pipeline(system)
        assert system.stats() == {}
        assert system.trace() == []
        # ...and the pipeline itself is unaffected.
        assert system.find_by_name("/pass/b.txt")


class TestTrace:
    def test_tracing_off_by_default(self):
        system = System.boot()
        run_pipeline(system)
        assert system.trace() == []

    def test_sync_and_query_produce_span_tree(self):
        system = System.boot(tracing=True)
        run_pipeline(system)
        system.query("select F from Provenance.file as F")
        spans = system.trace()
        names = [s["name"] for s in spans]
        assert "system.sync" in names
        assert "lasagna.sync" in names
        assert "waldo.drain" in names
        assert "pql.execute" in names
        sync = next(s for s in spans if s["name"] == "system.sync")
        drain = next(s for s in spans if s["name"] == "waldo.drain")
        assert drain["parent_id"] == sync["span_id"]
        assert drain["depth"] == 1

    def test_spans_carry_simulated_time(self):
        system = System.boot(tracing=True)
        run_pipeline(system)
        sync = next(s for s in system.trace()
                    if s["name"] == "system.sync")
        assert sync["sim_start"] >= 0.0
        assert sync["sim_elapsed"] >= 0.0


class TestElapsed:
    def test_starts_at_zero(self):
        assert System.boot().elapsed() == 0.0

    def test_advances_with_work(self):
        system = System.boot()
        run_pipeline(system)
        assert system.elapsed() > 0.0

    def test_monotonic_across_shared_clock_boots(self):
        clock = SimClock()
        first = System.boot(clock=clock)
        run_pipeline(first)
        assert first.elapsed() > 0.0
        # Second machine on the same (advanced) clock still starts at 0.
        second = System.boot(clock=clock, hostname="later")
        assert second.elapsed() == 0.0
        run_pipeline(second)
        assert second.elapsed() > 0.0
        assert first.elapsed() > second.elapsed()
