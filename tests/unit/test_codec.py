"""Unit tests for the binary record codec."""

import pytest

from repro.core.errors import LogCorruption
from repro.core.pnode import ObjectRef
from repro.core.records import Attr, ProvenanceRecord
from repro.storage import codec


def roundtrip(value):
    record = ProvenanceRecord(ObjectRef(7, 3), Attr.ANNOTATION, value)
    encoded = codec.encode_record(record)
    decoded, offset = codec.decode_record(encoded)
    assert offset == len(encoded)
    return decoded


class TestRoundtrip:
    def test_int(self):
        assert roundtrip(42).value == 42

    def test_negative_int(self):
        assert roundtrip(-99).value == -99

    def test_float(self):
        assert roundtrip(3.5).value == 3.5

    def test_str(self):
        assert roundtrip("héllo wörld").value == "héllo wörld"

    def test_empty_str(self):
        assert roundtrip("").value == ""

    def test_bytes(self):
        assert roundtrip(b"\x00\xffdata").value == b"\x00\xffdata"

    def test_bool_true_false(self):
        assert roundtrip(True).value is True
        assert roundtrip(False).value is False

    def test_bool_does_not_become_int(self):
        decoded = roundtrip(True)
        assert isinstance(decoded.value, bool)

    def test_ref(self):
        decoded = roundtrip(ObjectRef(123456789, 42))
        assert decoded.value == ObjectRef(123456789, 42)
        assert isinstance(decoded.value, ObjectRef)

    def test_subject_preserved(self):
        record = ProvenanceRecord(ObjectRef(1 << 45, 9), Attr.TYPE, "FILE")
        decoded, _ = codec.decode_record(codec.encode_record(record))
        assert decoded.subject == ObjectRef(1 << 45, 9)

    def test_full_equality(self):
        record = ProvenanceRecord(ObjectRef(5, 1), Attr.INPUT,
                                  ObjectRef(6, 0))
        decoded, _ = codec.decode_record(codec.encode_record(record))
        assert decoded == record


class TestStream:
    def test_concatenated_records(self):
        records = [
            ProvenanceRecord(ObjectRef(i, 0), Attr.NAME, f"f{i}")
            for i in range(20)
        ]
        buf = b"".join(codec.encode_record(r) for r in records)
        assert list(codec.decode_stream(buf)) == records

    def test_truncated_tail_dropped(self):
        records = [
            ProvenanceRecord(ObjectRef(i, 0), Attr.NAME, f"f{i}")
            for i in range(5)
        ]
        buf = b"".join(codec.encode_record(r) for r in records)
        assert list(codec.decode_stream(buf[:-3])) == records[:-1]

    def test_empty_stream(self):
        assert list(codec.decode_stream(b"")) == []

    def test_garbage_raises_on_direct_decode(self):
        with pytest.raises(LogCorruption):
            codec.decode_record(b"\x01\x02")

    def test_unknown_tag_raises(self):
        record = ProvenanceRecord(ObjectRef(1, 0), Attr.NAME, "x")
        buf = bytearray(codec.encode_record(record))
        # Attribute is 4 ASCII chars; the tag byte follows header+attr.
        tag_index = 12 + 1 + len(Attr.NAME)
        buf[tag_index] = 0x7F
        with pytest.raises(LogCorruption):
            codec.decode_record(bytes(buf))

    def test_encoded_size_matches(self):
        record = ProvenanceRecord(ObjectRef(1, 0), Attr.ARGV, "a" * 300)
        assert codec.encoded_size(record) == len(codec.encode_record(record))

    def test_long_attribute_rejected(self):
        record = ProvenanceRecord(ObjectRef(1, 0), "A" * 300, "x")
        with pytest.raises(ValueError):
            codec.encode_record(record)
