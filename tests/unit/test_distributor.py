"""Unit tests for the distributor: caching and flush routing."""

import pytest

from repro.core.distributor import Distributor
from repro.core.errors import UnknownPnode, VolumeError
from repro.core.pnode import ObjectRef, make_pnode
from repro.core.records import Attr, ProvenanceRecord

PASS_VOL_ID = 3
VOLUME_NAMES = {PASS_VOL_ID: "pass"}


def make_distributor(default="pass"):
    flushed = []

    def sink(volume, bundle):
        flushed.extend((volume, record) for record in bundle)

    dist = Distributor(sink, lambda vid: VOLUME_NAMES[vid],
                       default_volume=default)
    return dist, flushed


def persistent_ref(local=1, version=0):
    return ObjectRef(make_pnode(PASS_VOL_ID, local), version)


def transient_ref(local=1, version=0):
    return ObjectRef(make_pnode(0, local), version)


class TestRouting:
    def test_persistent_subject_flushes_immediately(self):
        dist, flushed = make_distributor()
        record = ProvenanceRecord(persistent_ref(), Attr.NAME, "/pass/x")
        dist.dispatch(record)
        assert flushed == [("pass", record)]

    def test_transient_subject_is_cached(self):
        dist, flushed = make_distributor()
        record = ProvenanceRecord(transient_ref(), Attr.TYPE, "PROCESS")
        dist.dispatch(record)
        assert flushed == []
        assert dist.cached_records(record.subject.pnode) == [record]

    def test_ancestor_cache_flushed_before_descendant_record(self):
        """WAP across objects: the process's provenance must hit the log
        before the file record that references the process."""
        dist, flushed = make_distributor()
        proc_ref = transient_ref(local=7)
        proc_record = ProvenanceRecord(proc_ref, Attr.TYPE, "PROCESS")
        dist.dispatch(proc_record)
        file_record = ProvenanceRecord(persistent_ref(), Attr.INPUT, proc_ref)
        dist.dispatch(file_record)
        assert flushed == [("pass", proc_record), ("pass", file_record)]

    def test_recursive_ancestor_flush(self):
        """file <- process <- pipe <- earlier process: one dispatch pulls
        the whole transient chain out in dependency order."""
        dist, flushed = make_distributor()
        p1, pipe, p2 = (transient_ref(local=i) for i in (1, 2, 3))
        dist.dispatch(ProvenanceRecord(p1, Attr.TYPE, "PROCESS"))
        dist.dispatch(ProvenanceRecord(pipe, Attr.INPUT, p1))
        dist.dispatch(ProvenanceRecord(p2, Attr.INPUT, pipe))
        assert flushed == []
        dist.dispatch(ProvenanceRecord(persistent_ref(), Attr.INPUT, p2))
        order = [record.subject.pnode for _, record in flushed]
        assert order.index(p1.pnode) < order.index(pipe.pnode)
        assert order.index(pipe.pnode) < order.index(p2.pnode)

    def test_follow_on_records_go_to_assigned_volume(self):
        dist, flushed = make_distributor()
        proc = transient_ref(local=5)
        dist.dispatch(ProvenanceRecord(proc, Attr.TYPE, "PROCESS"))
        dist.flush(proc.pnode, "pass")
        later = ProvenanceRecord(proc, Attr.NAME, "late-record")
        dist.dispatch(later)
        assert ("pass", later) in flushed


class TestSync:
    def test_sync_forces_cached_records_out(self):
        dist, flushed = make_distributor()
        obj = transient_ref(local=9)
        dist.dispatch(ProvenanceRecord(obj, Attr.TYPE, "SESSION"))
        dist.sync(obj.pnode)
        assert len(flushed) == 1

    def test_sync_unknown_pnode_raises(self):
        dist, _ = make_distributor()
        with pytest.raises(UnknownPnode):
            dist.sync(make_pnode(0, 999))

    def test_sync_respects_hint(self):
        flushed = []
        dist = Distributor(lambda vol, bundle: flushed.append(vol),
                           lambda vid: VOLUME_NAMES[vid],
                           default_volume="pass")
        obj = transient_ref(local=4)
        dist.set_hint(obj.pnode, "other-volume")
        dist.dispatch(ProvenanceRecord(obj, Attr.TYPE, "SESSION"))
        dist.sync(obj.pnode)
        assert flushed == ["other-volume"]

    def test_no_default_volume_raises(self):
        dist, _ = make_distributor(default=None)
        obj = transient_ref(local=2)
        dist.dispatch(ProvenanceRecord(obj, Attr.TYPE, "PROCESS"))
        with pytest.raises(VolumeError):
            dist.flush(obj.pnode)


class TestDiscard:
    def test_discard_drops_cache(self):
        dist, flushed = make_distributor()
        obj = transient_ref(local=3)
        dist.dispatch(ProvenanceRecord(obj, Attr.TYPE, "NP_FILE"))
        assert dist.discard(obj.pnode) == 1
        assert dist.cached_records(obj.pnode) == []
        assert dist.records_discarded == 1

    def test_discard_unknown_is_noop(self):
        dist, _ = make_distributor()
        assert dist.discard(12345) == 0
