"""The engine's static pre-pass: bad queries fail positioned and fast,
before the evaluator is ever invoked."""

import pytest

from repro.core.errors import PQLError, PQLNameError
from repro.core.pnode import ObjectRef
from repro.core.records import Attr, ObjType, ProvenanceRecord
from repro.pql.engine import QueryEngine


def R(pnode, version, attr, value):
    return ProvenanceRecord(ObjectRef(pnode, version), attr, value)


@pytest.fixture
def engine():
    return QueryEngine.from_records([
        R(1, 0, Attr.TYPE, ObjType.FILE),
        R(1, 0, Attr.NAME, "/data/a"),
        R(2, 0, Attr.TYPE, ObjType.PROCESS),
        R(2, 0, Attr.NAME, "prog"),
        R(1, 0, Attr.INPUT, ObjectRef(2, 0)),
        # An application-specific attribute outside the Attr vocabulary.
        R(1, 0, "CUSTOM_TAG", "v1"),
    ])


class TestPrePass:
    def test_unknown_attribute_rejected_before_evaluation(self, engine,
                                                          monkeypatch):
        def explode(*args, **kwargs):
            raise AssertionError("evaluator must not run")
        monkeypatch.setattr(engine._evaluator, "execute", explode)
        with pytest.raises(PQLNameError) as exc:
            engine.execute('select F from Provenance.file as F\n'
                           'where F.nmae = "x"')
        assert "PL101" in str(exc.value)
        assert "(line 2, column 8)" in str(exc.value)
        assert exc.value.line == 2
        assert exc.value.column == 8

    def test_unbound_variable_rejected_with_position(self, engine):
        with pytest.raises(PQLNameError) as exc:
            engine.execute("select B from Nope.input as B")
        assert exc.value.line == 1

    def test_unknown_function_rejected(self, engine):
        with pytest.raises(PQLError):
            engine.execute("select frob(F) from Provenance.file as F")

    def test_opt_out_restores_lazy_behavior(self, engine):
        # With the pre-pass off, an unknown attribute is back to the
        # evaluator's empty-set semantics.
        rows = engine.execute('select F from Provenance.file as F '
                              'where F.nmae = "x"', check=False)
        assert rows == []

    def test_engine_constructed_unchecked(self):
        unchecked = QueryEngine.from_records([
            R(1, 0, Attr.TYPE, ObjType.FILE)])
        unchecked._check = False
        assert unchecked.execute(
            'select F from Provenance.file as F where F.zzz = 1') == []

    def test_graph_vocabulary_widens_the_static_one(self, engine):
        # CUSTOM_TAG is no part of Attr, but the graph holds it, so the
        # pre-pass must let it through.
        rows = engine.execute('select F from Provenance.file as F '
                              'where F.custom_tag = "v1"')
        assert len(rows) == 1

    def test_warnings_do_not_block(self, engine):
        # Unknown member is a warning (likely-empty), not an error.
        assert engine.execute(
            "select X from Provenance.martian as X") == []

    def test_good_query_still_runs(self, engine):
        rows = engine.execute('select F.name from Provenance.file as F '
                              'F.input as P where P.name = "prog"')
        assert rows == ["/data/a"]

    def test_lint_method_reports_without_raising(self, engine):
        diags = engine.lint('select F from Provenance.file as F '
                            'where F.nmae = "x"')
        assert [d.code for d in diags] == ["PL101"]
