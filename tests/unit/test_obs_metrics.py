"""Unit tests for the metrics half of passmon (repro.obs.metrics)."""

import pytest

from repro.obs import FIGURE2_LAYERS, LAYERS, Observability
from repro.obs.metrics import HISTOGRAM_CAPACITY, Histogram, MetricsRegistry


class TestCounters:
    def test_inc_accumulates(self):
        reg = MetricsRegistry()
        reg.inc("pql", "queries")
        reg.inc("pql", "queries", 4)
        assert reg.counter("pql", "queries") == 5

    def test_unset_counter_reads_zero(self):
        assert MetricsRegistry().counter("pql", "nothing") == 0

    def test_volumes_fold_into_layer_total(self):
        reg = MetricsRegistry()
        reg.inc("lasagna", "flushes", 2, volume="pass")
        reg.inc("lasagna", "flushes", 3, volume="export")
        snap = reg.snapshot()
        assert snap["lasagna"]["counters"]["flushes"] == 5
        volumes = snap["lasagna"]["volumes"]
        assert volumes["pass"]["counters"]["flushes"] == 2
        assert volumes["export"]["counters"]["flushes"] == 3

    def test_disabled_registry_is_a_noop(self):
        reg = MetricsRegistry(enabled=False)
        reg.inc("pql", "queries")
        reg.set_gauge("pql", "depth", 3)
        reg.observe("pql", "wall", 0.5)
        assert reg.counter("pql", "queries") == 0
        assert reg.snapshot() == {}

    def test_reset_clears_everything(self):
        reg = MetricsRegistry()
        reg.inc("pql", "queries")
        reg.observe("pql", "wall", 1.0)
        reg.reset()
        assert reg.counter("pql", "queries") == 0
        assert reg.snapshot().get("pql", {}).get("histograms", {}) == {}


class TestGauges:
    def test_set_gauge_overwrites(self):
        reg = MetricsRegistry()
        reg.set_gauge("cache", "pages", 10)
        reg.set_gauge("cache", "pages", 7)
        assert reg.snapshot()["cache"]["gauges"]["pages"] == 7


class TestHistogram:
    def test_summary_on_known_data(self):
        h = Histogram()
        for v in range(1, 101):        # 1..100
            h.observe(float(v))
        s = h.summary()
        assert s["count"] == 100
        assert s["sum"] == pytest.approx(5050.0)
        assert s["min"] == 1.0 and s["max"] == 100.0
        assert s["mean"] == pytest.approx(50.5)
        # Linear interpolation over sorted samples.
        assert s["p50"] == pytest.approx(50.5)
        assert s["p90"] == pytest.approx(90.1)
        assert s["p99"] == pytest.approx(99.01)

    def test_single_sample(self):
        h = Histogram()
        h.observe(3.0)
        s = h.summary()
        assert s["p50"] == s["p99"] == 3.0

    def test_empty_summary_is_all_zeros(self):
        s = Histogram().summary()
        assert s == {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0,
                     "mean": 0.0, "p50": 0.0, "p90": 0.0, "p99": 0.0}

    def test_empty_percentile_raises_clearly(self):
        with pytest.raises(ValueError, match="empty histogram"):
            Histogram().percentile(50)

    def test_out_of_range_percentile_raises(self):
        h = Histogram()
        h.observe(1.0)
        with pytest.raises(ValueError):
            h.percentile(-1)
        with pytest.raises(ValueError):
            h.percentile(101)
        # Range is validated even on an empty histogram.
        with pytest.raises(ValueError):
            Histogram().percentile(101)

    def test_ring_bounds_samples_but_not_totals(self):
        h = Histogram()
        n = HISTOGRAM_CAPACITY + 500
        for v in range(n):
            h.observe(float(v))
        s = h.summary()
        assert s["count"] == n                 # exact even past capacity
        assert s["max"] == float(n - 1)
        assert len(h._samples) == HISTOGRAM_CAPACITY

    def test_percentile_clamps(self):
        h = Histogram()
        for v in (1.0, 2.0, 3.0):
            h.observe(v)
        assert h.percentile(0) == 1.0
        assert h.percentile(100) == 3.0


class TestCollectors:
    def test_collector_harvested_at_snapshot(self):
        reg = MetricsRegistry()
        state = {"n": 0}
        reg.add_collector("interceptor", lambda: {"events": state["n"]})
        state["n"] = 9
        assert reg.snapshot()["interceptor"]["counters"]["events"] == 9

    def test_collector_merges_with_direct_counters(self):
        reg = MetricsRegistry()
        reg.add_collector("waldo", lambda: {"drains": 2})
        reg.inc("waldo", "queries", 1)
        counters = reg.snapshot()["waldo"]["counters"]
        assert counters == {"drains": 2, "queries": 1}

    def test_per_volume_collector(self):
        reg = MetricsRegistry()
        reg.add_collector("lasagna", lambda: {"flushes": 4}, volume="pass")
        snap = reg.snapshot()["lasagna"]
        assert snap["counters"]["flushes"] == 4
        assert snap["volumes"]["pass"]["counters"]["flushes"] == 4

    def test_disabled_registry_ignores_collectors(self):
        reg = MetricsRegistry(enabled=False)
        reg.add_collector("waldo", lambda: {"drains": 1})
        assert reg.snapshot() == {}


class TestDeclaredLayers:
    def test_declared_layers_always_present(self):
        reg = MetricsRegistry(layers=LAYERS)
        snap = reg.snapshot()
        for layer in LAYERS:
            assert layer in snap
            assert snap[layer]["counters"] == {}

    def test_observability_declares_the_contract(self):
        snap = Observability().stats()
        for layer in FIGURE2_LAYERS:
            assert layer in snap


class TestObservabilityFacade:
    def test_null_style_instance_is_inert(self):
        obs = Observability(metrics_enabled=False, trace_enabled=False)
        obs.inc("pql", "queries")
        with obs.span("pql.execute", layer="pql") as span:
            span.tag("rows", 1)
        assert obs.stats() == {}
        assert obs.trace() == []

    def test_enable_disable_round_trip(self):
        obs = Observability(metrics_enabled=False)
        obs.enable()
        obs.inc("pql", "queries")
        assert obs.stats()["pql"]["counters"]["queries"] == 1
        obs.disable()
        obs.inc("pql", "queries")
        assert obs.stats() == {}
