"""Unit tests for the OEM graph and query-engine plumbing."""

import pytest

from repro.core.pnode import ObjectRef
from repro.core.records import Attr, ObjType, ProvenanceRecord
from repro.pql.engine import QueryEngine
from repro.pql.oem import OEMGraph


def R(pnode, version, attr, value):
    return ProvenanceRecord(ObjectRef(pnode, version), attr, value)


class TestGraphConstruction:
    def test_one_node_per_version(self):
        graph = OEMGraph.build([
            R(1, 0, Attr.TYPE, ObjType.FILE),
            R(1, 1, Attr.PREV_VERSION, ObjectRef(1, 0)),
        ])
        assert len(graph) == 2
        assert [n.ref.version for n in graph.versions_of(1)] == [0, 1]

    def test_plain_values_become_atoms(self):
        graph = OEMGraph.build([R(1, 0, Attr.PID, 42)])
        node = graph.node(ObjectRef(1, 0))
        assert node.atom("pid") == [42]

    def test_xrefs_become_edges_both_directions(self):
        graph = OEMGraph.build([
            R(1, 0, Attr.INPUT, ObjectRef(2, 0)),
        ])
        child = graph.node(ObjectRef(1, 0))
        parent = graph.node(ObjectRef(2, 0))
        assert child.out("input") == [parent]
        assert parent.rin("input") == [child]

    def test_framing_records_excluded(self):
        graph = OEMGraph.build([
            R(1, 0, Attr.BEGINTXN, 7),
            R(1, 0, Attr.ENDTXN, 7),
            R(1, 0, Attr.NAME, "real"),
        ])
        node = graph.node(ObjectRef(1, 0))
        assert "begintxn" not in node.atoms
        assert node.name == "real"

    def test_identity_atoms_shared_across_versions(self):
        graph = OEMGraph.build([
            R(1, 0, Attr.NAME, "/f"),
            R(1, 0, Attr.TYPE, ObjType.FILE),
            R(1, 2, Attr.ANNOTATION, "only-v2"),
        ])
        v2 = graph.node(ObjectRef(1, 2))
        assert v2.name == "/f"
        assert v2.type == ObjType.FILE
        # Non-identity atoms stay per-version.
        v0 = graph.node(ObjectRef(1, 0))
        assert v0.atom("annotation") == []

    def test_multiple_names_all_kept(self):
        graph = OEMGraph.build([
            R(1, 0, Attr.NAME, "/old"),
            R(1, 0, Attr.NAME, "/new"),
        ])
        assert graph.node(ObjectRef(1, 0)).atom("name") == ["/old", "/new"]

    def test_members_classified_by_type(self):
        graph = OEMGraph.build([
            R(1, 0, Attr.TYPE, ObjType.FILE),
            R(2, 0, Attr.TYPE, ObjType.PROCESS),
            R(3, 0, Attr.PID, 9),          # untyped
        ])
        assert len(graph.members("file")) == 1
        assert len(graph.members("process")) == 1
        assert len(graph.members("node")) == 3
        assert "file" in graph.member_names()

    def test_stub_nodes_for_referenced_only_objects(self):
        graph = OEMGraph.build([
            R(1, 0, Attr.INPUT, ObjectRef(99, 3)),
        ])
        stub = graph.node(ObjectRef(99, 3))
        assert stub is not None
        assert stub.atoms == {}


class TestEngine:
    def test_from_databases_merges(self):
        from repro.storage.database import ProvenanceDatabase
        db1 = ProvenanceDatabase("a")
        db2 = ProvenanceDatabase("b")
        db1.insert(R(1, 0, Attr.TYPE, ObjType.FILE))
        db2.insert(R(2, 0, Attr.TYPE, ObjType.FILE))
        engine = QueryEngine.from_databases([db1, db2])
        assert engine.execute("select count(F) from Provenance.file as F") \
            == [2]

    def test_parse_cache(self):
        engine = QueryEngine.from_records([])
        text = "select F from Provenance.file as F"
        assert engine.parse(text) is engine.parse(text)

    def test_execute_refs_conversion(self):
        engine = QueryEngine.from_records([
            R(5, 1, Attr.TYPE, ObjType.FILE),
            R(5, 1, Attr.NAME, "/x"),
        ])
        refs = engine.execute_refs("select F from Provenance.file as F")
        assert refs == [ObjectRef(5, 1)]
        rows = engine.execute_refs(
            "select F, F.name from Provenance.file as F")
        assert rows == [(ObjectRef(5, 1), "/x")]
