"""Unit tests for the OEM graph and query-engine plumbing."""

import pytest

from repro.core.pnode import ObjectRef
from repro.core.records import Attr, ObjType, ProvenanceRecord
from repro.pql.engine import QueryEngine
from repro.pql.oem import OEMGraph


def R(pnode, version, attr, value):
    return ProvenanceRecord(ObjectRef(pnode, version), attr, value)


class TestGraphConstruction:
    def test_one_node_per_version(self):
        graph = OEMGraph.build([
            R(1, 0, Attr.TYPE, ObjType.FILE),
            R(1, 1, Attr.PREV_VERSION, ObjectRef(1, 0)),
        ])
        assert len(graph) == 2
        assert [n.ref.version for n in graph.versions_of(1)] == [0, 1]

    def test_plain_values_become_atoms(self):
        graph = OEMGraph.build([R(1, 0, Attr.PID, 42)])
        node = graph.node(ObjectRef(1, 0))
        assert node.atom("pid") == [42]

    def test_xrefs_become_edges_both_directions(self):
        graph = OEMGraph.build([
            R(1, 0, Attr.INPUT, ObjectRef(2, 0)),
        ])
        child = graph.node(ObjectRef(1, 0))
        parent = graph.node(ObjectRef(2, 0))
        assert child.out("input") == [parent]
        assert parent.rin("input") == [child]

    def test_framing_records_excluded(self):
        graph = OEMGraph.build([
            R(1, 0, Attr.BEGINTXN, 7),
            R(1, 0, Attr.ENDTXN, 7),
            R(1, 0, Attr.NAME, "real"),
        ])
        node = graph.node(ObjectRef(1, 0))
        assert "begintxn" not in node.atoms
        assert node.name == "real"

    def test_identity_atoms_shared_across_versions(self):
        graph = OEMGraph.build([
            R(1, 0, Attr.NAME, "/f"),
            R(1, 0, Attr.TYPE, ObjType.FILE),
            R(1, 2, Attr.ANNOTATION, "only-v2"),
        ])
        v2 = graph.node(ObjectRef(1, 2))
        assert v2.name == "/f"
        assert v2.type == ObjType.FILE
        # Non-identity atoms stay per-version.
        v0 = graph.node(ObjectRef(1, 0))
        assert v0.atom("annotation") == []

    def test_multiple_names_all_kept(self):
        graph = OEMGraph.build([
            R(1, 0, Attr.NAME, "/old"),
            R(1, 0, Attr.NAME, "/new"),
        ])
        assert graph.node(ObjectRef(1, 0)).atom("name") == ["/old", "/new"]

    def test_members_classified_by_type(self):
        graph = OEMGraph.build([
            R(1, 0, Attr.TYPE, ObjType.FILE),
            R(2, 0, Attr.TYPE, ObjType.PROCESS),
            R(3, 0, Attr.PID, 9),          # untyped
        ])
        assert len(graph.members("file")) == 1
        assert len(graph.members("process")) == 1
        assert len(graph.members("node")) == 3
        assert "file" in graph.member_names()

    def test_stub_nodes_for_referenced_only_objects(self):
        graph = OEMGraph.build([
            R(1, 0, Attr.INPUT, ObjectRef(99, 3)),
        ])
        stub = graph.node(ObjectRef(99, 3))
        assert stub is not None
        assert stub.atoms == {}


class TestIncrementalApply:
    def test_apply_grows_nodes_and_edges(self):
        graph = OEMGraph()
        graph.apply(R(1, 0, Attr.INPUT, ObjectRef(2, 0)))
        child = graph.node(ObjectRef(1, 0))
        parent = graph.node(ObjectRef(2, 0))
        assert child.out("input") == [parent]
        assert parent.rin("input") == [child]
        assert len(graph.members("node")) == 2

    def test_apply_skips_framing(self):
        graph = OEMGraph()
        graph.apply(R(1, 0, Attr.BEGINTXN, 7))
        graph.apply(R(1, 0, Attr.ENDTXN, 7))
        assert len(graph) == 0

    def test_identity_flows_to_later_versions(self):
        graph = OEMGraph()
        graph.apply(R(1, 0, Attr.NAME, "/f"))
        graph.apply(R(1, 2, Attr.ANNOTATION, "v2"))
        assert graph.node(ObjectRef(1, 2)).name == "/f"
        assert graph.named("/f") and len(graph.named("/f")) == 2

    def test_identity_flows_to_earlier_versions(self):
        graph = OEMGraph()
        graph.apply(R(1, 2, Attr.ANNOTATION, "v2"))
        graph.apply(R(1, 0, Attr.NAME, "/f"))
        assert graph.node(ObjectRef(1, 2)).name == "/f"

    def test_type_classifies_member_eagerly(self):
        graph = OEMGraph()
        graph.apply(R(1, 0, Attr.TYPE, ObjType.FILE))
        assert len(graph.members("file")) == 1
        graph.apply(R(1, 3, Attr.PID, 9))
        assert len(graph.members("file")) == 2

    def test_vocab_epoch_bumps_on_new_labels_only(self):
        graph = OEMGraph()
        graph.apply(R(1, 0, Attr.MD5, "aa"))
        epoch = graph.vocab_epoch
        graph.apply(R(2, 0, Attr.MD5, "bb"))     # label already known
        assert graph.vocab_epoch == epoch
        graph.apply(R(2, 0, Attr.INPUT, ObjectRef(1, 0)))
        assert graph.vocab_epoch > epoch

    def test_apply_many_counts(self):
        graph = OEMGraph()
        applied = graph.apply_many([
            R(1, 0, Attr.NAME, "/a"),
            R(2, 0, Attr.NAME, "/b"),
        ])
        assert applied == 2
        assert len(graph) == 2


class TestLiveEngine:
    def test_live_engine_sees_later_inserts(self):
        from repro.storage.database import ProvenanceDatabase
        db = ProvenanceDatabase("a")
        db.insert(R(1, 0, Attr.TYPE, ObjType.FILE))
        engine = QueryEngine.live([db])
        count = "select count(F) from Provenance.file as F"
        assert engine.execute(count) == [1]
        db.insert(R(2, 0, Attr.TYPE, ObjType.FILE))
        assert engine.execute(count) == [2]

    def test_from_databases_is_live(self):
        from repro.storage.database import ProvenanceDatabase
        db = ProvenanceDatabase("a")
        engine = QueryEngine.from_databases([db])
        db.insert(R(1, 0, Attr.NAME, "/x"))
        assert engine.graph.named("/x")

    def test_from_records_is_a_static_snapshot(self):
        engine = QueryEngine.from_records([R(1, 0, Attr.NAME, "/x")])
        assert engine.graph.named("/x")

    def test_waldo_returns_the_same_live_engine(self):
        from repro.kernel.clock import SimClock
        from repro.kernel.params import LogParams
        from repro.storage.log import ProvenanceLog
        from repro.storage.waldo import Waldo
        log = ProvenanceLog(SimClock(), LogParams(max_size=1 << 30))
        waldo = Waldo(log)
        engine = waldo.query_engine()
        assert waldo.query_engine() is engine
        log.append(R(1, 0, Attr.NAME, "/via-drain"))
        log.flush()
        log.rotate()
        waldo.drain()
        assert engine.graph.named("/via-drain")

    def test_vocabulary_refreshes_when_graph_grows(self):
        from repro.storage.database import ProvenanceDatabase
        db = ProvenanceDatabase("a")
        engine = QueryEngine.live([db])
        assert not engine.vocabulary().knows("custom_attr")
        db.insert(R(1, 0, "CUSTOM_ATTR", "payload"))
        assert engine.vocabulary().knows("custom_attr")

    def test_check_passes_after_vocabulary_growth(self):
        from repro.core.errors import PQLError
        from repro.storage.database import ProvenanceDatabase
        db = ProvenanceDatabase("a")
        db.insert(R(1, 0, Attr.TYPE, ObjType.FILE))
        engine = QueryEngine.live([db])
        query = ("select F from Provenance.file as F "
                 "where F.custom_attr = 1")
        with pytest.raises(PQLError):
            engine.execute(query)
        db.insert(R(1, 0, "CUSTOM_ATTR", 1))
        assert engine.execute(query)


class TestPlanCache:
    def test_plan_cache_normalizes_whitespace(self):
        engine = QueryEngine.from_records([])
        a = engine.plan("select F from Provenance.file as F")
        b = engine.plan("select  F\n from   Provenance.file as F")
        assert a is b

    def test_check_runs_once_per_epoch(self):
        from repro.obs import Observability
        obs = Observability(metrics_enabled=True)
        engine = QueryEngine(OEMGraph.build([
            R(1, 0, Attr.TYPE, ObjType.FILE)]), obs=obs)
        text = "select F from Provenance.file as F"
        engine.execute(text)
        engine.execute(text)
        counters = obs.stats()["pql"]["counters"]
        assert counters["parses"] == 1
        assert counters["parse_cache_hits"] == 1
        assert counters["check_cache_hits"] == 1


class TestEngine:
    def test_from_databases_merges(self):
        from repro.storage.database import ProvenanceDatabase
        db1 = ProvenanceDatabase("a")
        db2 = ProvenanceDatabase("b")
        db1.insert(R(1, 0, Attr.TYPE, ObjType.FILE))
        db2.insert(R(2, 0, Attr.TYPE, ObjType.FILE))
        engine = QueryEngine.from_databases([db1, db2])
        assert engine.execute("select count(F) from Provenance.file as F") \
            == [2]

    def test_parse_cache(self):
        engine = QueryEngine.from_records([])
        text = "select F from Provenance.file as F"
        assert engine.parse(text) is engine.parse(text)

    def test_execute_refs_conversion(self):
        engine = QueryEngine.from_records([
            R(5, 1, Attr.TYPE, ObjType.FILE),
            R(5, 1, Attr.NAME, "/x"),
        ])
        refs = engine.execute_refs("select F from Provenance.file as F")
        assert refs == [ObjectRef(5, 1)]
        rows = engine.execute_refs(
            "select F, F.name from Provenance.file as F")
        assert rows == [(ObjectRef(5, 1), "/x")]
