"""Unit tests pinning the observed-version immutability rule.

The property suite fuzzes the invariant; these tests document the exact
behaviors (including the counterexample hypothesis originally found).
"""

from repro.core.analyzer import Analyzer, ProtoRecord
from repro.core.pnode import ObjectRef
from repro.core.records import Attr
from tests.unit.test_analyzer import FakeObject, assert_acyclic


def make():
    out = []
    return Analyzer(emit=out.append), out


class TestObservedRule:
    def test_retroactive_ancestry_counterexample(self):
        """The stream hypothesis found against the ancestor-set-only
        formulation: 3<-2, 2<-1, 1<-3 must freeze rather than cycle."""
        analyzer, out = make()
        one, two, three = FakeObject(1), FakeObject(2), FakeObject(3)
        analyzer.submit(ProtoRecord(three, Attr.INPUT, two.ref()))
        analyzer.submit(ProtoRecord(two, Attr.INPUT, one.ref()))
        analyzer.submit(ProtoRecord(one, Attr.INPUT, three.ref()))
        assert_acyclic(out)
        # 'two' gained ancestry after 'three' observed it -> new version.
        assert two.version == 1
        # 'one' was observed by two:1 -> its own edge starts version 1.
        assert one.version == 1

    def test_unobserved_object_accumulates_freely(self):
        analyzer, out = make()
        subject = FakeObject(1)
        for pnode in range(2, 12):
            analyzer.submit(ProtoRecord(subject, Attr.INPUT,
                                        ObjectRef(pnode, 0)))
        assert subject.version == 0
        assert analyzer.freezes == 0

    def test_observation_pins_the_version(self):
        analyzer, out = make()
        producer, consumer = FakeObject(1), FakeObject(2)
        analyzer.submit(ProtoRecord(producer, Attr.INPUT,
                                    ObjectRef(9, 0)))
        # Someone depends on producer's current version...
        analyzer.submit(ProtoRecord(consumer, Attr.INPUT, producer.ref()))
        # ...so its next dependency starts a new version.
        analyzer.submit(ProtoRecord(producer, Attr.INPUT,
                                    ObjectRef(10, 0)))
        assert producer.version == 1
        # The new version still links back to the old.
        prev = [r for r in out if r.attr == Attr.PREV_VERSION]
        assert prev[0].subject == ObjectRef(1, 1)
        assert prev[0].value == ObjectRef(1, 0)

    def test_version_edges_land_on_new_version(self):
        analyzer, out = make()
        producer, consumer = FakeObject(1), FakeObject(2)
        analyzer.submit(ProtoRecord(consumer, Attr.INPUT, producer.ref()))
        analyzer.submit(ProtoRecord(producer, Attr.INPUT,
                                    ObjectRef(7, 0)))
        new_edges = [r for r in out if r.attr == Attr.INPUT
                     and r.subject.pnode == 1]
        assert new_edges[0].subject.version == 1

    def test_repeated_observation_no_extra_freezes(self):
        analyzer, out = make()
        producer = FakeObject(1)
        for consumer_pnode in range(2, 6):
            consumer = FakeObject(consumer_pnode)
            analyzer.submit(ProtoRecord(consumer, Attr.INPUT,
                                        producer.ref()))
        # Observation alone never freezes; only new outgoing ancestry.
        assert producer.version == 0
        analyzer.submit(ProtoRecord(producer, Attr.INPUT,
                                    ObjectRef(9, 0)))
        assert producer.version == 1
        assert analyzer.freezes == 1
