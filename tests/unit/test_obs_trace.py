"""Unit tests for the tracing half of passmon (repro.obs.trace)."""

import json

from repro.obs.trace import NULL_SPAN, Tracer


class FakeClock:
    """Scriptable simulated clock for timing assertions."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestNesting:
    def test_parent_child_links_and_depth(self):
        tracer = Tracer(enabled=True)
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                pass
        assert inner.parent_id == outer.span_id
        assert (outer.depth, inner.depth) == (0, 1)

    def test_children_finish_before_parents(self):
        tracer = Tracer(enabled=True)
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        assert [s.name for s in tracer.spans()] == ["inner", "outer"]

    def test_siblings_share_a_parent(self):
        tracer = Tracer(enabled=True)
        with tracer.span("parent") as parent:
            with tracer.span("a") as a:
                pass
            with tracer.span("b") as b:
                pass
        assert a.parent_id == b.parent_id == parent.span_id

    def test_top_level_span_has_no_parent(self):
        tracer = Tracer(enabled=True)
        with tracer.span("solo") as span:
            pass
        assert span.parent_id is None


class TestTiming:
    def test_sim_elapsed_from_bound_clock(self):
        clock = FakeClock()
        tracer = Tracer(enabled=True, sim_now=clock)
        with tracer.span("work") as span:
            clock.now = 2.5
        assert span.sim_elapsed == 2.5

    def test_bind_clock_after_construction(self):
        clock = FakeClock()
        tracer = Tracer(enabled=True)
        tracer.bind_clock(clock)
        clock.now = 1.0
        with tracer.span("work") as span:
            clock.now = 4.0
        assert span.sim_start == 1.0
        assert span.sim_elapsed == 3.0

    def test_wall_elapsed_nonnegative(self):
        tracer = Tracer(enabled=True)
        with tracer.span("work") as span:
            pass
        assert span.wall_elapsed >= 0.0


class TestRing:
    def test_capacity_evicts_oldest(self):
        tracer = Tracer(enabled=True, capacity=3)
        for i in range(5):
            with tracer.span(f"s{i}"):
                pass
        assert [s.name for s in tracer.spans()] == ["s2", "s3", "s4"]

    def test_evictions_are_counted_as_drops(self):
        tracer = Tracer(enabled=True, capacity=3)
        for i in range(5):
            with tracer.span(f"s{i}"):
                pass
        assert tracer.dropped_spans == 2
        assert tracer.export()["dropped_spans"] == 2

    def test_no_drops_below_capacity(self):
        tracer = Tracer(enabled=True, capacity=3)
        for i in range(3):
            with tracer.span(f"s{i}"):
                pass
        assert tracer.dropped_spans == 0

    def test_reset_drops_finished(self):
        tracer = Tracer(enabled=True)
        with tracer.span("gone"):
            pass
        tracer.reset()
        assert tracer.spans() == []

    def test_reset_zeroes_the_drop_count(self):
        tracer = Tracer(enabled=True, capacity=1)
        for i in range(3):
            with tracer.span(f"s{i}"):
                pass
        tracer.reset()
        assert tracer.dropped_spans == 0


class TestCurrentIds:
    def test_outside_any_span(self):
        tracer = Tracer(enabled=True)
        assert tracer.current_ids() == (None, None)

    def test_trace_id_is_the_root_span(self):
        tracer = Tracer(enabled=True)
        with tracer.span("root") as root:
            with tracer.span("leaf") as leaf:
                trace_id, span_id = tracer.current_ids()
        assert trace_id == root.span_id
        assert span_id == leaf.span_id


class TestExport:
    def test_export_schema(self):
        clock = FakeClock()
        tracer = Tracer(enabled=True, sim_now=clock)
        with tracer.span("drain", layer="waldo", volume="pass") as span:
            span.tag("records", 7)
        document = tracer.export()
        assert document["dropped_spans"] == 0
        (exported,) = document["spans"]
        assert exported["name"] == "drain"
        assert exported["layer"] == "waldo"
        assert exported["tags"] == {"volume": "pass", "records": 7}
        for key in ("span_id", "parent_id", "depth", "sim_start",
                    "sim_elapsed", "wall_start", "wall_elapsed"):
            assert key in exported

    def test_to_json_round_trips(self):
        tracer = Tracer(enabled=True)
        with tracer.span("a"):
            pass
        parsed = json.loads(tracer.to_json())
        assert [s["name"] for s in parsed["spans"]] == ["a"]
        assert parsed["dropped_spans"] == 0


class TestDisabled:
    def test_disabled_tracer_hands_out_null_span(self):
        tracer = Tracer(enabled=False)
        assert tracer.span("anything") is NULL_SPAN

    def test_null_span_is_inert(self):
        with NULL_SPAN as span:
            span.tag("k", "v")        # accepted, discarded
        assert Tracer(enabled=False).spans() == []
