"""Property-based tests: SparseFile against a bytearray reference model."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.kernel.vfs import SparseFile

MAX_OFFSET = 4096
MAX_LEN = 512

write_op = st.tuples(st.just("write"),
                     st.integers(0, MAX_OFFSET),
                     st.binary(min_size=1, max_size=MAX_LEN))
hole_op = st.tuples(st.just("hole"),
                    st.integers(0, MAX_OFFSET),
                    st.integers(1, MAX_LEN))
truncate_op = st.tuples(st.just("truncate"),
                        st.integers(0, MAX_OFFSET),
                        st.just(b""))
ops = st.lists(st.one_of(write_op, hole_op, truncate_op), max_size=40)


class ReferenceFile:
    """Dead-simple bytearray model."""

    def __init__(self):
        self.data = bytearray()

    def _grow(self, size):
        if len(self.data) < size:
            self.data.extend(b"\x00" * (size - len(self.data)))

    def write(self, offset, payload):
        self._grow(offset + len(payload))
        self.data[offset:offset + len(payload)] = payload

    def hole(self, offset, length):
        self._grow(offset + length)
        self.data[offset:offset + length] = b"\x00" * length

    def truncate(self, size):
        if size <= len(self.data):
            del self.data[size:]
        else:
            self._grow(size)

    def read(self, offset, length):
        return bytes(self.data[offset:offset + length])


def apply_ops(operations):
    real = SparseFile()
    model = ReferenceFile()
    for kind, offset, payload in operations:
        if kind == "write":
            real.write(offset, payload)
            model.write(offset, payload)
        elif kind == "hole":
            real.write_hole(offset, payload)
            model.hole(offset, payload)
        else:
            real.truncate(offset)
            model.truncate(offset)
    return real, model


@given(ops)
@settings(max_examples=300)
def test_size_matches_model(operations):
    real, model = apply_ops(operations)
    assert real.size == len(model.data)


@given(ops, st.integers(0, MAX_OFFSET + MAX_LEN), st.integers(0, MAX_LEN))
@settings(max_examples=300)
def test_reads_match_model(operations, offset, length):
    real, model = apply_ops(operations)
    assert real.read(offset, length) == model.read(offset, length)


@given(ops)
@settings(max_examples=200)
def test_full_content_matches_model(operations):
    real, model = apply_ops(operations)
    assert real.read(0, real.size) == bytes(model.data)


@given(ops)
@settings(max_examples=200)
def test_real_bytes_never_exceeds_size(operations):
    real, _ = apply_ops(operations)
    assert 0 <= real.real_bytes <= max(real.size, 0)


@given(st.lists(st.tuples(st.integers(0, 64), st.binary(min_size=1,
                                                        max_size=8)),
                min_size=1, max_size=30))
@settings(max_examples=200)
def test_chunks_stay_disjoint_and_sorted(writes):
    """Internal invariant: chunk offsets sorted, no overlaps."""
    real = SparseFile()
    for offset, payload in writes:
        real.write(offset, payload)
    offsets = real._offsets
    assert offsets == sorted(offsets)
    previous_end = -1
    for offset in offsets:
        assert offset > previous_end
        previous_end = offset + len(real._chunks[offset]) - 1
