"""Property-based tests for the record codec."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.pnode import ObjectRef
from repro.core.records import ProvenanceRecord
from repro.storage import codec

refs = st.builds(ObjectRef,
                 st.integers(0, (1 << 63) - 1),
                 st.integers(0, (1 << 31) - 1))

values = st.one_of(
    st.integers(-(1 << 62), (1 << 62) - 1),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=200),
    st.binary(max_size=200),
    st.booleans(),
    refs,
)

attrs = st.text(
    alphabet=st.characters(min_codepoint=33, max_codepoint=126),
    min_size=1, max_size=40,
)

records = st.builds(ProvenanceRecord, refs, attrs, values)


@given(records)
@settings(max_examples=500)
def test_roundtrip_identity(record):
    decoded, offset = codec.decode_record(codec.encode_record(record))
    assert decoded == record
    assert type(decoded.value) is type(record.value)
    assert offset == codec.encoded_size(record)


@given(st.lists(records, max_size=30))
@settings(max_examples=200)
def test_stream_roundtrip(batch):
    buf = b"".join(codec.encode_record(record) for record in batch)
    assert list(codec.decode_stream(buf)) == batch


@given(st.lists(records, min_size=1, max_size=10),
       st.integers(min_value=1, max_value=50))
@settings(max_examples=200)
def test_truncation_never_raises_and_is_prefix(batch, cut):
    """A torn log tail decodes to a strict prefix, never garbage."""
    buf = b"".join(codec.encode_record(record) for record in batch)
    cut = min(cut, len(buf))
    decoded = list(codec.decode_stream(buf[:-cut] if cut else buf))
    assert decoded == batch[:len(decoded)]
    assert len(decoded) < len(batch) or cut == 0


@given(st.lists(records, min_size=1, max_size=10), st.binary(max_size=20))
@settings(max_examples=200)
def test_garbage_tail_still_yields_prefix(batch, garbage):
    buf = b"".join(codec.encode_record(record) for record in batch)
    decoded = list(codec.decode_stream(buf + garbage))
    # Either the garbage parses as extra records (unlikely but legal)
    # or decoding stops; the original prefix is always intact.
    assert decoded[:len(batch)] == batch
