"""Property-based tests for the record codec."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.pnode import ObjectRef
from repro.core.records import ProvenanceRecord
from repro.storage import codec

refs = st.builds(ObjectRef,
                 st.integers(0, (1 << 63) - 1),
                 st.integers(0, (1 << 31) - 1))

values = st.one_of(
    st.integers(-(1 << 62), (1 << 62) - 1),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=200),
    st.binary(max_size=200),
    st.booleans(),
    refs,
)

attrs = st.text(
    alphabet=st.characters(min_codepoint=33, max_codepoint=126),
    min_size=1, max_size=40,
)

records = st.builds(ProvenanceRecord, refs, attrs, values)


@given(records)
@settings(max_examples=500)
def test_roundtrip_identity(record):
    decoded, offset = codec.decode_record(codec.encode_record(record))
    assert decoded == record
    assert type(decoded.value) is type(record.value)
    assert offset == codec.encoded_size(record)


@given(st.lists(records, max_size=30))
@settings(max_examples=200)
def test_stream_roundtrip(batch):
    buf = b"".join(codec.encode_record(record) for record in batch)
    assert list(codec.decode_stream(buf)) == batch


@given(st.lists(records, min_size=1, max_size=10),
       st.integers(min_value=1, max_value=50))
@settings(max_examples=200)
def test_truncation_never_raises_and_is_prefix(batch, cut):
    """A torn log tail decodes to a strict prefix, never garbage."""
    buf = b"".join(codec.encode_record(record) for record in batch)
    cut = min(cut, len(buf))
    decoded = list(codec.decode_stream(buf[:-cut] if cut else buf))
    assert decoded == batch[:len(decoded)]
    assert len(decoded) < len(batch) or cut == 0


@given(st.lists(records, min_size=1, max_size=10), st.binary(max_size=20))
@settings(max_examples=200)
def test_garbage_tail_still_yields_prefix(batch, garbage):
    buf = b"".join(codec.encode_record(record) for record in batch)
    decoded = list(codec.decode_stream(buf + garbage))
    # Either the garbage parses as extra records (unlikely but legal)
    # or decoding stops; the original prefix is always intact.
    assert decoded[:len(batch)] == batch


# -- exhaustive damage sweep -------------------------------------------------------

#: One record per value tag (TAG_INT .. TAG_REF), plus a non-ASCII
#: attribute and string so the multi-byte UTF-8 paths are in the sweep.
ALL_TAG_RECORDS = [
    ProvenanceRecord(ObjectRef(1, 0), "int", -(1 << 62)),
    ProvenanceRecord(ObjectRef(2, 1), "float", 2.5),
    ProvenanceRecord(ObjectRef(3, 2), "str", "héllo"),
    ProvenanceRecord(ObjectRef(4, 3), "bytes", b"\x00\xff\x80"),
    ProvenanceRecord(ObjectRef(5, 4), "bool", True),
    ProvenanceRecord(ObjectRef(6, 5), "réf", ObjectRef(7, 9)),
]


def test_all_tags_roundtrip():
    """Every TAG_* type round-trips with value type preserved."""
    tags = set()
    for record in ALL_TAG_RECORDS:
        raw = codec.encode_record(record)
        tags.add(raw[codec.encoded_size(record) - len(
            codec.encode_value(record.value))])
        decoded, offset = codec.decode_record(raw)
        assert decoded == record
        assert type(decoded.value) is type(record.value)
        assert offset == len(raw) == codec.encoded_size(record)
    assert tags == {codec.TAG_INT, codec.TAG_FLOAT, codec.TAG_STR,
                    codec.TAG_BYTES, codec.TAG_BOOL, codec.TAG_REF}


def test_truncation_at_every_byte_offset():
    """Cutting the stream at *any* offset yields a clean record prefix:
    recovery stops at the damage, it never raises."""
    buf = b"".join(codec.encode_record(r) for r in ALL_TAG_RECORDS)
    ends = []
    offset = 0
    for record in ALL_TAG_RECORDS:
        offset += codec.encoded_size(record)
        ends.append(offset)
    for cut in range(len(buf) + 1):
        decoded = list(codec.decode_stream(buf[:cut]))
        whole = sum(1 for end in ends if end <= cut)
        # Every record fully inside the cut survives; nothing invented.
        assert decoded[:whole] == ALL_TAG_RECORDS[:whole]
        assert len(decoded) <= len(ALL_TAG_RECORDS)


def test_corruption_at_every_byte_offset():
    """Flipping any single byte never raises out of decode_stream, and
    records before the first damaged one always survive intact."""
    buf = b"".join(codec.encode_record(r) for r in ALL_TAG_RECORDS)
    for position in range(len(buf)):
        for flip in (0xFF, 0x01, 0x80):
            damaged = bytearray(buf)
            damaged[position] ^= flip
            if damaged[position] == buf[position]:
                continue
            decoded = list(codec.decode_stream(bytes(damaged)))
            intact = 0
            offset = 0
            for record in ALL_TAG_RECORDS:
                offset += codec.encoded_size(record)
                if offset > position:
                    break
                intact += 1
            assert decoded[:intact] == ALL_TAG_RECORDS[:intact]


# -- memoizing encoder equivalence --------------------------------------------------

def _with_shared_instances(batch):
    """Rewrite a batch so equal subjects/attrs share one instance --
    the run-memo shape real pipeline batches have."""
    subjects: dict = {}
    attrs: dict = {}
    return [
        ProvenanceRecord(subjects.setdefault(r.subject, r.subject),
                         attrs.setdefault(r.attr, r.attr), r.value)
        for r in batch
    ]


@given(st.lists(records, max_size=40))
@settings(max_examples=200)
def test_record_encoder_matches_encode_record(batch):
    """RecordEncoder.encode is byte-identical to encode_record across
    arbitrary interleavings (memo hits, misses, and runs)."""
    encoder = codec.RecordEncoder()
    batch = _with_shared_instances(batch)
    for record in batch + batch:      # replay: all-hit second pass
        assert encoder.encode(record) == codec.encode_record(record)


@given(st.lists(records, max_size=40))
@settings(max_examples=200)
def test_encode_list_and_batch_match_per_record_path(batch):
    batch = _with_shared_instances(batch)
    expected = [codec.encode_record(record) for record in batch]
    encoder = codec.RecordEncoder()
    assert encoder.encode_list(batch) == expected
    # The run memo carries across calls; a replay must stay identical.
    assert encoder.encode_list(batch) == expected
    assert codec.RecordEncoder().encode_batch(batch) == b"".join(expected)


@given(records)
@settings(max_examples=500)
def test_encoded_size_equals_encoded_length(record):
    assert codec.encoded_size(record) == len(codec.encode_record(record))
