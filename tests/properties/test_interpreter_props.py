"""Differential fuzzing: the provenance-aware interpreter vs plain eval.

For any generated arithmetic/boolean expression, the interpreter must
produce exactly the value Python produces -- provenance tracking may
never change semantics.
"""

import hypothesis.strategies as st
from hypothesis import assume, given, settings

from repro.apps.papython.interpreter import ProvenanceInterpreter
from repro.system import System

NAMES = ("a", "b", "c")


@st.composite
def expressions(draw, depth=3):
    if depth == 0 or draw(st.booleans()):
        if draw(st.booleans()):
            return draw(st.sampled_from(NAMES))
        return str(draw(st.integers(1, 9)))
    left = draw(expressions(depth=depth - 1))
    right = draw(expressions(depth=depth - 1))
    op = draw(st.sampled_from(["+", "-", "*", "//", "%", "==", "<",
                               ">", "&", "|", "^"]))
    return f"({left} {op} {right})"


@given(expressions(),
       st.integers(1, 20), st.integers(1, 20), st.integers(1, 20))
@settings(max_examples=150, deadline=None)
def test_interpreter_matches_python(source, a, b, c):
    plain_env = {"a": a, "b": b, "c": c}
    try:
        expected = eval(source, {"__builtins__": {}}, dict(plain_env))
    except ZeroDivisionError:
        assume(False)       # both sides would raise; not interesting

    system = System.boot()
    outcome = {}

    def program(sc):
        interp = ProvenanceInterpreter(sc)
        env = {name: interp.lift(value, name)
               for name, value in plain_env.items()}
        outcome["value"] = interp.eval(source, env).value
        return 0

    system.register_program("/pass/bin/app", program)
    system.run("/pass/bin/app")
    assert outcome["value"] == expected


@given(expressions())
@settings(max_examples=100, deadline=None)
def test_interpreter_ancestry_covers_used_names(source):
    """Every variable appearing in the expression is an ancestor of the
    result; unmentioned variables never are."""
    try:
        eval(source, {"__builtins__": {}},
             {name: index + 1 for index, name in enumerate(NAMES)})
    except ZeroDivisionError:
        assume(False)
    system = System.boot()

    def program(sc):
        interp = ProvenanceInterpreter(sc)
        env = {name: interp.lift(index + 1, f"var-{name}")
               for index, name in enumerate(NAMES)}
        result = interp.eval(source, env)
        interp.write_result("/pass/result", result)
        return 0

    system.register_program("/pass/bin/app", program)
    system.run("/pass/bin/app")
    system.sync()
    db = system.database("pass")
    ref = db.find_by_name("/pass/result")[0]
    from repro.core.records import Attr
    from repro.query.helpers import ancestry_refs
    labels = set()
    for anc in ancestry_refs([db], ref):
        labels.update(str(v) for v in db.attribute_values(anc, Attr.NAME))
    for name in NAMES:
        mentioned = name in source
        assert (f"var-{name}" in labels) == mentioned, (
            f"{name}: mentioned={mentioned}, labels={sorted(labels)}")
