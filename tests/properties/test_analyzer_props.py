"""Property-based tests: the analyzer's core invariants.

The central claim of section 5.4 is that cycle avoidance, operating on
purely local information, keeps the provenance graph over
(pnode, version) nodes acyclic -- for *any* stream of dependency events.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.analyzer import Analyzer, ProtoRecord
from repro.core.pnode import ObjectRef
from repro.core.records import Attr

N_OBJECTS = 6


class Obj:
    def __init__(self, pnode):
        self.pnode = pnode
        self.version = 0

    def ref(self):
        return ObjectRef(self.pnode, self.version)


#: An event is "subject S records a dependency on object V".
events = st.lists(
    st.tuples(st.integers(0, N_OBJECTS - 1), st.integers(0, N_OBJECTS - 1)),
    max_size=60,
)


def run_stream(stream):
    out = []
    analyzer = Analyzer(emit=out.append)
    objects = [Obj(pnode) for pnode in range(1, N_OBJECTS + 1)]
    for subject_index, value_index in stream:
        subject = objects[subject_index]
        value = objects[value_index]
        analyzer.submit(ProtoRecord(subject, Attr.INPUT, value.ref()))
    return analyzer, objects, out


def assert_acyclic(records):
    graph = {}
    for record in records:
        if record.is_ancestry:
            graph.setdefault(record.subject, []).append(record.value)
    state = {}

    def visit(node):
        state[node] = 1
        for child in graph.get(node, ()):
            code = state.get(child, 0)
            assert code != 1, f"cycle through {child}"
            if code == 0:
                visit(child)
        state[node] = 2

    for node in list(graph):
        if state.get(node, 0) == 0:
            visit(node)


@given(events)
@settings(max_examples=400)
def test_graph_always_acyclic(stream):
    _, _, out = run_stream(stream)
    assert_acyclic(out)


@given(events)
@settings(max_examples=300)
def test_versions_monotonic_and_linked(stream):
    """Every version > 0 must carry a PREV_VERSION edge to version-1."""
    _, objects, out = run_stream(stream)
    prev_edges = {(r.subject.pnode, r.subject.version)
                  for r in out if r.attr == Attr.PREV_VERSION}
    for obj in objects:
        for version in range(1, obj.version + 1):
            assert (obj.pnode, version) in prev_edges


@given(events)
@settings(max_examples=300)
def test_dedup_never_drops_distinct_statements(stream):
    """Replaying the admitted records through a fresh analyzer changes
    nothing: the output is already duplicate-free and stable."""
    _, _, out = run_stream(stream)
    replay_out = []
    replayer = Analyzer(emit=replay_out.append)
    for record in out:
        replayer.submit(record)
    assert replay_out == out


@given(events)
@settings(max_examples=300)
def test_counters_consistent(stream):
    analyzer, _, out = run_stream(stream)
    assert analyzer.records_out == len(out)
    assert analyzer.records_in == len(stream)
    # Every submitted record was either admitted or deduplicated, and
    # each freeze contributed exactly one extra PREV_VERSION record.
    assert (analyzer.records_out
            == len(stream) - analyzer.duplicates_dropped
            + analyzer.freezes)
    prev_edges = sum(1 for r in out if r.attr == Attr.PREV_VERSION)
    assert prev_edges == analyzer.freezes


@given(events)
@settings(max_examples=200)
def test_ancestor_sets_sound(stream):
    """The analyzer's local ancestor sets over-approximate, never
    under-approximate, true reachability for current versions."""
    analyzer, objects, out = run_stream(stream)
    graph = {}
    for record in out:
        if record.is_ancestry:
            graph.setdefault(record.subject, set()).add(record.value)

    def reachable(start):
        seen = set()
        frontier = [start]
        while frontier:
            node = frontier.pop()
            for child in graph.get(node, ()):
                if child not in seen:
                    seen.add(child)
                    frontier.append(child)
        return seen

    for obj in objects:
        true_ancestry = reachable(obj.ref())
        claimed = analyzer.ancestors_of(obj.pnode)
        assert true_ancestry <= set(claimed) | {obj.ref()}
