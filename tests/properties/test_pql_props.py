"""Property-based tests for the PQL front end."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.errors import PQLError, ReproError
from repro.pql.lexer import KEYWORDS, tokenize
from repro.pql.parser import parse

identifiers = st.from_regex(r"[A-Za-z_][A-Za-z0-9_]{0,10}", fullmatch=True)
member_names = st.sampled_from(["file", "process", "pipe", "node"])
edge_names = st.sampled_from(["input", "forkparent", "exec", "prev_version"])
quantifiers = st.sampled_from(["", "*", "+", "?", "{2}", "{1,3}", "{2,}"])


@st.composite
def queries(draw):
    """Generate structurally valid PQL query strings."""
    var = draw(identifiers.filter(
        lambda name: name.lower() not in KEYWORDS))
    member = draw(member_names)
    edge = draw(edge_names)
    quant = draw(quantifiers)
    reverse = "^" if draw(st.booleans()) else ""
    second = f"{var}2"
    text = (f"select {second} from Provenance.{member} as {var} "
            f"{var}.{reverse}{edge}{quant} as {second}")
    if draw(st.booleans()):
        literal = draw(st.integers(0, 1000))
        text += f" where {var}.version >= {literal}"
    return text


@given(queries())
@settings(max_examples=300)
def test_generated_queries_parse(text):
    query = parse(text)
    assert len(query.bindings) == 2


@given(st.text(max_size=80))
@settings(max_examples=500)
def test_lexer_never_crashes_unexpectedly(text):
    """Arbitrary input either tokenizes or raises a PQL error."""
    try:
        tokens = tokenize(text)
    except ReproError:
        return
    assert tokens[-1].kind == "eof"


@given(st.text(max_size=80))
@settings(max_examples=500)
def test_parser_never_crashes_unexpectedly(text):
    """Arbitrary input either parses or raises a PQL error -- no
    IndexError/AttributeError escapes."""
    try:
        parse(text)
    except ReproError:
        pass


@given(queries())
@settings(max_examples=100)
def test_parse_is_deterministic(text):
    assert parse(text) == parse(text)


@given(st.lists(st.sampled_from(
    ['select', 'from', 'where', 'as', 'F', 'Provenance', '.', 'input',
     '*', '(', ')', '"x"', '=', '1', ',', '^', '{', '}']),
    max_size=15))
@settings(max_examples=500)
def test_token_soup_is_handled(tokens):
    """Random sequences of legal tokens never escape the error type."""
    try:
        parse(" ".join(tokens))
    except ReproError:
        pass


def _make_live_engine():
    from repro.core.pnode import ObjectRef
    from repro.core.records import Attr, ObjType, ProvenanceRecord
    from repro.pql.engine import QueryEngine

    records = []
    for index in range(1, 20):
        records.append(ProvenanceRecord(
            ObjectRef(index, 0), Attr.TYPE,
            ObjType.FILE if index % 2 else ObjType.PROCESS))
        records.append(ProvenanceRecord(
            ObjectRef(index, 0), Attr.NAME, f"/f{index}"))
        if index > 1:
            records.append(ProvenanceRecord(
                ObjectRef(index, 0), Attr.INPUT,
                ObjectRef(index - 1, 0)))
    return QueryEngine.from_records(records)


_LIVE_ENGINE = _make_live_engine()


@given(queries())
@settings(max_examples=300, deadline=None)
def test_generated_queries_evaluate_without_crashing(text):
    """Structurally valid queries either run or raise a PQL error --
    the evaluator never leaks a raw Python exception."""
    try:
        rows = _LIVE_ENGINE.execute(text)
    except ReproError:
        return
    assert isinstance(rows, list)
