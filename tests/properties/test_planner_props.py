"""Planner soundness properties: planned == naive, maintained == rebuilt.

The optimizer is only allowed to change *where candidate rows come
from*, never which rows come back.  These properties drive random
record streams and generated queries through both arms of the same
engine (and through a sharded, federated engine) and require identical
answers; separately, indexes and the ancestry view maintained
incrementally through ``apply``/``apply_batch`` must match structures
rebuilt from scratch over the final graph -- including after a
crash/recover replay through the storage tier.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.errors import ReproError
from repro.core.pnode import ObjectRef
from repro.core.records import Attr, ProvenanceRecord
from repro.pql.engine import QueryEngine
from repro.pql.indexes import EqualityIndex, IndexCatalog, RangeIndex
from repro.pql.lexer import KEYWORDS
from repro.pql.oem import OEMGraph
from repro.storage.database import ProvenanceDatabase

# -- generators (mirroring test_oem_incremental_props / test_pql_props) -------

refs = st.builds(ObjectRef,
                 pnode=st.integers(1, 6),
                 version=st.integers(0, 3))

attrs = st.sampled_from([Attr.NAME, Attr.TYPE, Attr.ARGV, Attr.PID,
                         Attr.MD5, Attr.TIME, Attr.ANNOTATION])
edge_attrs = st.sampled_from([Attr.INPUT, Attr.PREV_VERSION,
                              Attr.FORKPARENT, Attr.EXEC])

plain_values = st.one_of(
    st.sampled_from(["/pass/a", "/pass/b", "file", "process", "sh"]),
    st.integers(0, 99))

records = st.one_of(
    st.builds(ProvenanceRecord, subject=refs, attr=attrs,
              value=plain_values),
    st.builds(ProvenanceRecord, subject=refs, attr=edge_attrs,
              value=refs))

streams = st.lists(records, max_size=60)

identifiers = st.from_regex(r"[A-Za-z_][A-Za-z0-9_]{0,10}", fullmatch=True)
member_names = st.sampled_from(["file", "process", "pipe", "node"])
edge_names = st.sampled_from(["input", "forkparent", "exec",
                              "prev_version"])
quantifiers = st.sampled_from(["", "*", "+", "?", "{2}", "{1,3}", "{2,}"])

#: WHERE tails that exercise every planner access path: equality on an
#: indexed atom, numeric ranges (both operand orders), name equality,
#: multi-conjunct, and un-plannable shapes (OR, inequality).
where_tails = st.sampled_from([
    "",
    ' where {v}.md5 = "/pass/a"',
    ' where {v}.time < 50',
    ' where 50 >= {v}.time',
    ' where {v}.name = "/pass/b"',
    ' where {v}.time > 10 and {v}.name = "/pass/a"',
    ' where {v}.name = "/pass/a" or {v}.time = 3',
    ' where {v}.pid != 7',
    ' where {v2}.md5 = "/pass/b"',
])


@st.composite
def queries(draw):
    """Structurally valid two-binding queries with planner-relevant
    WHERE clauses."""
    var = draw(identifiers.filter(
        lambda name: name.lower() not in KEYWORDS))
    member = draw(member_names)
    edge = draw(edge_names)
    quant = draw(quantifiers)
    reverse = "^" if draw(st.booleans()) else ""
    second = f"{var}2"
    text = (f"select {second} from Provenance.{member} as {var} "
            f"{var}.{reverse}{edge}{quant} as {second}")
    text += draw(where_tails).format(v=var, v2=second)
    return text


def canonical(rows) -> list[str]:
    return sorted(map(repr, rows))


def assert_arms_agree(engine: QueryEngine, query: str) -> None:
    try:
        planned = engine.execute_refs(query)
    except ReproError:
        return
    saved = engine._optimize
    engine._optimize = False
    try:
        naive = engine.execute_refs(query)
    finally:
        engine._optimize = saved
    assert canonical(planned) == canonical(naive), query


# -- planned == naive ---------------------------------------------------------

@given(streams, queries())
@settings(max_examples=200, deadline=None)
def test_planned_equals_naive(stream, query):
    engine = QueryEngine(OEMGraph.build(stream), check=False)
    assert_arms_agree(engine, query)


@given(streams, queries())
@settings(max_examples=100, deadline=None)
def test_planned_equals_naive_federated(stream, query):
    """The PR 9 shape: records sharded across databases, one live
    engine over the union."""
    shards = [ProvenanceDatabase(f"s{index}") for index in range(3)]
    for record in stream:
        shards[record.subject.pnode % 3].insert(record)
    engine = QueryEngine.live(shards, check=False)
    assert_arms_agree(engine, query)


@given(streams, st.integers(0, 60), queries())
@settings(max_examples=100, deadline=None)
def test_planned_equals_naive_while_growing(stream, cut, query):
    """Queries interleaved with ingest: answer, grow, answer again --
    index maintenance and view patching must stay sound mid-stream."""
    cut = min(cut, len(stream))
    engine = QueryEngine(OEMGraph.build(stream[:cut]), check=False)
    assert_arms_agree(engine, query)
    engine.graph.apply_many(stream[cut:])
    assert_arms_agree(engine, query)


# -- maintained == rebuilt ----------------------------------------------------

def eq_fingerprint(index: EqualityIndex, graph: OEMGraph) -> dict:
    probes = ["/pass/a", "/pass/b", "file", "process", "sh"] + \
        list(range(0, 100, 7))
    return {value: canonical(n.ref for n in index.lookup(value))
            for value in probes}


def rng_fingerprint(index: RangeIndex) -> list:
    return canonical(
        (value, node.ref) for value, _, node in index._pairs)


@given(streams, st.integers(0, 60))
@settings(max_examples=150, deadline=None)
def test_maintained_indexes_equal_rebuilt(stream, cut):
    """Indexes built mid-stream and maintained through apply/apply_batch
    match indexes rebuilt from scratch over the final graph."""
    cut = min(cut, len(stream))
    graph = OEMGraph.build(stream[:cut])
    catalog = IndexCatalog.attach(graph)
    maintained_eq = catalog.equality("md5")
    maintained_rng = catalog.range("time")
    half = cut + (len(stream) - cut) // 2
    for record in stream[cut:half]:
        graph.apply(record)
    graph.apply_batch(stream[half:])
    assert eq_fingerprint(maintained_eq, graph) == \
        eq_fingerprint(EqualityIndex("md5", graph.nodes()), graph)
    assert rng_fingerprint(maintained_rng) == \
        rng_fingerprint(RangeIndex("time", graph.nodes()))


@given(streams, st.integers(0, 60))
@settings(max_examples=150, deadline=None)
def test_patched_view_equals_recomputed(stream, cut):
    """Closures cached early and patched through later deltas match
    closures computed fresh on the final graph."""
    cut = min(cut, len(stream))
    graph = OEMGraph.build(stream[:cut])
    catalog = IndexCatalog.attach(graph)
    labels = ("input", "prev_version")
    roots = graph.nodes()[:6]
    for root in roots:
        catalog.view.closure(root, labels, False)
        catalog.view.closure(root, labels, True)
    graph.apply_batch(stream[cut:])
    fresh = IndexCatalog(graph)         # unattached: no deltas seen
    for root in roots:
        for reverse in (False, True):
            patched = catalog.view.closure(root, labels, reverse)
            computed = fresh.view.closure(root, labels, reverse)
            assert canonical(n.ref for n in patched) == \
                canonical(n.ref for n in computed), (root.ref, reverse)


# -- crash -> recover replay --------------------------------------------------

def test_crash_recover_replay_keeps_planner_sound():
    """Sharded system, queries warm the indexes, machine dies with
    undrained logs, recovery replays through the databases' push feeds:
    the maintained indexes must absorb the replayed records and keep
    planned == naive."""
    from repro.system import System
    from tests.conftest import write_file

    system = System.boot(shards=4)
    write_file(system, "/pass/before", b"old")
    system.sync()
    engine = system.query_engine()
    q_name = ('select F from Provenance.file as F '
              'where F.name = "/pass/after"')
    q_closure = ('select A from Provenance.file as F, F.input* as A '
                 'where F.name = "/pass/out"')
    for query in (q_name, q_closure):
        engine.execute(query)               # build indexes pre-crash
    assert engine.catalog is not None

    with system.process(argv=["maker"]) as proc:
        fd = proc.open("/pass/after", "w")
        proc.write(fd, b"new")
        proc.close(fd)
        src = proc.open("/pass/after", "r")
        proc.read(src)
        proc.close(src)
        out = proc.open("/pass/out", "w")
        proc.write(out, b"derived")
        proc.close(out)
    # No sync: the records sit in shard logs.  Die and recover.
    system.tier.crash()
    report = system.tier.recover(consume=True)
    assert report.committed_records

    for query in (q_name, q_closure):
        planned = engine.execute_refs(query)
        saved = engine._optimize
        engine._optimize = False
        try:
            naive = engine.execute_refs(query)
        finally:
            engine._optimize = saved
        assert canonical(planned) == canonical(naive), query
    assert engine.execute_refs(q_name)      # the replay really arrived
    names = {getattr(row, "name", None)
             for row in engine.execute(
                 'select A from Provenance.file as F, F.input* as A '
                 'where F.name = "/pass/out"')}
    assert "/pass/after" in names
