"""Property: any workload the real pipeline produces passes fsck.

This is the end-to-end closure of the analyzer/distributor/Waldo
invariants: random syscall activity, through the full stack, always
yields an integrity-clean database.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.storage.fsck import fsck
from repro.system import System

FILES = ["a", "b", "c"]

actions = st.lists(st.one_of(
    st.tuples(st.just("write"), st.sampled_from(FILES)),
    st.tuples(st.just("read"), st.sampled_from(FILES)),
    st.tuples(st.just("rmw"), st.sampled_from(FILES)),
    st.tuples(st.just("copy"), st.sampled_from(FILES)),
    st.tuples(st.just("newproc"), st.just("")),
), max_size=25)


@given(actions)
@settings(max_examples=60, deadline=None)
def test_random_activity_yields_clean_store(script):
    system = System.boot()
    shell = system.kernel.spawn_shell(["driver"])
    current = shell

    def ensure(name):
        path = f"/pass/{name}"
        if not system.kernel.vfs.exists(path):
            fd = current.open(path, "w")
            current.write(fd, b"seed")
            current.close(fd)
        return path

    for action, name in script:
        if action == "newproc":
            system.kernel.reap(current.proc, 0)
            current = system.kernel.spawn_shell(["driver"])
            continue
        path = ensure(name)
        if action == "write":
            fd = current.open(path, "w")
            current.write(fd, b"data")
            current.close(fd)
        elif action == "read":
            fd = current.open(path, "r")
            current.read(fd)
            current.close(fd)
        elif action == "rmw":
            fd = current.open(path, "r+")
            current.read(fd)
            current.write(fd, b"mod")
            current.close(fd)
        elif action == "copy":
            fd = current.open(path, "r")
            data = current.read(fd)
            current.close(fd)
            other = f"/pass/{name}-copy"
            fd = current.open(other, "w")
            current.write(fd, data)
            current.close(fd)
    system.kernel.reap(current.proc, 0)
    system.sync()
    report = fsck(system.databases())
    assert report.clean, "\n".join(str(f) for f in report.findings)
