"""Batched and per-record ingest are observationally equivalent.

The acceptance property for the batched ingest path: for *any* churn
workload, a system booted with ``batching=True`` (event batches, group
commit, bulk Waldo drain) and one booted with ``batching=False`` (the
per-record pipeline) end up with identical database contents -- every
record, in insertion order -- and identical PQL answers.

Identity is checked modulo the two things that legitimately differ
between boots: the globally unique volume id embedded in pnode numbers,
and simulated-clock TIME values (group commit shifts flush timing).
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.pnode import ObjectRef, TRANSIENT_VOLUME, local_of, volume_of
from repro.core.records import Attr
from repro.system import BootConfig, System

BATCHED = BootConfig(observability=False)
UNBATCHED = BootConfig(observability=False, batching=False)

#: One workload step: (operation, file slot, magnitude).
steps = st.lists(
    st.tuples(
        st.sampled_from(["write", "append", "disclose", "burst",
                         "overwrite", "rename", "read_copy"]),
        st.integers(0, 5),
        st.integers(1, 40),
    ),
    min_size=1, max_size=12,
)


def drive(system: System, workload) -> None:
    """Replay one generated workload deterministically."""
    created: set[int] = set()
    with system.process(argv=["setup"]) as proc:
        proc.mkdir("/pass/eq")
    for index, (op, slot, size) in enumerate(workload):
        path = f"/pass/eq/f{slot}.dat"
        with system.process(argv=[f"step-{index}"]) as proc:
            if op in ("write", "overwrite") or slot not in created:
                fd = proc.open(path, "w")
                proc.write(fd, bytes([65 + slot]) * size)
                proc.close(fd)
                created.add(slot)
            if op == "append":
                fd = proc.open(path, "a")
                proc.write(fd, b"+" * size)
                proc.close(fd)
            elif op == "disclose":
                fd = proc.open(path, "a")
                protos = proc.dpapi.record_many(
                    fd, Attr.ANNOTATION,
                    (f"s{index}.k{key}" for key in range(size)))
                proc.dpapi.pass_write(fd, records=protos)
                proc.close(fd)
            elif op == "burst":
                # Records-only disclosure, scaled past the group-commit
                # threshold often enough to exercise it.
                fd = proc.open(path, "a")
                protos = proc.dpapi.record_many(
                    fd, Attr.ANNOTATION,
                    (f"s{index}.b{key}" for key in range(size * 20)))
                proc.dpapi.pass_write(fd, records=protos)
                proc.close(fd)
            elif op == "rename":
                target = f"/pass/eq/f{slot}-renamed-{index}.dat"
                proc.rename(path, target)
                fd = proc.open(path, "w")
                proc.write(fd, b"refill")
                proc.close(fd)
            elif op == "read_copy":
                fd = proc.open(path, "r")
                payload = proc.read(fd)
                proc.close(fd)
                out = proc.open(f"/pass/eq/copy-{index}.dat", "w")
                proc.write(out, payload or b"empty")
                proc.close(out)
    system.sync()


def _canon_ref(ref: ObjectRef) -> tuple:
    transient = volume_of(ref.pnode) == TRANSIENT_VOLUME
    return (transient, local_of(ref.pnode), ref.version)


def canonical_contents(system: System) -> list[tuple]:
    out = []
    for database in system.databases():
        for record in database.all_records():
            value = record.value
            if isinstance(value, ObjectRef):
                canon: object = ("ref",) + _canon_ref(value)
            elif record.attr == Attr.TIME:
                canon = "<time>"
            else:
                canon = value
            out.append((_canon_ref(record.subject), record.attr, canon))
    return out


QUERIES = (
    'select F from Provenance.file as F where F.name like "%.dat"',
    'select A from Provenance.file as F, F.input* as A '
    'where F.name like "%copy%"',
)


def query_answers(system: System) -> list[list[tuple]]:
    engine = system.query_engine()
    return [sorted(_canon_ref(ref) for ref in engine.execute_refs(query))
            for query in QUERIES]


@given(steps)
@settings(max_examples=25, deadline=None)
def test_batched_pipeline_is_observationally_equivalent(workload):
    batched = System.boot(config=BATCHED)
    unbatched = System.boot(config=UNBATCHED)
    drive(batched, workload)
    drive(unbatched, workload)
    assert canonical_contents(batched) == canonical_contents(unbatched)
    assert query_answers(batched) == query_answers(unbatched)


def test_burst_workload_group_commits():
    """The generated grammar really can reach group commit: a burst-only
    workload fires it, and equivalence still holds there."""
    workload = [("write", 0, 8), ("burst", 0, 40), ("burst", 1, 40)]
    batched = System.boot(config=BATCHED)
    unbatched = System.boot(config=UNBATCHED)
    drive(batched, workload)
    drive(unbatched, workload)
    log = batched.kernel.volume("pass").lasagna.log
    assert log.batch_flushes > 0
    assert batched.kernel.volume("pass").lasagna.log.batch_records > 0
    assert unbatched.kernel.volume("pass").lasagna.log.batch_flushes == 0
    assert canonical_contents(batched) == canonical_contents(unbatched)
    assert query_answers(batched) == query_answers(unbatched)
