"""Property-based tests: observability never perturbs the pipeline.

The passmon contract is that instrumentation is *read-only*: booting
with metrics and tracing on (or off) must not change what provenance is
recorded, what queries return, or whether fsck passes.  We drive the
same randomly generated op sequence through differently instrumented
machines and demand identical observable outcomes.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.errors import FileNotFound
from repro.core.pnode import ObjectRef, local_of, volume_of
from repro.system import System

N_FILES = 4

#: An op is (kind, file index, payload byte).
ops = st.lists(
    st.tuples(st.sampled_from(["write", "append", "read", "copy"]),
              st.integers(0, N_FILES - 1),
              st.integers(0, 255)),
    max_size=25,
)


def path(index: int) -> str:
    return f"/pass/f{index}.dat"


def run_ops(system: System, stream) -> None:
    for kind, index, byte in stream:
        with system.process(argv=[kind]) as proc:
            if kind in ("write", "append"):
                fd = proc.open(path(index), "w" if kind == "write" else "a")
                proc.write(fd, bytes([byte]))
                proc.close(fd)
            elif kind == "read":
                try:
                    fd = proc.open(path(index), "r")
                except FileNotFound:
                    continue
                proc.read(fd)
                proc.close(fd)
            else:                       # copy f[index] -> f[index+1 mod N]
                try:
                    fd = proc.open(path(index), "r")
                except FileNotFound:
                    continue
                data = proc.read(fd)
                proc.close(fd)
                out = proc.open(path((index + 1) % N_FILES), "w")
                proc.write(out, data)
                proc.close(out)
    system.sync()


QUERY = "select F.name from Provenance.file as F"


def outcomes(system: System):
    """Observable results, canonicalised for comparison across boots.

    Volume ids are process-global by design (they cross machines over
    NFS), so pnode numbers differ between sequential boots even for
    identical histories; we compare them modulo volume-id renaming.
    """
    rows = sorted(map(repr, system.query(QUERY)))
    report = system.fsck()
    raw = [r for db in system.databases() for r in db.all_records()]
    vols = sorted({volume_of(x.pnode) for r in raw
                   for x in (r.subject, r.value)
                   if isinstance(x, ObjectRef)})
    rank = {v: i for i, v in enumerate(vols)}

    def canon(value):
        if isinstance(value, ObjectRef):
            return (f"ref:{rank[volume_of(value.pnode)]}"
                    f":{local_of(value.pnode)}:{value.version}")
        return repr(value)

    records = sorted((canon(r.subject), r.attr, canon(r.value))
                     for r in raw)
    return rows, report.clean, len(report.findings), records


@settings(max_examples=25, deadline=None)
@given(stream=ops)
def test_instrumentation_is_read_only(stream):
    traced = System.boot(tracing=True)
    run_ops(traced, stream)
    dark = System.boot(observability=False)
    run_ops(dark, stream)
    assert outcomes(traced) == outcomes(dark)
    # The traced machine really did collect something to compare.
    assert traced.trace() or not stream
