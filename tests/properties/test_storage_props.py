"""Property-based tests: log durability and recovery invariants."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.pnode import ObjectRef
from repro.core.records import Attr, ProvenanceRecord
from repro.kernel.cache import PageCache
from repro.kernel.clock import SimClock
from repro.kernel.params import CacheParams, LogParams
from repro.storage.log import ProvenanceLog
from repro.storage.waldo import Waldo


def record_strategy():
    return st.builds(
        ProvenanceRecord,
        st.builds(ObjectRef, st.integers(1, 50), st.integers(0, 3)),
        st.sampled_from([Attr.NAME, Attr.TYPE, Attr.ANNOTATION, Attr.PID]),
        st.one_of(st.text(max_size=20), st.integers(0, 1000)),
    )


#: A script: batches of records, each batch flushed together.
batches = st.lists(st.lists(record_strategy(), min_size=1, max_size=5),
                   max_size=15)


@given(batches, st.integers(64, 600))
@settings(max_examples=200)
def test_waldo_sees_every_flushed_record(script, max_size):
    clock = SimClock()
    log = ProvenanceLog(clock, LogParams(max_size=max_size))
    waldo = Waldo(log)
    flushed = []
    for batch in script:
        for record in batch:
            log.append(record)
            flushed.append(record)
        log.flush()
    log.rotate()
    waldo.drain()
    in_db = list(waldo.database.all_records())
    assert len(in_db) == len(flushed)
    # The database clusters records by pnode; per-object order (and the
    # overall multiset) must survive exactly.
    assert sorted(r.key() for r in in_db) == sorted(r.key()
                                                    for r in flushed)
    for pnode in waldo.database.pnodes():
        expected = [r.key() for r in flushed if r.subject.pnode == pnode]
        assert [r.key() for r in waldo.database.records_of(pnode)] == expected
    assert not waldo.orphaned


@given(batches, st.integers(0, 14))
@settings(max_examples=200)
def test_crash_loses_only_the_unflushed_suffix(script, crash_after):
    """Whatever was flushed before the crash is fully recoverable; the
    unflushed buffer is gone but nothing partial enters the database."""
    clock = SimClock()
    log = ProvenanceLog(clock, LogParams(max_size=1 << 20))
    waldo = Waldo(log)
    durable = []
    for index, batch in enumerate(script):
        for record in batch:
            log.append(record)
        if index < crash_after:
            log.flush()
            durable.extend(batch)
    log.crash()
    log.rotate()
    waldo.drain()
    in_db = sorted(r.key() for r in waldo.database.all_records())
    assert in_db == sorted(r.key() for r in durable)


@given(batches, st.integers(1, 40))
@settings(max_examples=200)
def test_torn_tail_yields_committed_prefix_only(script, tear):
    """Tearing bytes off the log end never corrupts earlier txns."""
    from repro.storage import codec
    clock = SimClock()
    log = ProvenanceLog(clock, LogParams(max_size=1 << 20))
    for batch in script:
        for record in batch:
            log.append(record)
        log.flush()
    log.crash(drop_tail_bytes=tear)
    decoded = list(codec.decode_stream(bytes(log.current.raw)))
    # Replay txn framing: only complete BEGIN..END pairs may commit.
    committed, open_txn = [], None
    pending = []
    for record in decoded:
        if record.attr == Attr.BEGINTXN:
            open_txn, pending = int(record.value), []
        elif record.attr == Attr.ENDTXN:
            if open_txn == int(record.value):
                committed.extend(pending)
            open_txn, pending = None, []
        elif open_txn is not None:
            pending.append(record)
    flat = [record for batch in script for record in batch]
    assert [r.key() for r in committed] == [r.key() for r in
                                            flat[:len(committed)]]


@given(st.lists(st.tuples(st.integers(1, 4), st.integers(0, 63)),
                max_size=200),
       st.integers(4, 32))
@settings(max_examples=200)
def test_page_cache_is_true_lru(accesses, capacity):
    """The cache matches a reference LRU over any access pattern."""
    cache = PageCache(CacheParams(capacity_pages=capacity))
    reference: list = []          # most recent last
    for volume_id, block in accesses:
        key = (volume_id, block)
        hit = cache.lookup(volume_id, block)
        assert hit == (key in reference)
        if not hit:
            cache.insert(volume_id, block)
            reference.append(key)
            if len(reference) > capacity:
                reference.pop(0)
        else:
            reference.remove(key)
            reference.append(key)
        assert len(cache) == len(reference)
