"""Incremental == batch: OEMGraph.apply vs OEMGraph.build.

The live query path only works if a graph grown one record at a time is
indistinguishable from one batch-built over the same stream.  These
properties drive randomly generated record streams (framing, identity
atoms, cross-references, version churn, arbitrary arrival order) through
both paths and compare the full observable surface: nodes, atoms, edges
in both directions, Provenance members, the name index, and actual
query results.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.pnode import ObjectRef
from repro.core.records import Attr, ProvenanceRecord
from repro.pql.engine import QueryEngine
from repro.pql.oem import OEMGraph
from tests.conftest import graph_fingerprint

refs = st.builds(ObjectRef,
                 pnode=st.integers(1, 6),
                 version=st.integers(0, 3))

#: Identity, plain, framing, and edge attributes all mixed together.
attrs = st.sampled_from([Attr.NAME, Attr.TYPE, Attr.ARGV, Attr.PID,
                         Attr.MD5, Attr.TIME, Attr.ANNOTATION,
                         Attr.BEGINTXN, Attr.ENDTXN])
edge_attrs = st.sampled_from([Attr.INPUT, Attr.PREV_VERSION,
                              Attr.FORKPARENT, Attr.EXEC])

plain_values = st.one_of(
    st.sampled_from(["/pass/a", "/pass/b", "file", "process", "sh"]),
    st.integers(0, 99),
    st.text(st.characters(codec="ascii", exclude_characters="\0"),
            max_size=8))

records = st.one_of(
    st.builds(ProvenanceRecord, subject=refs, attr=attrs,
              value=plain_values),
    st.builds(ProvenanceRecord, subject=refs, attr=edge_attrs,
              value=refs))

streams = st.lists(records, max_size=60)


def fingerprint(graph: OEMGraph) -> dict:
    """The shared fingerprint plus the name index the evaluator's
    selection pushdown reads."""
    out = graph_fingerprint(graph)
    out["by_name"] = {name: sorted(n.ref for n in graph.named(name))
                      for name in ("/pass/a", "/pass/b", "sh")}
    return out


@given(streams)
@settings(max_examples=200)
def test_apply_equals_build(stream):
    batch = OEMGraph.build(stream)
    live = OEMGraph()
    for record in stream:
        live.apply(record)
    assert fingerprint(live) == fingerprint(batch)


@given(streams, st.integers(0, 60))
@settings(max_examples=200)
def test_build_prefix_then_apply_suffix_equals_build(stream, cut):
    """The real lifecycle: batch-build over history, then go live."""
    cut = min(cut, len(stream))
    hybrid = OEMGraph.build(stream[:cut])
    for record in stream[cut:]:
        hybrid.apply(record)
    assert fingerprint(hybrid) == fingerprint(OEMGraph.build(stream))


@given(streams)
@settings(max_examples=50)
def test_query_results_match(stream):
    """Same rows out of both graphs, not just same structure."""
    batch = QueryEngine(OEMGraph.build(stream), check=False)
    live_graph = OEMGraph()
    live_graph.apply_many(stream)
    live = QueryEngine(live_graph, check=False)
    for query in (
        "select N from Provenance.node as N",
        'select F from Provenance.file as F where F.name = "/pass/a"',
        "select D from Provenance.node as N N.^input* as D",
        "select count(N) from Provenance.node as N",
    ):
        assert sorted(map(repr, live.execute_refs(query))) == \
            sorted(map(repr, batch.execute_refs(query)))


@given(streams)
@settings(max_examples=100)
def test_vocab_epoch_monotonic_and_label_complete(stream):
    """Epoch only moves forward, and label accessors cover every label
    actually present on nodes (the Vocabulary fast path relies on it)."""
    graph = OEMGraph()
    last = graph.vocab_epoch
    for record in stream:
        graph.apply(record)
        assert graph.vocab_epoch >= last
        last = graph.vocab_epoch
    seen_atoms, seen_edges = set(), set()
    for node in graph.nodes():
        seen_atoms.update(l for l, v in node.atoms.items() if v)
        seen_edges.update(l for l, t in node.edges.items() if t)
    assert seen_atoms <= graph.atom_labels()
    assert seen_edges <= graph.edge_labels()
