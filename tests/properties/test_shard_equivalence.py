"""Sharded and single-shard storage tiers are answer-equivalent.

The acceptance property for the sharded storage tier: for *any* churn
workload, systems booted with ``shards=2`` and ``shards=4`` end up with
the same database contents as ``shards=1`` -- as a multiset: routing by
subject-pnode hash preserves each subject's record order within its
shard, but the *global* interleaving across shards legitimately differs
-- and identical PQL answers through the federated query engine (the
merged OEM graph is arrival-order-insensitive, so answers must not
depend on topology at all).

Same workload grammar and canonicalization as the batched≡unbatched
property (tests/properties/test_batch_equivalence.py).
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.system import BootConfig, System
from tests.properties.test_batch_equivalence import (
    canonical_contents,
    drive,
    query_answers,
)

steps = st.lists(
    st.tuples(
        st.sampled_from(["write", "append", "disclose", "burst",
                         "overwrite", "rename", "read_copy"]),
        st.integers(0, 5),
        st.integers(1, 40),
    ),
    min_size=1, max_size=12,
)


def _multiset(system: System) -> list[tuple]:
    return sorted(canonical_contents(system), key=repr)


@given(steps)
@settings(max_examples=15, deadline=None)
def test_sharded_tier_is_answer_equivalent(workload):
    single = System.boot(config=BootConfig(observability=False))
    drive(single, workload)
    base_contents = _multiset(single)
    base_answers = query_answers(single)
    for count in (2, 4):
        sharded = System.boot(config=BootConfig(observability=False,
                                                shards=count))
        drive(sharded, workload)
        assert _multiset(sharded) == base_contents, \
            f"shards={count} drained a different record multiset"
        assert query_answers(sharded) == base_answers, \
            f"shards={count} federated query answers differ"


def test_sharded_burst_routes_across_shards():
    """A multi-file workload really does populate several shard
    databases, and equivalence holds on it."""
    workload = [("write", slot, 8) for slot in range(6)] + \
               [("burst", slot, 30) for slot in range(6)]
    single = System.boot(config=BootConfig(observability=False))
    sharded = System.boot(config=BootConfig(observability=False, shards=4))
    drive(single, workload)
    drive(sharded, workload)
    populated = [db for db in sharded.tier.databases("pass") if len(db)]
    assert len(sharded.tier.databases("pass")) == 4
    assert len(populated) >= 2, "pnode hashing left all records on one shard"
    assert _multiset(sharded) == _multiset(single)
    assert query_answers(sharded) == query_answers(single)


def test_volume_shard_key_keeps_one_pipeline_per_volume():
    """``shard_key='volume'`` ignores the shard count: the classic
    one-log-one-waldo layout, still behind the tier facade."""
    system = System.boot(config=BootConfig(
        observability=False, shards=4, shard_key="volume"))
    workload = [("write", 0, 8), ("disclose", 1, 12)]
    drive(system, workload)
    assert system.tier.shard_count("pass") == 1
    assert len(system.tier.databases("pass")) == 1
