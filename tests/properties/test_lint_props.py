"""Property: a query the static analyzer accepts never dies with a
name error in the evaluator.

The generator deliberately produces a mix of good and bad queries
(unbound roots, misspelled attributes, unknown functions); whenever the
lint pre-pass reports no blocking diagnostic, evaluation must not raise
``PQLNameError``.
"""

import json
import os

import hypothesis.strategies as st
import pytest
from hypothesis import assume, given, settings

from repro.core.errors import PQLNameError
from repro.core.pnode import ObjectRef
from repro.core.records import Attr, ObjType, ProvenanceRecord
from repro.lint.diagnostics import ERROR
from repro.lint.pqlcheck import check_query
from repro.pql.engine import QueryEngine
from repro.pql.parser import parse


def R(pnode, version, attr, value):
    return ProvenanceRecord(ObjectRef(pnode, version), attr, value)


def build_engine():
    return QueryEngine.from_records([
        R(1, 0, Attr.TYPE, ObjType.FILE),
        R(1, 0, Attr.NAME, "/data/a"),
        R(2, 0, Attr.TYPE, ObjType.FILE),
        R(2, 0, Attr.NAME, "/data/b"),
        R(3, 0, Attr.TYPE, ObjType.PROCESS),
        R(3, 0, Attr.NAME, "prog"),
        R(3, 0, Attr.PID, 7),
        R(1, 0, Attr.INPUT, ObjectRef(3, 0)),
        R(3, 0, Attr.INPUT, ObjectRef(2, 0)),
    ])


ENGINE = build_engine()

members = st.sampled_from(["file", "process", "node", "martian"])
edges = st.sampled_from(["input", "forkparent", "nmae", "name", "exec"])
quants = st.sampled_from(["", "*", "?", "{1,3}"])
roots = st.sampled_from(["F", "Zed", "Provenance"])
functions = st.sampled_from(["count", "frob", "len", "max"])
atoms = st.sampled_from(["name", "pid", "version", "oops"])


@st.composite
def queries(draw):
    member = draw(members)
    reverse = "^" if draw(st.booleans()) else ""
    root = draw(roots)
    if root == "Provenance":
        second = f"Provenance.{draw(members)} as A"
    else:
        second = f"{root}.{reverse}{draw(edges)}{draw(quants)} as A"
    select = draw(st.sampled_from(
        ["A", f"{draw(functions)}(A.{draw(atoms)})", f"A.{draw(atoms)}"]))
    text = f"select {select} from Provenance.{member} as F {second}"
    if draw(st.booleans()):
        literal = draw(st.sampled_from(['"x"', "3", "true"]))
        text += f" where A.{draw(atoms)} = {literal}"
    return text


@given(queries())
@settings(max_examples=400, deadline=None)
def test_accepted_queries_never_raise_name_errors(text):
    query = parse(text)
    diagnostics = check_query(query, ENGINE.vocabulary())
    assume(not any(d.severity == ERROR for d in diagnostics))
    try:
        ENGINE.execute(text, check=False)
    except PQLNameError as exc:                      # pragma: no cover
        pytest.fail(f"lint accepted {text!r} but evaluation raised "
                    f"{exc!r}")


@given(queries())
@settings(max_examples=400, deadline=None)
def test_prepass_rejections_are_positioned(text):
    """Whatever the pre-pass rejects, it rejects with a position."""
    query = parse(text)
    for diag in check_query(query, ENGINE.vocabulary()):
        if diag.severity == ERROR:
            assert diag.line >= 1


# -- passflow over the shipped tree -------------------------------------------

SRC_ROOT = os.path.join(os.path.dirname(__file__), os.pardir, os.pardir,
                        "src", "repro")


def _run_passflow():
    from repro.lint import analyze_tree, build_program, graph_payload
    from repro.lint.flowcheck import check_program

    diagnostics = analyze_tree(SRC_ROOT)
    program = build_program(SRC_ROOT)
    check_program(program)
    graph = json.dumps(graph_payload(program), indent=2, sort_keys=True)
    report = json.dumps([d.to_dict() for d in diagnostics], sort_keys=True)
    return report, graph


def test_passflow_is_deterministic_and_strict_clean():
    """Two full runs over src/repro: byte-identical JSON, and clean
    enough for --strict (no diagnostics at all)."""
    first_report, first_graph = _run_passflow()
    second_report, second_graph = _run_passflow()
    assert first_report == second_report
    assert first_graph == second_graph
    assert first_report == "[]"
