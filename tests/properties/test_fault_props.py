"""Property tests for the fault layer: *random* fault plans never break
the WAP invariant.

The crash-point explorer sweeps every (site, hit) systematically; this
test attacks from the other side -- hypothesis-generated plans with
arbitrary rule mixes (crash / torn / io_error, nth- and
probability-triggered) over the quickstart workload.  Whatever fires,
the machine is crashed, recovered, and judged with the same verdict
logic the explorer uses:

* no completed data write is left without committed-or-flagged
  provenance (WAP),
* recovery is idempotent (a second pass is a clean no-op),
* fsck over the recovered database is clean.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.crashlab import WORKLOADS, run_crash_scenario
from repro.faults import FaultPlan

#: Local (single-machine) sites the quickstart workload can reach, with
#: the actions that are meaningful at each.
_SITE_ACTIONS = [
    ("disk.read", ("io_error",)),
    ("disk.write", ("crash", "io_error")),
    ("disk.clustered_write", ("crash", "io_error")),
    ("log.flush.pre", ("crash", "io_error")),
    ("log.flush.append", ("crash", "torn", "io_error")),
    ("log.flush.post", ("crash", "io_error")),
    ("lasagna.write.pre_data", ("crash", "io_error")),
    ("lasagna.write.post_data", ("crash", "io_error")),
    ("waldo.drain.segment", ("crash", "io_error")),
    ("distributor.flush", ("crash", "io_error")),
]


@st.composite
def fault_rules(draw):
    site, actions = draw(st.sampled_from(_SITE_ACTIONS))
    action = draw(st.sampled_from(actions))
    kwargs = {"param": draw(st.floats(0.1, 0.9))}
    if draw(st.booleans()):
        kwargs["nth"] = draw(st.integers(1, 40))
    else:
        kwargs["probability"] = draw(st.floats(0.0, 0.3))
        kwargs["max_fires"] = draw(st.integers(1, 3))
    return site, action, kwargs


@st.composite
def fault_plans(draw):
    plan = FaultPlan(seed=draw(st.integers(0, 2**32 - 1)))
    for site, action, kwargs in draw(st.lists(fault_rules(),
                                              min_size=1, max_size=3)):
        plan.add(site, action, **kwargs)
    return plan


@settings(max_examples=30, deadline=None)
@given(plan=fault_plans())
def test_random_plans_never_violate_wap(plan):
    """Whatever a random plan does to quickstart -- including nothing,
    when its coordinates are unreachable -- the recovered state
    satisfies WAP, fsck is clean, and recovery is idempotent."""
    result = run_crash_scenario(WORKLOADS["quickstart"], plan)
    assert result.wap_violations == []
    assert result.idempotent, "second recovery pass was not a no-op"
    assert result.fsck_report.clean, "\n".join(
        str(f) for f in result.fsck_report.findings)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 2**32 - 1), nth=st.integers(1, 30))
def test_replayed_scenarios_agree(seed, nth):
    """The same plan replayed twice reaches the same verdict and the
    same database size: the harness itself is deterministic."""
    def run():
        plan = FaultPlan(seed=seed).add("log.flush.append", "torn",
                                        nth=nth, param=0.5)
        return run_crash_scenario(WORKLOADS["quickstart"], plan)

    first, second = run(), run()
    assert first.db_records == second.db_records
    assert (first.fault is None) == (second.fault is None)
    assert first.report.torn_bytes == second.report.torn_bytes
    assert len(first.report.orphaned_records) == len(
        second.report.orphaned_records)
