"""Property-based tests: VFS namespace operations against a dict model."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.core.errors import ReproError
from repro.kernel.cache import PageCache
from repro.kernel.clock import SimClock
from repro.kernel.disk import SimulatedDisk
from repro.kernel.vfs import VFS
from repro.kernel.volume import Volume

NAMES = ["a", "b", "c", "d"]
DIRS = ["d1", "d2"]

ops = st.lists(st.one_of(
    st.tuples(st.just("create"), st.sampled_from(NAMES),
              st.sampled_from(["/", *["/" + d for d in DIRS]])),
    st.tuples(st.just("mkdir"), st.sampled_from(DIRS), st.just("/")),
    st.tuples(st.just("unlink"), st.sampled_from(NAMES),
              st.sampled_from(["/", *["/" + d for d in DIRS]])),
    st.tuples(st.just("rename"), st.sampled_from(NAMES),
              st.sampled_from(NAMES)),
), max_size=30)


def fresh_vfs():
    clock = SimClock()
    disk = SimulatedDisk(clock)
    vfs = VFS()
    volume = Volume("root", 1, clock, disk, PageCache())
    vfs.mount(volume, "/")
    return vfs


def apply(vfs, model: set, operations):
    """Apply ops to both the VFS and a set-of-paths model; errors must
    strike both or neither."""
    for kind, name, base in operations:
        if kind == "create":
            path = f"{base.rstrip('/')}/{name}"
            parent_ok = base == "/" or base.lstrip("/") in {
                p for p in model if "/" not in p.strip("/")
                and (("/" + p) == base)}
            parent_ok = base == "/" or base.strip("/") in model
            try:
                vfs.create(path, exclusive=False)
                real_ok = True
            except ReproError:
                real_ok = False
            assert real_ok == parent_ok
            if parent_ok:
                model.add(path.strip("/"))
        elif kind == "mkdir":
            path = f"/{name}"
            exists = name in model
            try:
                vfs.mkdir(path)
                real_ok = True
            except ReproError:
                real_ok = False
            assert real_ok == (not exists)
            model.add(name)
        elif kind == "unlink":
            path = f"{base.rstrip('/')}/{name}"
            key = path.strip("/")
            present = key in model
            try:
                vfs.unlink(path)
                real_ok = True
            except ReproError:
                real_ok = False
            # unlink also fails when base dir is missing; the model
            # treats that as absent too.
            assert real_ok == present
            model.discard(key)
        elif kind == "rename":
            old, new = f"/{name}", f"/{base if base != name else name}"
            # Rename top-level file name -> other top-level name.
            new = f"/{NAMES[(NAMES.index(name) + 1) % len(NAMES)]}"
            present = name in model and name not in DIRS
            try:
                vfs.rename(old, new)
                real_ok = True
            except ReproError:
                real_ok = False
            if real_ok:
                model.discard(name)
                model.add(new.strip("/"))


@given(ops)
@settings(max_examples=300)
def test_namespace_matches_model(operations):
    vfs = fresh_vfs()
    model: set = set()
    apply(vfs, model, operations)
    # Every modelled path resolves; nothing unmodelled resolves.
    reachable = {path.strip("/") for path, inode in vfs.walk("/")
                 if path != "/"}
    for key in model:
        if "/" not in key or key.split("/")[0] in model:
            assert key in reachable, f"{key} missing from VFS"


@given(ops)
@settings(max_examples=200)
def test_walk_is_consistent_with_resolve(operations):
    vfs = fresh_vfs()
    apply(vfs, set(), operations)
    for path, inode in vfs.walk("/"):
        assert vfs.resolve(path) is inode


@given(ops)
@settings(max_examples=200)
def test_inode_numbers_unique(operations):
    vfs = fresh_vfs()
    apply(vfs, set(), operations)
    inos = [inode.ino for _, inode in vfs.walk("/")]
    assert len(inos) == len(set(inos))
