"""Stateful property testing: drive a live system through random
operation sequences and check the global invariants at every step.

Complements the scripted property tests: the RuleBasedStateMachine
explores *interleavings* (multiple live processes, syncs in the middle
of activity, renames between writes) that linear generators don't.
"""

import hypothesis.strategies as st
from hypothesis.stateful import (
    Bundle,
    RuleBasedStateMachine,
    initialize,
    invariant,
    multiple,
    rule,
)

from repro.storage.fsck import fsck
from repro.system import System

NAMES = ["alpha", "beta", "gamma", "delta"]


class SystemMachine(RuleBasedStateMachine):
    files = Bundle("files")

    @initialize()
    def boot(self):
        self.system = System.boot()
        self.procs = [self.system.kernel.spawn_shell(["p0"])]
        self.synced_once = False

    def _proc(self, index):
        return self.procs[index % len(self.procs)]

    # -- rules ----------------------------------------------------------------

    @rule(target=files, name=st.sampled_from(NAMES),
          proc_index=st.integers(0, 3))
    def create_file(self, name, proc_index):
        proc = self._proc(proc_index)
        path = f"/pass/{name}"
        fd = proc.open(path, "w")
        proc.write(fd, name.encode())
        proc.close(fd)
        return path

    @rule(path=files, proc_index=st.integers(0, 3))
    def read_file(self, path, proc_index):
        proc = self._proc(proc_index)
        if not proc.exists(path):
            return
        fd = proc.open(path, "r")
        proc.read(fd)
        proc.close(fd)

    @rule(path=files, proc_index=st.integers(0, 3))
    def read_modify_write(self, path, proc_index):
        proc = self._proc(proc_index)
        if not proc.exists(path):
            return
        fd = proc.open(path, "r+")
        proc.read(fd)
        proc.write(fd, b"mutated")
        proc.close(fd)

    @rule(path=files, suffix=st.integers(0, 2))
    def rename_file(self, path, suffix):
        proc = self._proc(0)
        if not proc.exists(path):
            return
        target = f"{path}-r{suffix}"
        if proc.exists(target):
            return
        proc.rename(path, target)
        proc.rename(target, path)      # rename back: path stays valid

    @rule(path=files)
    def copy_file(self, path):
        proc = self._proc(0)
        if not proc.exists(path):
            return
        fd = proc.open(path, "r")
        data = proc.read(fd)
        proc.close(fd)
        out = proc.open(f"{path}-copy", "w")
        proc.write(out, data)
        proc.close(out)

    @rule()
    def spawn_process(self):
        if len(self.procs) < 5:
            self.procs.append(self.system.kernel.spawn_shell(
                [f"p{len(self.procs)}"]))

    @rule()
    def retire_process(self):
        if len(self.procs) > 1:
            proc = self.procs.pop()
            self.system.kernel.reap(proc.proc, 0)

    @rule()
    def sync(self):
        self.system.sync()
        self.synced_once = True

    # -- invariants ------------------------------------------------------------

    @invariant()
    def store_is_clean(self):
        if not getattr(self, "synced_once", False):
            return
        self.system.sync()
        report = fsck(self.system.databases())
        assert report.clean, "\n".join(str(f) for f in report.findings)

    @invariant()
    def analyzer_counters_sane(self):
        analyzer = getattr(self, "system", None)
        if analyzer is None:
            return
        analyzer = self.system.kernel.analyzer
        assert analyzer.records_out <= analyzer.records_in + analyzer.freezes


SystemMachine.TestCase.settings = __import__("hypothesis").settings(
    max_examples=25, stateful_step_count=20, deadline=None,
)
TestSystemMachine = SystemMachine.TestCase


class NfsFaultMachine(RuleBasedStateMachine):
    """Client/server pair under churn: writes interleaved with network
    partition/heal, client crashes, and server log crash+recover.  The
    server's provenance store must be fsck-clean at every step the wire
    allows us to observe it."""

    remote_files = Bundle("remote_files")

    @initialize()
    def boot(self):
        # Imported lazily: tests.integration is a sibling package.
        from tests.integration.test_nfs import make_env
        self.server_sys, self.server, clients = make_env()
        self.client_sys, self.client = clients[0]
        self.partitioned = False
        self.counter = 0

    # -- rules ----------------------------------------------------------------

    @rule(target=remote_files, name=st.sampled_from(NAMES))
    def write_remote(self, name):
        from repro.core.errors import NetworkPartition
        path = f"/nfs/{name}-{self.counter}"
        self.counter += 1
        with self.client_sys.process() as proc:
            if self.partitioned:
                try:
                    fd = proc.open(path, "w")
                    proc.write(fd, name.encode())
                except NetworkPartition:
                    return multiple()
                raise AssertionError("write crossed a partitioned wire")
            fd = proc.open(path, "w")
            proc.write(fd, name.encode() * 8)
            proc.close(fd)
        return path

    @rule(path=remote_files)
    def rewrite_remote(self, path):
        if self.partitioned:
            return
        with self.client_sys.process() as proc:
            if not proc.exists(path):
                return
            fd = proc.open(path, "w")
            proc.write(fd, b"rewrite")
            proc.close(fd)

    @rule()
    def partition(self):
        self.client.network.partition()
        self.partitioned = True

    @rule()
    def heal(self):
        self.client.network.heal()
        self.partitioned = False

    @rule()
    def client_crash(self):
        """The client dies with whatever it had buffered; the server
        must never see a half-applied transaction."""
        self.client.crash()

    @rule()
    def client_sync(self):
        from repro.core.errors import NetworkPartition
        if self.partitioned:
            try:
                self.client.sync()
            except NetworkPartition:
                return
            return                      # nothing buffered: no wire call
        self.client.sync()

    @rule()
    def server_sync(self):
        self.server_sys.sync()

    @rule()
    def server_log_crash_and_recover(self):
        """Kill the server's Waldo + log volatile state mid-flight and
        run the standard recovery sequence; service then continues."""
        from repro.storage.recovery import recover
        waldo = self.server_sys.waldos["export"]
        lasagna = self.server_sys.kernel.volume("export").lasagna
        waldo.crash()
        lasagna.crash()
        recover(lasagna, database=waldo.database, consume=True)
        # Idempotence: an immediate second pass changes nothing.
        before = len(waldo.database)
        second = recover(lasagna, database=waldo.database, consume=True)
        assert second.clean and not second.committed_records
        assert len(waldo.database) == before

    # -- invariants ------------------------------------------------------------

    @invariant()
    def server_store_is_clean(self):
        if getattr(self, "partitioned", True):
            return                      # cannot flush the client's view
        self.client.sync()
        self.server_sys.sync()
        report = fsck(self.server_sys.databases())
        assert report.clean, "\n".join(str(f) for f in report.findings)


NfsFaultMachine.TestCase.settings = __import__("hypothesis").settings(
    max_examples=20, stateful_step_count=25, deadline=None,
)
TestNfsFaultMachine = NfsFaultMachine.TestCase
