"""Test package."""
