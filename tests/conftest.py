"""Shared fixtures for the PASSv2 reproduction test suite."""

from __future__ import annotations

import pytest

from repro.kernel.params import SimParams
from repro.system import System


@pytest.fixture
def system() -> System:
    """A provenance-enabled machine with /pass (PASS) and /scratch (plain)."""
    return System.boot()


@pytest.fixture
def baseline() -> System:
    """The same machine with provenance collection off (vanilla ext3)."""
    return System.boot(provenance=False)


@pytest.fixture
def two_volume_system() -> System:
    """A machine with two PASS volumes (distributor routing tests)."""
    return System.boot(pass_volumes=("pass", "pass2"))


@pytest.fixture
def params() -> SimParams:
    return SimParams()


def write_file(system: System, path: str, data: bytes) -> None:
    """Create/overwrite a file (with parent dirs) from a throwaway process."""
    with system.process() as proc:
        parts = path.strip("/").split("/")[:-1]
        prefix = ""
        for part in parts:
            prefix += "/" + part
            if not proc.exists(prefix):
                proc.mkdir(prefix)
        fd = proc.open(path, "w")
        proc.write(fd, data)
        proc.close(fd)


def read_file(system: System, path: str) -> bytes:
    """Read a whole file from a throwaway process."""
    with system.process() as proc:
        fd = proc.open(path, "r")
        data = proc.read(fd)
        proc.close(fd)
    return data


def graph_fingerprint(graph) -> dict:
    """Everything a PQL query can observe of one OEM graph, in a form
    comparable across construction paths (incremental vs batch).

    Atom lists and edge lists compare exactly -- both paths append in
    arrival order with identical dedup.  Member and name-index lists
    compare as sorted ref lists, because ``build()`` classifies in node
    insertion order while ``apply()`` classifies at arrival time.
    """
    nodes = {}
    for node in graph.nodes():
        nodes[node.ref] = {
            "atoms": {label: list(values)
                      for label, values in node.atoms.items() if values},
            "edges": {label: [t.ref for t in targets]
                      for label, targets in node.edges.items() if targets},
            "redges": {label: [s.ref for s in sources]
                       for label, sources in node.redges.items() if sources},
        }
    return {
        "nodes": nodes,
        "members": {name: sorted(n.ref for n in graph.members(name))
                    for name in graph.member_names()},
        "atom_labels": graph.atom_labels(),
        "edge_labels": graph.edge_labels(),
    }
