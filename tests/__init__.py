"""Test package."""
