"""crashlab's injection layer: deterministic fault injection.

A leaf layer beside ``repro.obs``: the kernel, core, storage, and NFS
layers all host injection sites, so this package may import nothing
from above the kernel (lint rule PL209).  The exploration harness that
*drives* whole systems through crashes lives in ``repro.crashlab``.

Usage::

    from repro.faults import FaultInjector, FaultPlan

    plan = FaultPlan(seed=7).add("log.flush.append", "torn",
                                 nth=3, param=0.5)
    injector = FaultInjector(plan)
    system = System.boot(faults=injector)     # arm every site
    ...                                       # CrashFault when it fires

With no injector armed every site is a single ``is not None`` test --
hot paths stay free.
"""

from repro.faults.inject import FaultAction, FaultInjector
from repro.faults.plan import (
    ACTIONS,
    CrashFault,
    FaultError,
    FaultPlan,
    FaultRule,
    IOFault,
)
from repro.faults.sites import CRASHABLE, SITES, SiteSpec, site_names, spec

__all__ = [
    "ACTIONS",
    "CRASHABLE",
    "CrashFault",
    "FaultAction",
    "FaultError",
    "FaultInjector",
    "FaultPlan",
    "FaultRule",
    "IOFault",
    "SITES",
    "SiteSpec",
    "site_names",
    "spec",
]
