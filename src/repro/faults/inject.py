"""The fault injector: the object components actually hold.

Components that host injection sites take a ``faults=None`` keyword and
guard every site with one branch::

    if self._faults is not None:
        self._faults.fire("disk.write", nbytes=nbytes)

so a disarmed system pays nothing (the paper's hot paths stay free; see
``benchmarks/bench_pipeline_perf.py``).  When armed, :meth:`fire`:

1. counts the hit (per-site, 1-based -- the coordinate system crash
   points are named in);
2. optionally records a trace entry (the explorer's discovery pass);
3. consults the plan.  ``crash``/``io_error`` are raised here;
   site-interpreted actions (``torn``, ``drop``, ``delay``,
   ``duplicate``, ``partition``) are returned as a :class:`FaultAction`
   for the site to apply with domain knowledge.

A crash *halts* the injector: any later ``fire`` from any site raises
again, so a simulated machine cannot write durable state after it died
(cleanup paths, context-manager ``finally`` blocks, ...).

Every fired fault is counted and exposed to the ``repro.obs`` registry
via :meth:`bind_obs` -- a snapshot-time collector, costing nothing
between snapshots.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.faults.plan import CrashFault, FaultPlan, IOFault


@dataclass(frozen=True)
class FaultAction:
    """A site-interpreted fault: what to do, with which knob."""

    kind: str
    param: float
    site: str
    hit: int


class FaultInjector:
    """Per-simulation fault state: hit counters, trace, plan."""

    def __init__(self, plan: Optional[FaultPlan] = None,
                 record_trace: bool = False):
        self.plan = plan
        self.record_trace = record_trace
        #: 1-based hit counts per site name.
        self.hits: dict[str, int] = {}
        #: (site, hit, payload) tuples, recorded only when tracing.
        self.trace: list[tuple[str, int, dict]] = []
        #: True once a crash fired; the machine is dead.
        self.halted = False
        #: Observability handle (duck-typed; set by bind_obs).  Fired
        #: faults are journaled through it so a crashtest failure can
        #: be correlated with the exact span the fault fired in.
        self._obs = None
        # Statistics (harvested by obs at snapshot time).
        self.faults_fired = 0
        self.fired_by_action: dict[str, int] = {}

    # -- the one hot-path entry point -----------------------------------------

    def fire(self, site: str, **payload) -> Optional[FaultAction]:
        """Register one hit of ``site``; fire any matching rules.

        Raises :class:`CrashFault` / :class:`IOFault` for machine-level
        faults; returns a :class:`FaultAction` for the site to apply,
        or None.
        """
        if self.halted:
            raise CrashFault(
                f"machine is halted; post-crash activity at {site}",
                site=site)
        hit = self.hits.get(site, 0) + 1
        self.hits[site] = hit
        if self.record_trace:
            self.trace.append((site, hit, payload))
        if self.plan is None:
            return None
        action: Optional[FaultAction] = None
        for rule in self.plan.rules_for(site):
            if not rule.should_fire(hit, self.plan.rng):
                continue
            self.faults_fired += 1
            self.fired_by_action[rule.action] = \
                self.fired_by_action.get(rule.action, 0) + 1
            if self._obs is not None:
                # Unsampled: a fired fault is the event a crashtest
                # post-mortem greps for.  The journal stamps the
                # trace/span ids of whatever span is open right now.
                self._obs.event("fault.fired", layer="faults",
                                always=True, site=site, hit=hit,
                                action=rule.action, param=rule.param)
            if rule.action == "crash":
                self.halted = True
                raise CrashFault(
                    f"injected crash at {site} (hit {hit})",
                    site=site, hit=hit)
            if rule.action == "io_error":
                raise IOFault(
                    f"injected I/O error at {site} (hit {hit})",
                    site=site, hit=hit)
            action = FaultAction(rule.action, rule.param, site, hit)
        return action

    def halt(self, exc: CrashFault) -> CrashFault:
        """Mark the machine dead and hand the exception back to raise
        (sites applying ``torn`` die *after* mutating durable state)."""
        self.halted = True
        return exc

    # -- observability ---------------------------------------------------------

    def bind_obs(self, obs) -> None:
        """Expose fired-fault totals as a ``faults`` layer in the
        metrics snapshot (collector: nothing on the hot path), and keep
        the handle so fired faults land in the event journal."""
        self._obs = obs
        obs.add_collector("faults", self._obs_counters)

    def _obs_counters(self) -> dict:
        counters = {
            "faults_fired": self.faults_fired,
            "sites_hit": len(self.hits),
            "site_hits_total": sum(self.hits.values()),
            "halted": int(self.halted),
        }
        for action, count in self.fired_by_action.items():
            counters[f"fired_{action}"] = count
        return counters

    def __repr__(self) -> str:
        state = "halted" if self.halted else "live"
        return (f"<FaultInjector {state}: {self.faults_fired} fired over "
                f"{sum(self.hits.values())} hits>")
