"""Declarative fault plans (crashlab).

A :class:`FaultPlan` is a seeded bag of :class:`FaultRule`\\ s.  Each
rule names an injection *site* (exact name or ``fnmatch`` pattern --
see docs/TESTING.md for the catalogue) and fires either on the Nth hit
of that site or with probability ``p`` per hit.  Given the same plan
and the same workload, the fired faults are byte-for-byte identical
across runs: the only randomness is the plan's own ``random.Random``,
and it is consumed in a deterministic order.

The plan layer knows nothing about what a fault *means*; it only
decides **when** one fires.  Interpretation (crash, torn write, dropped
RPC, ...) belongs to the injection sites via :mod:`repro.faults.inject`.
"""

from __future__ import annotations

import fnmatch
import random
from dataclasses import dataclass, field
from typing import Optional

#: Actions a rule may request.  Sites interpret the ones that make
#: sense for them; ``crash`` and ``io_error`` are raised centrally by
#: the injector, the rest are returned to the site as a FaultAction.
ACTIONS = ("crash", "torn", "io_error", "drop", "delay", "duplicate",
           "partition")


class FaultError(Exception):
    """Base class of every injected fault.

    Defined here (not in repro.core.errors): the fault layer is a leaf
    beside kernel/obs and may not import the core pipeline (PL209).
    """


class CrashFault(FaultError):
    """The machine died at an injection site.  Nothing after this point
    may become durable; the harness recovers from the log."""

    def __init__(self, message: str, site: str = "", hit: int = 0,
                 torn_bytes: int = 0):
        super().__init__(message)
        self.site = site
        self.hit = hit
        self.torn_bytes = torn_bytes


class IOFault(FaultError):
    """A transient I/O error (EIO-style); the operation failed but the
    machine survives."""

    def __init__(self, message: str, site: str = "", hit: int = 0):
        super().__init__(message)
        self.site = site
        self.hit = hit


@dataclass
class FaultRule:
    """One declarative trigger: fire ``action`` at ``site``.

    Exactly one of ``nth`` (1-based hit count at that site) and
    ``probability`` (per-hit chance, drawn from the plan's seeded RNG)
    must be given.  ``param`` carries the action's knob: tear fraction
    for ``torn`` (0..1 of the in-flight batch), seconds for ``delay``,
    failing-call window length for ``partition``.  ``max_fires`` bounds
    how often a probabilistic rule may fire (nth rules fire at most
    once by construction).
    """

    site: str
    action: str
    nth: Optional[int] = None
    probability: Optional[float] = None
    param: float = 0.0
    max_fires: int = 1
    fired: int = field(default=0, compare=False)

    def __post_init__(self) -> None:
        if self.action not in ACTIONS:
            raise ValueError(f"unknown fault action: {self.action!r}")
        if (self.nth is None) == (self.probability is None):
            raise ValueError(
                "exactly one of nth= and probability= must be set")
        if self.nth is not None and self.nth < 1:
            raise ValueError("nth is 1-based and must be >= 1")
        if self.probability is not None \
                and not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be within [0, 1]")
        if self.max_fires < 1:
            raise ValueError("max_fires must be >= 1")

    def matches(self, site: str) -> bool:
        """Exact match, or fnmatch pattern (``net.*``)."""
        return site == self.site or fnmatch.fnmatchcase(site, self.site)

    def should_fire(self, hit: int, rng: random.Random) -> bool:
        """Decide for one hit; consumes the RNG only for probability
        rules (deterministic draw order = deterministic faults)."""
        if self.fired >= self.max_fires:
            return False
        if self.nth is not None:
            fire = hit == self.nth
        else:
            fire = rng.random() < self.probability
        if fire:
            self.fired += 1
        return fire


class FaultPlan:
    """A seeded collection of fault rules."""

    def __init__(self, rules: Optional[list[FaultRule]] = None,
                 seed: int = 0):
        self.rules = list(rules or ())
        self.seed = seed
        self.rng = random.Random(seed)

    def add(self, site: str, action: str, **kwargs) -> "FaultPlan":
        """Append one rule; returns self for chaining."""
        self.rules.append(FaultRule(site, action, **kwargs))
        return self

    def rules_for(self, site: str) -> list[FaultRule]:
        return [rule for rule in self.rules if rule.matches(site)]

    def reset(self) -> None:
        """Rewind fire counts and the RNG for an identical re-run."""
        self.rng = random.Random(self.seed)
        for rule in self.rules:
            rule.fired = 0

    def __repr__(self) -> str:
        return f"<FaultPlan seed={self.seed} rules={len(self.rules)}>"
