"""The injection-site catalogue.

Single source of truth for every site name threaded through the stack:
the explorer enumerates crash points from it, docs/TESTING.md renders
it, and tests assert the threaded sites and this table stay in sync.

Each entry: layer hosting the site, the actions it honours, and the
semantics of firing there.  ``crash`` and ``io_error`` work at every
site (the injector raises them centrally); the table lists the
*additional* site-interpreted actions.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SiteSpec:
    """One catalogued injection site."""

    name: str
    layer: str
    extra_actions: tuple[str, ...]
    semantics: str


SITES: tuple[SiteSpec, ...] = (
    SiteSpec("disk.read", "kernel",
             (),
             "before a foreground block read is charged"),
    SiteSpec("disk.write", "kernel",
             (),
             "before a foreground block write is charged (the file data "
             "itself is already in the page/file state: crashing here "
             "models dying just after data reached the platter)"),
    SiteSpec("disk.clustered_write", "kernel",
             (),
             "before a clustered write-back append (journal commits and "
             "provenance-log appends) is charged"),
    SiteSpec("log.flush.pre", "storage",
             (),
             "a WAP flush is about to frame the buffered records; "
             "crashing here loses the whole buffer (never durable)"),
    SiteSpec("log.flush.append", "storage",
             ("torn",),
             "the framed batch reached the disk queue but not yet the "
             "segment; 'torn' appends the batch then tears param*nbytes "
             "off the tail (a mid-sector crash), orphaning the "
             "transaction"),
    SiteSpec("log.flush.post", "storage",
             (),
             "the flush committed (ENDTXN durable); crashing here loses "
             "nothing that was flushed"),
    SiteSpec("lasagna.write.pre_data", "storage",
             (),
             "provenance (incl. the MD5 record) is durable, the data "
             "write has not happened -- the canonical WAP window; "
             "recovery must flag this write as inconsistent"),
    SiteSpec("lasagna.write.post_data", "storage",
             (),
             "the data write completed; its trace payload "
             "(pnode/offset/nbytes) is the ground truth the WAP checker "
             "compares against the recovered database"),
    SiteSpec("waldo.drain.segment", "storage",
             (),
             "Waldo is about to ingest one closed segment; crashing "
             "here leaves the segment un-ingested (Waldo.crash requeues "
             "it for recovery)"),
    SiteSpec("shard.drain.pre", "storage",
             (),
             "the storage tier is about to drain one shard's Waldo "
             "(payload: volume, shard index, queued segments); crashing "
             "here dies between shards -- already-drained shards are in "
             "their databases, this one and later ones recover from "
             "their logs"),
    SiteSpec("federate.merge", "storage",
             (),
             "the tier is assembling the federated source list (every "
             "shard database) for a live query engine; an io_error here "
             "models a shard refusing queries"),
    SiteSpec("distributor.flush", "core",
             (),
             "cached transient-object records are about to materialize "
             "onto a volume log"),
    SiteSpec("net.call", "nfs",
             ("drop", "delay", "duplicate", "partition"),
             "one RPC round trip: 'drop' fails this call only, 'delay' "
             "adds param seconds of latency, 'duplicate' charges the "
             "wire twice (at-least-once retry), 'partition' fails this "
             "and the next param calls, then heals"),
)

#: Sites where replaying a workload with an injected crash is
#: meaningful for the WAP invariant (the explorer's enumeration set).
#: ``disk.read`` changes no durable state, ``net.call`` belongs to the
#: NFS pair harness (tests/integration/test_nfs_faults.py), and
#: ``federate.merge`` is a query-path site (no durable state moves), so
#: none of those is explored by default.
CRASHABLE = tuple(
    spec.name for spec in SITES
    if spec.name not in ("disk.read", "net.call", "federate.merge"))


def site_names() -> tuple[str, ...]:
    return tuple(spec.name for spec in SITES)


def spec(name: str) -> SiteSpec:
    for candidate in SITES:
        if candidate.name == name:
            return candidate
    raise KeyError(f"unknown injection site: {name!r}")
