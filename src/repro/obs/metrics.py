"""Metrics registry: counters, gauges, and histograms keyed by layer.

The registry is the numeric half of :mod:`repro.obs`.  It answers the
question the paper's Figure 2 poses but the reproduction could not:
*how many events did each layer see, drop, deduplicate, or flush?*

Design constraints (see ISSUE 2):

* **leaf module** -- imports nothing from the rest of ``repro``, so
  every layer may hold a registry handle without bending the Figure-2
  import discipline;
* **cheap by default** -- a disabled registry's ``inc`` returns after
  one attribute test; an enabled ``inc`` is a single dict update;
* **zero-cost harvesting** -- layers that already keep plain Python
  statistics attributes (the interceptor's event counts, the analyzer's
  dedup totals, ...) register a *collector*: a callable returning a flat
  ``{name: number}`` dict, consulted only at :meth:`snapshot` time, so
  the hot path pays nothing at all;
* **layer + volume keying** -- per-volume components (Lasagna, Waldo)
  report under their volume, and the snapshot shows both the per-volume
  breakdown and the layer-wide totals.
"""

from __future__ import annotations

from typing import Callable, Optional

#: A collector: zero-argument callable returning {metric name: number}.
Collector = Callable[[], dict]

#: Maximum raw samples a histogram retains for percentile estimation.
#: Beyond this the reservoir wraps (ring buffer) -- count/sum/min/max
#: stay exact, percentiles become recent-window estimates.
HISTOGRAM_CAPACITY = 4096


class Histogram:
    """Streaming summary of observations with percentile estimates.

    Count, sum, min, and max are exact over the full stream; percentiles
    are computed over the most recent :data:`HISTOGRAM_CAPACITY` samples
    (a ring, so long benchmark runs stay bounded in memory).
    """

    __slots__ = ("count", "total", "min", "max", "_samples", "_next")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self._samples: list[float] = []
        self._next = 0          # ring cursor once the reservoir is full

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        if len(self._samples) < HISTOGRAM_CAPACITY:
            self._samples.append(value)
        else:
            self._samples[self._next] = value
            self._next = (self._next + 1) % HISTOGRAM_CAPACITY

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, p: float) -> float:
        """The ``p``-th percentile (0..100) of the retained samples,
        by linear interpolation between closest ranks.

        An empty histogram has no percentiles: asking for one raises a
        clear ``ValueError`` (callers that want zeros-for-empty use
        :meth:`summary`, which guards the empty case itself)."""
        if not 0 <= p <= 100:
            raise ValueError(f"percentile out of range: {p}")
        if not self._samples:
            raise ValueError(
                "percentile of an empty histogram is undefined "
                "(no observations recorded)")
        ordered = sorted(self._samples)
        if len(ordered) == 1:
            return ordered[0]
        rank = (p / 100.0) * (len(ordered) - 1)
        low = int(rank)
        high = min(low + 1, len(ordered) - 1)
        frac = rank - low
        return ordered[low] * (1.0 - frac) + ordered[high] * frac

    def summary(self) -> dict:
        """Stable-schema dict used by ``repro stats --json``.  An empty
        histogram summarizes as all zeros (snapshots of idle layers
        must stay renderable)."""
        if not self.count:
            return {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0,
                    "mean": 0.0, "p50": 0.0, "p90": 0.0, "p99": 0.0}
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.min is not None else 0.0,
            "max": self.max if self.max is not None else 0.0,
            "mean": self.mean,
            "p50": self.percentile(50),
            "p90": self.percentile(90),
            "p99": self.percentile(99),
        }


class MetricsRegistry:
    """Per-machine metric store, keyed by (layer, volume, name)."""

    def __init__(self, enabled: bool = True,
                 layers: tuple[str, ...] = ()) -> None:
        self.enabled = enabled
        #: (layer, volume-or-None, name) -> number.  Flat dicts keep the
        #: enabled hot path to one update.
        self._counters: dict[tuple, float] = {}
        self._gauges: dict[tuple, float] = {}
        self._histograms: dict[tuple, Histogram] = {}
        self._collectors: dict[tuple[str, Optional[str]], list[Collector]] = {}
        #: Layers that must appear in every snapshot even when silent
        #: (the documented contract keys).
        self._declared: list[str] = list(layers)

    # -- configuration ---------------------------------------------------------

    def declare(self, layer: str) -> None:
        """Guarantee ``layer`` appears in snapshots (contract key)."""
        if layer not in self._declared:
            self._declared.append(layer)

    def add_collector(self, layer: str, collector: Collector,
                      volume: Optional[str] = None) -> None:
        """Harvest ``collector()`` into ``layer``'s counters at snapshot
        time.  Collectors cost nothing between snapshots -- the right
        tool for counters a layer already maintains."""
        self.declare(layer)
        self._collectors.setdefault((layer, volume), []).append(collector)

    # -- hot-path updates -------------------------------------------------------

    def inc(self, layer: str, name: str, n: float = 1,
            volume: Optional[str] = None) -> None:
        """Add ``n`` to a counter (single dict update when enabled)."""
        if not self.enabled:
            return
        key = (layer, volume, name)
        counters = self._counters
        counters[key] = counters.get(key, 0) + n

    def set_gauge(self, layer: str, name: str, value: float,
                  volume: Optional[str] = None) -> None:
        """Set a point-in-time value."""
        if not self.enabled:
            return
        self._gauges[(layer, volume, name)] = value

    def observe(self, layer: str, name: str, value: float,
                volume: Optional[str] = None) -> None:
        """Record one histogram observation."""
        if not self.enabled:
            return
        key = (layer, volume, name)
        histogram = self._histograms.get(key)
        if histogram is None:
            histogram = self._histograms[key] = Histogram()
        histogram.observe(value)

    # -- reads -----------------------------------------------------------------

    def counter(self, layer: str, name: str,
                volume: Optional[str] = None) -> float:
        """One counter's current value (collectors included)."""
        snapshot = self.snapshot()
        section = snapshot.get(layer, {})
        if volume is not None:
            section = section.get("volumes", {}).get(volume, {})
        return section.get("counters", {}).get(name, 0)

    def histogram(self, layer: str, name: str,
                  volume: Optional[str] = None) -> Optional[Histogram]:
        """Direct access to one histogram (testing aid)."""
        return self._histograms.get((layer, volume, name))

    def snapshot(self) -> dict:
        """Nested view: layer -> counters/gauges/histograms (+ volumes).

        Collector output and per-volume metrics are folded into the
        layer-wide counter totals; per-volume breakdowns appear under
        the layer's ``"volumes"`` key.  Always includes every declared
        layer, so the key set is a stable contract for CI.  A disabled
        registry reports nothing (collectors are not consulted).
        """
        if not self.enabled:
            return {}
        layers: dict[str, dict] = {}

        def section(layer: str, volume: Optional[str]) -> dict:
            top = layers.setdefault(layer, {"counters": {}, "gauges": {},
                                            "histograms": {}})
            if volume is None:
                return top
            per_vol = top.setdefault("volumes", {})
            return per_vol.setdefault(volume, {"counters": {}, "gauges": {},
                                               "histograms": {}})

        def fold_counter(layer: str, volume: Optional[str],
                         name: str, value: float) -> None:
            sect = section(layer, volume)
            sect["counters"][name] = sect["counters"].get(name, 0) + value
            if volume is not None:       # per-volume rolls into the total
                top = section(layer, None)
                top["counters"][name] = top["counters"].get(name, 0) + value

        for layer in self._declared:
            section(layer, None)
        for (layer, volume, name), value in self._counters.items():
            fold_counter(layer, volume, name, value)
        for (layer, volume), collectors in self._collectors.items():
            for collector in collectors:
                for name, value in collector().items():
                    fold_counter(layer, volume, name, value)
        for (layer, volume, name), value in self._gauges.items():
            section(layer, volume)["gauges"][name] = value
            if volume is not None:
                section(layer, None)["gauges"].setdefault(name, 0)
                section(layer, None)["gauges"][name] += value
        for (layer, volume, name), histogram in self._histograms.items():
            section(layer, volume)["histograms"][name] = histogram.summary()
            if volume is not None:
                section(layer, None)["histograms"].setdefault(
                    name, histogram.summary())
        return layers

    def reset(self) -> None:
        """Zero every counter/gauge/histogram (collectors stay bound;
        their sources are the layers' own statistics)."""
        self._counters.clear()
        self._gauges.clear()
        self._histograms.clear()
