"""Structured event journal: bounded, sampled, trace-correlated (passview).

The journal is the durable-record half of the observability stack: where
metrics answer "how many" and spans answer "how long", journal events
answer "what happened, in what order, inside which span".  Hot-path
seams that already exist -- group commits, bulk Waldo drains, recovery
replays, fault firings, PQL plan compiles -- emit one event each, so a
failed crashtest or a regressed benchmark can be read back as a
sequence of concrete pipeline decisions.

Design constraints (the same ones the rest of ``repro.obs`` obeys):

* **leaf module** -- imports nothing from the rest of ``repro``;
* **cheap when off** -- a disabled journal's :meth:`~EventJournal.emit`
  returns after one attribute test (the NULL_OBS configuration);
* **bounded** -- events land in a ring; overflow *counts* drops
  (``events_dropped``) instead of pretending the record is complete;
* **sampled** -- high-frequency kinds keep 1-in-N per kind
  (deterministic counter sampling, no RNG); critical kinds (faults,
  recovery, slow queries) bypass sampling via ``always=True``;
* **correlated** -- every event carries the trace/span ids of the span
  open at emit time, so ``repro crashtest`` failures line up with the
  exact span in which the fault fired.

The export format is JSONL (one JSON object per line, sorted keys), the
append-friendly shape every log shipper understands.
"""

from __future__ import annotations

import json
import time
from collections import deque
from typing import Callable, Optional

#: Default ring capacity (events retained per journal).
JOURNAL_CAPACITY = 4096

#: Default sampling interval: keep every event.  ``sample_interval=N``
#: keeps the 1st, N+1th, ... event of each kind.
SAMPLE_INTERVAL = 1

#: Default slow-query threshold (wall seconds).  Queries at or above it
#: are journaled with their compiled plan and cache-hit status.
SLOW_QUERY_THRESHOLD_S = 0.050

#: Slow-query entries retained (they ride in their own bounded list so
#: a storm of slow queries cannot evict unrelated journal history).
SLOW_QUERY_CAPACITY = 256


class EventJournal:
    """Bounded, sampled event ring with trace/span correlation."""

    def __init__(self, enabled: bool = False,
                 capacity: int = JOURNAL_CAPACITY,
                 sample_interval: int = SAMPLE_INTERVAL,
                 slow_query_threshold_s: float = SLOW_QUERY_THRESHOLD_S,
                 sim_now: Optional[Callable[[], float]] = None):
        if sample_interval < 1:
            raise ValueError("sample_interval must be >= 1")
        self.enabled = enabled
        self.capacity = capacity
        self.sample_interval = sample_interval
        self.slow_query_threshold_s = slow_query_threshold_s
        self._sim_now = sim_now or (lambda: 0.0)
        #: Tracer consulted for the current trace/span ids; bound by
        #: Observability so events correlate with open spans.
        self._tracer = None
        self._events: deque[dict] = deque(maxlen=capacity)
        self._slow_queries: deque[dict] = deque(maxlen=SLOW_QUERY_CAPACITY)
        self._seq = 0
        self._seen_by_kind: dict[str, int] = {}
        # Statistics (exposed via stats(), harvestable as a collector).
        self.events_emitted = 0
        self.events_sampled_out = 0
        self.events_dropped = 0
        self.slow_queries_recorded = 0

    # -- wiring ----------------------------------------------------------------

    def bind_clock(self, sim_now: Callable[[], float]) -> None:
        """Point the journal at the machine's simulated clock."""
        self._sim_now = sim_now

    def bind_tracer(self, tracer) -> None:
        """Correlate events with the tracer's open span (if any)."""
        self._tracer = tracer

    # -- the hot-path entry point ----------------------------------------------

    def emit(self, kind: str, layer: str = "",
             volume: Optional[str] = None, always: bool = False,
             **fields) -> Optional[dict]:
        """Record one event; returns it, or None when off/sampled out.

        ``kind`` is the event name (dotted, e.g. ``log.group_commit``);
        ``always=True`` bypasses sampling (faults, recovery, slow
        queries -- anything rare enough that losing one would matter).
        """
        if not self.enabled:
            return None
        seen = self._seen_by_kind.get(kind, 0)
        self._seen_by_kind[kind] = seen + 1
        if not always and self.sample_interval > 1 \
                and seen % self.sample_interval:
            self.events_sampled_out += 1
            return None
        trace_id = span_id = None
        if self._tracer is not None:
            trace_id, span_id = self._tracer.current_ids()
        self._seq += 1
        event = {
            "seq": self._seq,
            "kind": kind,
            "layer": layer,
            "volume": volume,
            "sim_t": self._sim_now(),
            "wall_t": time.perf_counter(),
            "trace_id": trace_id,
            "span_id": span_id,
        }
        if fields:
            event.update(fields)
        if len(self._events) == self._events.maxlen:
            self.events_dropped += 1
        self._events.append(event)
        self.events_emitted += 1
        return event

    def slow_query(self, text: str, wall_s: float, cache_hit: bool,
                   rows: int = 0, plan: str = "") -> Optional[dict]:
        """Journal a query if it crossed the latency threshold.

        ``text`` is the normalized query (the plan-cache key), ``plan``
        a compact rendering of the compiled plan, ``cache_hit`` whether
        the plan cache served it.  Slow queries bypass sampling and are
        additionally retained in their own bounded list.
        """
        if not self.enabled or wall_s < self.slow_query_threshold_s:
            return None
        event = self.emit("pql.slow_query", layer="pql", always=True,
                          query=text, plan=plan, wall_s=wall_s,
                          cache_hit=cache_hit, rows=rows)
        if event is not None:
            self.slow_queries_recorded += 1
            self._slow_queries.append(event)
        return event

    # -- reads -----------------------------------------------------------------

    def events(self, kind: Optional[str] = None) -> list[dict]:
        """Retained events, oldest first (optionally one kind only)."""
        if kind is None:
            return list(self._events)
        return [event for event in self._events if event["kind"] == kind]

    def slow_queries(self) -> list[dict]:
        """Retained slow-query entries, oldest first."""
        return list(self._slow_queries)

    def stats(self) -> dict:
        """Journal bookkeeping counters (flat, collector-shaped)."""
        return {
            "events_emitted": self.events_emitted,
            "events_sampled_out": self.events_sampled_out,
            "events_dropped": self.events_dropped,
            "events_retained": len(self._events),
            "slow_queries_recorded": self.slow_queries_recorded,
        }

    def to_jsonl(self) -> str:
        """The retained events as JSONL (one object per line, sorted
        keys -- byte-identical across exports of the same ring)."""
        return "".join(json.dumps(event, sort_keys=True, default=str) + "\n"
                       for event in self._events)

    def dump(self, path: str) -> int:
        """Write the JSONL export to ``path``; returns events written."""
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.to_jsonl())
        return len(self._events)

    def reset(self) -> None:
        """Drop retained events and zero the bookkeeping counters."""
        self._events.clear()
        self._slow_queries.clear()
        self._seen_by_kind.clear()
        self._seq = 0
        self.events_emitted = 0
        self.events_sampled_out = 0
        self.events_dropped = 0
        self.slow_queries_recorded = 0

    def __repr__(self) -> str:
        state = "on" if self.enabled else "off"
        return (f"<EventJournal {state}: {len(self._events)} retained, "
                f"{self.events_dropped} dropped>")
