"""Observability for the provenance pipeline (ISSUE 2 + ISSUE 7).

``repro.obs`` is a *leaf* layer: it imports nothing from the rest of
``repro``, and every other layer may import it -- the same position
``repro.core.errors`` occupies, enforced by the PL208 lint rule.  One
:class:`Observability` instance belongs to each simulated machine
(:class:`repro.kernel.kernel.Kernel`) and carries:

* :class:`~repro.obs.metrics.MetricsRegistry` -- counters, gauges, and
  histograms keyed by Figure-2 layer (and volume where relevant);
* :class:`~repro.obs.trace.Tracer` -- nestable spans over simulated and
  wall clocks, collected in a ring buffer, exportable as JSON;
* :class:`~repro.obs.journal.EventJournal` -- bounded, sampled,
  trace-correlated events from the hot-path seams (group commits,
  drains, recovery, fault firings) plus the slow-query log.

The export-and-analysis half (passview) sits beside them, still inside
the leaf: :mod:`repro.obs.export` (Chrome trace / Prometheus text /
collapsed stacks), :mod:`repro.obs.rollup` (dimension rollups), and
:mod:`repro.obs.health` (SLO verdicts and benchmark comparison).

Components that are wired without an explicit handle fall back to
:data:`NULL_OBS`, a shared disabled instance, so instrumentation sites
cost one branch when observability is off.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.obs.journal import EventJournal
from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.trace import NULL_SPAN, Span, Tracer

#: The Figure-2 layers every snapshot must report (the stats contract;
#: see docs/OBSERVABILITY.md).
FIGURE2_LAYERS = ("interceptor", "observer", "analyzer", "distributor",
                  "lasagna", "waldo", "pql")

#: Supporting layers that also report (page cache, NFS wire).
AUX_LAYERS = ("cache", "nfs")

#: Every documented layer key, in stack order.
LAYERS = FIGURE2_LAYERS + AUX_LAYERS


class Observability:
    """One machine's metrics + tracer + journal, with shared toggles."""

    def __init__(self, metrics_enabled: bool = True,
                 trace_enabled: bool = False,
                 journal_enabled: bool = False,
                 sim_now: Optional[Callable[[], float]] = None):
        self.metrics = MetricsRegistry(enabled=metrics_enabled,
                                       layers=LAYERS)
        self.tracer = Tracer(enabled=trace_enabled, sim_now=sim_now)
        self.journal = EventJournal(enabled=journal_enabled,
                                    sim_now=sim_now)
        self.journal.bind_tracer(self.tracer)

    # -- toggles ---------------------------------------------------------------

    @property
    def enabled(self) -> bool:
        """True when metric collection is on."""
        return self.metrics.enabled

    def enable(self, tracing: Optional[bool] = None,
               journal: Optional[bool] = None) -> None:
        """Turn on metrics (and optionally set tracing / the journal)."""
        self.metrics.enabled = True
        if tracing is not None:
            self.tracer.enabled = tracing
        if journal is not None:
            self.journal.enabled = journal

    def disable(self) -> None:
        """Turn off metrics, tracing, and the journal."""
        self.metrics.enabled = False
        self.tracer.enabled = False
        self.journal.enabled = False

    def bind_clock(self, sim_now: Callable[[], float]) -> None:
        """Give spans and journal events access to the machine's
        simulated clock."""
        self.tracer.bind_clock(sim_now)
        self.journal.bind_clock(sim_now)

    # -- convenience delegates (the surface layers actually use) --------------

    def inc(self, layer: str, name: str, n: float = 1,
            volume: Optional[str] = None) -> None:
        self.metrics.inc(layer, name, n, volume=volume)

    def observe(self, layer: str, name: str, value: float,
                volume: Optional[str] = None) -> None:
        self.metrics.observe(layer, name, value, volume=volume)

    def set_gauge(self, layer: str, name: str, value: float,
                  volume: Optional[str] = None) -> None:
        self.metrics.set_gauge(layer, name, value, volume=volume)

    def add_collector(self, layer: str, collector,
                      volume: Optional[str] = None) -> None:
        self.metrics.add_collector(layer, collector, volume=volume)

    def span(self, name: str, layer: str = "", **tags):
        return self.tracer.span(name, layer=layer, **tags)

    def event(self, kind: str, layer: str = "",
              volume: Optional[str] = None, always: bool = False,
              **fields) -> None:
        """Journal one structured event (one branch when the journal is
        off; see :meth:`EventJournal.emit`)."""
        if self.journal.enabled:
            self.journal.emit(kind, layer=layer, volume=volume,
                              always=always, **fields)

    def slow_query(self, text: str, wall_s: float, cache_hit: bool,
                   rows: int = 0, plan: str = "") -> None:
        """Record a query in the slow-query log if it crossed the
        journal's latency threshold."""
        if self.journal.enabled:
            self.journal.slow_query(text, wall_s, cache_hit,
                                    rows=rows, plan=plan)

    def stats(self) -> dict:
        """The metrics snapshot (layer -> counters/gauges/histograms)."""
        return self.metrics.snapshot()

    def trace(self) -> list[dict]:
        """The finished spans, exported (list form; see
        :meth:`trace_export` for the drop-count-carrying document)."""
        return self.tracer.export()["spans"]

    def trace_export(self) -> dict:
        """The full trace document: ``{"spans", "dropped_spans"}``."""
        return self.tracer.export()

    def journal_events(self, kind: Optional[str] = None) -> list[dict]:
        """Retained journal events, oldest first."""
        return self.journal.events(kind)

    def reset(self) -> None:
        """Zero metrics, drop finished spans, clear the journal."""
        self.metrics.reset()
        self.tracer.reset()
        self.journal.reset()


#: Shared disabled instance for components wired without a handle.
#: Never enable it -- boot a machine with observability on instead.
NULL_OBS = Observability(metrics_enabled=False, trace_enabled=False)

__all__ = [
    "AUX_LAYERS",
    "EventJournal",
    "FIGURE2_LAYERS",
    "Histogram",
    "LAYERS",
    "MetricsRegistry",
    "NULL_OBS",
    "NULL_SPAN",
    "Observability",
    "Span",
    "Tracer",
]
