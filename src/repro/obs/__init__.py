"""Observability for the provenance pipeline (ISSUE 2).

``repro.obs`` is a *leaf* layer: it imports nothing from the rest of
``repro``, and every other layer may import it -- the same position
``repro.core.errors`` occupies, enforced by the PL208 lint rule.  One
:class:`Observability` instance belongs to each simulated machine
(:class:`repro.kernel.kernel.Kernel`) and carries:

* :class:`~repro.obs.metrics.MetricsRegistry` -- counters, gauges, and
  histograms keyed by Figure-2 layer (and volume where relevant);
* :class:`~repro.obs.trace.Tracer` -- nestable spans over simulated and
  wall clocks, collected in a ring buffer, exportable as JSON.

Components that are wired without an explicit handle fall back to
:data:`NULL_OBS`, a shared disabled instance, so instrumentation sites
cost one branch when observability is off.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.trace import NULL_SPAN, Span, Tracer

#: The Figure-2 layers every snapshot must report (the stats contract;
#: see docs/OBSERVABILITY.md).
FIGURE2_LAYERS = ("interceptor", "observer", "analyzer", "distributor",
                  "lasagna", "waldo", "pql")

#: Supporting layers that also report (page cache, NFS wire).
AUX_LAYERS = ("cache", "nfs")

#: Every documented layer key, in stack order.
LAYERS = FIGURE2_LAYERS + AUX_LAYERS


class Observability:
    """One machine's metrics registry + tracer, with shared toggles."""

    def __init__(self, metrics_enabled: bool = True,
                 trace_enabled: bool = False,
                 sim_now: Optional[Callable[[], float]] = None):
        self.metrics = MetricsRegistry(enabled=metrics_enabled,
                                       layers=LAYERS)
        self.tracer = Tracer(enabled=trace_enabled, sim_now=sim_now)

    # -- toggles ---------------------------------------------------------------

    @property
    def enabled(self) -> bool:
        """True when metric collection is on."""
        return self.metrics.enabled

    def enable(self, tracing: Optional[bool] = None) -> None:
        """Turn on metrics (and optionally set tracing)."""
        self.metrics.enabled = True
        if tracing is not None:
            self.tracer.enabled = tracing

    def disable(self) -> None:
        """Turn off metrics and tracing."""
        self.metrics.enabled = False
        self.tracer.enabled = False

    def bind_clock(self, sim_now: Callable[[], float]) -> None:
        """Give spans access to the machine's simulated clock."""
        self.tracer.bind_clock(sim_now)

    # -- convenience delegates (the surface layers actually use) --------------

    def inc(self, layer: str, name: str, n: float = 1,
            volume: Optional[str] = None) -> None:
        self.metrics.inc(layer, name, n, volume=volume)

    def observe(self, layer: str, name: str, value: float,
                volume: Optional[str] = None) -> None:
        self.metrics.observe(layer, name, value, volume=volume)

    def set_gauge(self, layer: str, name: str, value: float,
                  volume: Optional[str] = None) -> None:
        self.metrics.set_gauge(layer, name, value, volume=volume)

    def add_collector(self, layer: str, collector,
                      volume: Optional[str] = None) -> None:
        self.metrics.add_collector(layer, collector, volume=volume)

    def span(self, name: str, layer: str = "", **tags):
        return self.tracer.span(name, layer=layer, **tags)

    def stats(self) -> dict:
        """The metrics snapshot (layer -> counters/gauges/histograms)."""
        return self.metrics.snapshot()

    def trace(self) -> list[dict]:
        """The finished spans, exported."""
        return self.tracer.export()

    def reset(self) -> None:
        """Zero metrics and drop finished spans."""
        self.metrics.reset()
        self.tracer.reset()


#: Shared disabled instance for components wired without a handle.
#: Never enable it -- boot a machine with observability on instead.
NULL_OBS = Observability(metrics_enabled=False, trace_enabled=False)

__all__ = [
    "AUX_LAYERS",
    "FIGURE2_LAYERS",
    "Histogram",
    "LAYERS",
    "MetricsRegistry",
    "NULL_OBS",
    "NULL_SPAN",
    "Observability",
    "Span",
    "Tracer",
]
