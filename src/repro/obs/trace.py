"""Lightweight tracing: nestable spans over simulated and wall time.

A span measures one region of pipeline work (a Lasagna sync, a Waldo
drain, a PQL evaluation) on *both* clocks that matter here:

* the **simulated clock** -- what the modelled 2009 hardware would have
  spent, the number the paper's tables are made of;
* the **wall clock** -- what the Python reproduction actually spent,
  the number perf work on this codebase is made of.

Spans nest: entering a span makes it the parent of spans opened inside
it, so a trace of ``system.sync`` shows the Lasagna flushes and Waldo
drains it triggered as children.  Finished spans land in a bounded ring
buffer per :class:`Tracer` (per machine), exportable as JSON.

Tracing is off by default.  A disabled tracer hands out one shared
no-op span, so instrumented code pays a single branch.
"""

from __future__ import annotations

import itertools
import json
import time
from collections import deque
from typing import Callable, Optional

#: Default ring-buffer capacity (finished spans retained per tracer).
TRACE_CAPACITY = 2048


class Span:
    """One timed region.  Use via ``with tracer.span(...)``."""

    __slots__ = ("name", "layer", "span_id", "parent_id", "depth", "tags",
                 "sim_start", "sim_end", "wall_start", "wall_end")

    def __init__(self, name: str, layer: str, span_id: int,
                 parent_id: Optional[int], depth: int, tags: dict,
                 sim_start: float, wall_start: float):
        self.name = name
        self.layer = layer
        self.span_id = span_id
        self.parent_id = parent_id
        self.depth = depth
        self.tags = tags
        self.sim_start = sim_start
        self.sim_end = sim_start
        self.wall_start = wall_start
        self.wall_end = wall_start

    @property
    def sim_elapsed(self) -> float:
        """Simulated seconds spent inside the span."""
        return self.sim_end - self.sim_start

    @property
    def wall_elapsed(self) -> float:
        """Real (Python) seconds spent inside the span."""
        return self.wall_end - self.wall_start

    def tag(self, name: str, value) -> None:
        """Attach one annotation to the span."""
        self.tags[name] = value

    def to_dict(self) -> dict:
        """Stable-schema dict used by ``repro trace --json``.

        ``wall_start`` is included for the Chrome trace exporter, which
        needs absolute start stamps to lay spans on a timeline."""
        return {
            "name": self.name,
            "layer": self.layer,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "depth": self.depth,
            "sim_start": self.sim_start,
            "sim_elapsed": self.sim_elapsed,
            "wall_start": self.wall_start,
            "wall_elapsed": self.wall_elapsed,
            "tags": dict(self.tags),
        }

    def __repr__(self) -> str:
        return (f"<Span {self.name} sim={self.sim_elapsed:.6f}s "
                f"wall={self.wall_elapsed * 1e3:.3f}ms>")


class _NullSpan:
    """Shared do-nothing span handed out by disabled tracers."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc) -> None:
        pass

    def tag(self, name: str, value) -> None:
        pass


NULL_SPAN = _NullSpan()


class _ActiveSpan:
    """Context manager binding a :class:`Span` to its tracer's stack."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        self._tracer._stack.append(self._span)
        return self._span

    def __exit__(self, *exc) -> None:
        span = self._span
        tracer = self._tracer
        span.sim_end = tracer._sim_now()
        span.wall_end = time.perf_counter()
        stack = tracer._stack
        if stack and stack[-1] is span:
            stack.pop()
        finished = tracer._finished
        if len(finished) == finished.maxlen:
            # The ring is full: appending evicts the oldest finished
            # span.  Count it -- a truncated trace must say so.
            tracer.dropped_spans += 1
        finished.append(span)


class Tracer:
    """Per-machine span collector with a bounded ring buffer."""

    def __init__(self, enabled: bool = False,
                 sim_now: Optional[Callable[[], float]] = None,
                 capacity: int = TRACE_CAPACITY):
        self.enabled = enabled
        self._sim_now = sim_now or (lambda: 0.0)
        self._finished: deque[Span] = deque(maxlen=capacity)
        self._stack: list[Span] = []
        self._ids = itertools.count(1)
        #: Finished spans evicted from the full ring (SLO: must be 0
        #: for a trace to be trusted as complete).
        self.dropped_spans = 0

    def bind_clock(self, sim_now: Callable[[], float]) -> None:
        """Point the tracer at the machine's simulated clock.

        This is the one sanctioned way for instrumentation to read
        simulated time: spans carry it, instead of every call site
        fetching ``clock.now`` ad hoc."""
        self._sim_now = sim_now

    def span(self, name: str, layer: str = "", **tags):
        """Open a span; use as a context manager.

        Disabled tracers return a shared no-op span, so call sites
        need no conditional of their own."""
        if not self.enabled:
            return NULL_SPAN
        parent = self._stack[-1] if self._stack else None
        span = Span(
            name, layer, next(self._ids),
            parent.span_id if parent is not None else None,
            parent.depth + 1 if parent is not None else 0,
            tags, self._sim_now(), time.perf_counter(),
        )
        return _ActiveSpan(self, span)

    def current_ids(self) -> tuple[Optional[int], Optional[int]]:
        """(trace_id, span_id) of the innermost open span, or (None,
        None) outside any span.  The trace id is the root span's id, so
        every event emitted under one top-level span shares it."""
        stack = self._stack
        if not stack:
            return None, None
        return stack[0].span_id, stack[-1].span_id

    # -- reads -----------------------------------------------------------------

    def spans(self) -> list[Span]:
        """Finished spans, oldest first (bounded by capacity)."""
        return list(self._finished)

    def export(self) -> dict:
        """Finished spans as stable-schema dicts, plus the drop count:
        ``{"spans": [...], "dropped_spans": N}``.  A nonzero
        ``dropped_spans`` means the ring overflowed and the span list
        is the *newest* window, not the whole story."""
        return {
            "spans": [span.to_dict() for span in self._finished],
            "dropped_spans": self.dropped_spans,
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        """The exported trace as a JSON document."""
        return json.dumps(self.export(), indent=indent, default=str)

    def reset(self) -> None:
        """Drop all finished spans (open spans keep running) and zero
        the drop count."""
        self._finished.clear()
        self.dropped_spans = 0
