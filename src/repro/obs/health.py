"""SLO health gating: machine-readable verdicts over the telemetry.

ProvMark's lesson (PAPERS.md) is that "did the fast path regress" must
be a machine-checkable verdict, not an eyeballed number.  This module
turns the passview telemetry into exactly that:

* :func:`evaluate_health` -- checks a metrics snapshot (plus span/
  journal bookkeeping and optional benchmark / crashtest documents)
  against an :class:`SLOPolicy`, yielding a :class:`HealthVerdict`
  whose ``ok`` maps straight onto a process exit code;
* :func:`compare_bench` -- per-suite deltas between two
  ``BENCH_results.json`` documents, failing on regression beyond a
  tolerance.  Gating metrics are *ratios* (speedups, overhead percent),
  which are normalized per run and therefore comparable across
  machines; absolute throughput is reported but never gated.

Pure functions over plain dicts: no clocks, no I/O, no imports from
the rest of ``repro`` (the obs leaf discipline).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

#: The committed overhead budget (percent) for the enabled
#: journal+exporter stack on the batched ingest path (see
#: docs/OBSERVABILITY.md and benchmarks/bench_obs_overhead.py).
OVERHEAD_BUDGET_PCT = 5.0

#: Per-suite gating metric for :func:`compare_bench`: suite ->
#: (dotted path into the suite payload, direction).  ``higher`` means
#: regression when the current value falls below baseline*(1-tol);
#: ``lower`` means regression when it rises above
#: max(budget, baseline + slack).
COMPARE_METRICS = {
    "ingest": ("speedup", "higher"),
    "ingest_sharded": ("speedup", "higher"),
    "incremental_query": ("speedup", "higher"),
    "obs_overhead": ("overhead_pct", "lower"),
    "pql_perf": ("speedup", "higher"),
}

#: Informational (never gating) per-suite metrics worth reporting.
REPORT_METRICS = {
    "ingest": ("batched.records_per_sec", "unbatched.records_per_sec"),
    "ingest_sharded": ("shards_1.storage_records_per_sec",
                       "shards_4.storage_records_per_sec"),
    "obs_overhead": ("disabled_overhead_pct",),
    "pql_perf": ("point_lookup.speedup", "ancestry.speedup",
                 "records_total"),
}


@dataclass(frozen=True)
class SLOPolicy:
    """The service-level objectives a healthy build must meet."""

    #: Finished spans silently evicted from the ring (must be 0: a
    #: truncated trace lies about what the system did).
    max_dropped_spans: int = 0
    #: Journal ring overflows.  None = report only (the journal is
    #: sampled and bounded by design; drops are a tuning signal).
    max_journal_dropped: Optional[int] = None
    #: Query latency SLOs (wall seconds, from the pql
    #: ``execute_wall_s`` histogram).
    max_query_p50_s: float = 0.5
    max_query_p99_s: float = 2.0
    #: WAP violations from a crashtest report (must be 0: the paper's
    #: core invariant).
    max_wap_violations: int = 0
    #: Batched-ingest speedup floor, checked when a benchmark document
    #: is supplied (mirrors the CI gate).
    min_ingest_speedup: float = 2.0
    #: Obs overhead ceiling, checked when the benchmark document
    #: carries the obs_overhead suite.
    max_obs_overhead_pct: float = OVERHEAD_BUDGET_PCT
    #: Query-planner speedup floor (min of indexed point lookups and
    #: materialized ancestry closure vs the naive path), checked when
    #: the benchmark document carries the pql_perf suite.
    min_pql_speedup: float = 5.0


@dataclass
class HealthCheck:
    """One SLO probe: what was measured, against what limit."""

    name: str
    ok: bool
    value: object
    limit: object
    detail: str = ""

    def to_dict(self) -> dict:
        return {"name": self.name, "ok": self.ok, "value": self.value,
                "limit": self.limit, "detail": self.detail}


@dataclass
class HealthVerdict:
    """The machine-readable outcome ``repro health`` prints and gates on."""

    checks: list[HealthCheck] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(check.ok for check in self.checks)

    @property
    def failures(self) -> list[HealthCheck]:
        return [check for check in self.checks if not check.ok]

    def to_dict(self) -> dict:
        return {"ok": self.ok,
                "checks": [check.to_dict() for check in self.checks]}

    def render_text(self) -> str:
        lines = [f"health: {'OK' if self.ok else 'FAIL'} "
                 f"({len(self.checks)} checks, "
                 f"{len(self.failures)} failing)"]
        for check in self.checks:
            status = "ok  " if check.ok else "FAIL"
            limit = "-" if check.limit is None else check.limit
            detail = f"  ({check.detail})" if check.detail else ""
            lines.append(f"  {status} {check.name:24s} "
                         f"value={check.value} limit={limit}{detail}")
        return "\n".join(lines)


def _pql_percentile(snapshot: dict, key: str) -> float:
    return (snapshot.get("pql", {}).get("histograms", {})
            .get("execute_wall_s", {}).get(key, 0.0))


def evaluate_health(snapshot: dict, dropped_spans: int = 0,
                    journal_stats: Optional[dict] = None,
                    bench: Optional[dict] = None,
                    crashtest: Optional[dict] = None,
                    slos: Optional[SLOPolicy] = None) -> HealthVerdict:
    """Check the telemetry against the SLO policy.

    ``snapshot`` is a metrics snapshot; ``bench`` a merged
    ``BENCH_results.json`` document and ``crashtest`` a
    ``repro crashtest --json`` report, both optional -- absent inputs
    mark their checks ok with a "not supplied" detail rather than
    failing, so the verdict composes with whatever artifacts a CI job
    actually produced.
    """
    slos = slos or SLOPolicy()
    verdict = HealthVerdict()
    checks = verdict.checks

    checks.append(HealthCheck(
        "span_buffer_drops", dropped_spans <= slos.max_dropped_spans,
        dropped_spans, slos.max_dropped_spans,
        "finished spans evicted from the tracer ring"))

    journal_dropped = (journal_stats or {}).get("events_dropped", 0)
    journal_ok = (slos.max_journal_dropped is None
                  or journal_dropped <= slos.max_journal_dropped)
    checks.append(HealthCheck(
        "journal_drops", journal_ok, journal_dropped,
        slos.max_journal_dropped, "journal ring overflows"))

    p50 = _pql_percentile(snapshot, "p50")
    p99 = _pql_percentile(snapshot, "p99")
    checks.append(HealthCheck(
        "query_p50_s", p50 <= slos.max_query_p50_s, round(p50, 6),
        slos.max_query_p50_s, "pql execute_wall_s p50"))
    checks.append(HealthCheck(
        "query_p99_s", p99 <= slos.max_query_p99_s, round(p99, 6),
        slos.max_query_p99_s, "pql execute_wall_s p99"))

    if crashtest is not None:
        violations = crashtest.get("totals", {}).get("wap_violations", 0)
        checks.append(HealthCheck(
            "wap_violations", violations <= slos.max_wap_violations,
            violations, slos.max_wap_violations,
            "crash points that broke write-ahead provenance"))
    else:
        checks.append(HealthCheck(
            "wap_violations", True, None, slos.max_wap_violations,
            "crashtest report not supplied"))

    suites = (bench or {}).get("suites", {})
    ingest = suites.get("ingest")
    if ingest is not None:
        speedup = ingest.get("speedup", 0.0)
        rps = ingest.get("batched", {}).get("records_per_sec", 0.0)
        checks.append(HealthCheck(
            "ingest_speedup", speedup >= slos.min_ingest_speedup,
            round(speedup, 2), slos.min_ingest_speedup,
            f"batched ingest at {rps:,.0f} records/s"))
    else:
        checks.append(HealthCheck(
            "ingest_speedup", True, None, slos.min_ingest_speedup,
            "ingest benchmark results not supplied"))

    obs_suite = suites.get("obs_overhead")
    if obs_suite is not None:
        overhead = obs_suite.get("overhead_pct", 0.0)
        checks.append(HealthCheck(
            "obs_overhead_pct", overhead <= slos.max_obs_overhead_pct,
            round(overhead, 2), slos.max_obs_overhead_pct,
            "journal+exporters cost on the batched ingest path"))

    pql_suite = suites.get("pql_perf")
    if pql_suite is not None:
        speedup = pql_suite.get("speedup", 0.0)
        point = pql_suite.get("point_lookup", {}).get("speedup", 0.0)
        ancestry = pql_suite.get("ancestry", {}).get("speedup", 0.0)
        checks.append(HealthCheck(
            "pql_speedup", speedup >= slos.min_pql_speedup,
            round(speedup, 2), slos.min_pql_speedup,
            f"planner vs naive (point {point:.1f}x, "
            f"ancestry {ancestry:.1f}x)"))
    else:
        checks.append(HealthCheck(
            "pql_speedup", True, None, slos.min_pql_speedup,
            "pql benchmark results not supplied"))

    return verdict


# -- benchmark trajectory comparison ------------------------------------------

def _dig(payload: dict, path: str):
    value = payload
    for part in path.split("."):
        if not isinstance(value, dict):
            return None
        value = value.get(part)
    return value if isinstance(value, (int, float)) else None


def compare_bench(baseline: dict, current: dict,
                  tolerance: float = 0.25,
                  overhead_slack_pct: float = 2.0) -> dict:
    """Per-suite deltas between two BENCH_results documents.

    Returns ``{"ok", "suites": {name: {...}}, "regressions": [...]}``.
    A suite regresses when its gating metric (see
    :data:`COMPARE_METRICS`) moves the wrong way beyond the tolerance:
    speedups may not fall below ``baseline * (1 - tolerance)``;
    overheads may not rise above ``max(budget, baseline + slack)``.
    Suites with no baseline entry are reported as ``new`` and never
    gate -- the first run commits the baseline.
    """
    base_suites = (baseline or {}).get("suites", {})
    cur_suites = (current or {}).get("suites", {})
    report: dict = {"ok": True, "tolerance": tolerance,
                    "suites": {}, "regressions": []}
    for name in sorted(cur_suites):
        if name not in COMPARE_METRICS:
            continue
        path, direction = COMPARE_METRICS[name]
        cur_value = _dig(cur_suites[name], path)
        if cur_value is None:
            continue
        entry: dict = {"metric": path, "current": cur_value,
                       "direction": direction}
        base_value = _dig(base_suites.get(name, {}), path)
        if base_value is None:
            entry["status"] = "new"
            entry["baseline"] = None
        else:
            entry["baseline"] = base_value
            entry["delta_pct"] = (100.0 * (cur_value - base_value)
                                  / base_value if base_value else 0.0)
            if direction == "higher":
                floor = base_value * (1.0 - tolerance)
                entry["floor"] = floor
                regressed = cur_value < floor
            else:
                ceiling = max(OVERHEAD_BUDGET_PCT,
                              base_value + overhead_slack_pct)
                entry["ceiling"] = ceiling
                regressed = cur_value > ceiling
            entry["status"] = "regressed" if regressed else "ok"
            if regressed:
                report["ok"] = False
                report["regressions"].append(name)
        for extra in REPORT_METRICS.get(name, ()):
            value = _dig(cur_suites[name], extra)
            if value is not None:
                entry.setdefault("info", {})[extra] = value
        report["suites"][name] = entry
    return report


def render_compare(report: dict) -> str:
    """Human-readable rendering of a :func:`compare_bench` report."""
    lines = [f"bench compare: {'OK' if report['ok'] else 'REGRESSED'} "
             f"(tolerance {report['tolerance']:.0%})"]
    for name, entry in sorted(report["suites"].items()):
        status = entry["status"]
        current = entry["current"]
        if entry.get("baseline") is None:
            lines.append(f"  new  {name:20s} {entry['metric']}="
                         f"{current:.3g} (no baseline; this run becomes "
                         f"the baseline)")
            continue
        marker = "FAIL" if status == "regressed" else "ok  "
        lines.append(f"  {marker} {name:20s} {entry['metric']}: "
                     f"{entry['baseline']:.3g} -> {current:.3g} "
                     f"({entry['delta_pct']:+.1f}%)")
    return "\n".join(lines)
