"""Dimension rollups over metrics snapshots and journal events.

The metrics registry keys everything by (layer, volume); the sharded
storage tier and the PA-NFS fleet need the same numbers re-aggregated
along whatever axis a dashboard slices by -- per layer across all
volumes, per volume across all layers, per (layer, volume) pair, or,
for journal events, per site/kind.  These are pure functions over the
already-snapshotted dicts, so they work identically on one machine's
snapshot or on many machines' snapshots merged upstream.

Histogram summaries merge conservatively: ``count``/``sum``/``min``/
``max``/``mean`` are exact across the merge; percentiles cannot be
combined from summaries, so the rollup reports the *maximum* of each
input percentile -- an upper bound, which is the safe direction for
SLO checks.
"""

from __future__ import annotations

from typing import Iterable, Optional

#: Axes :func:`rollup` accepts.
DIMENSIONS = ("layer", "volume")


def merge_summaries(summaries: Iterable[dict]) -> dict:
    """Combine histogram summaries (exact moments, max percentiles)."""
    out = {"count": 0, "sum": 0.0, "min": None, "max": 0.0,
           "mean": 0.0, "p50": 0.0, "p90": 0.0, "p99": 0.0}
    for summ in summaries:
        if not summ.get("count"):
            continue
        out["count"] += summ["count"]
        out["sum"] += summ.get("sum", 0.0)
        low = summ.get("min", 0.0)
        out["min"] = low if out["min"] is None else min(out["min"], low)
        out["max"] = max(out["max"], summ.get("max", 0.0))
        for key in ("p50", "p90", "p99"):
            out[key] = max(out[key], summ.get(key, 0.0))
    out["min"] = out["min"] if out["min"] is not None else 0.0
    out["mean"] = out["sum"] / out["count"] if out["count"] else 0.0
    return out


def _sections(snapshot: dict):
    """Yield (layer, volume-or-None, section) leaves of a snapshot.

    The layer-wide section already folds the per-volume numbers in, so
    a rollup uses *either* the layer totals (volume axis absent) or the
    per-volume sections (volume axis present) -- never both, which
    would double-count.
    """
    for layer, section in snapshot.items():
        volumes = section.get("volumes", {})
        if volumes:
            for volume, sub in volumes.items():
                yield layer, volume, sub
            # Direct (volume-less) metrics of a layer that also has
            # volumes: expose them under the pseudo-volume None by
            # subtracting? No -- the registry folds per-volume into the
            # totals, so totals-minus-volumes is the direct remainder.
            remainder = _remainder(section, volumes)
            if any(remainder[k] for k in ("counters", "gauges")):
                yield layer, None, remainder
        else:
            yield layer, None, section


def _remainder(section: dict, volumes: dict) -> dict:
    counters: dict[str, float] = dict(section.get("counters", {}))
    gauges: dict[str, float] = dict(section.get("gauges", {}))
    for sub in volumes.values():
        for name, value in sub.get("counters", {}).items():
            if name in counters:
                counters[name] -= value
        for name, value in sub.get("gauges", {}).items():
            if name in gauges:
                gauges[name] -= value
    counters = {name: value for name, value in counters.items() if value}
    gauges = {name: value for name, value in gauges.items() if value}
    return {"counters": counters, "gauges": gauges, "histograms": {}}


def rollup(snapshot: dict, by: Iterable[str] = ("layer",)) -> dict:
    """Re-aggregate a metrics snapshot along the given dimensions.

    ``by`` is any subset of :data:`DIMENSIONS`; the result maps the
    joined key (``"<layer>"``, ``"<volume>"``, or ``"<layer>/<volume>"``
    -- missing axes render as ``*``) to merged
    ``{"counters", "gauges", "histograms"}`` sections.

        rollup(snap, by=("volume",))   # per-volume, across all layers
        rollup(snap, by=("layer", "volume"))
    """
    axes = tuple(by)
    for axis in axes:
        if axis not in DIMENSIONS:
            raise ValueError(f"unknown rollup dimension: {axis!r} "
                             f"(have: {', '.join(DIMENSIONS)})")
    use_volumes = "volume" in axes
    out: dict[str, dict] = {}
    if use_volumes:
        sections = _sections(snapshot)
    else:
        # The layer-wide sections already fold per-volume numbers in:
        # use them whole instead of re-assembling from volume leaves.
        sections = ((layer, None, section)
                    for layer, section in snapshot.items())
    for layer, volume, section in sections:
        parts = []
        if "layer" in axes:
            parts.append(layer)
        if use_volumes:
            parts.append(volume if volume is not None else "*")
        key = "/".join(parts) if parts else "*"
        bucket = out.setdefault(key, {"counters": {}, "gauges": {},
                                      "histograms": {}})
        for name, value in section.get("counters", {}).items():
            bucket["counters"][name] = \
                bucket["counters"].get(name, 0) + value
        for name, value in section.get("gauges", {}).items():
            bucket["gauges"][name] = bucket["gauges"].get(name, 0) + value
        for name, summ in section.get("histograms", {}).items():
            existing = bucket["histograms"].get(name)
            bucket["histograms"][name] = merge_summaries(
                [existing, summ] if existing else [summ])
    return out


def journal_rollup(events: list[dict], by: str = "kind",
                   value_field: Optional[str] = None) -> dict:
    """Aggregate journal events along one event field.

    ``by`` names the grouping field (``kind``, ``layer``, ``volume``,
    ``site`` -- any field an event carries); the result maps each group
    to ``{"events": N}`` plus, when ``value_field`` is given, the sum
    of that numeric field (e.g. ``records`` per group).
    """
    out: dict[str, dict] = {}
    for event in events:
        key = str(event.get(by, "-"))
        bucket = out.setdefault(key, {"events": 0})
        bucket["events"] += 1
        if value_field is not None:
            value = event.get(value_field)
            if isinstance(value, (int, float)):
                bucket[value_field] = bucket.get(value_field, 0) + value
    return out
