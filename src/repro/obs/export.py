"""Standard-format exporters for spans and metrics (passview).

Three formats, all deterministic (same snapshot in, same bytes out):

* :func:`chrome_trace` -- the Chrome trace-event JSON format ("X"
  complete events), loadable in ``chrome://tracing`` and Perfetto;
* :func:`prometheus_text` -- the Prometheus text exposition format
  (version 0.0.4): counters, gauges, and histogram summaries with
  ``quantile`` labels, names and label values escaped per the spec;
* :func:`collapsed_stacks` -- semicolon-collapsed stack lines
  aggregated from the span tree (Brendan Gregg's folded format), the
  input every flamegraph renderer accepts.

Everything here is pure: functions take the already-exported span dicts
(:meth:`Tracer.export`) or metrics snapshot (:meth:`MetricsRegistry.
snapshot`) and return strings/dicts.  No clocks, no I/O, no imports
from the rest of ``repro`` -- the module stays inside the obs leaf.
"""

from __future__ import annotations

import json
import re

#: Prefix stamped on every exported Prometheus metric name.
PROM_PREFIX = "repro"

_NAME_OK = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")
_NAME_BAD_CHARS = re.compile(r"[^a-zA-Z0-9_:]")
_LABEL_BAD_CHARS = re.compile(r"[^a-zA-Z0-9_]")


# -- Chrome trace events ------------------------------------------------------

def chrome_trace(spans: list[dict], clock: str = "wall",
                 process_name: str = "repro") -> dict:
    """Spans as a Chrome trace-event document (JSON-serializable dict).

    Each span becomes one complete ("X") event.  ``clock`` selects the
    timestamp source: ``"wall"`` uses real Python seconds, ``"sim"``
    the simulated clock.  Timestamps are microseconds relative to the
    earliest span, so documents are small and stable.
    """
    if clock not in ("wall", "sim"):
        raise ValueError(f"unknown clock: {clock!r}")
    start_key = "wall_start" if clock == "wall" else "sim_start"
    elapsed_key = "wall_elapsed" if clock == "wall" else "sim_elapsed"
    origin = min((span.get(start_key, 0.0) for span in spans),
                 default=0.0)
    events = [{
        "name": "process_name",
        "ph": "M",
        "pid": 1,
        "tid": 1,
        "args": {"name": process_name},
    }]
    for span in spans:
        args = {key: _json_safe(value)
                for key, value in sorted(span.get("tags", {}).items())}
        args["span_id"] = span["span_id"]
        if span.get("parent_id") is not None:
            args["parent_id"] = span["parent_id"]
        events.append({
            "name": span["name"],
            "cat": span.get("layer") or "-",
            "ph": "X",
            "ts": round((span.get(start_key, 0.0) - origin) * 1e6, 3),
            "dur": round(span.get(elapsed_key, 0.0) * 1e6, 3),
            "pid": 1,
            "tid": span.get("depth", 0) + 1,
            "args": args,
        })
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"clock": clock, "spans": len(spans)},
    }


def chrome_trace_json(spans: list[dict], clock: str = "wall") -> str:
    """The Chrome trace document serialized (sorted keys: two exports
    of the same span list are byte-identical)."""
    return json.dumps(chrome_trace(spans, clock=clock), sort_keys=True,
                      indent=2) + "\n"


def _json_safe(value):
    """Tag values that JSON cannot carry verbatim become strings."""
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    return str(value)


# -- Prometheus text exposition -----------------------------------------------

def prom_name(*parts: str) -> str:
    """A legal Prometheus metric name from dotted/arbitrary parts:
    illegal characters collapse to ``_``, a leading digit gains one."""
    name = "_".join(_NAME_BAD_CHARS.sub("_", part)
                    for part in parts if part)
    if not name:
        return "_"
    if not _NAME_OK.match(name):
        name = "_" + name
    return name


def prom_label_value(value: str) -> str:
    """Escape a label value per the exposition format: backslash,
    double-quote, and newline are backslash-escaped."""
    return (str(value).replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _labels(pairs: list[tuple[str, str]]) -> str:
    if not pairs:
        return ""
    inner = ",".join(
        f'{_LABEL_BAD_CHARS.sub("_", key)}="{prom_label_value(value)}"'
        for key, value in pairs)
    return "{" + inner + "}"


def _format_value(value: float) -> str:
    if isinstance(value, float) and value != value:    # NaN
        return "NaN"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def prometheus_text(snapshot: dict, prefix: str = PROM_PREFIX) -> str:
    """A metrics snapshot as the Prometheus text exposition format.

    Counters become ``<prefix>_<name>_total``-style samples labelled
    ``{layer=...}`` (plus ``volume=`` for per-volume breakdowns);
    histograms become summary samples with ``quantile`` labels plus
    ``_sum``/``_count``.  Output ordering is fully sorted, so two
    exports of the same snapshot are byte-identical.
    """
    lines: list[str] = []
    counters: dict[str, list[str]] = {}
    gauges: dict[str, list[str]] = {}
    summaries: dict[str, list[str]] = {}

    def walk(layer: str, section: dict, volume: str | None) -> None:
        labels = [("layer", layer)]
        if volume is not None:
            labels = labels + [("volume", volume)]
        for name, value in sorted(section.get("counters", {}).items()):
            metric = prom_name(prefix, name)
            counters.setdefault(metric, []).append(
                f"{metric}{_labels(labels)} {_format_value(value)}")
        for name, value in sorted(section.get("gauges", {}).items()):
            metric = prom_name(prefix, name)
            gauges.setdefault(metric, []).append(
                f"{metric}{_labels(labels)} {_format_value(value)}")
        for name, summ in sorted(section.get("histograms", {}).items()):
            metric = prom_name(prefix, name)
            rows = summaries.setdefault(metric, [])
            for quantile, key in (("0.5", "p50"), ("0.9", "p90"),
                                  ("0.99", "p99")):
                rows.append(f"{metric}"
                            f"{_labels(labels + [('quantile', quantile)])} "
                            f"{_format_value(summ.get(key, 0.0))}")
            rows.append(f"{metric}_sum{_labels(labels)} "
                        f"{_format_value(summ.get('sum', 0.0))}")
            rows.append(f"{metric}_count{_labels(labels)} "
                        f"{_format_value(summ.get('count', 0))}")

    for layer in sorted(snapshot):
        section = snapshot[layer]
        walk(layer, section, None)
        for volume in sorted(section.get("volumes", {})):
            walk(layer, section["volumes"][volume], volume)

    for metric in sorted(counters):
        lines.append(f"# TYPE {metric} counter")
        lines.extend(sorted(counters[metric]))
    for metric in sorted(gauges):
        lines.append(f"# TYPE {metric} gauge")
        lines.extend(sorted(gauges[metric]))
    for metric in sorted(summaries):
        lines.append(f"# TYPE {metric} summary")
        lines.extend(sorted(summaries[metric]))
    return "\n".join(lines) + ("\n" if lines else "")


# -- collapsed stacks (flamegraph input) --------------------------------------

def collapsed_stacks(spans: list[dict], clock: str = "wall") -> str:
    """Span tree -> folded stack lines (``a;b;c <microseconds>``).

    Each line is a root-to-span path with the span's *self* time (its
    elapsed minus its children's), aggregated over every occurrence of
    that path and reported in integer microseconds.  Lines are sorted,
    so two exports of the same span list are byte-identical.  This is
    the input format of every flamegraph renderer.
    """
    if clock not in ("wall", "sim"):
        raise ValueError(f"unknown clock: {clock!r}")
    elapsed_key = "wall_elapsed" if clock == "wall" else "sim_elapsed"
    by_id = {span["span_id"]: span for span in spans}
    child_time: dict[int, float] = {}
    for span in spans:
        parent = span.get("parent_id")
        if parent in by_id:
            child_time[parent] = child_time.get(parent, 0.0) \
                + span.get(elapsed_key, 0.0)

    def frame(span: dict) -> str:
        layer = span.get("layer") or "-"
        return f"{layer}:{span['name']}".replace(";", "_") \
            .replace("\n", " ")

    paths: dict[int, str] = {}

    def path_of(span: dict) -> str:
        span_id = span["span_id"]
        cached = paths.get(span_id)
        if cached is None:
            parent = by_id.get(span.get("parent_id"))
            cached = frame(span) if parent is None \
                else path_of(parent) + ";" + frame(span)
            paths[span_id] = cached
        return cached

    folded: dict[str, int] = {}
    for span in spans:
        self_time = span.get(elapsed_key, 0.0) \
            - child_time.get(span["span_id"], 0.0)
        micros = max(0, int(round(self_time * 1e6)))
        path = path_of(span)
        folded[path] = folded.get(path, 0) + micros
    lines = [f"{path} {value}" for path, value in sorted(folded.items())]
    return "\n".join(lines) + ("\n" if lines else "")


def profile_table(spans: list[dict], clock: str = "wall",
                  top: int = 20) -> str:
    """Human-readable self-time profile: top frames by aggregated self
    time, with counts -- the quick-look view ``repro profile`` prints."""
    elapsed_key = "wall_elapsed" if clock == "wall" else "sim_elapsed"
    by_id = {span["span_id"]: span for span in spans}
    child_time: dict[int, float] = {}
    for span in spans:
        parent = span.get("parent_id")
        if parent in by_id:
            child_time[parent] = child_time.get(parent, 0.0) \
                + span.get(elapsed_key, 0.0)
    totals: dict[str, tuple[float, int]] = {}
    for span in spans:
        frame = f"{span.get('layer') or '-'}:{span['name']}"
        self_time = span.get(elapsed_key, 0.0) \
            - child_time.get(span["span_id"], 0.0)
        seconds, count = totals.get(frame, (0.0, 0))
        totals[frame] = (seconds + max(0.0, self_time), count + 1)
    grand = sum(seconds for seconds, _ in totals.values()) or 1.0
    rows = sorted(totals.items(), key=lambda item: (-item[1][0], item[0]))
    lines = [f"{'frame':40s}{'self':>12s}{'%':>7s}{'count':>8s}"]
    for frame, (seconds, count) in rows[:top]:
        lines.append(f"{frame:40s}{seconds * 1e3:>10.3f}ms"
                     f"{100.0 * seconds / grand:>6.1f}%{count:>8d}")
    return "\n".join(lines)
