"""The paper's five evaluation workloads (section 7).

1. **Linux compile** -- unpack + build a kernel tree (CPU intensive);
2. **Postmark** -- small-file mail-server transactions (I/O intensive);
3. **Mercurial activity** -- apply a patch series the way ``patch`` does
   (metadata heavy: temp file, merge, rename);
4. **Blast** -- formatdb + a long CPU-bound protein search + Perl
   post-processing;
5. **PA-Kepler** -- a tabular parse/extract/reformat workflow with
   three-layer provenance collection.

Each workload runs identically against the vanilla baseline, PASSv2,
NFS, and PA-NFS configurations via :mod:`repro.workloads.base`.
"""

from repro.workloads.base import (
    Workload,
    WorkloadResult,
    run_local,
    run_nfs,
)
from repro.workloads.blast import BlastWorkload
from repro.workloads.compile import CompileWorkload
from repro.workloads.kepler_wl import KeplerWorkload
from repro.workloads.mercurial import MercurialWorkload
from repro.workloads.postmark import PostmarkWorkload

ALL_WORKLOADS = (
    CompileWorkload,
    PostmarkWorkload,
    MercurialWorkload,
    BlastWorkload,
    KeplerWorkload,
)

__all__ = [
    "ALL_WORKLOADS",
    "BlastWorkload",
    "CompileWorkload",
    "KeplerWorkload",
    "MercurialWorkload",
    "PostmarkWorkload",
    "Workload",
    "WorkloadResult",
    "run_local",
    "run_nfs",
]
