"""The thermography scenario (paper section 3.3).

Synthetic stand-in for Iowa State's Thermography Research Group data:
~400 experiments on 60 specimens produced XML logs relating crack
heating to vibrational stress.  The analysis script *reads every* XML
file to decide which to use, then uses only the matching subset --
the property that defeats pure system-level provenance (PASS blames
the plot on all the files) and that PA-Python resolves.
"""

from __future__ import annotations

import random
from typing import Callable, Optional

from repro.apps.papython import ProvenanceTracker
from repro.system import System

EXPERIMENTS = 40
SPECIMENS = 6
STRESS_CLASSES = ("low", "high")


def generate_logs(system: System, directory: str,
                  experiments: int = EXPERIMENTS,
                  specimens: int = SPECIMENS, seed: int = 11) -> list[str]:
    """Write the XML experiment logs; returns their paths."""
    rng = random.Random(seed)
    paths = []

    def acquisition(sc):
        if not sc.exists(directory):
            sc.mkdir(directory)
        for index in range(experiments):
            specimen = index % specimens
            stress = STRESS_CLASSES[rng.randrange(2)]
            crack_length = round(rng.uniform(0.5, 9.5), 3)
            heating = round(crack_length * (1.8 if stress == "high"
                                            else 0.7)
                            + rng.uniform(-0.1, 0.1), 4)
            xml = (
                "<experiment>\n"
                f"  <id>{index}</id>\n"
                f"  <specimen>{specimen}</specimen>\n"
                f"  <stress_class>{stress}</stress_class>\n"
                f"  <crack_length>{crack_length}</crack_length>\n"
                f"  <heating>{heating}</heating>\n"
                "</experiment>\n"
            )
            path = f"{directory}/exp{index:03d}.xml"
            fd = sc.open(path, "w")
            sc.write(fd, xml.encode())
            sc.close(fd)
            paths.append(path)
        return 0

    program_path = f"{directory.rsplit('/', 1)[0] or ''}/bin/daq"
    if not system.kernel.vfs.exists(program_path):
        system.register_program(program_path, acquisition)
        system.run(program_path, argv=["daq"])
    else:
        system.run(program_path, argv=["daq"], program=acquisition)
    return paths


def parse_xml(data: bytes) -> dict:
    """Tiny field extractor for the experiment logs."""
    out = {}
    for line in data.decode().splitlines():
        line = line.strip()
        if line.startswith("<") and not line.startswith("</") \
                and not line.startswith("<experiment"):
            tag = line[1:line.index(">")]
            value = line[line.index(">") + 1:line.rindex("<")]
            out[tag] = value
    return out


def crack_heating_curve(*docs: dict) -> bytes:
    """The calculation routine: crack heating vs crack length.

    Takes the selected experiment documents as arguments so each one is
    a distinct, individually tracked input of the invocation."""
    rows = sorted(
        (float(doc["crack_length"]), float(doc["heating"]))
        for doc in docs
    )
    lines = [f"{length:.3f}\t{heating:.4f}" for length, heating in rows]
    return ("\n".join(lines) + "\n").encode()


def buggy_crack_heating_curve(*docs: dict) -> bytes:
    """The post-library-upgrade routine with the estimation bug."""
    rows = sorted(
        (float(doc["crack_length"]), float(doc["heating"]) * 0.0)
        for doc in docs
    )
    lines = [f"{length:.3f}\t{heating:.4f}" for length, heating in rows]
    return ("\n".join(lines) + "\n").encode()


def run_analysis(system: System, data_dir: str, plot_path: str,
                 stress_class: str = "high",
                 calc: Optional[Callable] = None,
                 library_path: Optional[str] = None) -> dict:
    """The PA-Python analysis script.

    Reads *all* the XML logs (so the PASS layer sees every file as an
    input), selects only those matching ``stress_class``, runs the
    (wrapped) calculation routine over them, and writes the plot.
    ``library_path``, if given, is read at 'import' time so the PASS
    layer records which library version the run used (the process-
    validation use case)."""
    calc = calc or crack_heating_curve
    stats: dict = {}

    def analysis(sc):
        tracker = ProvenanceTracker(sc)
        parse = tracker.wrap_function(parse_xml, name="parse_xml")
        curve = tracker.wrap_function(calc, name="crack_heating")
        if library_path is not None:
            fd = sc.open(library_path, "r")
            sc.read(fd)
            sc.close(fd)
        used = []
        total = 0
        for name in sc.readdir(data_dir):
            if not name.endswith(".xml"):
                continue
            total += 1
            doc = tracker.read_file(f"{data_dir}/{name}")
            parsed = parse(doc)
            if parsed.value["stress_class"] == stress_class:
                used.append(parsed)
        result = curve(*used)
        tracker.write_file(plot_path, result)
        stats["total"] = total
        stats["used"] = len(used)
        return 0

    program_path = "/pass/bin/analyze.py"
    if not system.kernel.vfs.exists(program_path):
        system.register_program(program_path, analysis)
        system.run(program_path, argv=["python", "analyze.py"])
    else:
        system.run(program_path, argv=["python", "analyze.py"],
                   program=analysis)
    return stats
