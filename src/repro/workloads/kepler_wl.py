"""The PA-Kepler workload: parse, extract, reformat tabular data.

"A PA-Kepler workload, that parses tabular data, extracts values, and
reformats it using a user-specified expression."  When run with the
PASS recording backend on a PA-NFS volume this is the paper's
three-layer configuration (workflow / local PASS / remote storage).
CPU-bound, so overheads stay small (1.4% / 2.5%).
"""

from __future__ import annotations

import random

from repro.apps.kepler import Workflow, run_workflow
from repro.apps.kepler.actors import (
    ColumnExtractor,
    ExpressionEvaluator,
    FileSink,
    FileSource,
    LineParser,
)
from repro.system import System
from repro.workloads.base import Workload

ROWS = 30000
CPU_PER_STAGE = 2.2


class KeplerWorkload(Workload):
    """One tabular-reformat workflow run with PASS recording."""

    name = "PA-Kepler"

    def __init__(self, scale: float = 1.0, seed: int = 42,
                 recording: str = "pass"):
        super().__init__(scale, seed)
        self.recording = recording

    def run(self, system: System, root: str) -> dict:
        rng = random.Random(self.seed)
        nrows = max(20, int(ROWS * self.scale))
        self._make_table(system, root, nrows, rng)
        cpu = CPU_PER_STAGE * max(self.scale, 0.02)
        wf = Workflow("tabular-reformat")
        wf.add(FileSource("read_table", path=f"{root}/table.tsv",
                          cpu_seconds=cpu * 0.1))
        wf.add(LineParser("parse", cpu_seconds=cpu))
        wf.add(ColumnExtractor("extract", column=1, cpu_seconds=cpu * 0.4))
        wf.add(ExpressionEvaluator("reformat", expression="row<%s>",
                                   cpu_seconds=cpu * 0.5))
        wf.add(FileSink("write_out", path=f"{root}/reformatted.txt",
                        cpu_seconds=cpu * 0.1))
        wf.connect("read_table", "out", "parse", "in")
        wf.connect("parse", "out", "extract", "in")
        wf.connect("extract", "out", "reformat", "in")
        wf.connect("reformat", "out", "write_out", "in")
        recording = self.recording if system.provenance else None
        director = run_workflow(system, wf, recording=recording,
                                engine_path=f"{root}/bin/kepler")
        return {"rows": nrows, "firings": director.firings}

    def _make_table(self, system: System, root: str, nrows: int,
                    rng: random.Random) -> None:
        def acquire(sc):
            lines = []
            for index in range(nrows):
                lines.append(f"row{index}\t{rng.randint(0, 10 ** 6)}\tz")
            fd = sc.open(f"{root}/table.tsv", "w")
            sc.write(fd, "\n".join(lines).encode())
            sc.close(fd)
            return 0

        path = f"{root}/bin/acquire"
        if not system.kernel.vfs.exists(path):
            system.register_program(path, acquire)
            system.run(path, argv=["acquire"])
        else:
            system.run(path, argv=["acquire"], program=acquire)
