"""The Blast workload: protein-sequence search (CPU bound).

"The workload formats two input data files with a tool called formatdb,
then processes the two files with Blast, and then massages the output
data with a series of Perl scripts."  Nearly all the time is Blast's
computation, so provenance overhead is in the noise (paper: 0.7%
locally, 1.9% over NFS).
"""

from __future__ import annotations

from repro.system import System
from repro.workloads.base import Workload

INPUT_BYTES = 600 * 1024
FORMATTED_BYTES = 700 * 1024
RAW_OUTPUT_BYTES = 2 * 1024 * 1024
REPORT_BYTES = 64 * 1024
CPU_FORMATDB = 0.8
CPU_BLAST = 60.0
CPU_PERL = 0.4
PERL_STAGES = 3


class BlastWorkload(Workload):
    """formatdb x2 -> blast -> perl x3."""

    name = "Blast"

    def run(self, system: System, root: str) -> dict:
        cpu = max(self.scale, 0.02)
        self._seed_inputs(system, root)
        for which in ("species_a", "species_b"):
            self._formatdb(system, root, which, cpu)
        self._blast(system, root, cpu)
        for stage in range(PERL_STAGES):
            self._perl(system, root, stage, cpu)
        return {"stages": 2 + 1 + PERL_STAGES}

    def _run(self, system: System, path: str, argv, program):
        if not system.kernel.vfs.exists(path):
            system.register_program(path, program)
            system.run(path, argv=argv)
        else:
            system.run(path, argv=argv, program=program)

    def _seed_inputs(self, system: System, root: str) -> None:
        def seed(sc):
            for which in ("species_a", "species_b"):
                fd = sc.open(f"{root}/{which}.fasta", "w")
                sc.write_hole(fd, INPUT_BYTES)
                sc.close(fd)
            return 0

        self._run(system, f"{root}/bin/fetch", ["fetch"], seed)

    def _formatdb(self, system: System, root: str, which: str,
                  cpu: float) -> None:
        def formatdb(sc):
            fd = sc.open(f"{root}/{which}.fasta", "r")
            sc.read(fd)
            sc.close(fd)
            sc.compute(CPU_FORMATDB * cpu)
            fd = sc.open(f"{root}/{which}.pdb", "w")
            sc.write_hole(fd, FORMATTED_BYTES)
            sc.close(fd)
            return 0

        self._run(system, f"{root}/bin/formatdb",
                  ["formatdb", which], formatdb)

    def _blast(self, system: System, root: str, cpu: float) -> None:
        def blast(sc):
            for which in ("species_a", "species_b"):
                fd = sc.open(f"{root}/{which}.pdb", "r")
                sc.read(fd)
                sc.close(fd)
            sc.compute(CPU_BLAST * cpu)
            fd = sc.open(f"{root}/blast.raw", "w")
            sc.write_hole(fd, RAW_OUTPUT_BYTES)
            sc.close(fd)
            return 0

        self._run(system, f"{root}/bin/blastp", ["blastp"], blast)

    def _perl(self, system: System, root: str, stage: int,
              cpu: float) -> None:
        def perl(sc):
            source = (f"{root}/blast.raw" if stage == 0
                      else f"{root}/report{stage - 1}.txt")
            fd = sc.open(source, "r")
            sc.read(fd)
            sc.close(fd)
            sc.compute(CPU_PERL * cpu)
            fd = sc.open(f"{root}/report{stage}.txt", "w")
            sc.write_hole(fd, REPORT_BYTES)
            sc.close(fd)
            return 0

        self._run(system, f"{root}/bin/perl{stage}",
                  ["perl", f"massage{stage}.pl"], perl)
