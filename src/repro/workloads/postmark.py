"""Postmark: the mail-server workload (I/O intensive).

Paper parameters: 1500 transactions over 1500 files of 4 KB - 1 MB in
10 subdirectories.  Transactions are the standard Postmark mix: half
read-or-append, half create-or-delete.  The paper attributes PASSv2's
Postmark overhead to Lasagna's stackable double buffering, and PA-NFS's
larger overhead to the same effect over the wire -- both modelled by the
page-copy cost and cache-halving in :mod:`repro.kernel.cache`.
"""

from __future__ import annotations

import random

from repro.system import System
from repro.workloads.base import Workload

FILES = 1500
TRANSACTIONS = 1500
SUBDIRS = 10
MIN_BYTES = 4 * 1024
MAX_BYTES = 1024 * 1024


class PostmarkWorkload(Workload):
    """Create a pool of files, run the transaction mix, delete the rest."""

    name = "Postmark"

    def run(self, system: System, root: str) -> dict:
        rng = random.Random(self.seed)
        nfiles = max(10, int(FILES * self.scale))
        ntxns = max(10, int(TRANSACTIONS * self.scale))
        base = f"{root}/postmark"
        reads = writes = creates = deletes = 0

        def postmark_program(sc):
            nonlocal reads, writes, creates, deletes
            if not sc.exists(base):
                sc.mkdir(base)
            for sub in range(SUBDIRS):
                sc.mkdir(f"{base}/s{sub}")
            pool: list[tuple[str, int]] = []
            serial = 0

            def new_path():
                nonlocal serial
                serial += 1
                return f"{base}/s{serial % SUBDIRS}/f{serial}"

            # Phase 1: create the initial pool.
            for _ in range(nfiles):
                path = new_path()
                size = rng.randint(MIN_BYTES, MAX_BYTES)
                fd = sc.open(path, "w")
                sc.write_hole(fd, size)
                sc.close(fd)
                pool.append((path, size))
            # Phase 2: transactions.
            for _ in range(ntxns):
                if rng.random() < 0.5:
                    # Read or append an existing file.
                    path, size = pool[rng.randrange(len(pool))]
                    if rng.random() < 0.5:
                        fd = sc.open(path, "r")
                        sc.read(fd, size)
                        sc.close(fd)
                        reads += 1
                    else:
                        fd = sc.open(path, "a")
                        sc.write_hole(fd, rng.randint(MIN_BYTES,
                                                      MIN_BYTES * 4))
                        sc.close(fd)
                        writes += 1
                else:
                    # Create or delete.
                    if rng.random() < 0.5 or len(pool) < 2:
                        path = new_path()
                        size = rng.randint(MIN_BYTES, MAX_BYTES)
                        fd = sc.open(path, "w")
                        sc.write_hole(fd, size)
                        sc.close(fd)
                        pool.append((path, size))
                        creates += 1
                    else:
                        path, _ = pool.pop(rng.randrange(len(pool)))
                        sc.unlink(path)
                        deletes += 1
            # Phase 3: delete everything left.
            for path, _ in pool:
                sc.unlink(path)
            return 0

        path = f"{root}/bin/postmark"
        if not system.kernel.vfs.exists(path):
            system.register_program(path, postmark_program)
            system.run(path, argv=["postmark"])
        else:
            system.run(path, argv=["postmark"], program=postmark_program)
        return {"files": nfiles, "transactions": ntxns, "reads": reads,
                "appends": writes, "creates": creates, "deletes": deletes}
