"""The Mercurial-activity workload: a developer applying patches.

The paper starts from a vanilla kernel tree and applies its own commit
series as patches.  ``patch`` is metadata-heavy: for each patched file
it creates a temporary file, merges the original with the hunk stream
into it, and renames it over the original -- many small journalled
operations interleaved with small writes.  That interleaving is exactly
what provenance log flushes compete with, which is why this workload
shows the paper's largest PASSv2 overhead (23.1%).
"""

from __future__ import annotations

import random

from repro.system import System
from repro.workloads.base import Workload

TREE_FILES = 3200
PATCHES = 120
FILES_PER_PATCH = 3
FILE_BYTES = 192 * 1024
HUNK_BYTES = 2048
CPU_PER_FILE = 0.02


class MercurialWorkload(Workload):
    """Build a tree, then apply a series of patches to it."""

    name = "Mercurial Activity"

    def setup(self, system: System, root: str) -> None:
        """The pre-existing checkout: 'we start with a vanilla Linux
        kernel' -- creating the tree is not part of the measured run."""
        nfiles = max(4, int(TREE_FILES * self.scale))
        self._checkout(system, root, f"{root}/hgtree", nfiles)

    def run(self, system: System, root: str) -> dict:
        rng = random.Random(self.seed)
        nfiles = max(4, int(TREE_FILES * self.scale))
        npatches = max(2, int(PATCHES * self.scale))
        tree = f"{root}/hgtree"
        for patch_no in range(npatches):
            victims = rng.sample(range(nfiles),
                                 min(FILES_PER_PATCH, nfiles))
            self._apply_patch(system, root, tree, patch_no, victims)
        return {"files": nfiles, "patches": npatches}

    def _checkout(self, system: System, root: str, tree: str,
                  nfiles: int) -> None:
        def hg_clone(sc):
            if not sc.exists(tree):
                sc.mkdir(tree)
            for index in range(nfiles):
                fd = sc.open(f"{tree}/f{index}", "w")
                sc.write_hole(fd, FILE_BYTES)
                sc.close(fd)
            return 0

        path = f"{root}/bin/hg"
        if not system.kernel.vfs.exists(path):
            system.register_program(path, hg_clone)
            system.run(path, argv=["hg", "clone"])
        else:
            system.run(path, argv=["hg", "clone"], program=hg_clone)

    def _apply_patch(self, system: System, root: str, tree: str,
                     patch_no: int, victims: list[int]) -> None:
        def patch_program(sc):
            # The patch file itself arrives first.
            patch_path = f"{tree}/.patch{patch_no}"
            fd = sc.open(patch_path, "w")
            sc.write_hole(fd, HUNK_BYTES * len(victims))
            sc.close(fd)
            fd = sc.open(patch_path, "r")
            sc.read(fd)
            sc.close(fd)
            for index in victims:
                original = f"{tree}/f{index}"
                temp = f"{tree}/f{index}.orig.tmp"
                fd = sc.open(original, "r")
                sc.read(fd)
                sc.close(fd)
                sc.compute(CPU_PER_FILE)
                fd = sc.open(temp, "w")
                sc.write_hole(fd, FILE_BYTES + HUNK_BYTES)
                sc.close(fd)
                sc.rename(temp, original)
            sc.unlink(patch_path)
            return 0

        path = f"{root}/bin/patch"
        if not system.kernel.vfs.exists(path):
            system.register_program(path, patch_program)
            system.run(path, argv=["patch", f"-p1 < {patch_no}"])
        else:
            system.run(path, argv=["patch", f"-p1 < {patch_no}"],
                       program=patch_program)
