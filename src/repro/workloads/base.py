"""Workload harness: run one workload under one configuration.

Configurations mirror the paper's two experiment batches:

* :func:`run_local` -- PASSv2 vs vanilla ext3 on one machine;
* :func:`run_nfs`   -- PA-NFS vs NFS (client machine + server machine
  over a simulated LAN).

A result carries the simulated elapsed time, the bytes of file data the
workload left on disk (the Table 3 'Ext3' column), and -- when
provenance was on -- the provenance database and index sizes.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Optional

from repro.kernel.clock import SimClock, Stopwatch
from repro.kernel.params import SimParams
from repro.system import BootConfig, System


@dataclass
class WorkloadResult:
    """Outcome of one workload run under one configuration."""

    workload: str
    config: str                     # 'ext3', 'passv2', 'nfs', 'pa-nfs'
    elapsed: float                  # simulated seconds
    data_bytes: int                 # file bytes on the measured volume
    bytes_written: int = 0          # cumulative data written (Table 3 base)
    provenance_bytes: int = 0       # database size (Table 3 col 2)
    index_bytes: int = 0            # index size (Table 3 col 3 delta)
    stats: dict = field(default_factory=dict)
    breakdown: dict = field(default_factory=dict)
    #: Per-layer observability snapshot of the measured machine
    #: (layer -> counters/gauges/histograms; see docs/OBSERVABILITY.md).
    layer_metrics: dict = field(default_factory=dict)

    @property
    def provenance_total(self) -> int:
        return self.provenance_bytes + self.index_bytes

    def layer_counters(self) -> dict:
        """Compact {layer: {counter: value}} view of ``layer_metrics``."""
        return {layer: dict(section.get("counters", {}))
                for layer, section in self.layer_metrics.items()}


def overhead_pct(base: WorkloadResult, testable: WorkloadResult) -> float:
    """Relative elapsed-time overhead, in percent."""
    if base.elapsed == 0:
        return 0.0
    return 100.0 * (testable.elapsed - base.elapsed) / base.elapsed


class Workload(abc.ABC):
    """One benchmark workload, sized by a scale factor."""

    name = "workload"

    def __init__(self, scale: float = 1.0, seed: int = 42):
        self.scale = scale
        self.seed = seed

    def setup(self, system: System, root: str) -> None:
        """Unmeasured preparation (e.g. Mercurial's existing checkout --
        the paper 'starts with a vanilla Linux kernel tree')."""

    @abc.abstractmethod
    def run(self, system: System, root: str) -> dict:
        """Execute against ``root`` (a PASS or NFS mount); returns stats."""

    def __repr__(self) -> str:
        return f"<{type(self).__name__} scale={self.scale}>"


def run_local(workload: Workload, provenance: bool,
              params: Optional[SimParams] = None,
              shards: int = 1) -> WorkloadResult:
    """One machine: PASSv2 (provenance=True) or vanilla ext3.

    ``shards`` selects the storage-tier topology (intra-volume WAP-log
    shards; 1 = the classic single pipeline)."""
    system = System.boot(config=BootConfig(
        params=params, provenance=provenance,
        pass_volumes=("pass",), plain_volumes=(), shards=shards))
    clock = system.kernel.clock
    volume = system.kernel.volume("pass")
    workload.setup(system, "/pass")
    setup_bytes = volume.data_bytes_written
    with Stopwatch(clock) as watch:
        stats = workload.run(system, "/pass")
    result = WorkloadResult(
        workload=workload.name,
        config="passv2" if provenance else "ext3",
        elapsed=watch.elapsed,
        data_bytes=volume.used_bytes(),
        bytes_written=volume.data_bytes_written - setup_bytes,
        stats=stats or {},
        breakdown=clock.breakdown(),
    )
    if provenance:
        system.sync()
        # Tier rollup: sums every shard database, so a sharded run's
        # Table 3 columns do not undercount.
        sizes = system.tier.sizes("pass")
        result.provenance_bytes = sizes["database"]
        result.index_bytes = sizes["indexes"]
    result.layer_metrics = system.stats()
    return result


def run_nfs(workload: Workload, provenance: bool,
            params: Optional[SimParams] = None) -> WorkloadResult:
    """Client + server over the simulated LAN: PA-NFS or plain NFS."""
    from repro.nfs import NFSClient, NFSServer, Network

    clock = SimClock()
    shared = BootConfig(params=params, provenance=provenance, clock=clock)
    server_sys = System.boot(config=shared, hostname="server",
                             pass_volumes=("export",), plain_volumes=())
    server = NFSServer(server_sys, "export")
    client_sys = System.boot(config=shared, hostname="client",
                             pass_volumes=("local",) if provenance else (),
                             plain_volumes=("scratch",))
    network = Network(clock, client_sys.kernel.params.net,
                      obs=client_sys.obs)
    client = NFSClient(client_sys, server, network, mountpoint="/nfs")
    workload.setup(client_sys, "/nfs")
    setup_bytes = server.volume.data_bytes_written
    with Stopwatch(clock) as watch:
        stats = workload.run(client_sys, "/nfs")
    result = WorkloadResult(
        workload=workload.name,
        config="pa-nfs" if provenance else "nfs",
        elapsed=watch.elapsed,
        data_bytes=server.volume.used_bytes(),
        bytes_written=server.volume.data_bytes_written - setup_bytes,
        stats=stats or {},
        breakdown=clock.breakdown(),
    )
    if provenance:
        client.sync()
        server_sys.sync()
        sizes = server_sys.tier.sizes("export")
        result.provenance_bytes = sizes["database"]
        result.index_bytes = sizes["indexes"]
    result.stats["network_calls"] = network.calls
    result.layer_metrics = client_sys.stats()
    return result
