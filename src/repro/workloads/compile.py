"""The Linux-compile workload: unpack a source tree, then build it.

CPU intensive, with bursts of file creation.  The build spawns one
compiler process per translation unit (each reads the source file plus
a set of headers and writes an object file), then one linker process
that reads every object file and writes the kernel image -- the same
process/file pattern that makes real kernel builds provenance-heavy
(Table 3: the compile has the largest provenance database).
"""

from __future__ import annotations

import random

from repro.system import System
from repro.workloads.base import Workload

#: Full-size knobs (paper builds Linux 2.6.19.1); scale shrinks them.
SOURCE_FILES = 320
SHARED_HEADERS = 24
HEADERS_PER_FILE = 4
SOURCE_BYTES = 9 * 1024
HEADER_BYTES = 3 * 1024
OBJECT_BYTES = 14 * 1024
IMAGE_BYTES = 4 * 1024 * 1024
CPU_PER_FILE = 0.03
CPU_LINK = 2.0


class CompileWorkload(Workload):
    """Unpack + compile + link."""

    name = "Linux Compile"

    def run(self, system: System, root: str) -> dict:
        rng = random.Random(self.seed)
        nfiles = max(4, int(SOURCE_FILES * self.scale))
        nheaders = max(2, int(SHARED_HEADERS * self.scale) or 2)
        self._install_tools(system, root)
        self._unpack(system, root, nfiles, nheaders)
        for index in range(nfiles):
            headers = sorted(rng.sample(range(nheaders),
                                        min(HEADERS_PER_FILE, nheaders)))
            system.run(f"{root}/bin/cc",
                       argv=["cc", f"{root}/src/file{index}.c"],
                       program=self._compiler(root, index, headers))
        system.run(f"{root}/bin/ld", argv=["ld", "vmlinux"],
                   program=self._linker(root, nfiles))
        return {"files": nfiles, "headers": nheaders}

    # -- stages ------------------------------------------------------------------

    def _install_tools(self, system: System, root: str) -> None:
        def placeholder(sc):
            return 0
        for tool in ("cc", "ld", "tar"):
            path = f"{root}/bin/{tool}"
            if not system.kernel.vfs.exists(path):
                system.register_program(path, placeholder, size=262144)

    def _unpack(self, system: System, root: str, nfiles: int,
                nheaders: int) -> None:
        def tar_program(sc):
            for directory in (f"{root}/src", f"{root}/include",
                              f"{root}/obj"):
                if not sc.exists(directory):
                    sc.mkdir(directory)
            for index in range(nheaders):
                fd = sc.open(f"{root}/include/header{index}.h", "w")
                sc.write_hole(fd, HEADER_BYTES)
                sc.close(fd)
            for index in range(nfiles):
                fd = sc.open(f"{root}/src/file{index}.c", "w")
                sc.write_hole(fd, SOURCE_BYTES)
                sc.close(fd)
            return 0

        system.run(f"{root}/bin/tar", argv=["tar", "xf", "linux.tar"],
                   program=tar_program)

    def _compiler(self, root: str, index: int, headers: list[int]):
        def cc_program(sc):
            fd = sc.open(f"{root}/src/file{index}.c", "r")
            sc.read(fd)
            sc.close(fd)
            for header in headers:
                fd = sc.open(f"{root}/include/header{header}.h", "r")
                sc.read(fd)
                sc.close(fd)
            sc.compute(CPU_PER_FILE)
            fd = sc.open(f"{root}/obj/file{index}.o", "w")
            sc.write_hole(fd, OBJECT_BYTES)
            sc.close(fd)
            return 0

        return cc_program

    def _linker(self, root: str, nfiles: int):
        def ld_program(sc):
            for index in range(nfiles):
                fd = sc.open(f"{root}/obj/file{index}.o", "r")
                sc.read(fd)
                sc.close(fd)
            sc.compute(CPU_LINK * max(self.scale, 0.05))
            fd = sc.open(f"{root}/vmlinux", "w")
            sc.write_hole(fd, int(IMAGE_BYTES * max(self.scale, 0.05)))
            sc.close(fd)
            return 0

        return ld_program
