"""The PA-NFS server: an exported PASS volume plus the DPAPI operations.

The server is an ordinary PASSv2 machine (its own kernel, Lasagna,
Waldo, analyzer -- the paper's analyzer-placement argument requires an
analyzer on every server).  Records arriving over the wire are already
*finalized* by the client's analyzer; the server's analyzer deduplicates
them and its distributor routes them into the export volume's log.

Transactions (section 6.1.2): provenance bundles larger than one wire
block travel as OP_BEGINTXN / OP_PASSPROV* / OP_PASSWRITE-with-ENDTXN.
If the client dies mid-transaction, the BEGINTXN record has no matching
ENDTXN and Waldo orphans the whole batch -- the crash-recovery property
the paper chose this design for.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable, Optional

from repro.core.errors import StaleHandle, TransactionError
from repro.core.pnode import ObjectRef
from repro.core.records import Attr, ProvenanceRecord
from repro.kernel.vfs import Inode
from repro.system import System


def _info(inode: Inode) -> dict:
    """Wire representation of one file's attributes."""
    return {
        "ino": inode.ino,
        "kind": inode.kind,
        "size": inode.size,
        "pnode": inode.pnode,
        "version": inode.version,
    }


class NFSServer:
    """One export of one PASS-capable volume."""

    def __init__(self, system: System, export: str = "pass"):
        self.system = system
        self.kernel = system.kernel
        self.volume = self.kernel.volume(export)
        self.op_counts: Counter[str] = Counter()
        self.crashed = False
        #: versions ever applied per pnode -- branch detection.
        self._seen_versions: dict[int, set[int]] = {}
        self._open_txns: set[int] = set()

    # -- plumbing ----------------------------------------------------------------

    def _op(self, name: str) -> None:
        if self.crashed:
            raise StaleHandle(f"server is down ({name})")
        self.op_counts[name] += 1

    def _inode(self, ino: int) -> Inode:
        try:
            return self.volume.inode(ino)
        except Exception as exc:
            raise StaleHandle(f"stale file handle {ino}") from exc

    def _nfsd_stack_tax(self, nbytes: int) -> None:
        """nfsd x stackable interaction: each page of wsize-granular RPC
        data is copied through Lasagna's upper cache (no zero-copy)."""
        if self.volume.lasagna is None or nbytes <= 0:
            return
        pages = -(-nbytes // self.volume.block_size)
        cost = pages * self.kernel.params.net.nfsd_stack_copy
        self.kernel.clock.advance(cost, "nfsd_stack")

    @property
    def _lasagna(self):
        return self.volume.lasagna

    @property
    def _analyzer(self):
        return self.kernel.analyzer

    def crash(self) -> None:
        """Server dies: in-memory state survives only where the design
        says it must (pnodes are just numbers)."""
        self.crashed = True
        if self._lasagna is not None:
            self._lasagna.crash()
        self._open_txns.clear()

    def restart(self) -> None:
        """Server comes back up."""
        self.crashed = False

    # -- namespace operations ----------------------------------------------------------

    def op_root(self) -> dict:
        self._op("ROOT")
        return _info(self.volume.root)

    def op_lookup(self, parent_ino: int, name: str) -> Optional[dict]:
        self._op("LOOKUP")
        parent = self._inode(parent_ino)
        child_ino = parent.entries.get(name) if parent.is_dir else None
        if child_ino is None:
            return None
        return _info(self._inode(child_ino))

    def op_readdir(self, ino: int) -> list[str]:
        self._op("READDIR")
        inode = self._inode(ino)
        return sorted(inode.entries or ())

    def op_create(self, kind: str) -> dict:
        self._op("CREATE")
        return _info(self.volume.create_inode(kind))

    def op_link(self, parent_ino: int, name: str, child_ino: int) -> None:
        self._op("LINK")
        parent = self._inode(parent_ino)
        parent.entries[name] = child_ino

    def op_unlink_entry(self, parent_ino: int, name: str) -> None:
        self._op("UNLINK")
        parent = self._inode(parent_ino)
        parent.entries.pop(name, None)
        self.volume.journal_op()

    def op_remove(self, ino: int) -> None:
        self._op("REMOVE")
        self.volume.drop_inode(self._inode(ino))

    def op_getattr(self, ino: int) -> dict:
        self._op("GETATTR")
        return _info(self._inode(ino))

    def op_truncate(self, ino: int, size: int) -> None:
        self._op("SETATTR")
        inode = self._inode(ino)
        self.volume.fs_top.truncate(inode, size)

    # -- plain data path (baseline NFS) ---------------------------------------------------

    def op_read(self, ino: int, offset: int, length: int) -> bytes:
        self._op("READ")
        inode = self._inode(ino)
        return self.volume.fs_top.read_bytes(inode, offset, length)

    def op_write(self, ino: int, offset: int, data: Optional[bytes],
                 length: Optional[int] = None) -> int:
        self._op("WRITE")
        inode = self._inode(ino)
        return self.volume.fs_top.write_bytes(inode, offset, data, length)

    # -- DPAPI operations --------------------------------------------------------------------

    def op_passread(self, ino: int, offset: int,
                    length: int) -> tuple[bytes, int, int]:
        """Data plus the exact identity of what was read."""
        self._op("PASSREAD")
        inode = self._inode(ino)
        data = self.volume.fs_top.read_bytes(inode, offset, length)
        self._nfsd_stack_tax(len(data))
        return data, inode.pnode, inode.version

    def op_begintxn(self, subject: ObjectRef) -> int:
        """Open a provenance transaction; records its BEGINTXN."""
        self._op("BEGINTXN")
        txn = self._lasagna.log.next_txn_id()
        self._open_txns.add(txn)
        record = ProvenanceRecord(subject, Attr.BEGINTXN, txn)
        self._lasagna.log.append(record)
        return txn

    def op_passprov(self, txn: Optional[int],
                    records: Iterable[ProvenanceRecord]) -> None:
        """One chunk of a transaction's records (<= one wire block)."""
        self._op("PASSPROV")
        if txn is not None and txn not in self._open_txns:
            raise TransactionError(f"unknown transaction {txn}")
        self._apply_records(records)

    def op_endtxn(self, txn: int, subject: ObjectRef) -> None:
        """Commit a provenance-only transaction (pass_sync path)."""
        self._op("ENDTXN")
        if txn not in self._open_txns:
            raise TransactionError(f"unknown transaction {txn}")
        self._open_txns.discard(txn)
        self._lasagna.log.append(
            ProvenanceRecord(subject, Attr.ENDTXN, txn))
        self._lasagna.log.flush(txn_subject=subject)

    def op_passwrite(self, ino: int, offset: int, data: Optional[bytes],
                     length: Optional[int],
                     records: Iterable[ProvenanceRecord] = (),
                     txn: Optional[int] = None) -> int:
        """Data + provenance in one operation; closes ``txn`` if given."""
        self._op("PASSWRITE")
        inode = self._inode(ino)
        self._nfsd_stack_tax(length if data is None else len(data or b""))
        self._apply_records(records)
        if txn is not None:
            if txn not in self._open_txns:
                raise TransactionError(f"unknown transaction {txn}")
            self._open_txns.discard(txn)
            self._lasagna.log.append(
                ProvenanceRecord(inode.ref(), Attr.ENDTXN, txn))
        return self.volume.fs_top.write_bytes(inode, offset, data, length)

    def op_passmkobj(self) -> int:
        """Allocate a pnode.  Deliberately stateless beyond the allocator:
        'the pnode is just a number', so neither end needs crash cleanup."""
        self._op("PASSMKOBJ")
        return self.volume.pnodes.allocate()

    def op_passreviveobj(self, pnode: int, version: int) -> bool:
        """Validate that (pnode, version) could exist on this export."""
        self._op("PASSREVIVEOBJ")
        from repro.core.pnode import local_of, volume_of
        if volume_of(pnode) != self.volume.volume_id:
            return False
        if local_of(pnode) >= self.volume.pnodes.high_water:
            return False
        seen = self._seen_versions.get(pnode)
        newest = max(seen) if seen else 0
        return 0 <= version <= newest

    def op_commit(self) -> None:
        """fsync-ish: force the export's log to disk and rotate it."""
        self._op("COMMIT")
        self._lasagna.sync()

    # -- record application ----------------------------------------------------------------------

    def _apply_records(self, records: Iterable[ProvenanceRecord]) -> None:
        for record in records:
            if record.attr == Attr.FREEZE:
                self._apply_freeze(record)
                continue
            self._analyzer.submit(record)

    def _apply_freeze(self, record: ProvenanceRecord) -> None:
        """Client-side versioning arriving as a record: bump the server's
        version; a version collision is a close-to-open branch."""
        pnode = record.subject.pnode
        version = int(record.value)
        seen = self._seen_versions.setdefault(pnode, set())
        if version in seen:
            branch = ProvenanceRecord(
                ObjectRef(pnode, version), Attr.BRANCH_OF,
                ObjectRef(pnode, version - 1),
            )
            self._analyzer.submit(branch)
        seen.add(version)
        self._analyzer.submit(record)
        inode = self._find_by_pnode(pnode)
        if inode is not None:
            inode.version = max(inode.version, version)

    def _find_by_pnode(self, pnode: int) -> Optional[Inode]:
        for inode in self.volume.live_inodes():
            if inode.pnode == pnode:
                return inode
        return None
