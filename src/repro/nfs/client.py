"""The PA-NFS client: a mounted remote volume with client-side versioning.

The client mounts the server's export as :class:`NFSVolume`, a
volume-like object the local VFS and PASSv2 observer use exactly like a
local PASS volume:

* the namespace is proxied lazily -- directory entries fetch from the
  server on first lookup (:class:`RemoteEntries`), and entry mutations
  (create/rename/unlink) propagate back as LINK/UNLINK operations;
* reads take OP_PASSREAD and return the exact (pnode, version) read;
* writes gather the records the local analyzer/distributor produced
  (buffered in :class:`RemoteLasagna`) and ship them *with* the data --
  one OP_PASSWRITE when everything fits in a wire block, else an
  OP_BEGINTXN / OP_PASSPROV* / OP_PASSWRITE transaction;
* ``pass_freeze`` happens locally: the proxy version bumps immediately
  (no server round trip on the read path) and a FREEZE record rides to
  the server with the next write, keeping freeze/write ordering.
"""

from __future__ import annotations

from typing import Optional

from repro.core.errors import FileNotFound, StalePnodeVersion
from repro.core.dpapi import PassObject
from repro.core.pnode import ObjectRef
from repro.core.records import Attr, Bundle, ProvenanceRecord
from repro.kernel.vfs import Inode
from repro.nfs.network import Network
from repro.nfs.server import NFSServer
from repro.storage import codec
from repro.system import System

#: Approximate per-operation wire header (RPC + compound op framing).
_HEADER_BYTES = 120


class ProxyInode(Inode):
    """Client-side image of one server inode."""

    def __init__(self, volume: "NFSVolume", ino: int, kind: str,
                 pnode: int, server_ino: int, size: int = 0,
                 version: int = 0):
        super().__init__(volume, ino, kind, pnode)
        self.server_ino = server_ino
        self._size = size
        self.version = version
        self.data = None                       # data lives on the server
        if kind == Inode.DIR:
            self.entries = RemoteEntries(volume, self)

    @property
    def size(self) -> int:
        return self._size

    def note_size(self, size: int) -> None:
        self._size = size


class RemoteEntries(dict):
    """Directory entries that fault in from the server on lookup and
    push mutations back out.

    Keys are names, values are *client* inode numbers (what the local
    VFS expects); missing names trigger one LOOKUP RPC and are cached
    negative-free (a None result is not cached, matching NFS's weak
    negative caching)."""

    def __init__(self, volume: "NFSVolume", owner: ProxyInode):
        super().__init__()
        self.volume = volume
        self.owner = owner
        self._complete = False

    # -- lookups -------------------------------------------------------------

    def get(self, name, default=None):
        if dict.__contains__(self, name):
            return dict.__getitem__(self, name)
        info = self.volume.remote_lookup(self.owner, name)
        if info is None:
            return default
        proxy = self.volume.materialize(info)
        dict.__setitem__(self, name, proxy.ino)
        return proxy.ino

    def __getitem__(self, name):
        ino = self.get(name)
        if ino is None:
            raise KeyError(name)
        return ino

    def __contains__(self, name):
        return self.get(name) is not None

    # -- full enumeration (readdir) ----------------------------------------------

    def _load_all(self) -> None:
        if self._complete:
            return
        for name in self.volume.remote_readdir(self.owner):
            self.get(name)
        self._complete = True

    def __iter__(self):
        self._load_all()
        return dict.__iter__(self)

    def keys(self):
        self._load_all()
        return dict.keys(self)

    def __len__(self):
        self._load_all()
        return dict.__len__(self)

    def __bool__(self):
        if dict.__len__(self):
            return True
        self._load_all()
        return dict.__len__(self) > 0

    # -- mutations ----------------------------------------------------------------

    def __setitem__(self, name, ino) -> None:
        dict.__setitem__(self, name, ino)
        self.volume.remote_link(self.owner, name, ino)

    def __delitem__(self, name) -> None:
        dict.__delitem__(self, name)
        self.volume.remote_unlink(self.owner, name)


class RemoteLasagna:
    """Client-side stand-in for Lasagna on an NFS volume.

    The distributor flushes bundles here; records wait until a data
    write (or sync) carries them to the server.  This is where the
    provenance/data coupling of pass_write is preserved over the wire.
    """

    def __init__(self, volume: "NFSVolume"):
        self.volume = volume
        self._buffer: list[ProvenanceRecord] = []

    def append_provenance(self, bundle: Bundle) -> None:
        cost = self.volume.params.cpu.log_encode * len(bundle)
        if cost:
            self.volume.clock.advance(cost, "provenance_cpu")
        self._buffer.extend(bundle)

    def take(self) -> list[ProvenanceRecord]:
        records, self._buffer = self._buffer, []
        return records

    @property
    def buffered(self) -> int:
        return len(self._buffer)

    def crash(self) -> int:
        lost = len(self._buffer)
        self._buffer = []
        return lost

    def sync(self) -> None:
        """pass_sync over the wire: provenance-only transaction."""
        self.volume.send_provenance_only(self.take())


class NFSVolume:
    """Volume-like mount of a remote export (duck-types Volume)."""

    def __init__(self, name: str, client_system: System, server: NFSServer,
                 network: Network):
        self.name = name
        self.system = client_system
        self.kernel = client_system.kernel
        self.clock = self.kernel.clock
        self.params = self.kernel.params
        self.server = server
        self.network = network
        self.volume_id = server.volume.volume_id   # pnode routing
        self.pass_capable = server.volume.pass_capable
        self.block_size = server.volume.block_size
        self.mountpoint: Optional[str] = None
        self.lasagna = RemoteLasagna(self) if self.pass_capable else None
        self.fs_top = self
        self.on_drop_inode = None
        self.pnodes = None

        self._proxies: dict[int, ProxyInode] = {}      # client ino -> proxy
        self._by_server_ino: dict[int, ProxyInode] = {}
        self._next_ino = 2
        self.network.call(_HEADER_BYTES, _HEADER_BYTES)
        self.root = self.materialize(server.op_root())

        # Statistics (benchmarks read these).
        self.data_bytes_written = 0
        self.data_bytes_read = 0
        self.metadata_ops = 0

    # -- proxy management ----------------------------------------------------------

    def materialize(self, info: dict) -> ProxyInode:
        """Get-or-create the proxy for a server inode."""
        proxy = self._by_server_ino.get(info["ino"])
        if proxy is not None:
            proxy.note_size(info["size"])
            proxy.version = max(proxy.version, info["version"])
            return proxy
        proxy = ProxyInode(self, self._next_ino, info["kind"],
                           info["pnode"], info["ino"],
                           size=info["size"], version=info["version"])
        self._proxies[self._next_ino] = proxy
        self._by_server_ino[info["ino"]] = proxy
        self._next_ino += 1
        return proxy

    def inode(self, ino: int) -> ProxyInode:
        return self._proxies[ino]

    def live_inodes(self) -> list[ProxyInode]:
        return list(self._proxies.values())

    # -- namespace RPCs ---------------------------------------------------------------

    def remote_lookup(self, parent: ProxyInode, name: str) -> Optional[dict]:
        self.network.call(_HEADER_BYTES + len(name), _HEADER_BYTES)
        return self.server.op_lookup(parent.server_ino, name)

    def remote_readdir(self, owner: ProxyInode) -> list[str]:
        self.network.call(_HEADER_BYTES, _HEADER_BYTES * 4)
        return self.server.op_readdir(owner.server_ino)

    def remote_link(self, parent: ProxyInode, name: str, ino: int) -> None:
        self.metadata_ops += 1
        child = self.inode(ino)
        self.network.call(_HEADER_BYTES + len(name), _HEADER_BYTES)
        self.server.op_link(parent.server_ino, name, child.server_ino)

    def remote_unlink(self, parent: ProxyInode, name: str) -> None:
        self.metadata_ops += 1
        self.network.call(_HEADER_BYTES + len(name), _HEADER_BYTES)
        self.server.op_unlink_entry(parent.server_ino, name)

    def create_inode(self, kind: str) -> ProxyInode:
        self.metadata_ops += 1
        self.network.call(_HEADER_BYTES, _HEADER_BYTES)
        return self.materialize(self.server.op_create(kind))

    def drop_inode(self, inode: ProxyInode) -> None:
        self.network.call(_HEADER_BYTES, _HEADER_BYTES)
        self.server.op_remove(inode.server_ino)
        self._proxies.pop(inode.ino, None)
        self._by_server_ino.pop(inode.server_ino, None)

    def journal_op(self, nbytes: int = 0) -> None:
        """Client-side metadata op that only exists server-side: a round
        trip stands in for the journalled operation."""
        self.metadata_ops += 1
        self.network.call(_HEADER_BYTES, _HEADER_BYTES)
        self.server.volume.journal_op()

    def truncate(self, inode: ProxyInode, size: int) -> None:
        self.metadata_ops += 1
        self.network.call(_HEADER_BYTES, _HEADER_BYTES)
        self.server.op_truncate(inode.server_ino, size)
        inode.note_size(size)

    def revalidate(self, inode: ProxyInode) -> None:
        """Close-to-open consistency: refresh attributes from the server."""
        self.network.call(_HEADER_BYTES, _HEADER_BYTES)
        info = self.server.op_getattr(inode.server_ino)
        inode.note_size(info["size"])
        inode.version = max(inode.version, info["version"])

    # -- data path --------------------------------------------------------------------------

    def read_bytes(self, inode: ProxyInode, offset: int,
                   length: int) -> bytes:
        length = min(length, max(0, inode.size - offset))
        if length <= 0:
            return b""
        chunks = self.network.chunked_calls(length)
        for index in range(chunks):
            share = length // chunks if index else length - (chunks - 1) * (length // chunks)
            self.network.call(_HEADER_BYTES, _HEADER_BYTES + share)
        if self.pass_capable and self.kernel.provenance_on:
            data, pnode, version = self.server.op_passread(
                inode.server_ino, offset, length)
            inode.version = max(inode.version, version)
        else:
            data = self.server.op_read(inode.server_ino, offset, length)
        self.data_bytes_read += len(data)
        return data

    def write_bytes(self, inode: ProxyInode, offset: int,
                    data: Optional[bytes],
                    length: Optional[int] = None) -> int:
        nbytes = len(data) if data is not None else (length or 0)
        records = (self.lasagna.take()
                   if self.lasagna is not None and self.kernel.provenance_on
                   else [])
        if records:
            written = self._pass_write(inode, offset, data, nbytes, records)
        else:
            self._charge_data(nbytes)
            written = self.server.op_write(inode.server_ino, offset,
                                           data, length)
        inode.note_size(max(inode.size, offset + nbytes))
        self.data_bytes_written += nbytes
        return written

    def _pass_write(self, inode: ProxyInode, offset: int,
                    data: Optional[bytes], nbytes: int,
                    records: list[ProvenanceRecord]) -> int:
        prov_bytes = sum(codec.encoded_size(r) for r in records)
        max_block = self.network.params.max_block
        if prov_bytes + nbytes <= max_block:
            # Everything fits in one wire block: one OP_PASSWRITE.
            self.network.call(_HEADER_BYTES + nbytes + prov_bytes,
                              _HEADER_BYTES)
            return self.server.op_passwrite(
                inode.server_ino, offset, data, nbytes if data is None
                else None, records, txn=None)
        if prov_bytes <= max_block:
            # The *data* is what overflows: it is chunked anyway (like
            # plain NFS WRITEs); the records piggyback on the first
            # chunk, no transaction needed.
            self._charge_data(nbytes, extra_first=prov_bytes)
            return self.server.op_passwrite(
                inode.server_ino, offset, data,
                nbytes if data is None else None, records, txn=None)
        # The provenance alone exceeds a wire block: wrap it in a
        # provenance transaction (OP_BEGINTXN / OP_PASSPROV*).
        self.network.call(_HEADER_BYTES, _HEADER_BYTES)
        txn = self.server.op_begintxn(inode.ref())
        for chunk, chunk_bytes in _chunk_records(records, max_block):
            self.network.call(_HEADER_BYTES + chunk_bytes, _HEADER_BYTES)
            self.server.op_passprov(txn, chunk)
        self._charge_data(nbytes)
        return self.server.op_passwrite(
            inode.server_ino, offset, data,
            nbytes if data is None else None, [], txn=txn)

    def _charge_data(self, nbytes: int, extra_first: int = 0) -> None:
        chunks = self.network.chunked_calls(nbytes)
        base = nbytes // chunks if chunks else 0
        for index in range(chunks):
            share = base if index else nbytes - (chunks - 1) * base
            extra = extra_first if index == 0 else 0
            self.network.call(_HEADER_BYTES + share + extra, _HEADER_BYTES)

    def send_provenance_only(self, records: list[ProvenanceRecord]) -> None:
        """Commit records with no accompanying data (pass_sync)."""
        if not records:
            return
        subject = records[0].subject
        self.network.call(_HEADER_BYTES, _HEADER_BYTES)
        txn = self.server.op_begintxn(subject)
        for chunk, chunk_bytes in _chunk_records(
                records, self.network.params.max_block):
            self.network.call(_HEADER_BYTES + chunk_bytes, _HEADER_BYTES)
            self.server.op_passprov(txn, chunk)
        self.network.call(_HEADER_BYTES, _HEADER_BYTES)
        self.server.op_endtxn(txn, subject)

    # -- space accounting --------------------------------------------------------------------

    def used_bytes(self) -> int:
        return self.server.volume.used_bytes()

    def __repr__(self) -> str:
        return f"<NFSVolume {self.name} -> {self.server.volume.name}>"


def _chunk_records(records: list[ProvenanceRecord],
                   max_block: int):
    """Split records into <= max_block byte chunks (never empty)."""
    chunk: list[ProvenanceRecord] = []
    size = 0
    for record in records:
        rbytes = codec.encoded_size(record)
        if chunk and size + rbytes > max_block:
            yield chunk, size
            chunk, size = [], 0
        chunk.append(record)
        size += rbytes
    if chunk:
        yield chunk, size


class NFSClient:
    """Mounts one export into a client machine and wires provenance."""

    def __init__(self, client_system: System, server: NFSServer,
                 network: Optional[Network] = None,
                 mountpoint: str = "/nfs", name: Optional[str] = None):
        self.system = client_system
        self.server = server
        self.network = network or Network(client_system.kernel.clock,
                                          client_system.kernel.params.net)
        self.volume = NFSVolume(
            name or f"nfs-{server.volume.name}", client_system, server,
            self.network,
        )
        client_system.kernel.mount_volume(self.volume, mountpoint)
        self.mountpoint = mountpoint
        if client_system.kernel.analyzer is not None:
            self._chain_freeze_hook(client_system.kernel.analyzer)
        self._revived: dict[int, PassObject] = {}

    # -- freeze records (client-side versioning) --------------------------------------------

    def _chain_freeze_hook(self, analyzer) -> None:
        previous = analyzer.on_freeze

        def on_freeze(subject, version: int) -> None:
            if (isinstance(subject, ProxyInode)
                    and subject.volume is self.volume):
                self.volume.lasagna.append_provenance(Bundle([
                    ProvenanceRecord(ObjectRef(subject.pnode, version),
                                     Attr.FREEZE, version),
                ]))
            if previous is not None:
                previous(subject, version)

        analyzer.on_freeze = on_freeze

    # -- remote DPAPI objects -------------------------------------------------------------------

    def remote_mkobj(self) -> PassObject:
        """pass_mkobj with the pnode allocated at the server
        (OP_PASSMKOBJ): the object's provenance routes to the export."""
        self.network.call(_HEADER_BYTES, _HEADER_BYTES)
        pnode = self.server.op_passmkobj()
        obj = PassObject(pnode, volume_hint=self.volume.name)
        kernel = self.system.kernel
        if kernel.observer is not None:
            kernel.observer.adopt_passobj(obj)
        elif kernel.analyzer is not None:
            kernel.analyzer.register(obj)
        self._revived[pnode] = obj
        return obj

    def remote_reviveobj(self, pnode: int, version: int) -> PassObject:
        """pass_reviveobj over the wire; validates at the server."""
        self.network.call(_HEADER_BYTES, _HEADER_BYTES)
        if not self.server.op_passreviveobj(pnode, version):
            raise StalePnodeVersion(
                f"server rejected pnode {pnode} version {version}"
            )
        obj = self._revived.get(pnode)
        if obj is None:
            obj = PassObject(pnode, volume_hint=self.volume.name)
            self._revived[pnode] = obj
            kernel = self.system.kernel
            if kernel.analyzer is not None:
                kernel.analyzer.register(obj)
        obj.version = max(obj.version, version)
        return obj

    # -- lifecycle ----------------------------------------------------------------------------------

    def revalidate(self, path: str) -> None:
        """Refresh one path's attributes (close-to-open at open time)."""
        inode = self.system.kernel.vfs.resolve(path)
        if not isinstance(inode, ProxyInode):
            raise FileNotFound(f"{path} is not on an NFS mount")
        self.volume.revalidate(inode)

    def sync(self) -> None:
        """Push buffered provenance to the server and commit its log."""
        if self.volume.lasagna is not None:
            self.volume.lasagna.sync()
        self.network.call(_HEADER_BYTES, _HEADER_BYTES)
        self.server.op_commit()

    def crash(self) -> int:
        """Client dies: buffered provenance is lost (the server's
        transaction framing orphans anything half-sent)."""
        if self.volume.lasagna is not None:
            return self.volume.lasagna.crash()
        return 0
