"""Simulated LAN between NFS clients and servers.

Every remote procedure call charges the shared clock one round trip
plus wire time for the payload in both directions.  A partition flag
lets tests fail calls (dead server / dead client)."""

from __future__ import annotations

from repro.core.errors import NetworkPartition
from repro.kernel.clock import SimClock
from repro.kernel.params import NetParams
from repro.obs import NULL_OBS


class Network:
    """One LAN segment with uniform RTT and bandwidth."""

    def __init__(self, clock: SimClock, params: NetParams | None = None,
                 obs=NULL_OBS, faults=None):
        self.clock = clock
        self.params = params or NetParams()
        self.partitioned = False
        #: Fault injector (repro.faults); None keeps call() bare.
        self._faults = faults
        #: Remaining calls that fail inside an injected partition window.
        self._partition_window = 0
        # Statistics.
        self.calls = 0
        self.bytes_sent = 0
        self.bytes_received = 0
        self.failed_calls = 0
        # RPC round-trips, harvested at snapshot time.
        obs.add_collector("nfs", self._obs_counters)

    def _obs_counters(self) -> dict:
        return {
            "rpc_calls": self.calls,
            "bytes_sent": self.bytes_sent,
            "bytes_received": self.bytes_received,
            "failed_calls": self.failed_calls,
        }

    def call(self, request_bytes: int = 0, response_bytes: int = 0) -> None:
        """Charge one RPC: RTT + payload wire time both ways."""
        if self.partitioned:
            self.failed_calls += 1
            raise NetworkPartition("network is partitioned")
        if self._faults is not None:
            self._apply_fault(request_bytes, response_bytes)
        self.calls += 1
        self.bytes_sent += request_bytes
        self.bytes_received += response_bytes
        wire = (request_bytes + response_bytes) / self.params.bandwidth
        self.clock.advance(self.params.rtt + wire, "network")

    def _apply_fault(self, request_bytes: int, response_bytes: int) -> None:
        """Consult the injector for this RPC; may fail the call."""
        if self._partition_window > 0:
            self._partition_window -= 1
            self.failed_calls += 1
            raise NetworkPartition(
                "injected partition window "
                f"({self._partition_window} more calls will fail)")
        action = self._faults.fire("net.call",
                                   request_bytes=request_bytes,
                                   response_bytes=response_bytes)
        if action is None:
            return
        if action.kind == "drop":
            # This call is lost on the wire; the next one goes through.
            self.failed_calls += 1
            raise NetworkPartition(
                f"injected RPC drop at net.call hit {action.hit}")
        if action.kind == "delay":
            # Congestion: extra latency, then the call proceeds.
            self.clock.advance(action.param, "network")
        elif action.kind == "duplicate":
            # At-least-once retransmission: the wire is charged twice.
            self.calls += 1
            self.bytes_sent += request_bytes
            self.bytes_received += response_bytes
            wire = (request_bytes + response_bytes) / self.params.bandwidth
            self.clock.advance(self.params.rtt + wire, "network")
        elif action.kind == "partition":
            # This call and the next param calls fail, then the wire
            # heals on its own.
            self._partition_window = max(0, int(action.param))
            self.failed_calls += 1
            raise NetworkPartition(
                f"injected partition at net.call hit {action.hit} "
                f"(window {int(action.param)})")

    def chunked_calls(self, payload_bytes: int) -> int:
        """How many <= max_block operations a payload needs (>= 1)."""
        return max(1, -(-payload_bytes // self.params.max_block))

    def partition(self) -> None:
        """Cut the wire (fault injection)."""
        self.partitioned = True

    def heal(self) -> None:
        """Restore the wire."""
        self.partitioned = False
