"""Provenance-aware NFS (paper section 6.1).

A client machine mounts a PASS volume exported by a server machine.
Both ends run full PASSv2 pipelines (the paper's analyzer-placement
argument: only the client sees all of a process's records, only the
server sees all of a file's records), and the NFSv4-style protocol is
extended with the DPAPI operations::

    OP_PASSREAD      read returning data + (pnode, version)
    OP_PASSWRITE     write carrying data + provenance records
    OP_BEGINTXN      open a provenance transaction (> 64 KB bundles)
    OP_PASSPROV      ship one <= 64 KB chunk of records in a transaction
    OP_PASSMKOBJ     allocate a pnode at the server
    OP_PASSREVIVEOBJ validate a (pnode, version) and reattach

Versioning is client-side: ``pass_freeze`` bumps the local version and
attaches a FREEZE *record* (not operation -- freeze is order-sensitive
with respect to writes, and records preserve order where operations may
not); the server applies freezes when they arrive.  Close-to-open
consistency means two clients can branch a version; the server detects
the collision and notes a BRANCH_OF record.
"""

from repro.nfs.client import NFSClient
from repro.nfs.network import Network
from repro.nfs.server import NFSServer

__all__ = ["NFSClient", "NFSServer", "Network"]
