"""Command-line interface to the PASSv2 reproduction.

Everything is an in-memory simulation, so the CLI builds a scenario,
then lets you query or render it::

    python -m repro.cli demo --scenario challenge \
        --query 'select A from Provenance.file as Atlas \
                 Atlas.input* as A where Atlas.name like "%atlas-x.gif"'
    python -m repro.cli demo --scenario malware --tree /pass/codec.bin
    python -m repro.cli demo --scenario quickstart --dot out.dot
    python -m repro.cli bench --scale 0.2
    python -m repro.cli inspect
"""

from __future__ import annotations

import argparse
import sys

from repro.core.records import Attr
from repro.pql.oem import OEMNode
from repro.query.helpers import newest_ref_by_name
from repro.query.report import ancestry_tree, to_dot
from repro.system import System


def build_quickstart(tracing: bool = False, journal: bool = False) -> System:
    """A small pipeline: two files, one transforming process."""
    system = System.boot(tracing=tracing, journal=journal)
    with system.process(argv=["ingest"]) as proc:
        fd = proc.open("/pass/raw.dat", "w")
        proc.write(fd, b"1,2,3\n")
        proc.close(fd)
    with system.process(argv=["transform"]) as proc:
        fd = proc.open("/pass/raw.dat", "r")
        data = proc.read(fd)
        proc.close(fd)
        out = proc.open("/pass/result.dat", "w")
        proc.write(out, data.upper())
        proc.close(out)
    system.sync()
    return system


def build_challenge(tracing: bool = False, journal: bool = False) -> System:
    """The First Provenance Challenge workflow under PA-Kepler."""
    from repro.apps.kepler.challenge import (
        build_challenge as build_wf,
        ensure_dirs,
        generate_inputs,
    )
    from repro.apps.kepler.director import run_workflow

    system = System.boot(tracing=tracing, journal=journal)
    ensure_dirs(system, "/pass/inputs", "/pass/work", "/pass/out")
    generate_inputs(system, "/pass/inputs")
    workflow = build_wf("/pass/inputs", "/pass/work", "/pass/out")
    run_workflow(system, workflow, recording="pass")
    system.sync()
    return system


def build_malware(tracing: bool = False, journal: bool = False) -> System:
    """The section 3.2 malware scenario."""
    from repro.apps.links import Browser, Web

    system = System.boot(tracing=tracing, journal=journal)
    web = Web()
    web.publish("http://portal/", links=["http://codecs/"])
    web.publish("http://codecs/", links=["http://codecs/get"])
    web.publish("http://codecs/get", content=b"MALWARE")

    def alice(sc):
        browser = Browser(sc, web)
        session = browser.new_session()
        browser.visit(session, "http://portal/")
        browser.follow_link(session, 0)
        browser.download(session, "http://codecs/get", "/pass/codec.bin")
        return 0

    def infected(sc):
        fd = sc.open("/pass/codec.bin", "r")
        payload = sc.read(fd)
        sc.close(fd)
        out = sc.open("/pass/victim.doc", "w")
        sc.write(out, payload)
        sc.close(out)
        return 0

    system.register_program("/pass/bin/links", alice)
    system.run("/pass/bin/links")
    system.register_program("/pass/bin/codec", infected)
    system.run("/pass/bin/codec")
    system.sync()
    return system


SCENARIOS = {
    "quickstart": build_quickstart,
    "challenge": build_challenge,
    "malware": build_malware,
}


def _render_row(row) -> str:
    if isinstance(row, OEMNode):
        label = row.name or f"pnode {row.ref.pnode}"
        return f"{row.ref}  {label}  [{row.type or '?'}]"
    if isinstance(row, tuple):
        return "  |  ".join(_render_row(cell) for cell in row)
    return repr(row)


def cmd_demo(args: argparse.Namespace) -> int:
    system = SCENARIOS[args.scenario]()
    print(f"scenario {args.scenario!r}: "
          f"{sum(len(db) for db in system.databases())} provenance "
          f"records, simulated t={system.elapsed():.3f}s", file=sys.stderr)
    if args.query:
        for row in system.query(args.query):
            print(_render_row(row))
    if args.tree:
        ref = newest_ref_by_name(system.databases(), args.tree)
        print(ancestry_tree(system.databases(), ref))
    if args.dot:
        roots = [ref for name in _interesting_outputs(system)
                 for ref in [newest_ref_by_name(system.databases(), name)]]
        text = to_dot(system.databases(), roots)
        if args.dot == "-":
            print(text)
        else:
            with open(args.dot, "w", encoding="utf-8") as handle:
                handle.write(text)
            print(f"wrote {args.dot}", file=sys.stderr)
    if args.save:
        from repro.storage.database import ProvenanceDatabase
        merged = ProvenanceDatabase("export")
        for db in system.databases():
            merged.insert_many(db.all_records())
        nbytes = merged.save(args.save)
        print(f"saved {len(merged)} records ({nbytes} bytes) to "
              f"{args.save}", file=sys.stderr)
    if not (args.query or args.tree or args.dot or args.save):
        print("nothing asked; try --query / --tree / --dot / --save "
              "(see --help)", file=sys.stderr)
    return 0


def cmd_query(args: argparse.Namespace) -> int:
    """Run PQL against a previously saved database export."""
    import json

    from repro.pql.engine import QueryEngine
    from repro.storage.database import ProvenanceDatabase

    database = ProvenanceDatabase.load(args.db)
    engine = QueryEngine.live([database])
    if args.explain:
        report = engine.explain(args.query)
        if args.json:
            print(json.dumps(report, indent=2, sort_keys=True,
                             default=str))
        else:
            print(f"query: {report['query']}")
            print(f"rows: {report['rows']}")
            for binding in report["bindings"]:
                line = (f"  {binding['variable']}: {binding['access']}"
                        f" (est={binding['est_rows']}"
                        f" actual={binding['actual_rows']})")
                detail = binding.get("detail")
                if detail:
                    rendered = ", ".join(f"{key}={value}" for key, value
                                         in sorted(detail.items()))
                    line += f" [{rendered}]"
                steps = binding.get("steps")
                if steps:
                    rendered = ", ".join(f"{key}x{value}" for key, value
                                         in sorted(steps.items()))
                    line += f" via {rendered}"
                print(line)
        return 0
    for row in engine.execute(args.query):
        print(_render_row(row))
    return 0


def _interesting_outputs(system: System) -> list[str]:
    names = []
    for db in system.databases():
        for record in db.all_records():
            if record.attr == Attr.NAME and isinstance(record.value, str) \
                    and record.value.startswith("/"):
                names.append(record.value)
    return names[-3:] if names else []


def cmd_fsck(args: argparse.Namespace) -> int:
    """Integrity-check a saved database export; exits nonzero on
    violations so it composes with `lint` in CI."""
    import json

    from repro.storage.database import ProvenanceDatabase
    from repro.storage.fsck import fsck

    database = ProvenanceDatabase.load(args.db)
    report = fsck([database])
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(report)
        for finding in report.findings:
            print(f"  {finding}")
    return 0 if report.clean else 1


def cmd_lint(args: argparse.Namespace) -> int:
    """Static analysis: PQL queries and source-tree layer discipline."""
    import os

    from repro.lint import (
        LintReport,
        all_rules,
        analyze_tree,
        build_program,
        check_query_text,
        graph_payload,
        render_graph_dot,
        render_json,
        render_text,
    )

    if args.rules:
        for registered in all_rules():
            print(f"{registered.code}  {registered.severity:7s} "
                  f"{registered.title}")
        return 0

    if args.graph:
        targets = [t for t in args.targets
                   if os.path.isdir(t) or t.endswith(".py")]
        if not targets:
            print("lint: --graph needs a directory (or .py) target",
                  file=sys.stderr)
            return 2
        for target in targets:
            if not os.path.exists(target):
                print(f"lint: no such file or directory: {target!r}",
                      file=sys.stderr)
                return 2
            program = build_program(target)
            # The flow pass populates the call/attr edges the import
            # scan alone cannot see.
            from repro.lint.flowcheck import check_program
            check_program(program)
            if args.graph == "json":
                import json as _json
                print(_json.dumps(graph_payload(program), indent=2,
                                  sort_keys=True))
            else:
                print(render_graph_dot(program), end="")
        return 0

    report = LintReport()
    if args.query:
        report.extend(check_query_text(args.query))
        report.targets_checked += 1
    for target in args.targets:
        if not os.path.exists(target):
            print(f"lint: no such file or directory: {target!r}",
                  file=sys.stderr)
            return 2
        if target.endswith(".pql"):
            with open(target, "r", encoding="utf-8") as handle:
                report.extend(check_query_text(handle.read(),
                                               source=target))
        elif os.path.isdir(target) or target.endswith(".py"):
            report.extend(analyze_tree(target))
        else:
            print(f"lint: skipping {target!r} (not a directory, .py, or "
                  ".pql file)", file=sys.stderr)
            continue
        report.targets_checked += 1
    if not report.targets_checked:
        print("lint: nothing to check; pass paths and/or --query",
              file=sys.stderr)
        return 2
    print(render_json(report) if args.json else render_text(report))
    if args.strict and report.warnings:
        return 1
    return 0 if report.ok else 1


#: Canned query run by `stats`/`trace` so the PQL layer has activity
#: to report even when the user supplies no query of their own.
STATS_QUERY = "select F from Provenance.file as F"


def _layer_lines(layers: dict) -> list[str]:
    """Text rendering of a System.stats() snapshot."""
    lines = []
    for layer in sorted(layers):
        section = layers[layer]
        lines.append(f"== {layer} ==")
        for name, value in sorted(section.get("counters", {}).items()):
            lines.append(f"  {name:32s}{value:>12}")
        for name, value in sorted(section.get("gauges", {}).items()):
            lines.append(f"  {name:32s}{value:>12}")
        for name, summ in sorted(section.get("histograms", {}).items()):
            lines.append(
                f"  {name:32s}count={summ['count']} "
                f"mean={summ['mean']:.6g} p50={summ['p50']:.6g} "
                f"p99={summ['p99']:.6g}")
    return lines


def _write_or_print(text: str, out: str | None) -> None:
    """Send exporter output to ``--out FILE`` or stdout."""
    if out and out != "-":
        with open(out, "w", encoding="utf-8") as handle:
            handle.write(text)
        print(f"wrote {out}", file=sys.stderr)
    else:
        print(text, end="" if text.endswith("\n") else "\n")


def cmd_stats(args: argparse.Namespace) -> int:
    """Build a scenario, exercise a query, dump per-layer metrics."""
    import json

    from repro.obs.export import prometheus_text
    from repro.obs.rollup import rollup

    system = SCENARIOS[args.scenario](tracing=args.trace)
    system.query(args.query or STATS_QUERY)
    fmt = "json" if args.json else args.format
    snapshot = system.stats()
    if args.rollup:
        rolled = rollup(snapshot, by=tuple(args.rollup.split(",")))
        if fmt == "json":
            print(json.dumps(rolled, indent=2, sort_keys=True))
        elif fmt == "prom":
            print(prometheus_text(
                {key: section for key, section in rolled.items()}),
                end="")
        else:
            print("\n".join(_layer_lines(rolled)))
        return 0
    if fmt == "prom":
        _write_or_print(prometheus_text(snapshot), args.out)
        return 0
    payload = {
        "scenario": args.scenario,
        "simulated_elapsed_s": system.elapsed(),
        "layers": snapshot,
    }
    if args.trace:
        payload["spans_collected"] = len(system.trace())
    if fmt == "json":
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(f"scenario {args.scenario!r}: simulated "
              f"t={system.elapsed():.3f}s", file=sys.stderr)
        print("\n".join(_layer_lines(payload["layers"])))
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    """Build a scenario with tracing on and dump the collected spans."""
    import json

    from repro.obs.export import chrome_trace_json

    system = SCENARIOS[args.scenario](tracing=True)
    system.query(args.query or STATS_QUERY)
    document = system.trace_export()
    spans = document["spans"]
    dropped = document["dropped_spans"]
    if args.limit:
        spans = spans[-args.limit:]
    fmt = "json" if args.json else args.format
    if fmt == "chrome":
        _write_or_print(chrome_trace_json(spans, clock=args.clock),
                        args.out)
        return 0
    if fmt == "json":
        print(json.dumps({"spans": spans, "dropped_spans": dropped},
                         indent=2, sort_keys=True))
        return 0
    print(f"{len(spans)} spans (oldest first), {dropped} dropped:",
          file=sys.stderr)
    for span in spans:
        indent = "  " * span["depth"]
        tags = "".join(f" {k}={v}" for k, v in sorted(span["tags"].items()))
        print(f"{indent}{span['name']} [{span['layer'] or '-'}] "
              f"sim={span['sim_elapsed'] * 1e3:.3f}ms "
              f"wall={span['wall_elapsed'] * 1e3:.3f}ms{tags}")
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    """Span-tree profile: self-time table or collapsed stacks for
    flamegraph renderers."""
    from repro.obs.export import collapsed_stacks, profile_table

    system = SCENARIOS[args.scenario](tracing=True)
    system.query(args.query or STATS_QUERY)
    document = system.trace_export()
    spans = document["spans"]
    if document["dropped_spans"]:
        print(f"warning: {document['dropped_spans']} spans dropped from "
              f"the ring; the profile undercounts", file=sys.stderr)
    if args.format == "collapsed":
        _write_or_print(collapsed_stacks(spans, clock=args.clock),
                        args.out)
        return 0
    print(f"scenario {args.scenario!r}: {len(spans)} spans, "
          f"{args.clock} clock", file=sys.stderr)
    _write_or_print(profile_table(spans, clock=args.clock, top=args.top),
                    args.out)
    return 0


def cmd_journal(args: argparse.Namespace) -> int:
    """Build a scenario with the journal on and dump its events."""
    import json

    system = SCENARIOS[args.scenario](tracing=True, journal=True)
    if args.slow_ms is not None:
        system.obs.journal.slow_query_threshold_s = args.slow_ms / 1e3
    system.query(args.query or STATS_QUERY)
    events = system.journal_events(args.kind)
    if args.limit:
        events = events[-args.limit:]
    if args.jsonl:
        for event in events:
            print(json.dumps(event, sort_keys=True, default=str))
        return 0
    stats = system.obs.journal.stats()
    print(f"{len(events)} events ({stats['events_dropped']} dropped, "
          f"{stats['events_sampled_out']} sampled out):", file=sys.stderr)
    for event in events:
        extras = {key: value for key, value in event.items()
                  if key not in ("seq", "kind", "layer", "volume", "sim_t",
                                 "wall_t", "trace_id", "span_id")}
        rendered = "".join(f" {k}={v}" for k, v in sorted(extras.items()))
        where = f"@{event['volume']}" if event["volume"] else ""
        correlation = (f" span={event['trace_id']}/{event['span_id']}"
                       if event["trace_id"] is not None else "")
        print(f"#{event['seq']:<5d} {event['kind']} "
              f"[{event['layer'] or '-'}{where}]"
              f"{correlation}{rendered}")
    return 0


def cmd_health(args: argparse.Namespace) -> int:
    """SLO health verdict: build a scenario, probe queries, check the
    telemetry against the policy; exits nonzero on breach."""
    import json
    import os

    from repro.obs.health import SLOPolicy, evaluate_health

    slos = SLOPolicy(
        max_dropped_spans=args.max_dropped_spans,
        max_query_p50_s=args.max_p50,
        max_query_p99_s=args.max_p99,
        min_ingest_speedup=args.min_ingest_speedup,
        min_pql_speedup=args.min_pql_speedup,
    )
    system = SCENARIOS[args.scenario](tracing=True, journal=True)
    for _ in range(max(1, args.query_repeats)):
        system.query(args.query or STATS_QUERY)

    def load(path):
        if not path or not os.path.exists(path):
            return None
        with open(path, "r", encoding="utf-8") as handle:
            return json.load(handle)

    verdict = evaluate_health(
        system.stats(),
        dropped_spans=system.obs.tracer.dropped_spans,
        journal_stats=system.obs.journal.stats(),
        bench=load(args.bench),
        crashtest=load(args.crashtest),
        slos=slos,
    )
    if args.json:
        print(json.dumps(verdict.to_dict(), indent=2, sort_keys=True))
    else:
        print(verdict.render_text())
    return 0 if verdict.ok else 1


BENCH_SCHEMA = "repro-bench/1"

#: Registered benchmark suites for ``bench --suite``: suite name ->
#: (entry point in benchmarks/, full-scale kwargs, --quick kwargs).
#: An entry point is a module name (its ``run(**kwargs) -> payload``)
#: or ``module:function`` for modules exposing several suites; payloads
#: are merged into the suite document by
#: ``benchmarks._bench_io.merge_results``.
BENCH_SUITES = {
    "ingest": ("bench_ingest",
               {}, {"rounds": 2, "files": 24, "repeats": 1}),
    "ingest_sharded": ("bench_ingest:run_sharded",
                       {}, {"rounds": 2, "files": 24}),
    "incremental_query": ("bench_incremental_query",
                          {}, {"rounds": 3, "files": 30}),
    "obs_overhead": ("bench_obs_overhead",
                     {}, {"rounds": 2, "files": 40}),
    "pql_perf": ("bench_pql_perf",
                 {}, {"files": 2000, "lookups": 30, "closures": 10}),
}


def _benchmarks_dir() -> str:
    """The repo-root ``benchmarks/`` directory (suite registry home)."""
    import os

    root = os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.abspath(__file__))))
    return os.path.join(root, "benchmarks")


def _run_bench_suites(args: argparse.Namespace) -> int:
    """Run registered benchmark suites and merge their payloads."""
    import importlib
    import os
    import sys as _sys

    names = sorted(BENCH_SUITES) if "all" in args.suite else args.suite
    unknown = [name for name in names if name not in BENCH_SUITES]
    if unknown:
        print(f"bench: unknown suite(s) {', '.join(unknown)!s} "
              f"(have: {', '.join(sorted(BENCH_SUITES))}, all)",
              file=sys.stderr)
        return 2
    bench_dir = _benchmarks_dir()
    if not os.path.isdir(bench_dir):
        print(f"bench: benchmarks directory not found at {bench_dir!r}",
              file=sys.stderr)
        return 2
    if bench_dir not in _sys.path:
        _sys.path.insert(0, bench_dir)
    merge_results = importlib.import_module("_bench_io").merge_results
    for name in names:
        entry, full, quick = BENCH_SUITES[name]
        module_name, _, func_name = entry.partition(":")
        kwargs = quick if args.quick else full
        # Targets come from the static BENCH_SUITES registry above --
        # never repro-internal modules, never user input.
        module = importlib.import_module(module_name)  # lint: disable=PL305
        payload = getattr(module, func_name or "run")(**kwargs)
        if "speedup" in payload:
            print(f"{name}: {payload['records_total']} records, "
                  f"{payload['speedup']:.1f}x speedup")
        else:
            print(f"{name}: {payload['records_total']} records, "
                  f"{payload['overhead_pct']:+.2f}% enabled overhead")
        if args.out != "-":
            merge_results(args.out, name, payload)
    if args.out != "-":
        print(f"merged {len(names)} suite(s) into {args.out}",
              file=sys.stderr)
    return 0


def _compare_bench_files(args: argparse.Namespace,
                         baseline: dict | None) -> int:
    """Gate the freshly written --out document against a baseline
    loaded *before* the suites ran (--out may BE the baseline path)."""
    import json

    from repro.obs.health import compare_bench, render_compare

    if baseline is None:
        print(f"bench: no baseline at {args.compare!r}; this run's "
              f"results become the baseline", file=sys.stderr)
        return 0
    with open(args.out, "r", encoding="utf-8") as handle:
        current = json.load(handle)
    report = compare_bench(baseline, current, tolerance=args.tolerance)
    if args.json:
        print(json.dumps(report, indent=2, sort_keys=True))
    else:
        print(render_compare(report))
    return 0 if report["ok"] else 1


def _load_json(path: str) -> dict | None:
    import json
    import os

    if not path or not os.path.exists(path):
        return None
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


def cmd_bench(args: argparse.Namespace) -> int:
    import json

    from repro.workloads import ALL_WORKLOADS
    from repro.workloads.base import overhead_pct, run_local

    if args.against:
        # Pure file-vs-file comparison: no suites run, no writes.
        from repro.obs.health import compare_bench, render_compare

        baseline = _load_json(args.against)
        current = _load_json(args.out)
        if baseline is None or current is None:
            missing = args.against if baseline is None else args.out
            print(f"bench: cannot compare; missing {missing!r}",
                  file=sys.stderr)
            return 2
        report = compare_bench(baseline, current,
                               tolerance=args.tolerance)
        if args.json:
            print(json.dumps(report, indent=2, sort_keys=True))
        else:
            print(render_compare(report))
        return 0 if report["ok"] else 1

    if args.suite:
        # Snapshot the baseline before the suites overwrite --out.
        baseline = _load_json(args.compare) if args.compare else None
        code = _run_bench_suites(args)
        if code or not args.compare:
            return code
        if args.out == "-":
            print("bench: --compare needs --out to point at a results "
                  "file", file=sys.stderr)
            return 2
        return _compare_bench_files(args, baseline)

    workloads = {}
    print(f"{'Benchmark':22s}{'Ext3':>10s}{'PASSv2':>10s}{'Overhead':>10s}")
    for workload_cls in ALL_WORKLOADS:
        workload = workload_cls(scale=args.scale)
        base = run_local(workload, provenance=False)
        passv2 = run_local(workload, provenance=True, shards=args.shards)
        print(f"{workload.name:22s}{base.elapsed:>9.1f}s"
              f"{passv2.elapsed:>9.1f}s"
              f"{overhead_pct(base, passv2):>9.1f}%")
        workloads[workload.name] = {
            "ext3_elapsed_s": base.elapsed,
            "passv2_elapsed_s": passv2.elapsed,
            "overhead_pct": overhead_pct(base, passv2),
            "provenance_bytes": passv2.provenance_bytes,
            "index_bytes": passv2.index_bytes,
            "layers": passv2.layer_counters(),
        }
    if args.out != "-":
        payload = {"schema": BENCH_SCHEMA, "scale": args.scale,
                   "workloads": workloads}
        with open(args.out, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.out}", file=sys.stderr)
    return 0


def cmd_crashtest(args: argparse.Namespace) -> int:
    """Enumerate every reachable crash point, replay + recover each,
    and verify the WAP invariant (see docs/TESTING.md)."""
    from repro.crashlab import WORKLOADS, explore

    names = args.workload or sorted(WORKLOADS)
    for name in names:
        if name not in WORKLOADS:
            print(f"crashtest: unknown workload {name!r} "
                  f"(have: {', '.join(sorted(WORKLOADS))})", file=sys.stderr)
            return 2
    config = None
    if args.shards != 1:
        import dataclasses

        from repro.crashlab.workloads import BOOT

        config = dataclasses.replace(BOOT, shards=args.shards)
    report = explore(names, seed=args.seed, config=config)
    if args.json:
        print(report.render_json())
    else:
        print(f"crashtest: {report.crash_points} crash points across "
              f"{', '.join(names)} (seed {report.seed})")
        for name in names:
            hits = report.site_hits.get(name, {})
            print(f"  {name}: {sum(hits.values())} reachable hits over "
                  f"{len(hits)} sites")
        print(f"  wap violations:   {report.wap_violation_count}")
        print(f"  non-idempotent:   {report.non_idempotent}")
        print(f"  fsck dirty:       {report.fsck_dirty}")
        print(f"  unfired points:   {report.unfired}")
        for point in report.points:
            if not point.ok:
                print(f"  FAIL {point.workload} {point.site}#{point.hit} "
                      f"[{point.action}] wap={len(point.wap_violations)} "
                      f"idempotent={point.idempotent} "
                      f"fsck={point.fsck_findings}")
    return 0 if report.ok else 1


def cmd_inspect(args: argparse.Namespace) -> int:
    system = build_quickstart()
    kernel = system.kernel
    tier = system.tier
    lasagna = tier.lasagna("pass")
    print("PASSv2 components after the quickstart scenario:")
    print(f"  interceptor   events={dict(kernel.interceptor.counts)}")
    print(f"  analyzer      in={kernel.analyzer.records_in} "
          f"out={kernel.analyzer.records_out} "
          f"dups={kernel.analyzer.duplicates_dropped} "
          f"freezes={kernel.analyzer.freezes}")
    print(f"  distributor   cached={kernel.distributor.records_cached} "
          f"flushed={kernel.distributor.records_flushed}")
    for log in lasagna.shard_logs:
        print(f"  lasagna       [{log.volume_name}] flushes={log.flushes} "
              f"log-bytes={log.bytes_logged}")
    for waldo in tier.waldos("pass"):
        print(f"  waldo         [{waldo.name}] "
              f"records={len(waldo.database)} sizes={waldo.sizes()}")
    sizes = tier.sizes()
    print(f"  tier          {len(tier.volumes())} volume(s) x "
          f"{tier.shards_per_volume} shard(s) total={sizes['total']}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.cli",
        description="PASSv2 reproduction: scenarios, queries, benchmarks",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="build a scenario and query it")
    demo.add_argument("--scenario", choices=sorted(SCENARIOS),
                      default="quickstart")
    demo.add_argument("--query", help="PQL query to run")
    demo.add_argument("--tree", metavar="NAME",
                      help="print the ancestry tree of a named object")
    demo.add_argument("--dot", metavar="FILE",
                      help="write a Graphviz rendering ('-' for stdout)")
    demo.add_argument("--save", metavar="FILE",
                      help="export the merged provenance database")
    demo.set_defaults(func=cmd_demo)

    query = sub.add_parser("query",
                           help="run PQL against a saved database export")
    query.add_argument("--db", required=True,
                       help="database export from 'demo --save'")
    query.add_argument("query", help="PQL query text")
    query.add_argument("--explain", action="store_true",
                       help="print the planner's per-binding access "
                            "choices (index / scan / view, estimated "
                            "vs actual rows) instead of result rows")
    query.add_argument("--json", action="store_true",
                       help="with --explain: machine-readable plan")
    query.set_defaults(func=cmd_query)

    fsck_cmd = sub.add_parser("fsck",
                              help="integrity-check a saved export")
    fsck_cmd.add_argument("--db", required=True)
    fsck_cmd.add_argument("--json", action="store_true",
                          help="machine-readable report for CI")
    fsck_cmd.set_defaults(func=cmd_fsck)

    lint = sub.add_parser(
        "lint", help="static analysis: PQL queries and layer discipline")
    lint.add_argument("targets", nargs="*", metavar="PATH",
                      help="directories / .py files (layer discipline) "
                           "or .pql files (query checks)")
    lint.add_argument("--query", metavar="TEXT",
                      help="PQL query text to check statically")
    lint.add_argument("--json", action="store_true",
                      help="machine-readable report for CI")
    lint.add_argument("--strict", action="store_true",
                      help="exit nonzero on warnings too")
    lint.add_argument("--rules", action="store_true",
                      help="list every registered PL### rule and exit")
    lint.add_argument("--graph", choices=("dot", "json"),
                      help="export the layer call graph instead of "
                           "diagnostics")
    lint.set_defaults(func=cmd_lint)

    bench = sub.add_parser(
        "bench", help="quick Table 2 (left) run, or registered suites")
    bench.add_argument("--scale", type=float, default=0.2)
    bench.add_argument("--suite", action="append", metavar="NAME",
                       default=[],
                       help="run a registered benchmark suite instead "
                            "(repeatable; 'all' runs every one) and "
                            "merge its payload into --out")
    bench.add_argument("--quick", action="store_true",
                       help="suite mode: small-scale smoke run")
    bench.add_argument("--out", metavar="FILE", default="BENCH_results.json",
                       help="where to write the JSON results "
                            "('-' to skip; default %(default)s)")
    bench.add_argument("--compare", metavar="BASELINE",
                       help="suite mode: after running, gate the fresh "
                            "results against this baseline document "
                            "(may be the same file as --out)")
    bench.add_argument("--against", metavar="BASELINE",
                       help="run no suites; just compare --out against "
                            "this baseline document")
    bench.add_argument("--tolerance", type=float, default=0.25,
                       help="allowed relative drop in gated ratios "
                            "(default %(default)s)")
    bench.add_argument("--json", action="store_true",
                       help="machine-readable comparison report")
    bench.add_argument("--shards", type=int, default=1, metavar="N",
                       help="storage-tier shards per PASS volume for "
                            "the workload table (default %(default)s)")
    bench.set_defaults(func=cmd_bench)

    stats = sub.add_parser(
        "stats", help="build a scenario and dump per-layer metrics")
    stats.add_argument("--scenario", choices=sorted(SCENARIOS),
                       default="quickstart")
    stats.add_argument("--query", metavar="TEXT",
                       help="PQL query to exercise (default: canned)")
    stats.add_argument("--trace", action="store_true",
                       help="also collect spans (reported as a count)")
    stats.add_argument("--format", choices=("text", "json", "prom"),
                       default="text",
                       help="output format (prom = Prometheus text "
                            "exposition; default %(default)s)")
    stats.add_argument("--json", action="store_true",
                       help="alias for --format json")
    stats.add_argument("--rollup", metavar="DIMS",
                       help="aggregate across dimensions: 'layer', "
                            "'volume', or 'layer,volume'")
    stats.add_argument("--out", metavar="FILE",
                       help="write the exposition to FILE instead of "
                            "stdout (prom format only)")
    stats.set_defaults(func=cmd_stats)

    trace = sub.add_parser(
        "trace", help="build a scenario with tracing on and dump spans")
    trace.add_argument("--scenario", choices=sorted(SCENARIOS),
                       default="quickstart")
    trace.add_argument("--query", metavar="TEXT",
                       help="PQL query to exercise (default: canned)")
    trace.add_argument("--limit", type=int, metavar="N",
                       help="only the newest N spans")
    trace.add_argument("--format", choices=("text", "json", "chrome"),
                       default="text",
                       help="output format (chrome = trace-event JSON "
                            "loadable in Perfetto; default %(default)s)")
    trace.add_argument("--json", action="store_true",
                       help="alias for --format json")
    trace.add_argument("--clock", choices=("wall", "sim"), default="wall",
                       help="timestamp source for chrome output "
                            "(default %(default)s)")
    trace.add_argument("--out", metavar="FILE",
                       help="write chrome output to FILE instead of "
                            "stdout")
    trace.set_defaults(func=cmd_trace)

    profile = sub.add_parser(
        "profile", help="span-tree self-time profile / collapsed stacks")
    profile.add_argument("--scenario", choices=sorted(SCENARIOS),
                         default="quickstart")
    profile.add_argument("--query", metavar="TEXT",
                         help="PQL query to exercise (default: canned)")
    profile.add_argument("--format", choices=("table", "collapsed"),
                         default="table",
                         help="table = top frames by self time; "
                              "collapsed = Brendan Gregg folded stacks "
                              "for flamegraph renderers "
                              "(default %(default)s)")
    profile.add_argument("--clock", choices=("wall", "sim"),
                         default="wall",
                         help="time base (default %(default)s)")
    profile.add_argument("--top", type=int, default=20, metavar="N",
                         help="table rows (default %(default)s)")
    profile.add_argument("--out", metavar="FILE",
                         help="write output to FILE instead of stdout")
    profile.set_defaults(func=cmd_profile)

    journal = sub.add_parser(
        "journal", help="build a scenario with the event journal on "
                        "and dump its events")
    journal.add_argument("--scenario", choices=sorted(SCENARIOS),
                         default="quickstart")
    journal.add_argument("--query", metavar="TEXT",
                         help="PQL query to exercise (default: canned)")
    journal.add_argument("--kind", metavar="KIND",
                         help="only events of this kind "
                              "(e.g. log.group_commit)")
    journal.add_argument("--limit", type=int, metavar="N",
                         help="only the newest N events")
    journal.add_argument("--slow-ms", type=float, metavar="MS",
                         help="slow-query threshold override in "
                              "milliseconds (0 records every query)")
    journal.add_argument("--jsonl", action="store_true",
                         help="one JSON object per line (the journal's "
                              "native dump format)")
    journal.set_defaults(func=cmd_journal)

    health = sub.add_parser(
        "health", help="SLO health verdict; exits nonzero on breach")
    health.add_argument("--scenario", choices=sorted(SCENARIOS),
                        default="quickstart")
    health.add_argument("--query", metavar="TEXT",
                        help="PQL probe query (default: canned)")
    health.add_argument("--query-repeats", type=int, default=5,
                        metavar="N",
                        help="probe-query executions feeding the "
                             "latency percentiles (default %(default)s)")
    health.add_argument("--max-p50", type=float, default=0.5,
                        metavar="S", help="query p50 SLO in seconds "
                        "(default %(default)s)")
    health.add_argument("--max-p99", type=float, default=2.0,
                        metavar="S", help="query p99 SLO in seconds "
                        "(default %(default)s)")
    health.add_argument("--max-dropped-spans", type=int, default=0,
                        metavar="N",
                        help="span ring drops allowed "
                             "(default %(default)s)")
    health.add_argument("--min-ingest-speedup", type=float, default=2.0,
                        metavar="X",
                        help="batched-ingest speedup floor, checked "
                             "against --bench (default %(default)s)")
    health.add_argument("--min-pql-speedup", type=float, default=5.0,
                        metavar="X",
                        help="query-planner speedup floor (pql_perf "
                             "suite), checked against --bench "
                             "(default %(default)s)")
    health.add_argument("--bench", metavar="FILE",
                        help="BENCH_results.json to fold into the "
                             "verdict")
    health.add_argument("--crashtest", metavar="FILE",
                        help="'repro crashtest --json' report to fold "
                             "into the verdict")
    health.add_argument("--json", action="store_true",
                        help="machine-readable verdict for CI")
    health.set_defaults(func=cmd_health)

    crashtest = sub.add_parser(
        "crashtest",
        help="explore every crash point and verify the WAP invariant")
    crashtest.add_argument("--workload", action="append", metavar="NAME",
                           help="workload(s) to explore (default: all)")
    crashtest.add_argument("--seed", type=int, default=0,
                           help="fault-plan seed (default %(default)s)")
    crashtest.add_argument("--json", action="store_true",
                           help="machine-readable report for CI")
    crashtest.add_argument("--shards", type=int, default=1, metavar="N",
                           help="storage-tier shards per PASS volume "
                                "(default %(default)s)")
    crashtest.set_defaults(func=cmd_crashtest)

    inspect = sub.add_parser("inspect",
                             help="show per-component statistics")
    inspect.set_defaults(func=cmd_inspect)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
