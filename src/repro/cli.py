"""Command-line interface to the PASSv2 reproduction.

Everything is an in-memory simulation, so the CLI builds a scenario,
then lets you query or render it::

    python -m repro.cli demo --scenario challenge \
        --query 'select A from Provenance.file as Atlas \
                 Atlas.input* as A where Atlas.name like "%atlas-x.gif"'
    python -m repro.cli demo --scenario malware --tree /pass/codec.bin
    python -m repro.cli demo --scenario quickstart --dot out.dot
    python -m repro.cli bench --scale 0.2
    python -m repro.cli inspect
"""

from __future__ import annotations

import argparse
import sys

from repro.core.records import Attr
from repro.pql.oem import OEMNode
from repro.query.helpers import newest_ref_by_name
from repro.query.report import ancestry_tree, to_dot
from repro.system import System


def build_quickstart() -> System:
    """A small pipeline: two files, one transforming process."""
    system = System.boot()
    with system.process(argv=["ingest"]) as proc:
        fd = proc.open("/pass/raw.dat", "w")
        proc.write(fd, b"1,2,3\n")
        proc.close(fd)
    with system.process(argv=["transform"]) as proc:
        fd = proc.open("/pass/raw.dat", "r")
        data = proc.read(fd)
        proc.close(fd)
        out = proc.open("/pass/result.dat", "w")
        proc.write(out, data.upper())
        proc.close(out)
    system.sync()
    return system


def build_challenge() -> System:
    """The First Provenance Challenge workflow under PA-Kepler."""
    from repro.apps.kepler.challenge import (
        build_challenge as build_wf,
        ensure_dirs,
        generate_inputs,
    )
    from repro.apps.kepler.director import run_workflow

    system = System.boot()
    ensure_dirs(system, "/pass/inputs", "/pass/work", "/pass/out")
    generate_inputs(system, "/pass/inputs")
    workflow = build_wf("/pass/inputs", "/pass/work", "/pass/out")
    run_workflow(system, workflow, recording="pass")
    system.sync()
    return system


def build_malware() -> System:
    """The section 3.2 malware scenario."""
    from repro.apps.links import Browser, Web

    system = System.boot()
    web = Web()
    web.publish("http://portal/", links=["http://codecs/"])
    web.publish("http://codecs/", links=["http://codecs/get"])
    web.publish("http://codecs/get", content=b"MALWARE")

    def alice(sc):
        browser = Browser(sc, web)
        session = browser.new_session()
        browser.visit(session, "http://portal/")
        browser.follow_link(session, 0)
        browser.download(session, "http://codecs/get", "/pass/codec.bin")
        return 0

    def infected(sc):
        fd = sc.open("/pass/codec.bin", "r")
        payload = sc.read(fd)
        sc.close(fd)
        out = sc.open("/pass/victim.doc", "w")
        sc.write(out, payload)
        sc.close(out)
        return 0

    system.register_program("/pass/bin/links", alice)
    system.run("/pass/bin/links")
    system.register_program("/pass/bin/codec", infected)
    system.run("/pass/bin/codec")
    system.sync()
    return system


SCENARIOS = {
    "quickstart": build_quickstart,
    "challenge": build_challenge,
    "malware": build_malware,
}


def _render_row(row) -> str:
    if isinstance(row, OEMNode):
        label = row.name or f"pnode {row.ref.pnode}"
        return f"{row.ref}  {label}  [{row.type or '?'}]"
    if isinstance(row, tuple):
        return "  |  ".join(_render_row(cell) for cell in row)
    return repr(row)


def cmd_demo(args: argparse.Namespace) -> int:
    system = SCENARIOS[args.scenario]()
    print(f"scenario {args.scenario!r}: "
          f"{sum(len(db) for db in system.databases())} provenance "
          f"records, simulated t={system.elapsed():.3f}s", file=sys.stderr)
    if args.query:
        for row in system.query(args.query):
            print(_render_row(row))
    if args.tree:
        ref = newest_ref_by_name(system.databases(), args.tree)
        print(ancestry_tree(system.databases(), ref))
    if args.dot:
        roots = [ref for name in _interesting_outputs(system)
                 for ref in [newest_ref_by_name(system.databases(), name)]]
        text = to_dot(system.databases(), roots)
        if args.dot == "-":
            print(text)
        else:
            with open(args.dot, "w", encoding="utf-8") as handle:
                handle.write(text)
            print(f"wrote {args.dot}", file=sys.stderr)
    if args.save:
        from repro.storage.database import ProvenanceDatabase
        merged = ProvenanceDatabase("export")
        for db in system.databases():
            merged.insert_many(db.all_records())
        nbytes = merged.save(args.save)
        print(f"saved {len(merged)} records ({nbytes} bytes) to "
              f"{args.save}", file=sys.stderr)
    if not (args.query or args.tree or args.dot or args.save):
        print("nothing asked; try --query / --tree / --dot / --save "
              "(see --help)", file=sys.stderr)
    return 0


def cmd_query(args: argparse.Namespace) -> int:
    """Run PQL against a previously saved database export."""
    from repro.pql.engine import QueryEngine
    from repro.storage.database import ProvenanceDatabase

    database = ProvenanceDatabase.load(args.db)
    engine = QueryEngine.from_databases([database])
    for row in engine.execute(args.query):
        print(_render_row(row))
    return 0


def _interesting_outputs(system: System) -> list[str]:
    names = []
    for db in system.databases():
        for record in db.all_records():
            if record.attr == Attr.NAME and isinstance(record.value, str) \
                    and record.value.startswith("/"):
                names.append(record.value)
    return names[-3:] if names else []


def cmd_fsck(args: argparse.Namespace) -> int:
    """Integrity-check a saved database export; exits nonzero on
    violations so it composes with `lint` in CI."""
    import json

    from repro.storage.database import ProvenanceDatabase
    from repro.storage.fsck import fsck

    database = ProvenanceDatabase.load(args.db)
    report = fsck([database])
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    else:
        print(report)
        for finding in report.findings:
            print(f"  {finding}")
    return 0 if report.clean else 1


def cmd_lint(args: argparse.Namespace) -> int:
    """Static analysis: PQL queries and source-tree layer discipline."""
    import os

    from repro.lint import (
        LintReport,
        all_rules,
        check_query_text,
        check_tree,
        render_json,
        render_text,
    )

    if args.rules:
        for registered in all_rules():
            print(f"{registered.code}  {registered.severity:7s} "
                  f"{registered.title}")
        return 0

    report = LintReport()
    if args.query:
        report.extend(check_query_text(args.query))
        report.targets_checked += 1
    for target in args.targets:
        if not os.path.exists(target):
            print(f"lint: no such file or directory: {target!r}",
                  file=sys.stderr)
            return 2
        if target.endswith(".pql"):
            with open(target, "r", encoding="utf-8") as handle:
                report.extend(check_query_text(handle.read(),
                                               source=target))
        elif os.path.isdir(target) or target.endswith(".py"):
            report.extend(check_tree(target))
        else:
            print(f"lint: skipping {target!r} (not a directory, .py, or "
                  ".pql file)", file=sys.stderr)
            continue
        report.targets_checked += 1
    if not report.targets_checked:
        print("lint: nothing to check; pass paths and/or --query",
              file=sys.stderr)
        return 2
    print(render_json(report) if args.json else render_text(report))
    if args.strict and report.warnings:
        return 1
    return 0 if report.ok else 1


def cmd_bench(args: argparse.Namespace) -> int:
    from repro.workloads import ALL_WORKLOADS
    from repro.workloads.base import overhead_pct, run_local

    print(f"{'Benchmark':22s}{'Ext3':>10s}{'PASSv2':>10s}{'Overhead':>10s}")
    for workload_cls in ALL_WORKLOADS:
        workload = workload_cls(scale=args.scale)
        base = run_local(workload, provenance=False)
        passv2 = run_local(workload, provenance=True)
        print(f"{workload.name:22s}{base.elapsed:>9.1f}s"
              f"{passv2.elapsed:>9.1f}s"
              f"{overhead_pct(base, passv2):>9.1f}%")
    return 0


def cmd_inspect(args: argparse.Namespace) -> int:
    system = build_quickstart()
    kernel = system.kernel
    lasagna = kernel.volume("pass").lasagna
    waldo = system.waldos["pass"]
    print("PASSv2 components after the quickstart scenario:")
    print(f"  interceptor   events={dict(kernel.interceptor.counts)}")
    print(f"  analyzer      in={kernel.analyzer.records_in} "
          f"out={kernel.analyzer.records_out} "
          f"dups={kernel.analyzer.duplicates_dropped} "
          f"freezes={kernel.analyzer.freezes}")
    print(f"  distributor   cached={kernel.distributor.records_cached} "
          f"flushed={kernel.distributor.records_flushed}")
    print(f"  lasagna       flushes={lasagna.log.flushes} "
          f"log-bytes={lasagna.log.bytes_logged}")
    print(f"  waldo         records={len(waldo.database)} "
          f"sizes={waldo.sizes()}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.cli",
        description="PASSv2 reproduction: scenarios, queries, benchmarks",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="build a scenario and query it")
    demo.add_argument("--scenario", choices=sorted(SCENARIOS),
                      default="quickstart")
    demo.add_argument("--query", help="PQL query to run")
    demo.add_argument("--tree", metavar="NAME",
                      help="print the ancestry tree of a named object")
    demo.add_argument("--dot", metavar="FILE",
                      help="write a Graphviz rendering ('-' for stdout)")
    demo.add_argument("--save", metavar="FILE",
                      help="export the merged provenance database")
    demo.set_defaults(func=cmd_demo)

    query = sub.add_parser("query",
                           help="run PQL against a saved database export")
    query.add_argument("--db", required=True,
                       help="database export from 'demo --save'")
    query.add_argument("query", help="PQL query text")
    query.set_defaults(func=cmd_query)

    fsck_cmd = sub.add_parser("fsck",
                              help="integrity-check a saved export")
    fsck_cmd.add_argument("--db", required=True)
    fsck_cmd.add_argument("--json", action="store_true",
                          help="machine-readable report for CI")
    fsck_cmd.set_defaults(func=cmd_fsck)

    lint = sub.add_parser(
        "lint", help="static analysis: PQL queries and layer discipline")
    lint.add_argument("targets", nargs="*", metavar="PATH",
                      help="directories / .py files (layer discipline) "
                           "or .pql files (query checks)")
    lint.add_argument("--query", metavar="TEXT",
                      help="PQL query text to check statically")
    lint.add_argument("--json", action="store_true",
                      help="machine-readable report for CI")
    lint.add_argument("--strict", action="store_true",
                      help="exit nonzero on warnings too")
    lint.add_argument("--rules", action="store_true",
                      help="list every registered PL### rule and exit")
    lint.set_defaults(func=cmd_lint)

    bench = sub.add_parser("bench", help="quick Table 2 (left) run")
    bench.add_argument("--scale", type=float, default=0.2)
    bench.set_defaults(func=cmd_bench)

    inspect = sub.add_parser("inspect",
                             help="show per-component statistics")
    inspect.set_defaults(func=cmd_inspect)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
