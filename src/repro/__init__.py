"""PASSv2 reproduction: layered provenance collection, storage, and query.

This package reproduces the system described in "Layering in Provenance
Systems" (Muniswamy-Reddy et al., USENIX ATC 2009).  It contains:

* ``repro.core`` -- the PASSv2 provenance pipeline (DPAPI, observer,
  analyzer, distributor) and the provenance record model.
* ``repro.kernel`` -- a deterministic simulated operating system (virtual
  clock, disk cost model, VFS, processes, system calls) standing in for the
  paper's modified Linux kernel.
* ``repro.storage`` -- Lasagna (the provenance-aware file system with a
  write-ahead-provenance log), Waldo (the log-draining daemon), and the
  indexed provenance database.
* ``repro.pql`` -- the Path Query Language: lexer, parser, and evaluator
  over an OEM-style object graph.
* ``repro.nfs`` -- provenance-aware NFS (client, server, transactions).
* ``repro.apps`` -- provenance-aware applications: a Kepler-style workflow
  engine, a links-style web browser, and the PA-Python runtime wrapper.
* ``repro.workloads`` -- the five evaluation workloads from the paper.
* ``repro.system`` -- one-call assembly of a provenance-aware machine.

Quickstart::

    from repro.system import System

    sys_ = System.boot()
    with sys_.process() as proc:
        fd = proc.open("/pass/hello.txt", "w")
        proc.write(fd, b"hello world\\n")
        proc.close(fd)
    sys_.sync()
    print(sys_.query("select F.name from Provenance.file as F"))
"""

from repro.core.pnode import ObjectRef
from repro.core.records import Attr, ProvenanceRecord
from repro.system import System

__version__ = "2.0.0"

__all__ = ["Attr", "ObjectRef", "ProvenanceRecord", "System", "__version__"]
