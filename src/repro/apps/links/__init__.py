"""PA-links: a provenance-aware text web browser (paper section 6.3).

A browser in the style of links 0.98 over a simulated Web
(:mod:`repro.apps.links.web`).  Provenance is grouped by *session* --
"it represents a logical task performed by a user": each session is a
``pass_mkobj`` object, page visits add VISITED_URL records, and every
download generates three records: INPUT (file <- session), FILE_URL
(where the bytes came from), and CURRENT_URL (the page being viewed
when the download started).  The file write itself is a ``pass_write``
carrying data and records together.

Session revival (the feature Firefox motivated, section 6.5): a session
saved to disk can be restored in a later browser run via
``pass_reviveobj`` and keeps accumulating provenance.
"""

from repro.apps.links.browser import Browser
from repro.apps.links.web import Page, Web

__all__ = ["Browser", "Page", "Web"]
