"""The provenance-aware browser.

A browser instance runs inside one simulated process (pass its Syscalls
facade in).  Sessions are the unit of provenance grouping:

* ``new_session()``    -- pass_mkobj + a TYPE=SESSION record;
* ``visit(url)``       -- follows redirects; one VISITED_URL record per
  URL traversed, in order (the "sequence of web pages a user visited");
* ``download(url, path)`` -- replaces the browser's plain write with a
  ``pass_write`` carrying the data plus three records: INPUT
  (file <- session), FILE_URL (the file's own URL), CURRENT_URL (the
  page being viewed when the download started);
* ``save_session(path)`` / ``restore_session(path)`` -- persists the
  session's (pnode, version) and revives it with ``pass_reviveobj``,
  the Firefox-inspired DPAPI extension (section 6.5).
"""

from __future__ import annotations

import json
from typing import Optional

from repro.apps.links.web import Page, Web
from repro.core.errors import BrowserError
from repro.core.records import Attr, ObjType


class Session:
    """One logical browsing task."""

    def __init__(self, fd: int, session_id: int):
        self.fd = fd                      # pass_mkobj descriptor
        self.session_id = session_id
        self.history: list[str] = []      # URLs visited, in order
        self.current_url: Optional[str] = None
        self.downloads: list[tuple[str, str]] = []   # (url, path)


class Browser:
    """links-with-provenance, bound to one process and one Web."""

    def __init__(self, sc, web: Web, cache_dir: Optional[str] = None):
        self.sc = sc
        self.web = web
        self._provenance_on = self._detect_dpapi()
        self._sessions: list[Session] = []
        self._next_session = 1
        #: "Any browser can record the URL and name of a downloaded file
        #: and, when the site is revisited, can verify if the file has
        #: changed.  In fact, this is how most browser caches function."
        self._cache_dir = cache_dir
        self._cache_index: dict[str, tuple[str, bytes]] = {}
        self.cache_hits = 0
        self.cache_validations = 0
        if cache_dir is not None and not sc.exists(cache_dir):
            sc.mkdir(cache_dir)

    def _detect_dpapi(self) -> bool:
        return self.sc.dpapi.available()

    @property
    def dpapi(self):
        return self.sc.dpapi

    # -- sessions ------------------------------------------------------------------

    def new_session(self) -> Session:
        """Open a session; creates its provenance object."""
        fd = -1
        if self._provenance_on:
            fd = self.dpapi.pass_mkobj()
            self.dpapi.pass_write(fd, records=[
                self.dpapi.record(fd, Attr.TYPE, ObjType.SESSION),
                self.dpapi.record(fd, Attr.NAME,
                                  f"session-{self._next_session}"),
            ])
        session = Session(fd, self._next_session)
        self._next_session += 1
        self._sessions.append(session)
        return session

    def save_session(self, session: Session, path: str) -> None:
        """Persist the session so a later browser run can restore it."""
        state = {
            "history": session.history,
            "current_url": session.current_url,
            "downloads": session.downloads,
        }
        if self._provenance_on:
            ref = self.dpapi.ref_of(session.fd)
            state["pnode"] = ref.pnode
            state["version"] = ref.version
            # The session object must survive even with no descendants.
            self.dpapi.pass_sync(session.fd)
        fd = self.sc.open(path, "w")
        self.sc.write(fd, json.dumps(state).encode())
        self.sc.close(fd)

    def restore_session(self, path: str) -> Session:
        """Revive a saved session (pass_reviveobj) and keep recording."""
        fd = self.sc.open(path, "r")
        state = json.loads(self.sc.read(fd).decode())
        self.sc.close(fd)
        obj_fd = -1
        if self._provenance_on:
            if "pnode" not in state:
                raise BrowserError(f"{path}: no provenance in saved session")
            obj_fd = self.dpapi.pass_reviveobj(state["pnode"],
                                               state["version"])
        session = Session(obj_fd, self._next_session)
        self._next_session += 1
        session.history = list(state.get("history", ()))
        session.current_url = state.get("current_url")
        session.downloads = [tuple(item) for item in
                             state.get("downloads", ())]
        self._sessions.append(session)
        return session

    # -- browsing -----------------------------------------------------------------------

    def visit(self, session: Session, url: str) -> Page:
        """Navigate, following redirects; records every URL traversed."""
        page, chain = self.web.fetch(url)
        self.sc.compute(0.0001 * len(chain))
        for hop in chain:
            session.history.append(hop)
            self._record_visit(session, hop)
        session.current_url = chain[-1]
        self._cache_page(session, page)
        return page

    # -- the cache -------------------------------------------------------------------

    def _cache_page(self, session: Session, page: Page) -> None:
        """Revalidate-or-store: on revisit, verify the cached copy."""
        if self._cache_dir is None:
            return
        import hashlib
        digest = hashlib.md5(page.content).digest()
        cached = self._cache_index.get(page.url)
        if cached is not None:
            self.cache_validations += 1
            if cached[1] == digest:
                self.cache_hits += 1           # unchanged: serve cached
                return
        path = (f"{self._cache_dir}/"
                f"{hashlib.md5(page.url.encode()).hexdigest()}")
        fd = self.sc.open(path, "w")
        if self._provenance_on:
            self.dpapi.pass_write(fd, page.content, [
                self.dpapi.record(fd, Attr.FILE_URL, page.url),
                self.dpapi.record(fd, Attr.INPUT,
                                  self.dpapi.ref_of(session.fd)),
            ])
        else:
            self.sc.write(fd, page.content)
        self.sc.close(fd)
        self._cache_index[page.url] = (path, digest)

    def cached_copy(self, url: str) -> Optional[bytes]:
        """The cached content for a URL, if any (even after take-down)."""
        cached = self._cache_index.get(url)
        if cached is None:
            return None
        fd = self.sc.open(cached[0], "r")
        data = self.sc.read(fd)
        self.sc.close(fd)
        return data

    def follow_link(self, session: Session, index: int) -> Page:
        """Click the Nth link on the current page."""
        if session.current_url is None:
            raise BrowserError("no page is being viewed")
        page, _ = self.web.fetch(session.current_url)
        try:
            target = page.links[index]
        except IndexError:
            raise BrowserError(
                f"{session.current_url} has no link #{index}") from None
        return self.visit(session, target)

    def download(self, session: Session, url: str, path: str) -> bytes:
        """Fetch a URL and save it, disclosing the three records."""
        if session.current_url is None:
            # Downloading a URL directly still counts as a visit.
            self.visit(session, url)
        page, chain = self.web.fetch(url)
        for hop in chain:
            self._record_visit(session, hop)
        data = page.content
        fd = self.sc.open(path, "w")
        if self._provenance_on:
            records = [
                self.dpapi.record(fd, Attr.INPUT,
                                  self.dpapi.ref_of(session.fd)),
                self.dpapi.record(fd, Attr.FILE_URL, chain[-1]),
            ]
            if session.current_url is not None:
                records.append(self.dpapi.record(
                    fd, Attr.CURRENT_URL, session.current_url))
            self.dpapi.pass_write(fd, data, records)
        else:
            self.sc.write(fd, data)
        self.sc.close(fd)
        session.downloads.append((chain[-1], path))
        return data

    def _record_visit(self, session: Session, url: str) -> None:
        if not self._provenance_on:
            return
        record = self.dpapi.record(session.fd, Attr.VISITED_URL, url)
        self.dpapi.pass_write(session.fd, records=[record])
