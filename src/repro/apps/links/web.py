"""A small simulated Web: sites, pages, links, redirects.

Stages the browser use cases: attribution (downloads whose source pages
later vanish) and malware tracking (a hacked site serving a trojaned
codec, reached via a redirect from a trusted site).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.core.errors import BrowserError


@dataclass
class Page:
    """One addressable resource."""

    url: str
    content: bytes = b""
    links: list[str] = field(default_factory=list)
    redirect: Optional[str] = None
    content_type: str = "text/html"


class Web:
    """URL -> Page, with helpers to build sites and mutate them."""

    MAX_REDIRECTS = 8

    def __init__(self) -> None:
        self._pages: dict[str, Page] = {}
        self.requests = 0

    def publish(self, url: str, content: bytes = b"",
                links: Optional[list[str]] = None,
                redirect: Optional[str] = None,
                content_type: str = "text/html") -> Page:
        """Create or replace one page."""
        page = Page(url, content, list(links or ()), redirect, content_type)
        self._pages[url] = page
        return page

    def take_down(self, url: str) -> None:
        """Remove a page (the attribution use case: source vanishes)."""
        self._pages.pop(url, None)

    def compromise(self, url: str, payload: bytes) -> None:
        """Eve hacks a page: same URL, trojaned content."""
        page = self._page(url)
        page.content = payload

    def fetch(self, url: str) -> tuple[Page, list[str]]:
        """Resolve a URL following redirects.

        Returns the final page and the chain of URLs traversed
        (including the final one).
        """
        chain = [url]
        page = self._page(url)
        hops = 0
        while page.redirect is not None:
            hops += 1
            if hops > self.MAX_REDIRECTS:
                raise BrowserError(f"redirect loop at {url}")
            chain.append(page.redirect)
            page = self._page(page.redirect)
        self.requests += 1
        return page, chain

    def exists(self, url: str) -> bool:
        return url in self._pages

    def _page(self, url: str) -> Page:
        try:
            return self._pages[url]
        except KeyError:
            raise BrowserError(f"404: {url}") from None

    def urls(self) -> list[str]:
        return sorted(self._pages)
