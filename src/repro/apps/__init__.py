"""Provenance-aware applications (paper section 6).

* :mod:`repro.apps.kepler`   -- a Kepler-style workflow engine with a
  provenance recording interface whose third backend discloses to
  PASSv2 through the DPAPI (section 6.2);
* :mod:`repro.apps.links`    -- a links-style text web browser tracking
  sessions, visited URLs, and downloads (section 6.3);
* :mod:`repro.apps.papython` -- the runtime Python provenance wrapper
  (section 6.4).
"""
