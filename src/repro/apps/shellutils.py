"""Provenance-aware core utilities.

Small UNIX-style programs implemented against the simulated syscall
interface.  Installing them (:func:`install`) registers executables
under ``<root>/bin`` so shells, workloads, and examples can compose
realistic pipelines whose provenance looks like real systems':
``cp`` output descends from its input *and* the cp process, ``sort``
from everything it read, and so on.

Programs take their arguments from ``argv`` (the registered program
receives the Syscalls facade; argv is on ``sc.proc.argv``).
"""

from __future__ import annotations

from typing import Optional

from repro.core.errors import FileNotFound, KernelError


class UsageError(KernelError):
    """Bad command-line arguments to a shell utility."""

    errno_name = "EINVAL"


def _args(sc) -> list[str]:
    return sc.proc.argv[1:]


def _read_whole(sc, path: str) -> bytes:
    fd = sc.open(path, "r")
    data = sc.read(fd)
    sc.close(fd)
    return data


def _write_whole(sc, path: str, data: bytes) -> None:
    fd = sc.open(path, "w")
    sc.write(fd, data)
    sc.close(fd)


def _output(sc, data: bytes, target: Optional[str]) -> None:
    """Write to an explicit target file, else stdout if inherited."""
    if target is not None:
        _write_whole(sc, target, data)
        return
    if sc.proc.stdout_fd is not None:
        sc.write(sc.stdout, data)
        return
    raise UsageError("no output target (give a file or pipe stdout)")


# -- the utilities -------------------------------------------------------------------


def cp_program(sc) -> int:
    """cp SRC DST — copy one file; DST descends from SRC and cp."""
    args = _args(sc)
    if len(args) != 2:
        raise UsageError("cp: expected SRC DST")
    source, target = args
    _write_whole(sc, target, _read_whole(sc, source))
    return 0


def cat_program(sc) -> int:
    """cat FILE... [> stdout] — concatenate files to stdout/last arg.

    With an inherited stdout, all arguments are inputs; otherwise the
    last argument is the output file.
    """
    args = _args(sc)
    if not args:
        raise UsageError("cat: expected at least one file")
    if sc.proc.stdout_fd is not None:
        sources, target = args, None
    else:
        if len(args) < 2:
            raise UsageError("cat: need inputs and an output file")
        sources, target = args[:-1], args[-1]
    blob = b"".join(_read_whole(sc, source) for source in sources)
    _output(sc, blob, target)
    return 0


def grep_program(sc) -> int:
    """grep PATTERN FILE [OUT] — matching lines (plain substring)."""
    args = _args(sc)
    if len(args) not in (2, 3):
        raise UsageError("grep: expected PATTERN FILE [OUT]")
    pattern = args[0].encode()
    lines = _read_whole(sc, args[1]).split(b"\n")
    sc.compute(1e-7 * max(1, len(lines)))
    matched = b"\n".join(line for line in lines if pattern in line)
    _output(sc, matched, args[2] if len(args) == 3 else None)
    return 0


def sort_program(sc) -> int:
    """sort FILE [OUT] — sort lines lexicographically."""
    args = _args(sc)
    if len(args) not in (1, 2):
        raise UsageError("sort: expected FILE [OUT]")
    lines = [line for line in _read_whole(sc, args[0]).split(b"\n")
             if line]
    sc.compute(2e-7 * max(1, len(lines)))
    _output(sc, b"\n".join(sorted(lines)) + b"\n",
            args[1] if len(args) == 2 else None)
    return 0


def wc_program(sc) -> int:
    """wc FILE [OUT] — lines/words/bytes."""
    args = _args(sc)
    if len(args) not in (1, 2):
        raise UsageError("wc: expected FILE [OUT]")
    data = _read_whole(sc, args[0])
    counts = (data.count(b"\n"), len(data.split()), len(data))
    report = ("%d %d %d %s\n" % (*counts, args[0])).encode()
    _output(sc, report, args[1] if len(args) == 2 else None)
    return 0


def tee_program(sc) -> int:
    """tee FILE — copy stdin to FILE and stdout (if piped onward)."""
    args = _args(sc)
    if len(args) != 1:
        raise UsageError("tee: expected FILE")
    data = sc.read(sc.stdin)
    _write_whole(sc, args[0], data)
    if sc.proc.stdout_fd is not None:
        sc.write(sc.stdout, data)
    return 0


def tar_create_program(sc) -> int:
    """tar DIR OUT — archive a directory (flat, toy format)."""
    args = _args(sc)
    if len(args) != 2:
        raise UsageError("tar: expected DIR OUT")
    directory, target = args
    parts = []
    for name in sc.readdir(directory):
        path = f"{directory.rstrip('/')}/{name}"
        if sc.stat(path)["kind"] == "file":
            data = _read_whole(sc, path)
            parts.append(f"{name}\0{len(data)}\0".encode() + data)
    _write_whole(sc, target, b"TOYTAR" + b"".join(parts))
    return 0


def tar_extract_program(sc) -> int:
    """untar ARCHIVE DIR — extract a toy archive."""
    args = _args(sc)
    if len(args) != 2:
        raise UsageError("untar: expected ARCHIVE DIR")
    archive, directory = args
    blob = _read_whole(sc, archive)
    if not blob.startswith(b"TOYTAR"):
        raise UsageError(f"untar: {archive} is not a toy tar")
    if not sc.exists(directory):
        sc.mkdir(directory)
    offset = len(b"TOYTAR")
    while offset < len(blob):
        name_end = blob.index(b"\0", offset)
        name = blob[offset:name_end].decode()
        size_end = blob.index(b"\0", name_end + 1)
        size = int(blob[name_end + 1:size_end])
        start = size_end + 1
        _write_whole(sc, f"{directory.rstrip('/')}/{name}",
                     blob[start:start + size])
        offset = start + size
    return 0


UTILITIES = {
    "cp": cp_program,
    "cat": cat_program,
    "grep": grep_program,
    "sort": sort_program,
    "wc": wc_program,
    "tee": tee_program,
    "tar": tar_create_program,
    "untar": tar_extract_program,
}


def install(system, root: str = "/pass") -> dict[str, str]:
    """Register every utility under ``<root>/bin``; returns name->path."""
    paths = {}
    for name, program in UTILITIES.items():
        path = f"{root.rstrip('/')}/bin/{name}"
        if not system.kernel.vfs.exists(path):
            system.register_program(path, program, size=65536)
        paths[name] = path
    return paths
