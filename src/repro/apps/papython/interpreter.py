"""A provenance-aware expression interpreter (the paper's future work).

Section 6.5: "while we could wrap functions, we lost provenance across
built-in operators... Making Python itself provenance-aware would
require modifying the Python interpreter. While an interesting project,
we have left that undertaking for future research."

This module is that undertaking, at expression scale: a small AST
interpreter over Python's own ``ast`` module in which *every* value is
provenance-carrying.  Binary operators, comparisons, subscripts, and
calls all create invocation-like objects and INPUT records, so
``(a + b) * c`` yields a value whose ancestry reaches ``a``, ``b``, and
``c`` — the exact chain the wrapper approach drops.

Supported: arithmetic/bitwise/comparison/boolean operators, unary ops,
constants, names, tuples/lists, subscripts, attribute access on plain
values, calls to functions in the environment, and conditional
expressions.  Statements: assignments, expression statements, ``if``,
``while``, ``for`` over sequences, and ``pass``.  This is a *language
subset* — enough to run realistic analysis snippets provenance-aware.
"""

from __future__ import annotations

import ast as python_ast
from typing import Optional

from repro.core.errors import ReproError
from repro.core.records import Attr, ObjType


class InterpreterError(ReproError):
    """The provenance-aware interpreter hit an unsupported construct."""


class PValue:
    """A value with provenance: the interpreter's universal currency."""

    __slots__ = ("value", "fd", "label")

    def __init__(self, value, fd: int, label: str):
        self.value = value
        self.fd = fd
        self.label = label

    def __repr__(self) -> str:
        return f"<PValue {self.label!r} = {self.value!r}>"


class ProvenanceInterpreter:
    """Evaluate Python source with per-operation provenance."""

    def __init__(self, sc):
        self.sc = sc
        self.dpapi = sc.dpapi
        self._op_count = 0

    # -- object creation ---------------------------------------------------------

    def _mkvalue(self, value, label: str,
                 inputs: tuple["PValue", ...] = ()) -> PValue:
        fd = self.dpapi.pass_mkobj()
        records = [
            self.dpapi.record(fd, Attr.TYPE, ObjType.PYOBJECT),
            self.dpapi.record(fd, Attr.NAME, label),
        ]
        for parent in inputs:
            records.append(self.dpapi.record(fd, Attr.INPUT,
                                             self.dpapi.ref_of(parent.fd)))
        self.dpapi.pass_write(fd, records=records)
        return PValue(value, fd, label)

    def lift(self, value, label: str) -> PValue:
        """Bring an outside value into the provenance-carrying world."""
        return self._mkvalue(value, label)

    def _operate(self, op_label: str, fn, *args: PValue) -> PValue:
        self._op_count += 1
        label = f"{op_label}#{self._op_count}"
        raw = fn(*(arg.value for arg in args))
        return self._mkvalue(raw, label, inputs=args)

    # -- execution ------------------------------------------------------------------

    def eval(self, source: str, env: dict[str, PValue]) -> PValue:
        """Evaluate one expression in ``env``; returns a PValue."""
        tree = python_ast.parse(source, mode="eval")
        return self._expr(tree.body, env)

    def exec(self, source: str, env: dict[str, PValue]) -> dict:
        """Execute statements; mutates and returns ``env``."""
        tree = python_ast.parse(source, mode="exec")
        for stmt in tree.body:
            self._stmt(stmt, env)
        return env

    # -- statements --------------------------------------------------------------------

    def _stmt(self, node, env) -> None:
        if isinstance(node, python_ast.Assign):
            value = self._expr(node.value, env)
            for target in node.targets:
                if not isinstance(target, python_ast.Name):
                    raise InterpreterError(
                        "only simple-name assignment is supported")
                env[target.id] = value
            return
        if isinstance(node, python_ast.AugAssign):
            name = node.target.id
            current = self._lookup(name, env)
            operand = self._expr(node.value, env)
            env[name] = self._binop(node.op, current, operand)
            return
        if isinstance(node, python_ast.Expr):
            self._expr(node.value, env)
            return
        if isinstance(node, python_ast.If):
            branch = (node.body if self._expr(node.test, env).value
                      else node.orelse)
            for stmt in branch:
                self._stmt(stmt, env)
            return
        if isinstance(node, python_ast.While):
            guard = 0
            while self._expr(node.test, env).value:
                for stmt in node.body:
                    self._stmt(stmt, env)
                guard += 1
                if guard > 100000:
                    raise InterpreterError("runaway while loop")
            return
        if isinstance(node, python_ast.For):
            if not isinstance(node.target, python_ast.Name):
                raise InterpreterError("only simple for-targets supported")
            iterable = self._expr(node.iter, env)
            for index, item in enumerate(iterable.value):
                env[node.target.id] = (
                    item if isinstance(item, PValue)
                    else self._mkvalue(item,
                                       f"{iterable.label}[{index}]",
                                       inputs=(iterable,)))
                for stmt in node.body:
                    self._stmt(stmt, env)
            return
        if isinstance(node, python_ast.Pass):
            return
        raise InterpreterError(
            f"unsupported statement: {type(node).__name__}")

    # -- expressions -------------------------------------------------------------------

    def _expr(self, node, env) -> PValue:
        if isinstance(node, python_ast.Constant):
            return self._mkvalue(node.value, repr(node.value))
        if isinstance(node, python_ast.Name):
            return self._lookup(node.id, env)
        if isinstance(node, python_ast.BinOp):
            left = self._expr(node.left, env)
            right = self._expr(node.right, env)
            return self._binop(node.op, left, right)
        if isinstance(node, python_ast.UnaryOp):
            operand = self._expr(node.operand, env)
            table = {
                python_ast.USub: ("neg", lambda x: -x),
                python_ast.UAdd: ("pos", lambda x: +x),
                python_ast.Not: ("not", lambda x: not x),
                python_ast.Invert: ("invert", lambda x: ~x),
            }
            label, fn = table[type(node.op)]
            return self._operate(label, fn, operand)
        if isinstance(node, python_ast.Compare):
            if len(node.ops) != 1:
                raise InterpreterError("chained comparisons unsupported")
            left = self._expr(node.left, env)
            right = self._expr(node.comparators[0], env)
            table = {
                python_ast.Eq: ("eq", lambda a, b: a == b),
                python_ast.NotEq: ("ne", lambda a, b: a != b),
                python_ast.Lt: ("lt", lambda a, b: a < b),
                python_ast.LtE: ("le", lambda a, b: a <= b),
                python_ast.Gt: ("gt", lambda a, b: a > b),
                python_ast.GtE: ("ge", lambda a, b: a >= b),
                python_ast.In: ("in", lambda a, b: a in b),
            }
            label, fn = table[type(node.ops[0])]
            return self._operate(label, fn, left, right)
        if isinstance(node, python_ast.BoolOp):
            values = [self._expr(child, env) for child in node.values]
            if isinstance(node.op, python_ast.And):
                fn = lambda *vs: all(vs)
                label = "and"
            else:
                fn = lambda *vs: any(vs)
                label = "or"
            return self._operate(label, fn, *values)
        if isinstance(node, python_ast.IfExp):
            test = self._expr(node.test, env)
            chosen = self._expr(node.body if test.value else node.orelse,
                                env)
            return self._operate("ifexp", lambda t, c: c, test, chosen)
        if isinstance(node, (python_ast.Tuple, python_ast.List)):
            items = [self._expr(child, env) for child in node.elts]
            raw = [item.value for item in items]
            container = tuple(raw) if isinstance(node,
                                                 python_ast.Tuple) else raw
            return self._operate("collect", lambda *vs: container, *items)
        if isinstance(node, python_ast.Subscript):
            target = self._expr(node.value, env)
            index = self._expr(node.slice, env)
            return self._operate("subscript", lambda t, i: t[i],
                                 target, index)
        if isinstance(node, python_ast.Call):
            if not isinstance(node.func, python_ast.Name):
                raise InterpreterError("only name calls are supported")
            fn_value = self._lookup(node.func.id, env)
            if not callable(fn_value.value):
                raise InterpreterError(f"{node.func.id!r} is not callable")
            args = [self._expr(arg, env) for arg in node.args]
            return self._operate(
                f"call:{node.func.id}",
                lambda fn, *rest: fn(*rest),
                fn_value, *args,
            )
        raise InterpreterError(
            f"unsupported expression: {type(node).__name__}")

    def _binop(self, op, left: PValue, right: PValue) -> PValue:
        table = {
            python_ast.Add: ("add", lambda a, b: a + b),
            python_ast.Sub: ("sub", lambda a, b: a - b),
            python_ast.Mult: ("mul", lambda a, b: a * b),
            python_ast.Div: ("div", lambda a, b: a / b),
            python_ast.FloorDiv: ("floordiv", lambda a, b: a // b),
            python_ast.Mod: ("mod", lambda a, b: a % b),
            python_ast.Pow: ("pow", lambda a, b: a ** b),
            python_ast.BitAnd: ("bitand", lambda a, b: a & b),
            python_ast.BitOr: ("bitor", lambda a, b: a | b),
            python_ast.BitXor: ("bitxor", lambda a, b: a ^ b),
            python_ast.LShift: ("lshift", lambda a, b: a << b),
            python_ast.RShift: ("rshift", lambda a, b: a >> b),
        }
        try:
            label, fn = table[type(op)]
        except KeyError:
            raise InterpreterError(
                f"unsupported operator: {type(op).__name__}") from None
        return self._operate(label, fn, left, right)

    # -- plumbing ---------------------------------------------------------------------------

    def _lookup(self, name: str, env) -> PValue:
        try:
            return env[name]
        except KeyError:
            raise InterpreterError(f"unbound name {name!r}") from None

    def write_result(self, path: str, value: PValue) -> None:
        """Persist a result file linked to the value's full ancestry."""
        data = value.value
        if not isinstance(data, bytes):
            data = str(data).encode()
        fd = self.sc.open(path, "w")
        self.dpapi.pass_write(fd, data, [
            self.dpapi.record(fd, Attr.INPUT, self.dpapi.ref_of(value.fd)),
        ])
        self.sc.close(fd)
