"""PA-Python: runtime Python provenance tracking (paper section 6.4).

Wrappers that make a Python *application* provenance-aware: functions,
modules, data objects, and files are shadowed by ``pass_mkobj`` objects;
every invocation of a wrapped callable becomes an INVOCATION object with
INPUT records tying it to its wrapped inputs, its function, and its
outputs.  Combined with the PASS layer underneath, this answers the
section 3.3 questions: which of the many files *read* were actually
*used*, and which outputs passed through a particular routine.

Known limitation, faithfully reproduced: provenance does not flow
through *built-in operators* on unwrapped values -- the paper's own
lesson ("we could wrap functions, [but] we lost provenance across
built-in operators"; fixing that would mean a provenance-aware
interpreter, which the authors left to future work).
"""

from repro.apps.papython.wrapper import ProvenanceTracker, TrackedValue

__all__ = ["ProvenanceTracker", "TrackedValue"]
