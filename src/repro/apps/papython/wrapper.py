"""The PA-Python wrapper machinery.

Usage, inside a program running on the simulated machine::

    tracker = ProvenanceTracker(sc)
    load = tracker.wrap_function(parse_xml, name="parse_xml")
    heat = tracker.wrap_function(crack_heating, name="crack_heating")

    doc = tracker.read_file("/pass/data/exp001.xml")   # TrackedValue
    parsed = load(doc)                                  # invocation #1
    curve = heat(parsed)                                # invocation #2
    tracker.write_file("/pass/out/plot.dat", curve)

The written file's ancestry now contains: the plot <- invocation#2 <-
invocation#1 <- the exact XML file (pnode+version) it came from, plus
FUNCTION objects for each wrapped routine -- even though the enclosing
process read *hundreds* of other XML files PASS alone would blame.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.core.records import Attr, ObjType


class TrackedValue:
    """A Python value shadowed by a provenance object."""

    __slots__ = ("value", "fd", "tracker", "label")

    def __init__(self, value, fd: int, tracker: "ProvenanceTracker",
                 label: str):
        self.value = value
        self.fd = fd
        self.tracker = tracker
        self.label = label

    @property
    def ref(self):
        return self.tracker.dpapi.ref_of(self.fd)

    def __repr__(self) -> str:
        return f"<TrackedValue {self.label!r}>"


class ProvenanceTracker:
    """Creates and connects the PA-Python provenance objects."""

    def __init__(self, sc):
        self.sc = sc
        self.dpapi = sc.dpapi
        self._invocations = 0

    # -- object creation --------------------------------------------------------------

    def _mkobj(self, obj_type: str, name: str) -> int:
        fd = self.dpapi.pass_mkobj()
        self.dpapi.pass_write(fd, records=[
            self.dpapi.record(fd, Attr.TYPE, obj_type),
            self.dpapi.record(fd, Attr.NAME, name),
        ])
        return fd

    def wrap_value(self, value, label: str) -> TrackedValue:
        """Shadow an arbitrary Python value."""
        fd = self._mkobj(ObjType.PYOBJECT, label)
        return TrackedValue(value, fd, self, label)

    def wrap_function(self, fn: Callable,
                      name: Optional[str] = None) -> Callable:
        """Wrap a callable: every call becomes an INVOCATION object.

        The wrapped callable accepts TrackedValues and plain values;
        plain values pass through untracked (the built-in-operator gap).
        TrackedValue arguments are unwrapped before ``fn`` sees them,
        and the result comes back as a TrackedValue.
        """
        fn_name = name or getattr(fn, "__name__", "anonymous")
        fn_fd = self._mkobj(ObjType.FUNCTION, fn_name)

        def wrapped(*args, **kwargs):
            self._invocations += 1
            inv_name = f"{fn_name}#{self._invocations}"
            inv_fd = self._mkobj(ObjType.INVOCATION, inv_name)
            records = [self.dpapi.record(inv_fd, Attr.INPUT,
                                         self.dpapi.ref_of(fn_fd))]
            plain_args = []
            for arg in args:
                if isinstance(arg, TrackedValue):
                    records.append(self.dpapi.record(inv_fd, Attr.INPUT,
                                                     arg.ref))
                    plain_args.append(arg.value)
                else:
                    plain_args.append(arg)
            plain_kwargs = {}
            for key, arg in kwargs.items():
                if isinstance(arg, TrackedValue):
                    records.append(self.dpapi.record(inv_fd, Attr.INPUT,
                                                     arg.ref))
                    plain_kwargs[key] = arg.value
                else:
                    plain_kwargs[key] = arg
            self.dpapi.pass_write(inv_fd, records=records)

            result = fn(*plain_args, **plain_kwargs)

            out = self.wrap_value(result, f"{inv_name}:result")
            self.dpapi.pass_write(out.fd, records=[
                self.dpapi.record(out.fd, Attr.INPUT,
                                  self.dpapi.ref_of(inv_fd)),
            ])
            return out

        wrapped.__name__ = f"pa_{fn_name}"
        wrapped.provenance_fd = fn_fd
        return wrapped

    def wrap_module(self, module, names: Optional[list[str]] = None) -> dict:
        """Wrap the callables of a module-like object (or dict).

        Returns {name: wrapped callable}.  ``names`` restricts which
        attributes are wrapped; by default every public callable is.
        """
        if isinstance(module, dict):
            items = module.items()
        else:
            items = ((name, getattr(module, name)) for name in dir(module)
                     if not name.startswith("_"))
        wrapped = {}
        for name, value in items:
            if names is not None and name not in names:
                continue
            if callable(value):
                wrapped[name] = self.wrap_function(value, name=name)
        return wrapped

    # -- file integration ---------------------------------------------------------------

    def read_file(self, path: str) -> TrackedValue:
        """pass_read a file into a TrackedValue whose provenance names
        the exact (pnode, version) that was read."""
        fd = self.sc.open(path, "r")
        data, ref = self.dpapi.pass_read(fd)
        self.sc.close(fd)
        doc = self.wrap_value(data, path)
        self.dpapi.pass_write(doc.fd, records=[
            self.dpapi.record(doc.fd, Attr.INPUT, ref),
        ])
        return doc

    def write_file(self, path: str, value) -> None:
        """Write a (tracked) value to a file, disclosing the link."""
        data = value.value if isinstance(value, TrackedValue) else value
        if not isinstance(data, bytes):
            data = str(data).encode()
        fd = self.sc.open(path, "w")
        if isinstance(value, TrackedValue):
            self.dpapi.pass_write(fd, data, [
                self.dpapi.record(fd, Attr.INPUT, value.ref),
            ])
        else:
            self.sc.write(fd, data)
        self.sc.close(fd)
