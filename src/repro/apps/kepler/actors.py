"""Workflow actors (operators) and their firing context.

An actor declares input and output ports and implements :meth:`Actor.fire`.
The firing context gives it its consumed tokens, an ``emit`` callback,
its parameters, and the simulated system-call interface for file I/O --
source and sink actors read and write real files on the simulated
machine, which is what lets the PASS recording backend link workflow
provenance to file-system provenance.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.core.errors import WorkflowError


@dataclass
class Token:
    """One unit of data flowing along a channel."""

    value: object
    producer: Optional[str] = None       # actor name, for tracing


@dataclass
class FiringContext:
    """Everything an actor sees while firing.

    When the PASS recording backend is active, ``dpapi`` and
    ``operator_ref`` are set: file reads use ``pass_read`` (capturing the
    exact version read) and file writes disclose a file -> operator
    ancestry record *with* the data (one pass_write), which is how
    workflow provenance stays connected to file provenance.
    """

    inputs: dict[str, Token]
    params: dict[str, object]
    sc: object                            # Syscalls facade
    dpapi: object = None                  # LibPass when PASS-recording
    operator_ref: object = None           # the firing operator's ref
    _emitted: list[tuple[str, object]] = field(default_factory=list)
    #: (path, ObjectRef-or-None) per file touched.
    files_read: list[tuple] = field(default_factory=list)
    files_written: list[tuple] = field(default_factory=list)

    def emit(self, port: str, value: object) -> None:
        """Produce one token on an output port."""
        self._emitted.append((port, value))

    def read_file(self, path: str) -> bytes:
        """Read a whole file, noting its exact identity for linking."""
        fd = self.sc.open(path, "r")
        if self.dpapi is not None:
            data, ref = self.dpapi.pass_read(fd)
        else:
            data, ref = self.sc.read(fd), None
        self.sc.close(fd)
        self.files_read.append((path, ref))
        return data

    def write_file(self, path: str, data: bytes) -> None:
        """Write a whole file, disclosing the operator link if enabled."""
        fd = self.sc.open(path, "w")
        if self.dpapi is not None and self.operator_ref is not None:
            record = self.dpapi.record(fd, "INPUT", self.operator_ref)
            self.dpapi.pass_write(fd, data, [record])
            ref = self.dpapi.ref_of(fd)
        else:
            self.sc.write(fd, data)
            ref = None
        self.sc.close(fd)
        self.files_written.append((path, ref))


class Actor:
    """Base workflow operator."""

    #: Port declarations; subclasses override.
    input_ports: tuple[str, ...] = ()
    output_ports: tuple[str, ...] = ()

    def __init__(self, name: str, **params):
        self.name = name
        self.params = dict(params)

    @property
    def kind(self) -> str:
        """Operator type name shown in provenance (class name)."""
        return type(self).__name__

    def ready(self, available: dict[str, int]) -> bool:
        """Can this actor fire, given tokens available per input port?

        Default: one token on every input port (SDF semantics).  Source
        actors (no inputs) are handled by the director's iteration count.
        """
        return all(available.get(port, 0) >= 1 for port in self.input_ports)

    def fire(self, ctx: FiringContext) -> None:
        """Consume inputs, do work, emit outputs.  Subclasses implement."""
        raise NotImplementedError

    def cpu_seconds(self) -> float:
        """Simulated CPU cost of one firing (override for heavy actors)."""
        return float(self.params.get("cpu_seconds", 0.0002))

    def __repr__(self) -> str:
        return f"<{self.kind} {self.name!r}>"


class FileSource(Actor):
    """Reads one file and emits its content (a Kepler data source).

    Params: ``path`` -- the file to read.
    """

    output_ports = ("out",)

    def fire(self, ctx: FiringContext) -> None:
        path = ctx.params.get("path")
        if not path:
            raise WorkflowError(f"{self.name}: FileSource needs a 'path'")
        ctx.emit("out", ctx.read_file(path))


class FileSink(Actor):
    """Writes its input token to a file (a Kepler data sink).

    Params: ``path`` (``fileName`` accepted as the Kepler-ish alias),
    ``confirmOverwrite`` (ignored, present for fidelity).
    """

    input_ports = ("in",)

    def fire(self, ctx: FiringContext) -> None:
        path = ctx.params.get("path") or ctx.params.get("fileName")
        if not path:
            raise WorkflowError(f"{self.name}: FileSink needs a 'path'")
        value = ctx.inputs["in"].value
        data = value if isinstance(value, bytes) else str(value).encode()
        ctx.write_file(path, data)


class Transformer(Actor):
    """Applies a function to its single input.

    Params: ``fn`` -- callable(bytes-or-object) -> object.
    """

    input_ports = ("in",)
    output_ports = ("out",)

    def fire(self, ctx: FiringContext) -> None:
        fn: Callable = ctx.params.get("fn")
        if fn is None:
            raise WorkflowError(f"{self.name}: Transformer needs 'fn'")
        ctx.emit("out", fn(ctx.inputs["in"].value))


class Combiner(Actor):
    """N-ary combine: gathers ``arity`` inputs into one output.

    Params: ``arity`` (default 2), ``fn`` -- callable(list) -> object
    (default: concatenate bytes).
    """

    output_ports = ("out",)

    def __init__(self, name: str, arity: int = 2, **params):
        super().__init__(name, arity=arity, **params)
        self.input_ports = tuple(f"in{i}" for i in range(arity))

    def fire(self, ctx: FiringContext) -> None:
        values = [ctx.inputs[port].value for port in self.input_ports]
        fn = ctx.params.get("fn")
        if fn is None:
            fn = lambda vs: b"".join(
                v if isinstance(v, bytes) else str(v).encode() for v in vs)
        ctx.emit("out", fn(values))


class LineParser(Actor):
    """Splits tabular bytes into a list of rows (the PA-Kepler workload's
    'parse tabular data' stage).

    Params: ``delimiter`` (default tab).
    """

    input_ports = ("in",)
    output_ports = ("out",)

    def fire(self, ctx: FiringContext) -> None:
        delimiter = ctx.params.get("delimiter", "\t")
        text = ctx.inputs["in"].value
        if isinstance(text, bytes):
            text = text.decode("utf-8", "replace")
        rows = [line.split(delimiter)
                for line in text.splitlines() if line.strip()]
        ctx.emit("out", rows)


class ColumnExtractor(Actor):
    """Extracts one column from parsed rows.

    Params: ``column`` -- index to extract.
    """

    input_ports = ("in",)
    output_ports = ("out",)

    def fire(self, ctx: FiringContext) -> None:
        column = int(ctx.params.get("column", 0))
        rows = ctx.inputs["in"].value
        ctx.emit("out", [row[column] for row in rows if len(row) > column])


class ExpressionEvaluator(Actor):
    """Reformats values with a user-specified expression (the PA-Kepler
    workload's final stage).

    Params: ``expression`` -- callable(value) -> str, or a printf-style
    format string applied per item.
    """

    input_ports = ("in",)
    output_ports = ("out",)

    def fire(self, ctx: FiringContext) -> None:
        expression = ctx.params.get("expression", "%s")
        values = ctx.inputs["in"].value
        if callable(expression):
            out = [str(expression(value)) for value in values]
        else:
            out = [expression % (value,) for value in values]
        ctx.emit("out", "\n".join(out).encode())
