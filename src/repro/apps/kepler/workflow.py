"""Workflow graphs: actors, channels, validation."""

from __future__ import annotations

from collections import defaultdict, deque

from repro.apps.kepler.actors import Actor
from repro.core.errors import WorkflowError


class Workflow:
    """A named dataflow graph of actors connected port-to-port."""

    def __init__(self, name: str):
        self.name = name
        self._actors: dict[str, Actor] = {}
        #: (src actor, src port) -> list of (dst actor, dst port)
        self._wires: dict[tuple[str, str], list[tuple[str, str]]] = (
            defaultdict(list))

    # -- construction -----------------------------------------------------------

    def add(self, actor: Actor) -> Actor:
        """Add an actor; names must be unique within the workflow."""
        if actor.name in self._actors:
            raise WorkflowError(f"duplicate actor name: {actor.name!r}")
        self._actors[actor.name] = actor
        return actor

    def connect(self, src: str, src_port: str, dst: str,
                dst_port: str) -> None:
        """Wire an output port to an input port."""
        src_actor = self.actor(src)
        dst_actor = self.actor(dst)
        if src_port not in src_actor.output_ports:
            raise WorkflowError(
                f"{src}: no output port {src_port!r} "
                f"(has {src_actor.output_ports})")
        if dst_port not in dst_actor.input_ports:
            raise WorkflowError(
                f"{dst}: no input port {dst_port!r} "
                f"(has {dst_actor.input_ports})")
        self._wires[(src, src_port)].append((dst, dst_port))

    # -- lookups -------------------------------------------------------------------

    def actor(self, name: str) -> Actor:
        try:
            return self._actors[name]
        except KeyError:
            raise WorkflowError(f"no actor named {name!r}") from None

    def actors(self) -> list[Actor]:
        return list(self._actors.values())

    def receivers(self, src: str, src_port: str) -> list[tuple[str, str]]:
        """Who is wired to one output port."""
        return list(self._wires.get((src, src_port), ()))

    def upstream_of(self, name: str) -> set[str]:
        """Actor names feeding any input port of ``name``."""
        return {src for (src, _), dsts in self._wires.items()
                for (dst, _) in dsts if dst == name}

    def sources(self) -> list[Actor]:
        """Actors with no input ports."""
        return [actor for actor in self.actors() if not actor.input_ports]

    # -- validation -----------------------------------------------------------------

    def validate(self) -> None:
        """Reject unwired inputs and channel cycles."""
        wired_inputs: set[tuple[str, str]] = set()
        for dsts in self._wires.values():
            wired_inputs.update(dsts)
        for actor in self.actors():
            for port in actor.input_ports:
                if (actor.name, port) not in wired_inputs:
                    raise WorkflowError(
                        f"{actor.name}: input port {port!r} is not wired")
        self._check_acyclic()

    def _check_acyclic(self) -> None:
        indegree = {name: 0 for name in self._actors}
        edges: dict[str, set[str]] = defaultdict(set)
        for (src, _), dsts in self._wires.items():
            for dst, _ in dsts:
                if dst not in edges[src]:
                    edges[src].add(dst)
                    indegree[dst] += 1
        queue = deque(name for name, deg in indegree.items() if deg == 0)
        visited = 0
        while queue:
            node = queue.popleft()
            visited += 1
            for nxt in edges[node]:
                indegree[nxt] -= 1
                if indegree[nxt] == 0:
                    queue.append(nxt)
        if visited != len(self._actors):
            raise WorkflowError(f"workflow {self.name!r} has a cycle")

    def topological_order(self) -> list[Actor]:
        """Actors in an order where producers precede consumers."""
        self._check_acyclic()
        indegree = {name: 0 for name in self._actors}
        edges: dict[str, set[str]] = defaultdict(set)
        for (src, _), dsts in self._wires.items():
            for dst, _ in dsts:
                if dst not in edges[src]:
                    edges[src].add(dst)
                    indegree[dst] += 1
        queue = deque(sorted(name for name, deg in indegree.items()
                             if deg == 0))
        order: list[Actor] = []
        while queue:
            name = queue.popleft()
            order.append(self._actors[name])
            for nxt in sorted(edges[name]):
                indegree[nxt] -= 1
                if indegree[nxt] == 0:
                    queue.append(nxt)
        return order

    def __repr__(self) -> str:
        return (f"<Workflow {self.name!r}: {len(self._actors)} actors, "
                f"{sum(len(d) for d in self._wires.values())} channels>")
