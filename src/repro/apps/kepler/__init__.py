"""PA-Kepler: a provenance-aware workflow engine (paper section 6.2).

A dataflow engine in the style of the Kepler scientific workflow system:
*actors* (operators) with typed ports, connected by channels, fired by a
*director* in dataflow order.  Kepler records provenance for all
communication between operators; like the real system this engine offers
three recording backends -- a text file, a (relational-style) table, and
the one this paper adds: disclosure into PASSv2 via the DPAPI.

The PASS backend creates a ``pass_mkobj`` object per operator, sets
NAME / TYPE=OPERATOR / PARAMS attributes, records an ancestry edge per
token transfer, and links data source/sink actors to the files they
touch -- connecting Kepler's provenance to the file-level provenance
beneath it (the paper's Figure 1 integration).
"""

from repro.apps.kepler.actors import Actor, FileSink, FileSource, Transformer
from repro.apps.kepler.director import Director, run_workflow
from repro.apps.kepler.recording import (
    DatabaseRecorder,
    PassRecorder,
    TextRecorder,
)
from repro.apps.kepler.workflow import Workflow

__all__ = [
    "Actor",
    "DatabaseRecorder",
    "Director",
    "FileSink",
    "FileSource",
    "PassRecorder",
    "TextRecorder",
    "Transformer",
    "Workflow",
    "run_workflow",
]
