"""The First Provenance Challenge workflow (paper sections 3.1, 5.7).

The fMRI atlas workflow the provenance community used as its common
benchmark, and the one the paper runs on PA-NFS in its Figure 1
scenario: four anatomy images are aligned against a reference
(``align_warp``), resliced, averaged into an atlas (``softmean``),
sliced along three axes (``slicer``) and converted to graphics
(``convert``) -- producing ``atlas-x.gif``, ``atlas-y.gif``,
``atlas-z.gif``.

The image "processing" here is deterministic byte kneading (hash
chaining), so any change to any input changes every downstream output --
exactly the property the anomaly-detection use case needs.
"""

from __future__ import annotations

import hashlib

from repro.apps.kepler.actors import Actor, FiringContext
from repro.apps.kepler.workflow import Workflow

AXES = ("x", "y", "z")
SUBJECTS = (1, 2, 3, 4)


def _knead(tag: bytes, *blobs: bytes) -> bytes:
    """Deterministic content-dependent transformation."""
    digest = hashlib.md5(tag)
    for blob in blobs:
        digest.update(blob)
    head = digest.digest()
    body = bytes((b ^ head[i % 16]) for i, b in enumerate(blobs[0][:256]))
    return head + body


def generate_inputs(system, directory: str, seed: int = 7,
                    image_bytes: int = 2048) -> list[str]:
    """Create the challenge's input files; returns their paths."""
    import random
    rng = random.Random(seed)
    paths = []
    with system.process(argv=["mkinputs"]) as proc:
        if not proc.exists(directory):
            proc.mkdir(directory)
        names = [f"anatomy{i}.img" for i in SUBJECTS]
        names += [f"anatomy{i}.hdr" for i in SUBJECTS]
        names += ["reference.img", "reference.hdr"]
        for name in names:
            path = f"{directory}/{name}"
            fd = proc.open(path, "w")
            proc.write(fd, bytes(rng.randrange(256)
                                 for _ in range(image_bytes)))
            proc.close(fd)
            paths.append(path)
    return paths


class AlignWarp(Actor):
    """align_warp: register one anatomy image against the reference."""

    output_ports = ("out",)

    def fire(self, ctx: FiringContext) -> None:
        image = ctx.read_file(ctx.params["image"])
        header = ctx.read_file(ctx.params["header"])
        ref = ctx.read_file(ctx.params["reference"])
        ref_hdr = ctx.read_file(ctx.params["reference_header"])
        warp = _knead(b"align_warp", image, header, ref, ref_hdr)
        ctx.write_file(ctx.params["output"], warp)
        ctx.emit("out", ctx.params["output"])


class Reslice(Actor):
    """reslice: resample one warped image."""

    input_ports = ("in",)
    output_ports = ("out",)

    def fire(self, ctx: FiringContext) -> None:
        warp_path = ctx.inputs["in"].value
        warp = ctx.read_file(warp_path)
        resliced = _knead(b"reslice", warp)
        ctx.write_file(ctx.params["output"], resliced)
        ctx.emit("out", ctx.params["output"])


class Softmean(Actor):
    """softmean: average the four resliced images into the atlas."""

    input_ports = ("in0", "in1", "in2", "in3")
    output_ports = ("out",)

    def fire(self, ctx: FiringContext) -> None:
        blobs = [ctx.read_file(ctx.inputs[port].value)
                 for port in self.input_ports]
        atlas = _knead(b"softmean", *blobs)
        ctx.write_file(ctx.params["output"], atlas)
        ctx.emit("out", ctx.params["output"])


class Slicer(Actor):
    """slicer: one axis-aligned slice of the atlas."""

    input_ports = ("in",)
    output_ports = ("out",)

    def fire(self, ctx: FiringContext) -> None:
        atlas = ctx.read_file(ctx.inputs["in"].value)
        axis = str(ctx.params["axis"]).encode()
        pgm = _knead(b"slicer-" + axis, atlas)
        ctx.write_file(ctx.params["output"], pgm)
        ctx.emit("out", ctx.params["output"])


class Convert(Actor):
    """convert: graphics conversion of one slice."""

    input_ports = ("in",)
    output_ports = ("out",)

    def fire(self, ctx: FiringContext) -> None:
        pgm = ctx.read_file(ctx.inputs["in"].value)
        gif = b"GIF89a" + _knead(b"convert", pgm)
        ctx.write_file(ctx.params["output"], gif)
        ctx.emit("out", ctx.params["output"])


def build_challenge(input_dir: str, work_dir: str,
                    output_dir: str) -> Workflow:
    """Assemble the full challenge workflow over the given directories."""
    wf = Workflow("provenance-challenge-1")
    for i in SUBJECTS:
        wf.add(AlignWarp(
            f"align_warp{i}",
            image=f"{input_dir}/anatomy{i}.img",
            header=f"{input_dir}/anatomy{i}.hdr",
            reference=f"{input_dir}/reference.img",
            reference_header=f"{input_dir}/reference.hdr",
            output=f"{work_dir}/warp{i}.warp",
        ))
        wf.add(Reslice(f"reslice{i}", output=f"{work_dir}/resliced{i}.img"))
        wf.connect(f"align_warp{i}", "out", f"reslice{i}", "in")
    wf.add(Softmean("softmean", output=f"{work_dir}/atlas.img"))
    for index, i in enumerate(SUBJECTS):
        wf.connect(f"reslice{i}", "out", "softmean", f"in{index}")
    for axis in AXES:
        wf.add(Slicer(f"slicer_{axis}", axis=axis,
                      output=f"{work_dir}/atlas-{axis}.pgm"))
        wf.connect("softmean", "out", f"slicer_{axis}", "in")
        wf.add(Convert(f"convert_{axis}",
                       output=f"{output_dir}/atlas-{axis}.gif"))
        wf.connect(f"slicer_{axis}", "out", f"convert_{axis}", "in")
    return wf


def ensure_dirs(system, *paths: str) -> None:
    """mkdir -p for workflow directories."""
    with system.process(argv=["mkdirs"]) as proc:
        for path in paths:
            parts = path.strip("/").split("/")
            prefix = ""
            for part in parts:
                prefix += "/" + part
                if not proc.exists(prefix):
                    proc.mkdir(prefix)
