"""Workflow (de)serialization -- the MoML analog, in JSON.

Kepler persists workflows as MoML documents; ours serialize to a JSON
structure listing actors (by registered type name), their parameters,
and the channel wiring::

    {
      "name": "simple",
      "actors": [
        {"type": "FileSource", "name": "src", "params": {"path": "/in"}},
        {"type": "FileSink",   "name": "sink", "params": {"path": "/out"}}
      ],
      "channels": [["src", "out", "sink", "in"]]
    }

Only JSON-representable parameters survive a round trip; callables
(e.g. a Transformer's ``fn``) must be re-supplied at load time through
``param_overrides``.
"""

from __future__ import annotations

import json
from typing import Callable, Optional

from repro.apps.kepler import actors as actor_library
from repro.apps.kepler import challenge
from repro.apps.kepler.actors import Actor
from repro.apps.kepler.workflow import Workflow
from repro.core.errors import WorkflowError

#: Registered actor types, by class name.
ACTOR_TYPES: dict[str, type] = {
    cls.__name__: cls
    for cls in (
        actor_library.FileSource,
        actor_library.FileSink,
        actor_library.Transformer,
        actor_library.Combiner,
        actor_library.LineParser,
        actor_library.ColumnExtractor,
        actor_library.ExpressionEvaluator,
        challenge.AlignWarp,
        challenge.Reslice,
        challenge.Softmean,
        challenge.Slicer,
        challenge.Convert,
    )
}


def register_actor_type(cls: type) -> type:
    """Add a custom actor class to the registry (usable as decorator)."""
    if not issubclass(cls, Actor):
        raise WorkflowError(f"{cls.__name__} is not an Actor subclass")
    # Registration API, exercised at import/composition time by user
    # code -- never on the record hot path a shard writer touches.
    ACTOR_TYPES[cls.__name__] = cls  # lint: disable=PL304
    return cls


def workflow_to_dict(workflow: Workflow) -> dict:
    """Serializable description of a workflow.

    Non-JSON parameters are replaced by the marker
    ``{"__callable__": <name>}`` and must be overridden on load.
    """
    actors = []
    for actor in workflow.actors():
        params = {}
        for key, value in actor.params.items():
            if callable(value):
                params[key] = {"__callable__": getattr(value, "__name__",
                                                       "anonymous")}
            else:
                params[key] = value
        actors.append({
            "type": type(actor).__name__,
            "name": actor.name,
            "params": params,
        })
    channels = []
    for actor in workflow.actors():
        for port in actor.output_ports:
            for dst, dst_port in workflow.receivers(actor.name, port):
                channels.append([actor.name, port, dst, dst_port])
    return {"name": workflow.name, "actors": actors, "channels": channels}


def workflow_from_dict(spec: dict,
                       param_overrides: Optional[dict] = None) -> Workflow:
    """Rebuild a workflow from :func:`workflow_to_dict` output.

    ``param_overrides`` maps ``"actor.param"`` to a value (typically a
    callable a Transformer needs back).
    """
    overrides = dict(param_overrides or {})
    try:
        workflow = Workflow(spec["name"])
        actor_specs = spec["actors"]
        channel_specs = spec["channels"]
    except (KeyError, TypeError) as exc:
        raise WorkflowError(f"malformed workflow spec: {exc}") from exc

    for actor_spec in actor_specs:
        type_name = actor_spec.get("type")
        cls = ACTOR_TYPES.get(type_name)
        if cls is None:
            raise WorkflowError(f"unknown actor type {type_name!r}")
        name = actor_spec["name"]
        params = {}
        for key, value in (actor_spec.get("params") or {}).items():
            override = overrides.pop(f"{name}.{key}", None)
            if override is not None:
                params[key] = override
            elif isinstance(value, dict) and "__callable__" in value:
                raise WorkflowError(
                    f"{name}.{key} was a callable "
                    f"({value['__callable__']}); supply it via "
                    f"param_overrides")
            else:
                params[key] = value
        # Combiner's arity is a constructor argument, not a plain param.
        if cls is actor_library.Combiner:
            arity = params.pop("arity", 2)
            workflow.add(cls(name, arity=arity, **params))
        else:
            workflow.add(cls(name, **params))
    for src, src_port, dst, dst_port in channel_specs:
        workflow.connect(src, src_port, dst, dst_port)
    if overrides:
        raise WorkflowError(f"unused param_overrides: {sorted(overrides)}")
    return workflow


def dumps(workflow: Workflow, indent: int = 2) -> str:
    """Workflow -> JSON text."""
    return json.dumps(workflow_to_dict(workflow), indent=indent)


def loads(text: str,
          param_overrides: Optional[dict] = None) -> Workflow:
    """JSON text -> Workflow."""
    return workflow_from_dict(json.loads(text), param_overrides)
