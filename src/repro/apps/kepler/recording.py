"""Kepler's provenance recording interface and its three backends.

Kepler records provenance for all communication between workflow
operators, "recording these events either in a text file or relational
database.  We added a third recording option: transmitting the
provenance into PASSv2 via the DPAPI" (section 6.2).

* :class:`TextRecorder`     -- event lines appended to a file;
* :class:`DatabaseRecorder` -- rows in a relational-style table;
* :class:`PassRecorder`     -- one ``pass_mkobj`` object per operator
  (NAME, TYPE=OPERATOR, PARAMS attributes), an ancestry record per token
  transfer, and source/sink linking between operators and the files they
  read or write.
"""

from __future__ import annotations

from typing import Optional

from repro.apps.kepler.actors import Actor, FiringContext, Token
from repro.core.pnode import ObjectRef
from repro.core.records import Attr, ObjType


class Recorder:
    """Null recorder: the no-provenance baseline."""

    #: Whether contexts should capture refs / disclose via the DPAPI.
    uses_dpapi = False

    def workflow_started(self, workflow) -> None:
        """A run is beginning."""

    def actor_registered(self, actor: Actor) -> None:
        """An operator exists (called once per actor per run)."""

    def token_transferred(self, src: Actor, dst: Actor,
                          token: Token) -> None:
        """One operator's output reached another's input."""

    def actor_fired(self, actor: Actor, ctx: FiringContext) -> None:
        """An operator consumed inputs and produced outputs."""

    def workflow_finished(self, workflow) -> None:
        """The run completed."""

    def context_extras(self, actor: Actor) -> tuple:
        """(dpapi, operator_ref) the firing context should use."""
        return None, None


class TextRecorder(Recorder):
    """Appends human-readable event lines to a file (Kepler's default)."""

    def __init__(self, sc, path: str):
        self.sc = sc
        self.path = path
        self._fd = sc.open(path, "a")

    def _line(self, text: str) -> None:
        self.sc.write(self._fd, (text + "\n").encode())

    def workflow_started(self, workflow) -> None:
        self._line(f"BEGIN workflow {workflow.name}")

    def actor_registered(self, actor: Actor) -> None:
        self._line(f"OPERATOR {actor.name} type={actor.kind} "
                   f"params={sorted(actor.params)}")

    def token_transferred(self, src, dst, token) -> None:
        self._line(f"TRANSFER {src.name} -> {dst.name}")

    def actor_fired(self, actor, ctx) -> None:
        self._line(f"FIRE {actor.name} read={ctx.files_read} "
                   f"wrote={ctx.files_written}")

    def workflow_finished(self, workflow) -> None:
        self._line(f"END workflow {workflow.name}")
        self.sc.close(self._fd)


class DatabaseRecorder(Recorder):
    """Rows in a relational-style events table."""

    def __init__(self) -> None:
        self.rows: list[tuple] = []

    def workflow_started(self, workflow) -> None:
        self.rows.append(("workflow_start", workflow.name))

    def actor_registered(self, actor) -> None:
        self.rows.append(("operator", actor.name, actor.kind,
                          tuple(sorted(actor.params))))

    def token_transferred(self, src, dst, token) -> None:
        self.rows.append(("transfer", src.name, dst.name))

    def actor_fired(self, actor, ctx) -> None:
        self.rows.append(("fire", actor.name,
                          tuple(path for path, _ in ctx.files_read),
                          tuple(path for path, _ in ctx.files_written)))

    def workflow_finished(self, workflow) -> None:
        self.rows.append(("workflow_end", workflow.name))


class PassRecorder(Recorder):
    """Discloses workflow provenance into PASSv2 through the DPAPI."""

    uses_dpapi = True

    def __init__(self, sc):
        self.sc = sc
        self.dpapi = sc.dpapi
        #: actor name -> pass_mkobj descriptor.
        self._fds: dict[str, int] = {}

    # -- operator objects ------------------------------------------------------------

    def actor_registered(self, actor: Actor) -> None:
        if actor.name in self._fds:
            return          # composite re-runs re-register inner actors
        fd = self.dpapi.pass_mkobj()
        self._fds[actor.name] = fd
        records = [
            self.dpapi.record(fd, Attr.TYPE, ObjType.OPERATOR),
            self.dpapi.record(fd, Attr.NAME, actor.name),
        ]
        params = ";".join(f"{key}={actor.params[key]!r}"
                          for key in sorted(actor.params)
                          if not callable(actor.params[key]))
        if params:
            records.append(self.dpapi.record(fd, Attr.PARAMS, params))
        self.dpapi.pass_write(fd, records=records)

    def operator_ref(self, actor: Actor) -> ObjectRef:
        return self.dpapi.ref_of(self._fds[actor.name])

    def context_extras(self, actor: Actor) -> tuple:
        return self.dpapi, self.operator_ref(actor)

    # -- events -------------------------------------------------------------------------

    def token_transferred(self, src: Actor, dst: Actor,
                          token: Token) -> None:
        """Ancestry between the sender and every recipient."""
        dst_fd = self._fds[dst.name]
        record = self.dpapi.record(dst_fd, Attr.INPUT,
                                   self.operator_ref(src))
        self.dpapi.pass_write(dst_fd, records=[record])

    def actor_fired(self, actor: Actor, ctx: FiringContext) -> None:
        """Link the operator to the files it read (writes were linked
        inline by the context's disclosed pass_write)."""
        fd = self._fds[actor.name]
        records = [
            self.dpapi.record(fd, Attr.INPUT, ref)
            for _, ref in ctx.files_read if ref is not None
        ]
        if records:
            self.dpapi.pass_write(fd, records=records)

    def workflow_finished(self, workflow) -> None:
        """Persist operator objects even when no file descends from one
        (e.g. a run whose sinks all failed): sync each explicitly."""
        for fd in self._fds.values():
            self.dpapi.pass_sync(fd)
