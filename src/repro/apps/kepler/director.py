"""The director: fires actors in dataflow order.

An SDF-style scheduler: source actors fire once per iteration; every
other actor fires whenever one token is available on each of its input
ports.  Token delivery notifies the recorder (Kepler's event mechanism),
which is where provenance leaves the engine.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

from repro.apps.kepler.actors import Actor, FiringContext, Token
from repro.apps.kepler.recording import (
    DatabaseRecorder,
    PassRecorder,
    Recorder,
    TextRecorder,
)
from repro.apps.kepler.workflow import Workflow
from repro.core.errors import WorkflowError


class Director:
    """Runs one workflow to completion inside one simulated process."""

    def __init__(self, workflow: Workflow, recorder: Optional[Recorder] = None):
        self.workflow = workflow
        self.recorder = recorder or Recorder()
        self.firings = 0

    def run(self, sc, iterations: int = 1) -> None:
        """Execute the workflow ``iterations`` times."""
        self.workflow.validate()
        self.recorder.workflow_started(self.workflow)
        for actor in self.workflow.topological_order():
            self.recorder.actor_registered(actor)

        queues: dict[tuple[str, str], deque[Token]] = {}
        for actor in self.workflow.actors():
            for port in actor.input_ports:
                queues[(actor.name, port)] = deque()

        for _ in range(iterations):
            for source in self.workflow.sources():
                self._fire(source, sc, queues)
            progress = True
            while progress:
                progress = False
                for actor in self.workflow.topological_order():
                    if not actor.input_ports:
                        continue
                    available = {
                        port: len(queues[(actor.name, port)])
                        for port in actor.input_ports
                    }
                    if actor.ready(available):
                        self._fire(actor, sc, queues)
                        progress = True
        self.recorder.workflow_finished(self.workflow)

    def _fire(self, actor: Actor, sc, queues) -> None:
        inputs = {}
        for port in actor.input_ports:
            queue = queues[(actor.name, port)]
            if not queue:
                raise WorkflowError(
                    f"{actor.name}: firing without a token on {port!r}")
            inputs[port] = queue.popleft()
        dpapi, operator_ref = self.recorder.context_extras(actor)
        if hasattr(actor, "recorder"):
            # Composite actors run their inner workflow under the same
            # recorder, so inner operators land in the same store.
            actor.recorder = self.recorder
        ctx = FiringContext(inputs=inputs, params=actor.params, sc=sc,
                            dpapi=dpapi, operator_ref=operator_ref)
        sc.compute(actor.cpu_seconds())
        actor.fire(ctx)
        self.firings += 1
        self.recorder.actor_fired(actor, ctx)
        for port, value in ctx._emitted:
            if port not in actor.output_ports:
                raise WorkflowError(
                    f"{actor.name}: emitted on unknown port {port!r}")
            self._deliver(actor, port, value, queues)

    def _deliver(self, src: Actor, port: str, value, queues) -> None:
        token = Token(value, producer=src.name)
        for dst_name, dst_port in self.workflow.receivers(src.name, port):
            dst = self.workflow.actor(dst_name)
            queues[(dst_name, dst_port)].append(token)
            self.recorder.token_transferred(src, dst, token)


def run_workflow(system, workflow: Workflow, recording: Optional[str] = "pass",
                 iterations: int = 1, text_log: str = "/pass/kepler.log",
                 engine_path: str = "/pass/bin/kepler"):
    """Run a workflow as a 'kepler' process on a simulated machine.

    ``recording``: None (no recording), "text", "database", or "pass".
    Returns the Director (and, for the database backend, leaves the rows
    on ``director.recorder.rows``).
    """
    holder: dict[str, Director] = {}

    def kepler_program(sc):
        if recording == "pass":
            recorder: Recorder = PassRecorder(sc)
        elif recording == "text":
            recorder = TextRecorder(sc, text_log)
        elif recording == "database":
            recorder = DatabaseRecorder()
        elif recording is None:
            recorder = Recorder()
        else:
            raise WorkflowError(f"unknown recording backend: {recording!r}")
        director = Director(workflow, recorder)
        holder["director"] = director
        director.run(sc, iterations=iterations)
        return 0

    if not system.kernel.vfs.exists(engine_path):
        system.register_program(engine_path, kepler_program)
        system.run(engine_path, argv=["kepler", workflow.name])
    else:
        system.run(engine_path, argv=["kepler", workflow.name],
                   program=kepler_program)
    return holder["director"]
