"""Composite actors: a workflow as an operator inside another workflow.

Kepler models hierarchy with composite actors — an operator whose
behavior is itself a workflow.  Firing a composite runs its inner
workflow with the composite's input tokens injected at named inner
sources and its outputs collected from named inner sinks.

Provenance composes naturally: the inner workflow's operators are
recorded like any others (the recorder is shared), and the composite
itself appears as one more operator whose inputs/outputs bracket the
inner run — so queries can reason at either granularity, which is the
paper's layering idea applied *within* the workflow layer.
"""

from __future__ import annotations

from typing import Optional

from repro.apps.kepler.actors import Actor, FiringContext, Token
from repro.apps.kepler.workflow import Workflow
from repro.core.errors import WorkflowError


class Injector(Actor):
    """Inner-workflow source whose token the composite supplies."""

    output_ports = ("out",)

    def __init__(self, name: str):
        super().__init__(name)
        self.pending: Optional[object] = None

    def fire(self, ctx: FiringContext) -> None:
        if self.pending is None:
            raise WorkflowError(f"{self.name}: no token injected")
        ctx.emit("out", self.pending)
        self.pending = None


class Collector(Actor):
    """Inner-workflow sink whose token the composite re-emits."""

    input_ports = ("in",)

    def __init__(self, name: str):
        super().__init__(name)
        self.collected: Optional[object] = None

    def fire(self, ctx: FiringContext) -> None:
        self.collected = ctx.inputs["in"].value


class CompositeActor(Actor):
    """One operator backed by an inner workflow.

    ``inputs`` maps the composite's input-port names to Injector actor
    names inside the inner workflow; ``outputs`` maps output-port names
    to Collector actor names.
    """

    def __init__(self, name: str, inner: Workflow,
                 inputs: Optional[dict[str, str]] = None,
                 outputs: Optional[dict[str, str]] = None, **params):
        super().__init__(name, **params)
        self.inner = inner
        self._input_map = dict(inputs or {})
        self._output_map = dict(outputs or {})
        self.input_ports = tuple(self._input_map)
        self.output_ports = tuple(self._output_map)
        for port, actor_name in self._input_map.items():
            if not isinstance(inner.actor(actor_name), Injector):
                raise WorkflowError(
                    f"{name}: input {port!r} must map to an Injector")
        for port, actor_name in self._output_map.items():
            if not isinstance(inner.actor(actor_name), Collector):
                raise WorkflowError(
                    f"{name}: output {port!r} must map to a Collector")
        #: Set by the director before firing (shared recorder).
        self.recorder = None

    @property
    def kind(self) -> str:
        return f"Composite({self.inner.name})"

    def fire(self, ctx: FiringContext) -> None:
        from repro.apps.kepler.director import Director

        for port, actor_name in self._input_map.items():
            injector = self.inner.actor(actor_name)
            injector.pending = ctx.inputs[port].value
        inner_director = Director(self.inner, self.recorder)
        inner_director.run(ctx.sc, iterations=1)
        for port, actor_name in self._output_map.items():
            collector = self.inner.actor(actor_name)
            if collector.collected is None:
                raise WorkflowError(
                    f"{self.name}: inner sink {actor_name!r} produced "
                    f"nothing")
            ctx.emit(port, collector.collected)
            collector.collected = None
