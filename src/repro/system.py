"""One-call assembly of a provenance-aware machine.

:class:`System` boots a simulated machine with PASS-enabled and plain
volumes, attaches Lasagna and Waldo to each PASS volume, wires the
observer/analyzer/distributor pipeline, and exposes convenience entry
points for running programs and querying provenance.

    sys_ = System.boot()
    with sys_.process() as proc:
        fd = proc.open("/pass/data.txt", "w")
        proc.write(fd, b"payload")
        proc.close(fd)
    sys_.sync()
    refs = sys_.find_by_name("/pass/data.txt")

Booting with ``provenance=False`` produces the vanilla-ext3 baseline the
benchmarks compare against.
"""

from __future__ import annotations

import contextlib
import dataclasses
import warnings
from typing import Iterable, Optional

from repro.core.pnode import ObjectRef
from repro.kernel.kernel import Kernel, Program
from repro.kernel.params import SimParams
from repro.kernel.syscalls import Syscalls
from repro.obs import Observability
from repro.storage.database import ProvenanceDatabase
from repro.storage.tier import CompactionPolicy, StorageTier
from repro.storage.waldo import Waldo

#: "Caller did not pass this kwarg" sentinel, so explicit None (e.g.
#: faults=None) still overrides a config that set something else.
_UNSET = object()


@dataclasses.dataclass(frozen=True)
class BootConfig:
    """Everything :meth:`System.boot` needs, as one value.

    Boot call sites (benchmarks, crashlab, workloads) share configs by
    defining them once and passing ``System.boot(config=...)``; the old
    individual kwargs still work and override config fields, so
    ``System.boot(config=QUIET, tracing=True)`` is the quiet config with
    tracing flipped on.
    """

    params: Optional[SimParams] = None
    pass_volumes: Iterable[str] = ("pass",)
    plain_volumes: Iterable[str] = ("scratch",)
    provenance: bool = True
    hostname: str = "sim"
    clock: object = None
    observability: bool = True
    tracing: bool = False
    #: Structured event journal (bounded, sampled JSONL events from the
    #: hot-path seams plus the slow-query log).  Off by default: the
    #: export half of observability is opt-in like tracing.
    journal: bool = False
    faults: object = None
    #: Batched ingest path (observer event batches, analyzer
    #: submit_batch, log group commit, bulk Waldo drain).  ``False``
    #: boots the per-record legacy pipeline *and* zeroes the log's
    #: group-commit thresholds -- the ingest benchmark's baseline arm.
    batching: bool = True
    #: Storage topology (see repro.storage.tier).  ``shards`` splits
    #: each PASS volume's WAP log / Waldo / database into that many
    #: intra-volume shards (1 = the classic single pipeline, byte
    #: identical); ``shard_key`` is ``"pnode"`` (hash the subject pnode
    #: across shards) or ``"volume"`` (one shard per volume regardless
    #: of count); ``compaction`` bounds the drained-segment archives
    #: (None = the default CompactionPolicy).
    shards: int = 1
    shard_key: str = "pnode"
    compaction: Optional[CompactionPolicy] = None

    def with_overrides(self, **overrides) -> "BootConfig":
        """A copy with every non-``_UNSET`` override applied."""
        changes = {key: value for key, value in overrides.items()
                   if value is not _UNSET}
        return dataclasses.replace(self, **changes) if changes else self


class System:
    """A booted machine: kernel + storage + provenance pipeline."""

    def __init__(self, kernel: Kernel, tier: StorageTier,
                 provenance: bool):
        self.kernel = kernel
        #: The storage facade: sharded WAP logs, Waldo drains, shard
        #: databases, query federation (repro.storage.tier).
        self.tier = tier
        self.provenance = provenance
        self._query_engine = None
        # Shared clocks (NFS pairs, sequential benchmark systems) carry
        # history from earlier machines; elapsed() measures from *this*
        # boot so reuse stays monotonic and starts at zero.
        self._boot_time = kernel.clock.now

    # -- construction ----------------------------------------------------------------

    @classmethod
    def boot(cls, params=_UNSET,
             pass_volumes=_UNSET,
             plain_volumes=_UNSET,
             provenance=_UNSET,
             hostname=_UNSET,
             clock=_UNSET,
             observability=_UNSET,
             tracing=_UNSET,
             journal=_UNSET,
             faults=_UNSET,
             batching=_UNSET,
             shards=_UNSET,
             shard_key=_UNSET,
             compaction=_UNSET,
             config: Optional[BootConfig] = None) -> "System":
        """Boot a machine from a :class:`BootConfig`.

        ``config`` supplies every knob at once (defaults to
        ``BootConfig()``); any individual kwarg passed explicitly
        overrides the config's field, so both the legacy kwarg style and
        ``System.boot(config=shared, tracing=True)`` work.

        Each name in ``pass_volumes`` becomes a PASS-enabled volume
        mounted at ``/<name>`` with its own Lasagna and Waldo; names in
        ``plain_volumes`` become ordinary (ext3-style) volumes.  The
        first PASS volume hosts provenance of transient objects by
        default.  With ``provenance=False`` the same volumes exist but
        the interceptor stays detached (the benchmark baseline).

        ``observability`` controls per-layer metrics (cheap; on by
        default), ``tracing`` controls span collection (off by
        default).  Both are readable via :meth:`stats` / :meth:`trace`.

        ``faults`` arms a :class:`repro.faults.FaultInjector` at every
        injection site in the stack (disk, WAP log, Lasagna, Waldo,
        distributor); None -- the default -- keeps the hot paths bare.
        """
        cfg = (config or BootConfig()).with_overrides(
            params=params, pass_volumes=pass_volumes,
            plain_volumes=plain_volumes, provenance=provenance,
            hostname=hostname, clock=clock, observability=observability,
            tracing=tracing, journal=journal, faults=faults,
            batching=batching, shards=shards, shard_key=shard_key,
            compaction=compaction)
        sim_params = cfg.params or SimParams()
        if not cfg.batching:
            # The unbatched arm must not group-commit either: zeroed
            # thresholds make every flush an explicit ordering point,
            # exactly the pre-batching pipeline.
            sim_params = dataclasses.replace(
                sim_params, log=dataclasses.replace(
                    sim_params.log, group_commit_records=0,
                    group_commit_bytes=0))
        obs = Observability(metrics_enabled=cfg.observability,
                            trace_enabled=cfg.tracing,
                            journal_enabled=cfg.journal)
        kernel = Kernel(sim_params, hostname=cfg.hostname, clock=cfg.clock,
                        obs=obs, faults=cfg.faults)
        if cfg.faults is not None:
            cfg.faults.bind_obs(obs)
        tier = StorageTier(shards=cfg.shards, shard_key=cfg.shard_key,
                           compaction=cfg.compaction, obs=kernel.obs,
                           faults=cfg.faults, batching=cfg.batching)
        for name in cfg.pass_volumes:
            volume = kernel.add_volume(name, f"/{name}", pass_capable=True)
            if cfg.provenance:
                tier.attach(volume, kernel.params)
        for name in cfg.plain_volumes:
            kernel.add_volume(name, f"/{name}", pass_capable=False)
        if cfg.provenance:
            kernel.enable_provenance(batching=cfg.batching)
            kernel.cache.shrink(kernel.params.cache.stack_cache_factor)
        return cls(kernel, tier, cfg.provenance)

    # -- running programs ---------------------------------------------------------------

    @contextlib.contextmanager
    def process(self, argv: Optional[list[str]] = None):
        """A context-managed 'shell' process for direct syscall use."""
        syscalls = self.kernel.spawn_shell(argv or ["sh"])
        try:
            yield syscalls
        finally:
            self.kernel.reap(syscalls.proc, 0)

    def register_program(self, path: str, program: Program,
                         size: int = 102400):
        """Install an executable file backed by a Python callable."""
        return self.kernel.register_program(path, program, size)

    def run(self, path: str, argv: Optional[list[str]] = None,
            env: Optional[dict[str, str]] = None,
            program: Optional[Program] = None):
        """Run a program to completion; returns the Process."""
        return self.kernel.run_program(path, argv=argv, env=env,
                                       program=program)

    # -- provenance plumbing -----------------------------------------------------------------

    @property
    def waldos(self) -> dict[str, Waldo]:
        """Deprecated: volume -> shard-0 Waldo.

        The pre-tier API exposed one Waldo per volume; under sharding a
        volume has several.  This view keeps old call sites working
        (it IS the complete picture at ``shards=1``) but new code
        should go through :attr:`tier`.
        """
        warnings.warn(
            "System.waldos is deprecated; use System.tier "
            "(StorageTier) -- a sharded volume has several Waldos",
            DeprecationWarning, stacklevel=2)
        return self.tier.shard0_waldos()

    def sync(self) -> int:
        """Flush all logs and drain every shard; returns records inserted.

        The live query engine (if one has been handed out) absorbs the
        drained records through the databases' push feed, so a sync is
        an O(new records) update -- the engine is never invalidated.
        """
        with self.obs.span("system.sync", layer="system"):
            return self.tier.sync()

    def sizes(self) -> dict:
        """Tier-wide database/index byte sizes (Table 3 rollup)."""
        return self.tier.sizes()

    def databases(self) -> list[ProvenanceDatabase]:
        """Every shard database of every volume."""
        return self.tier.databases()

    def database(self, volume: Optional[str] = None) -> ProvenanceDatabase:
        """One volume's shard-0 database (first PASS volume by default).
        Under sharding a volume's provenance spans all of its shard
        databases -- use :meth:`databases` or the query engine."""
        return self.tier.database(volume)

    # -- queries --------------------------------------------------------------------------

    def find_by_name(self, name: str) -> list[ObjectRef]:
        """Refs of objects whose NAME attribute equals ``name``."""
        refs: list[ObjectRef] = []
        for database in self.databases():
            refs.extend(database.find_by_name(name))
        return refs

    def query(self, text: str):
        """Run a PQL query against the merged provenance graph."""
        return self.query_engine().execute(text)

    def query_engine(self):
        """The single live PQL engine over all volumes' provenance.

        Built once (lazily), then kept current by the databases' push
        feed: records drained by later :meth:`sync` calls are spliced
        into the engine's graph incrementally, so the same engine object
        is returned forever.  Call :meth:`sync` first so recent
        provenance reaches the databases.
        """
        if self._query_engine is None:
            from repro.pql.engine import QueryEngine
            self._query_engine = QueryEngine.live(
                self.tier.federated_sources(), obs=self.obs)
        return self._query_engine

    def ancestry(self, name: str):
        """All ancestor refs of the newest object named ``name``."""
        from repro.query.helpers import ancestry_of_name
        return ancestry_of_name(self, name)

    def fsck(self):
        """Integrity-check every volume's database (see storage.fsck)."""
        from repro.storage.fsck import fsck
        return fsck(self.databases())

    # -- observability ----------------------------------------------------------

    @property
    def obs(self) -> "Observability":
        """This machine's observability instance (metrics + tracer)."""
        return self.kernel.obs

    def stats(self) -> dict:
        """Per-layer metrics snapshot (see docs/OBSERVABILITY.md)."""
        return self.kernel.obs.stats()

    def trace(self) -> list[dict]:
        """Finished spans (boot with ``tracing=True`` to collect)."""
        return self.kernel.obs.trace()

    def trace_export(self) -> dict:
        """The full trace document: ``{"spans", "dropped_spans"}``."""
        return self.kernel.obs.trace_export()

    def journal_events(self, kind: Optional[str] = None) -> list[dict]:
        """Journal events (boot with ``journal=True`` to collect)."""
        return self.kernel.obs.journal_events(kind)

    def elapsed(self) -> float:
        """Simulated seconds since *this* system booted (monotonic even
        when the underlying clock is shared with earlier boots)."""
        return self.kernel.clock.since(self._boot_time)

    def __repr__(self) -> str:
        mode = "PASSv2" if self.provenance else "baseline"
        return f"<System {self.kernel.hostname} ({mode}) t={self.elapsed():.3f}s>"
