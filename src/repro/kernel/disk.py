"""Simulated disk with a seek / rotation / transfer cost model.

The disk is a linear array of blocks carved into named *regions*
(journal, data, provenance log, ...).  Costs follow a simple but
honest mechanical model:

* an access within :attr:`DiskParams.sequential_window` blocks of the
  head's position after the previous transfer is sequential -- transfer
  cost only;
* a short hop (within :attr:`DiskParams.short_seek_blocks`) pays a
  track-to-track seek;
* anything longer pays the average seek plus rotational latency.

This is the mechanism behind the paper's Table 2 overheads: provenance
log appends land in a different region than file data, so interleaving
them with data writes converts sequential I/O into seek-bound I/O.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.errors import VolumeError
from repro.kernel.clock import SimClock
from repro.kernel.params import DiskParams


@dataclass
class Region:
    """A contiguous range of blocks with a name and a bump allocator."""

    name: str
    start: int
    length: int
    next_free: int = 0

    def allocate(self, blocks: int) -> int:
        """Allocate ``blocks`` contiguous blocks; returns the first block.

        Regions are large virtual address spaces; running one out means
        the simulation was configured too small, so it raises.
        """
        if self.next_free + blocks > self.length:
            raise VolumeError(
                f"region {self.name!r} out of space: "
                f"{self.next_free + blocks} > {self.length} blocks"
            )
        first = self.start + self.next_free
        self.next_free += blocks
        return first

    @property
    def tail(self) -> int:
        """Absolute block number one past the last allocated block."""
        return self.start + self.next_free


class SimulatedDisk:
    """One disk: regions, a head position, and cost accounting."""

    def __init__(self, clock: SimClock, params: DiskParams | None = None,
                 total_blocks: int = 1 << 26, faults=None):
        self._clock = clock
        self.params = params or DiskParams()
        self.total_blocks = total_blocks
        #: Fault injector (repro.faults); None keeps the I/O paths bare.
        self._faults = faults
        self._regions: dict[str, Region] = {}
        self._next_region_start = 0
        self._head = 0
        # Statistics.
        self.seeks = 0
        self.short_seeks = 0
        self.sequential_accesses = 0
        self.bytes_read = 0
        self.bytes_written = 0

    # -- layout ----------------------------------------------------------

    def add_region(self, name: str, blocks: int) -> Region:
        """Carve a new named region off the end of the disk."""
        if name in self._regions:
            raise VolumeError(f"duplicate region name: {name!r}")
        if self._next_region_start + blocks > self.total_blocks:
            raise VolumeError("disk too small for requested regions")
        region = Region(name, self._next_region_start, blocks)
        self._regions[name] = region
        self._next_region_start += blocks
        return region

    def region(self, name: str) -> Region:
        """Look up a region by name."""
        try:
            return self._regions[name]
        except KeyError:
            raise VolumeError(f"no such region: {name!r}") from None

    # -- I/O ---------------------------------------------------------------

    def read(self, block: int, nbytes: int) -> None:
        """Charge the clock for reading ``nbytes`` starting at ``block``."""
        self._access(block, nbytes, "disk_read")
        self.bytes_read += nbytes

    def write(self, block: int, nbytes: int) -> None:
        """Charge the clock for writing ``nbytes`` starting at ``block``."""
        self._access(block, nbytes, "disk_write")
        self.bytes_written += nbytes

    def _access(self, block: int, nbytes: int, category: str) -> None:
        if nbytes < 0:
            raise ValueError("negative I/O size")
        if self._faults is not None:
            site = ("disk.read" if category == "disk_read"
                    else "disk.write")
            self._faults.fire(site, block=block, nbytes=nbytes)
        p = self.params
        distance = abs(block - self._head)
        if distance <= p.sequential_window:
            cost = 0.0
            self.sequential_accesses += 1
        elif distance <= p.short_seek_blocks:
            cost = p.short_seek
            self.short_seeks += 1
        else:
            cost = p.avg_seek + p.rotational
            self.seeks += 1
        cost += nbytes / p.transfer_rate
        self._clock.advance(cost, category)
        # Head finishes just past the last block touched.
        nblocks = max(1, -(-nbytes // p.block_size))
        self._head = block + nblocks

    def clustered_write(self, nbytes: int, barrier: float = 0.0) -> None:
        """A write-back append to a clustered region (journal-style).

        Such writes are queued and committed in batches near their
        region, so they cost a track-to-track seek plus transfer (plus
        an optional ordering ``barrier``) and do not displace the head
        that foreground reads depend on.
        """
        if nbytes < 0:
            raise ValueError("negative I/O size")
        if self._faults is not None:
            self._faults.fire("disk.clustered_write", nbytes=nbytes)
        self.short_seeks += 1
        cost = self.params.short_seek + barrier + nbytes / self.params.transfer_rate
        self._clock.advance(cost, "disk_write")
        self.bytes_written += nbytes

    @property
    def head(self) -> int:
        """Current head position (block number)."""
        return self._head
