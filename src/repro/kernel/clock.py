"""Virtual clock for the simulated machine.

All costs (CPU, disk, network) advance one shared clock; elapsed
simulated time is simply the clock reading.  The clock also keeps a
breakdown by charge category so benchmarks can attribute overheads
(e.g. how much of PA-NFS's Postmark overhead is stackable copying --
the paper reports 14.8 points of 16.8).
"""

from __future__ import annotations

from collections import defaultdict


class SimClock:
    """Monotonic simulated clock with per-category accounting."""

    def __init__(self) -> None:
        self._now = 0.0
        self._by_category: dict[str, float] = defaultdict(float)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance(self, seconds: float, category: str = "other") -> None:
        """Advance time by ``seconds``, attributed to ``category``."""
        if seconds < 0:
            raise ValueError(f"time cannot move backwards: {seconds}")
        self._now += seconds
        self._by_category[category] += seconds

    def since(self, t0: float) -> float:
        """Elapsed simulated seconds since an earlier reading.

        The canonical way to measure an epoch on a *shared* clock:
        ``System.boot`` records ``clock.now`` as its boot time and
        reports ``elapsed()`` relative to it, so booting a second
        machine on the same clock (NFS pairs, sequential benchmark
        systems) starts its elapsed time at zero instead of inheriting
        the earlier machine's history."""
        if t0 > self._now:
            raise ValueError(
                f"reference time {t0} is in the future (now {self._now})"
            )
        return self._now - t0

    def breakdown(self) -> dict[str, float]:
        """Copy of the per-category time accounting."""
        return dict(self._by_category)

    def category(self, name: str) -> float:
        """Total time charged to one category."""
        return self._by_category.get(name, 0.0)


class Stopwatch:
    """Measures simulated time across a region of code.

    Usage::

        with Stopwatch(clock) as sw:
            run_workload()
        print(sw.elapsed)
    """

    def __init__(self, clock: SimClock):
        self._clock = clock
        self._start = 0.0
        self.elapsed = 0.0

    def __enter__(self) -> "Stopwatch":
        self._start = self._clock.now
        return self

    def __exit__(self, *exc) -> None:
        self.elapsed = self._clock.now - self._start
