"""Simulated operating-system substrate.

The paper's artifact is a modified Linux kernel; here the kernel is a
deterministic simulation: a virtual clock, a disk with an explicit
seek/rotation/transfer cost model, a page cache, a VFS with mountable
volumes, processes with file descriptors and pipes, and a system-call
layer that feeds the PASSv2 interceptor.  Programs are Python callables
executed against the syscall interface, so every provenance-relevant
event the real kernel would see is produced here too.
"""

from repro.kernel.clock import SimClock
from repro.kernel.disk import SimulatedDisk
from repro.kernel.kernel import Kernel
from repro.kernel.params import SimParams

__all__ = ["Kernel", "SimClock", "SimParams", "SimulatedDisk"]
