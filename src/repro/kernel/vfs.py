"""Virtual file system: sparse file data, inodes, directories, mounts.

File *content* is real (applications like the workflow engine transform
actual bytes), but stored sparsely: regions written as "holes" by bulk
workloads cost only bookkeeping, while explicitly written bytes are kept
verbatim.  Reads materialize zeros for holes.

The VFS resolves paths across a mount table of volumes and performs
metadata operations; all I/O *cost* accounting lives in the volume layer
(:mod:`repro.kernel.volume`), keeping this module pure data structure.
"""

from __future__ import annotations

import bisect
from typing import TYPE_CHECKING, Iterator, Optional

from repro.core.errors import (
    CrossDeviceLink,
    DirectoryNotEmpty,
    FileExists,
    FileNotFound,
    IsADirectory,
    NotADirectory,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type hints
    from repro.kernel.volume import Volume


class SparseFile:
    """Byte store keeping only explicitly written data; holes read as zeros."""

    def __init__(self) -> None:
        self._chunks: dict[int, bytes] = {}
        self._offsets: list[int] = []   # sorted keys of _chunks
        self._size = 0

    @property
    def size(self) -> int:
        """Logical file size in bytes."""
        return self._size

    @property
    def real_bytes(self) -> int:
        """Bytes of actual (non-hole) data stored."""
        return sum(len(chunk) for chunk in self._chunks.values())

    def write(self, offset: int, data: bytes) -> None:
        """Write real bytes at ``offset``, replacing anything beneath."""
        if offset < 0:
            raise ValueError("negative offset")
        if not data:
            return
        self._clear_range(offset, offset + len(data))
        self._insert(offset, bytes(data))
        self._size = max(self._size, offset + len(data))
        self._coalesce(offset)

    def write_hole(self, offset: int, length: int) -> None:
        """Write ``length`` synthetic (zero) bytes: size grows, no storage."""
        if offset < 0 or length < 0:
            raise ValueError("negative offset or length")
        if length == 0:
            return
        self._clear_range(offset, offset + length)
        self._size = max(self._size, offset + length)

    def read(self, offset: int, length: int) -> bytes:
        """Read ``length`` bytes at ``offset``; holes come back as zeros."""
        if offset < 0 or length < 0:
            raise ValueError("negative offset or length")
        length = min(length, max(0, self._size - offset))
        if length == 0:
            return b""
        end = offset + length
        out = bytearray(length)
        index = bisect.bisect_right(self._offsets, offset) - 1
        if index < 0:
            index = 0
        while index < len(self._offsets):
            start = self._offsets[index]
            if start >= end:
                break
            chunk = self._chunks[start]
            chunk_end = start + len(chunk)
            lo = max(start, offset)
            hi = min(chunk_end, end)
            if lo < hi:
                out[lo - offset:hi - offset] = chunk[lo - start:hi - start]
            index += 1
        return bytes(out)

    def truncate(self, size: int) -> None:
        """Set the file size, discarding data beyond it."""
        if size < 0:
            raise ValueError("negative size")
        self._clear_range(size, max(size, self._size))
        self._size = size

    # -- internals ---------------------------------------------------------

    def _insert(self, offset: int, data: bytes) -> None:
        self._chunks[offset] = data
        bisect.insort(self._offsets, offset)

    def _remove(self, offset: int) -> bytes:
        data = self._chunks.pop(offset)
        index = bisect.bisect_left(self._offsets, offset)
        del self._offsets[index]
        return data

    def _clear_range(self, lo: int, hi: int) -> None:
        """Remove or trim chunks overlapping [lo, hi)."""
        if lo >= hi:
            return
        index = bisect.bisect_right(self._offsets, lo) - 1
        if index < 0:
            index = 0
        doomed: list[int] = []
        repairs: list[tuple[int, bytes]] = []
        while index < len(self._offsets):
            start = self._offsets[index]
            if start >= hi:
                break
            chunk = self._chunks[start]
            end = start + len(chunk)
            if end <= lo:
                index += 1
                continue
            doomed.append(start)
            if start < lo:
                repairs.append((start, chunk[:lo - start]))
            if end > hi:
                repairs.append((hi, chunk[hi - start:]))
            index += 1
        for start in doomed:
            self._remove(start)
        for start, data in repairs:
            if data:
                self._insert(start, data)

    def _coalesce(self, around: int) -> None:
        """Merge chunks adjacent to the one at/near ``around``."""
        index = max(0, bisect.bisect_right(self._offsets, around) - 2)
        while index + 1 < len(self._offsets):
            start = self._offsets[index]
            nxt = self._offsets[index + 1]
            chunk = self._chunks[start]
            if start + len(chunk) == nxt:
                merged = chunk + self._remove(nxt)
                self._chunks[start] = merged
            else:
                index += 1
            if start > around + 1:
                break


class Inode:
    """One file-system object on one volume."""

    FILE = "file"
    DIR = "dir"

    def __init__(self, volume: "Volume", ino: int, kind: str, pnode: int = 0):
        self.volume = volume
        self.ino = ino
        self.kind = kind
        self.pnode = pnode           # 0 on non-PASS volumes
        self.version = 0
        self.nlink = 1
        self.data = SparseFile() if kind == self.FILE else None
        self.entries: dict[str, int] = {} if kind == self.DIR else None
        self.extents: list[tuple[int, int]] = []   # (first block, nblocks)
        self.allocated_blocks = 0

    @property
    def is_dir(self) -> bool:
        return self.kind == self.DIR

    @property
    def size(self) -> int:
        return self.data.size if self.data is not None else 0

    def ref(self):
        """Current (pnode, version) identity; PASS volumes only."""
        from repro.core.pnode import ObjectRef
        return ObjectRef(self.pnode, self.version)

    def block_for(self, offset: int) -> int:
        """Absolute disk block holding byte ``offset`` (for cost model)."""
        block_size = self.volume.block_size
        logical = offset // block_size
        for first, count in self.extents:
            if logical < count:
                return first + logical
            logical -= count
        # Unallocated: pretend the access lands just past the last extent.
        if self.extents:
            first, count = self.extents[-1]
            return first + count
        return self.volume.data_region.tail

    def __repr__(self) -> str:
        return f"<Inode {self.volume.name}:{self.ino} {self.kind} pnode={self.pnode}>"


class VFS:
    """Mount table and path operations spanning volumes."""

    def __init__(self) -> None:
        self._mounts: dict[str, "Volume"] = {}

    # -- mounting ----------------------------------------------------------

    def mount(self, volume: "Volume", path: str) -> None:
        """Mount ``volume`` at absolute ``path`` ('/' or '/name')."""
        path = self._norm(path)
        if path in self._mounts:
            raise FileExists(f"mount point busy: {path}")
        self._mounts[path] = volume
        volume.mountpoint = path

    def unmount(self, path: str) -> "Volume":
        """Remove the mount at ``path`` and return its volume."""
        path = self._norm(path)
        try:
            volume = self._mounts.pop(path)
        except KeyError:
            raise FileNotFound(f"not a mount point: {path}") from None
        volume.mountpoint = None
        return volume

    def volume_for(self, path: str) -> tuple["Volume", str]:
        """Longest-prefix match: returns (volume, path relative to it)."""
        path = self._norm(path)
        best: Optional[str] = None
        for mount in self._mounts:
            if path == mount or path.startswith(mount.rstrip("/") + "/"):
                if best is None or len(mount) > len(best):
                    best = mount
        if best is None:
            raise FileNotFound(f"no volume mounted for {path}")
        rel = path[len(best):].lstrip("/")
        return self._mounts[best], rel

    def mounts(self) -> dict[str, "Volume"]:
        """Copy of the mount table."""
        return dict(self._mounts)

    # -- path operations -----------------------------------------------------

    def resolve(self, path: str) -> Inode:
        """Resolve ``path`` to an inode or raise :class:`FileNotFound`."""
        volume, rel = self.volume_for(path)
        inode = volume.root
        if not rel:
            return inode
        for part in rel.split("/"):
            if not inode.is_dir:
                raise NotADirectory(path)
            ino = inode.entries.get(part)
            if ino is None:
                raise FileNotFound(path)
            inode = volume.inode(ino)
        return inode

    def resolve_parent(self, path: str) -> tuple["Volume", Inode, str]:
        """Resolve the directory containing ``path``; returns its volume,
        the directory inode, and the final name component."""
        path = self._norm(path)
        if path == "/":
            raise IsADirectory("cannot operate on the root directory itself")
        parent_path, _, name = path.rpartition("/")
        parent = self.resolve(parent_path or "/")
        if not parent.is_dir:
            raise NotADirectory(parent_path or "/")
        return parent.volume, parent, name

    def exists(self, path: str) -> bool:
        """True when ``path`` resolves."""
        try:
            self.resolve(path)
            return True
        except (FileNotFound, NotADirectory):
            return False

    def create(self, path: str, exclusive: bool = True) -> Inode:
        """Create a regular file; returns its inode."""
        volume, parent, name = self.resolve_parent(path)
        existing = parent.entries.get(name)
        if existing is not None:
            if exclusive:
                raise FileExists(path)
            inode = volume.inode(existing)
            if inode.is_dir:
                raise IsADirectory(path)
            return inode
        inode = volume.create_inode(Inode.FILE)
        parent.entries[name] = inode.ino
        return inode

    def mkdir(self, path: str) -> Inode:
        """Create a directory."""
        volume, parent, name = self.resolve_parent(path)
        if name in parent.entries:
            raise FileExists(path)
        inode = volume.create_inode(Inode.DIR)
        parent.entries[name] = inode.ino
        return inode

    def unlink(self, path: str) -> Inode:
        """Remove a file name; returns the (possibly dying) inode."""
        volume, parent, name = self.resolve_parent(path)
        ino = parent.entries.get(name)
        if ino is None:
            raise FileNotFound(path)
        inode = volume.inode(ino)
        if inode.is_dir:
            raise IsADirectory(path)
        del parent.entries[name]
        inode.nlink -= 1
        if inode.nlink == 0:
            volume.drop_inode(inode)
        return inode

    def rmdir(self, path: str) -> None:
        """Remove an empty directory."""
        volume, parent, name = self.resolve_parent(path)
        ino = parent.entries.get(name)
        if ino is None:
            raise FileNotFound(path)
        inode = volume.inode(ino)
        if not inode.is_dir:
            raise NotADirectory(path)
        if inode.entries:
            raise DirectoryNotEmpty(path)
        del parent.entries[name]
        volume.drop_inode(inode)

    def link(self, existing: str, new: str) -> Inode:
        """Hard link: a second name for the same inode (same volume).

        Provenance is attached to the inode, so both names share one
        provenance history -- the property PA-links relies on when a
        downloaded file is linked or renamed around.
        """
        inode = self.resolve(existing)
        if inode.is_dir:
            raise IsADirectory(existing)
        new_volume, new_parent, new_name = self.resolve_parent(new)
        if inode.volume is not new_volume:
            raise CrossDeviceLink(f"{existing} -> {new}")
        if new_name in new_parent.entries:
            raise FileExists(new)
        new_parent.entries[new_name] = inode.ino
        inode.nlink += 1
        return inode

    def rename(self, old: str, new: str) -> Inode:
        """Rename within one volume; provenance follows the inode."""
        old_volume, old_parent, old_name = self.resolve_parent(old)
        new_volume, new_parent, new_name = self.resolve_parent(new)
        if old_volume is not new_volume:
            raise CrossDeviceLink(f"{old} -> {new}")
        ino = old_parent.entries.get(old_name)
        if ino is None:
            raise FileNotFound(old)
        displaced = new_parent.entries.get(new_name)
        inode = old_volume.inode(ino)
        if displaced is not None and displaced != ino:
            victim_kind = old_volume.inode(displaced)
            if victim_kind.is_dir and not inode.is_dir:
                raise IsADirectory(f"cannot replace directory {new}")
            if not victim_kind.is_dir and inode.is_dir:
                raise NotADirectory(f"cannot replace file {new} with "
                                    f"a directory")
        del old_parent.entries[old_name]
        new_parent.entries[new_name] = ino
        if displaced is not None and displaced != ino:
            victim = old_volume.inode(displaced)
            victim.nlink -= 1
            if victim.nlink == 0:
                old_volume.drop_inode(victim)
        return inode

    def readdir(self, path: str) -> list[str]:
        """Sorted names in a directory."""
        inode = self.resolve(path)
        if not inode.is_dir:
            raise NotADirectory(path)
        return sorted(inode.entries)

    def walk(self, path: str = "/") -> Iterator[tuple[str, Inode]]:
        """Depth-first (path, inode) traversal below ``path``."""
        inode = self.resolve(path)
        yield self._norm(path), inode
        if inode.is_dir:
            base = self._norm(path).rstrip("/")
            for name in sorted(inode.entries):
                yield from self.walk(f"{base}/{name}")

    @staticmethod
    def _norm(path: str) -> str:
        """Normalize to an absolute path with no trailing slash (except /)."""
        if not path.startswith("/"):
            raise FileNotFound(f"paths must be absolute: {path!r}")
        parts = [part for part in path.split("/") if part and part != "."]
        stack: list[str] = []
        for part in parts:
            if part == "..":
                if stack:
                    stack.pop()
            else:
                stack.append(part)
        return "/" + "/".join(stack)
