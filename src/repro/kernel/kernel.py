"""The simulated machine: clock, disk, VFS, processes, provenance wiring.

A :class:`Kernel` is one machine.  Booted bare it behaves like vanilla
Linux-on-ext3 (the paper's baseline).  :meth:`enable_provenance` builds
the PASSv2 pipeline -- observer, analyzer, distributor -- and attaches
the interceptor; the storage layer (:mod:`repro.storage`) attaches
Lasagna to each PASS-capable volume.  Use :class:`repro.system.System`
for a one-call assembly of the whole stack.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.core.errors import FileNotFound, VolumeError
from repro.kernel.cache import PageCache
from repro.kernel.clock import SimClock
from repro.kernel.disk import SimulatedDisk
from repro.kernel.interceptor import Interceptor
from repro.kernel.params import SimParams
from repro.kernel.process import FileDescriptor, Process
from repro.kernel.syscalls import Syscalls
from repro.kernel.vfs import VFS, Inode
from repro.kernel.volume import Volume, allocate_volume_id
from repro.obs import Observability

#: A program body: called with a Syscalls facade; may return an exit code
#: or a generator (cooperatively scheduled via Kernel.start/schedule).
Program = Callable[[Syscalls], object]


class Kernel:
    """One simulated machine."""

    #: Reported by provenance records (the paper's testbed kernel).
    version_string = "sim-linux-2.6.23.17-pass"

    def __init__(self, params: Optional[SimParams] = None,
                 hostname: str = "sim", clock: Optional[SimClock] = None,
                 obs: Optional[Observability] = None, faults=None):
        self.params = params or SimParams()
        self.hostname = hostname
        # Machines in one simulation (NFS client + server) share a clock,
        # so a blocking RPC charges the caller's elapsed time correctly.
        self.clock = clock or SimClock()
        # One observability instance per machine; spans read simulated
        # time through the tracer instead of ad-hoc clock.now calls.
        self.obs = obs or Observability()
        self.obs.bind_clock(lambda: self.clock.now)
        #: Fault injector (repro.faults); threaded into the disk and the
        #: provenance pipeline.  None (the default) keeps every site bare.
        self.faults = faults
        self.disk = SimulatedDisk(self.clock, self.params.disk,
                                  faults=faults)
        self.cache = PageCache(self.params.cache, obs=self.obs)
        self.vfs = VFS()
        self.interceptor = Interceptor(obs=self.obs)

        self._volumes_by_name: dict[str, Volume] = {}
        self._volumes_by_id: dict[int, Volume] = {}
        self._processes: dict[int, Process] = {}
        self._next_pid = 1
        self._programs: dict[tuple[int, int], Program] = {}
        self._libpass: dict[int, object] = {}
        self._scheduled: list[tuple[Process, object]] = []

        # PASSv2 pipeline; populated by enable_provenance().
        self.observer = None
        self.analyzer = None
        self.distributor = None

    # -- volumes ------------------------------------------------------------------

    def add_volume(self, name: str, mountpoint: str,
                   pass_capable: bool = False) -> Volume:
        """Create a volume and mount it."""
        if name in self._volumes_by_name:
            raise VolumeError(f"duplicate volume name: {name!r}")
        # Volume ids are globally unique across machines: an NFS client
        # registers the *server's* export volume id in its own table for
        # pnode routing, so two machines may never reuse an id.
        volume = Volume(name, allocate_volume_id(), self.clock, self.disk,
                        self.cache, pass_capable=pass_capable)
        self._volumes_by_name[name] = volume
        self._volumes_by_id[volume.volume_id] = volume
        self.vfs.mount(volume, mountpoint)
        volume.on_drop_inode = self._drop_inode
        return volume

    def mount_volume(self, volume, mountpoint: str) -> None:
        """Mount an externally constructed volume-like object (NFS).

        The object keeps its own ``volume_id`` (an NFS client volume
        carries the *server's* export id so pnode routing works) and is
        registered under both its name and that id.
        """
        if volume.name in self._volumes_by_name:
            raise VolumeError(f"duplicate volume name: {volume.name!r}")
        if volume.volume_id in self._volumes_by_id:
            raise VolumeError(
                f"volume id {volume.volume_id} already registered here"
            )
        self._volumes_by_name[volume.name] = volume
        self._volumes_by_id[volume.volume_id] = volume
        self.vfs.mount(volume, mountpoint)
        if getattr(volume, "on_drop_inode", "absent") is None:
            volume.on_drop_inode = self._drop_inode

    def volume(self, name: str) -> Volume:
        """Look up a volume by name."""
        try:
            return self._volumes_by_name[name]
        except KeyError:
            raise VolumeError(f"no such volume: {name!r}") from None

    def volume_by_id(self, volume_id: int) -> Volume:
        """Look up a volume by id (pnode routing)."""
        try:
            return self._volumes_by_id[volume_id]
        except KeyError:
            raise VolumeError(f"no volume with id {volume_id}") from None

    def volumes(self) -> list[Volume]:
        """All volumes on this machine."""
        return list(self._volumes_by_name.values())

    def pass_volumes(self) -> list[Volume]:
        """PASS-capable volumes."""
        return [v for v in self.volumes() if v.pass_capable]

    def _drop_inode(self, inode: Inode) -> None:
        observer = self.interceptor.event("drop_inode")
        if observer is not None:
            observer.on_drop_inode(inode)
        self._programs.pop((inode.volume.volume_id, inode.ino), None)

    # -- provenance wiring ------------------------------------------------------------

    def enable_provenance(self, default_volume: Optional[str] = None,
                          batching: bool = True) -> None:
        """Build the observer/analyzer/distributor pipeline and attach the
        interceptor.  Lasagna must already be attached to PASS volumes
        (the storage layer or :class:`repro.system.System` does that).

        ``batching`` selects the batched ingest path: the observer groups
        each syscall event into one analyzer batch, the analyzer emits
        :class:`RecordBatch` carriers through ``flush_batch``, and the
        log group-commits.  ``False`` forces the per-record legacy path
        (the benchmark baseline and an ablation arm)."""
        from repro.core.analyzer import Analyzer
        from repro.core.distributor import Distributor
        from repro.core.observer import Observer

        if default_volume is None:
            passers = self.pass_volumes()
            default_volume = passers[0].name if passers else None

        self.distributor = Distributor(
            flush_sink=self._provenance_sink,
            volume_name_of=lambda vid: self.volume_by_id(vid).name,
            default_volume=default_volume,
            faults=self.faults,
        )
        self.analyzer = Analyzer(
            emit=self.distributor.dispatch,
            clock=self.clock,
            record_cost=self.params.cpu.provenance_record,
            emit_batch=self.distributor.flush_batch if batching else None,
        )
        self.observer = Observer(self, self.analyzer, self.distributor,
                                 batching=batching)
        self.analyzer.bind_obs(self.obs)
        self.distributor.bind_obs(self.obs)
        self.observer.bind_obs(self.obs)
        self.interceptor.attach(self.observer)

    def disable_provenance(self) -> None:
        """Detach the interceptor (baseline mode); pipeline state remains."""
        self.interceptor.detach()

    def _provenance_sink(self, volume_name: str, bundle) -> None:
        """Distributor flush target: the volume's Lasagna log."""
        volume = self.volume(volume_name)
        if volume.lasagna is None:
            raise VolumeError(
                f"volume {volume_name!r} has no Lasagna attached; "
                "use repro.system.System or attach one explicitly"
            )
        volume.lasagna.append_provenance(bundle)

    @property
    def provenance_on(self) -> bool:
        """True when the interceptor is feeding the observer."""
        return self.interceptor.enabled and self.observer is not None

    # -- programs -----------------------------------------------------------------------

    def register_program(self, path: str, program: Program,
                         size: int = 102400) -> Inode:
        """Install an executable at ``path`` backed by ``program``.

        The file really exists (EXEC ancestry edges point at it); its
        content is a hole of ``size`` bytes.
        """
        parent_dir = path.rpartition("/")[0]
        self._ensure_dirs(parent_dir or "/")
        inode = self.vfs.create(path, exclusive=False)
        inode.volume.write_bytes(inode, 0, None, size)
        self._programs[(inode.volume.volume_id, inode.ino)] = program
        return inode

    def _ensure_dirs(self, path: str) -> None:
        if path == "/" or self.vfs.exists(path):
            return
        self._ensure_dirs(path.rpartition("/")[0] or "/")
        self.vfs.mkdir(path)

    def program_at(self, path: str) -> Program:
        """Resolve a registered program by path."""
        inode = self.vfs.resolve(path)
        key = (inode.volume.volume_id, inode.ino)
        try:
            return self._programs[key]
        except KeyError:
            raise FileNotFound(f"not an executable: {path}") from None

    # -- processes ----------------------------------------------------------------------

    def _create_process(self, argv: list[str], env: dict[str, str],
                        parent: Optional[Process]) -> Process:
        pnode = 0
        if self.provenance_on:
            pnode = self.observer.transient_pnode()
        proc = Process(self, self._next_pid,
                       parent.pid if parent else 0, pnode, argv, env)
        proc.stdin_fd = None
        proc.stdout_fd = None
        self._next_pid += 1
        self._processes[proc.pid] = proc
        return proc

    def run_program(self, path: str, argv: Optional[list[str]] = None,
                    env: Optional[dict[str, str]] = None,
                    parent: Optional[Process] = None,
                    stdin: Optional[FileDescriptor] = None,
                    stdout: Optional[FileDescriptor] = None,
                    program: Optional[Program] = None) -> Process:
        """fork + execve + run to completion (synchronously).

        ``program`` overrides the executable lookup (anonymous programs
        used by tests); otherwise ``path`` must name a registered
        executable.
        """
        proc, gen = self._launch(path, argv, env, parent, stdin, stdout,
                                 program)
        if gen is not None:
            try:
                while True:
                    next(gen)
            except StopIteration as stop:
                self.reap(proc, stop.value)
        return proc

    def start(self, path: str, argv: Optional[list[str]] = None,
              env: Optional[dict[str, str]] = None,
              parent: Optional[Process] = None,
              stdin: Optional[FileDescriptor] = None,
              stdout: Optional[FileDescriptor] = None,
              program: Optional[Program] = None) -> Process:
        """Launch a *generator* program for cooperative scheduling.

        Plain-function programs run to completion immediately (there is
        nothing to interleave).  Drive generators with :meth:`schedule`.
        """
        proc, gen = self._launch(path, argv, env, parent, stdin, stdout,
                                 program)
        if gen is not None:
            self._scheduled.append((proc, gen))
        return proc

    def schedule(self) -> None:
        """Round-robin the started generator programs to completion."""
        while self._scheduled:
            proc, gen = self._scheduled.pop(0)
            try:
                next(gen)
            except StopIteration as stop:
                self.reap(proc, stop.value)
            else:
                self._scheduled.append((proc, gen))

    def _launch(self, path, argv, env, parent, stdin, stdout, program):
        argv = argv if argv is not None else [path]
        env = env if env is not None else {"PATH": "/bin", "HOME": "/root"}
        binary: Optional[Inode] = None
        if program is None:
            program = self.program_at(path)
            binary = self.vfs.resolve(path)
        proc = self._create_process(argv, env, parent)
        proc.exec_path = path
        proc.program = program

        observer = self.interceptor.event("fork")
        if observer is not None:
            observer.on_fork(proc, parent)
        observer = self.interceptor.event("execve")
        if observer is not None:
            observer.on_execve(proc, binary, path)

        if stdin is not None:
            copy = FileDescriptor(stdin.kind, inode=stdin.inode,
                                  pipe=stdin.pipe, passobj=stdin.passobj,
                                  readable=True, writable=False)
            copy.path = getattr(stdin, "path", None)
            proc.stdin_fd = proc.install_fd(copy)
        if stdout is not None:
            copy = FileDescriptor(stdout.kind, inode=stdout.inode,
                                  pipe=stdout.pipe, passobj=stdout.passobj,
                                  readable=False, writable=True)
            copy.path = getattr(stdout, "path", None)
            proc.stdout_fd = proc.install_fd(copy)

        result = program(Syscalls(self, proc))
        if hasattr(result, "__next__"):
            return proc, result
        self.reap(proc, result)
        return proc, None

    def reap(self, proc: Process, result) -> None:
        """Retire a finished process: exit provenance, fd close, cleanup.

        Public because the facade (and generator-driven shells) finish
        processes whose programs ran to completion elsewhere.
        """
        proc.exit_code = int(result) if isinstance(result, int) else 0
        proc.alive = False
        observer = self.interceptor.event("exit")
        if observer is not None:
            observer.on_exit(proc)
        proc.close_all()
        self._libpass.pop(proc.pid, None)

    def process(self, pid: int) -> Process:
        """Look up a process by pid."""
        from repro.core.errors import NoSuchProcess
        try:
            return self._processes[pid]
        except KeyError:
            raise NoSuchProcess(f"no process {pid}") from None

    # -- libpass ----------------------------------------------------------------------

    def libpass_for(self, proc: Process):
        """The user-level DPAPI bound to one process (cached)."""
        from repro.core.libpass import LibPass
        if proc.pid not in self._libpass:
            self._libpass[proc.pid] = LibPass(self, proc)
        return self._libpass[proc.pid]

    # -- convenience --------------------------------------------------------------------

    def syscalls_for(self, proc: Process) -> Syscalls:
        """A syscall facade for an existing process (tests, REPL use)."""
        return Syscalls(self, proc)

    def spawn_shell(self, argv: Optional[list[str]] = None) -> Syscalls:
        """An interactive 'shell' process for direct syscall use."""
        proc = self._create_process(argv or ["sh"], {"PATH": "/bin"}, None)
        observer = self.interceptor.event("fork")
        if observer is not None:
            observer.on_fork(proc, None)
        observer = self.interceptor.event("execve")
        if observer is not None:
            observer.on_execve(proc, None, argv[0] if argv else "sh")
        return Syscalls(self, proc)

    def sync(self) -> None:
        """Flush every Lasagna log and drain every Waldo."""
        for volume in self.pass_volumes():
            if volume.lasagna is not None:
                volume.lasagna.sync()
