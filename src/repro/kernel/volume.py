"""Volumes: ext3-style file systems with a journal and a data region.

A volume owns an inode table, allocates disk blocks for file data, and
charges the simulated disk for I/O.  The baseline configuration models
ext3 in *ordered* mode: metadata operations append small records to the
volume's journal region; data writes go straight to the data region.

A PASS-enabled volume additionally owns a pnode allocator and, once the
storage layer attaches Lasagna (:mod:`repro.storage.lasagna`), a
provenance log region.  The kernel's write path goes through
``volume.fs_top`` so that Lasagna can interpose (stackable file system).
"""

from __future__ import annotations

import itertools
from typing import Callable, Optional

from repro.core.errors import IsADirectory, VolumeError
from repro.core.pnode import PnodeAllocator
from repro.kernel.cache import PageCache
from repro.kernel.clock import SimClock
from repro.kernel.disk import SimulatedDisk
from repro.kernel.vfs import Inode

#: Bytes journalled per metadata operation (ext3 ordered mode).
JOURNAL_RECORD_BYTES = 512

#: Default region sizes, in blocks.
DATA_REGION_BLOCKS = 1 << 23        # 32 GB of 4K blocks
JOURNAL_REGION_BLOCKS = 1 << 15     # 128 MB
PROVLOG_REGION_BLOCKS = 1 << 19     # 2 GB

#: Volume ids are globally unique across every machine in a simulation,
#: because pnode numbers embed them and cross machines over NFS.  An
#: itertools.count is the shard-ready mint: next() is atomic under the
#: GIL, and nothing can rebind or rewind the sequence.
_VOLUME_IDS = itertools.count(1)


def allocate_volume_id() -> int:
    """Issue the next globally unique volume id."""
    return next(_VOLUME_IDS)


class Volume:
    """One mounted file system on one disk."""

    def __init__(self, name: str, volume_id: int, clock: SimClock,
                 disk: SimulatedDisk, cache: PageCache,
                 pass_capable: bool = False):
        self.name = name
        self.volume_id = volume_id
        self.clock = clock
        self.disk = disk
        self.cache = cache
        self.pass_capable = pass_capable
        self.mountpoint: Optional[str] = None
        self.block_size = disk.params.block_size

        self.journal_region = disk.add_region(f"{name}.journal",
                                              JOURNAL_REGION_BLOCKS)
        self.data_region = disk.add_region(f"{name}.data", DATA_REGION_BLOCKS)
        self.provlog_region = (
            disk.add_region(f"{name}.provlog", PROVLOG_REGION_BLOCKS)
            if pass_capable else None
        )

        self.pnodes = PnodeAllocator(volume_id) if pass_capable else None
        #: Interposition point: Lasagna replaces this when attached.
        self.fs_top: "Volume" = self
        #: Lasagna instance once the storage layer attaches one.
        self.lasagna = None
        #: Called with the dying inode when its link count reaches zero.
        self.on_drop_inode: Optional[Callable[[Inode], None]] = None

        self._inodes: dict[int, Inode] = {}
        self._next_ino = 2            # 1 is reserved; 2 is the root, as in ext
        self.root = self._make_inode(Inode.DIR)

        # Statistics for the benchmarks.
        self.data_bytes_written = 0
        self.data_bytes_read = 0
        self.metadata_ops = 0

    # -- inode management ----------------------------------------------------

    def _make_inode(self, kind: str) -> Inode:
        pnode = self.pnodes.allocate() if self.pnodes is not None else 0
        inode = Inode(self, self._next_ino, kind, pnode)
        self._inodes[self._next_ino] = inode
        self._next_ino += 1
        return inode

    def create_inode(self, kind: str) -> Inode:
        """Allocate an inode, charging one journalled metadata op."""
        self.journal_op()
        return self._make_inode(kind)

    def inode(self, ino: int) -> Inode:
        """Look up an inode by number."""
        try:
            return self._inodes[ino]
        except KeyError:
            raise VolumeError(f"{self.name}: no inode {ino}") from None

    def drop_inode(self, inode: Inode) -> None:
        """Final unlink: notify provenance machinery, then free."""
        self.journal_op()
        if self.on_drop_inode is not None:
            self.on_drop_inode(inode)
        self._inodes.pop(inode.ino, None)

    def live_inodes(self) -> list[Inode]:
        """All inodes currently allocated."""
        return list(self._inodes.values())

    # -- cost accounting -------------------------------------------------------

    def journal_op(self, nbytes: int = JOURNAL_RECORD_BYTES) -> None:
        """Append one metadata record to the journal (ordered mode).

        Ordered mode couples metadata commits to pending provenance:
        if Lasagna has buffered records when a journal transaction
        commits, they must flush first (the write-ahead-provenance
        ordering extends across metadata operations).  This coupling is
        why metadata-heavy workloads (Mercurial activity) pay the
        largest PASSv2 overhead in the paper's Table 2.
        """
        self.metadata_ops += 1
        self.journal_region.next_free = (
            (self.journal_region.next_free + 1) % self.journal_region.length
        )
        # The journal is a sequential, batch-committed region.
        self.disk.clustered_write(nbytes)
        if self.lasagna is not None:
            self.lasagna.flush_buffered()

    def _ensure_blocks(self, inode: Inode, size: int) -> None:
        """Grow the inode's extents to cover ``size`` bytes."""
        needed = -(-size // self.block_size)
        if needed <= inode.allocated_blocks:
            return
        grow = needed - inode.allocated_blocks
        first = self.data_region.allocate(grow)
        inode.extents.append((first, grow))
        inode.allocated_blocks = needed

    # -- data path (ext3 semantics; Lasagna interposes via fs_top) -----------

    def write_bytes(self, inode: Inode, offset: int, data: Optional[bytes],
                    length: Optional[int] = None) -> int:
        """Write to a file: real ``data`` or, when data is None, a hole of
        ``length`` synthetic bytes.  Returns the byte count written."""
        if inode.data is None:
            raise IsADirectory(f"inode {inode.ino} is a directory")
        if data is not None:
            length = len(data)
        if length is None:
            raise ValueError("either data or length is required")
        end = offset + length
        self._ensure_blocks(inode, end)
        if data is not None:
            inode.data.write(offset, data)
        else:
            inode.data.write_hole(offset, length)
        first_block = inode.block_for(offset)
        self.disk.write(first_block, length)
        first_logical = offset // self.block_size
        last_logical = max(offset, end - 1) // self.block_size
        block_size = self.block_size
        self.cache.insert_many(
            self.volume_id,
            (inode.block_for(logical * block_size)
             for logical in range(first_logical, last_logical + 1)))
        self.data_bytes_written += length
        return length

    def read_bytes(self, inode: Inode, offset: int, length: int) -> bytes:
        """Read from a file, charging the disk for cache misses."""
        if inode.data is None:
            raise IsADirectory(f"inode {inode.ino} is a directory")
        length = min(length, max(0, inode.size - offset))
        if length > 0:
            self._charge_read(inode, offset, length)
        self.data_bytes_read += length
        return inode.data.read(offset, length)

    def _charge_read(self, inode: Inode, offset: int, length: int) -> None:
        """Charge cache-missing block runs of [offset, offset+length)."""
        first = offset // self.block_size
        last = (offset + length - 1) // self.block_size
        run_start: Optional[int] = None
        run_blocks = 0
        for logical in range(first, last + 1):
            block = inode.block_for(logical * self.block_size)
            if self.cache.lookup(self.volume_id, block):
                if run_start is not None:
                    self.disk.read(run_start, run_blocks * self.block_size)
                    run_start, run_blocks = None, 0
                continue
            if run_start is None:
                run_start = block
                run_blocks = 1
            elif block == run_start + run_blocks:
                run_blocks += 1
            else:
                self.disk.read(run_start, run_blocks * self.block_size)
                run_start, run_blocks = block, 1
            self.cache.insert(self.volume_id, block)
        if run_start is not None:
            self.disk.read(run_start, run_blocks * self.block_size)

    def truncate(self, inode: Inode, size: int) -> None:
        """Set file size (metadata op)."""
        if inode.data is None:
            raise IsADirectory(f"inode {inode.ino} is a directory")
        self.journal_op()
        inode.data.truncate(size)

    # -- space accounting (Table 3 baseline column) ---------------------------

    def used_bytes(self) -> int:
        """Total logical bytes of all live files (the 'Ext3' column)."""
        return sum(inode.size for inode in self._inodes.values()
                   if inode.data is not None)

    def __repr__(self) -> str:
        kind = "PASS" if self.pass_capable else "ext3"
        return f"<Volume {self.name} ({kind}) at {self.mountpoint}>"
