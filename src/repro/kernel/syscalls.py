"""The system-call layer: what simulated programs see.

Each process gets a :class:`Syscalls` facade.  Calls charge the virtual
clock (syscall entry cost, path-resolution cost, disk and cache costs via
the volume layer) and report events to the interceptor, which forwards
them to the PASSv2 observer when provenance collection is on.

Reads and writes take the pass_read / pass_write path when provenance is
enabled, so data and provenance move through the system together; with
the interceptor detached, they hit the volume directly (the vanilla ext3
baseline).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.core.errors import BadFileDescriptor, FileExists, FileNotFound
from repro.kernel.process import (
    DeadlockError,
    FileDescriptor,
    Pipe,
    Process,
)
from repro.kernel.vfs import Inode

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.kernel import Kernel


class Syscalls:
    """Per-process system-call interface."""

    def __init__(self, kernel: "Kernel", proc: Process):
        self.kernel = kernel
        self.proc = proc

    # -- cost helpers -----------------------------------------------------------

    def _enter(self, path: Optional[str] = None) -> None:
        cpu = self.kernel.params.cpu
        cost = cpu.syscall
        if path:
            cost += cpu.path_component * max(1, path.count("/"))
        self.kernel.clock.advance(cost, "syscall_cpu")

    def compute(self, seconds: float) -> None:
        """Model userspace CPU work (not a syscall; charges the clock)."""
        self.kernel.clock.advance(seconds, "user_cpu")

    def _abspath(self, path: str) -> str:
        if path.startswith("/"):
            return path
        base = self.proc.cwd.rstrip("/")
        return f"{base}/{path}"

    # -- files ---------------------------------------------------------------------

    def open(self, path: str, mode: str = "r") -> int:
        """Open a file.  Modes: 'r', 'r+', 'w' (create/truncate),
        'a' (create/append), 'x' (exclusive create)."""
        path = self._abspath(path)
        self._enter(path)
        vfs = self.kernel.vfs
        if mode == "r":
            inode = vfs.resolve(path)
            fdesc = FileDescriptor(FileDescriptor.FILE, inode=inode,
                                   readable=True, writable=False)
        elif mode == "r+":
            inode = vfs.resolve(path)
            fdesc = FileDescriptor(FileDescriptor.FILE, inode=inode)
        elif mode in ("w", "a", "x"):
            try:
                inode = vfs.create(path, exclusive=(mode == "x"))
            except FileExists:
                raise
            if mode == "w" and inode.size:
                inode.volume.truncate(inode, 0)
            fdesc = FileDescriptor(FileDescriptor.FILE, inode=inode,
                                   readable=False, writable=True,
                                   append=(mode == "a"))
            if mode == "a":
                fdesc.offset = inode.size
        else:
            raise ValueError(f"unsupported open mode: {mode!r}")
        if inode.is_dir:
            from repro.core.errors import IsADirectory
            raise IsADirectory(path)
        fdesc.path = path
        observer = self.kernel.interceptor.event("open")
        if observer is not None:
            observer.identify_inode(inode, path)
        return self.proc.install_fd(fdesc)

    def close(self, fd: int) -> None:
        """Close a descriptor."""
        self._enter()
        self.proc.release_fd(fd)

    def read(self, fd: int, length: int = -1) -> bytes:
        """Read from a file or pipe; -1 means "to EOF" for files."""
        self._enter()
        fdesc = self.proc.lookup_fd(fd)
        if fdesc.kind == FileDescriptor.FILE:
            if not fdesc.readable:
                raise BadFileDescriptor(f"fd {fd} not open for reading")
            inode = fdesc.inode
            if length < 0:
                length = max(0, inode.size - fdesc.offset)
            data = self._file_read(fdesc, inode, fdesc.offset, length)
            fdesc.offset += len(data)
            return data
        if fdesc.kind == FileDescriptor.PIPE_R:
            return self._pipe_read(fdesc.pipe, length)
        raise BadFileDescriptor(f"fd {fd} is not readable")

    def pread(self, fd: int, offset: int, length: int) -> bytes:
        """Positional read (files only); does not move the offset."""
        self._enter()
        fdesc = self.proc.lookup_fd(fd)
        if fdesc.kind != FileDescriptor.FILE or not fdesc.readable:
            raise BadFileDescriptor(f"fd {fd} not a readable file")
        return self._file_read(fdesc, fdesc.inode, offset, length)

    def readv(self, fd: int, lengths: list[int]) -> list[bytes]:
        """Vectored read: one event per segment, like repeated read()."""
        return [self.read(fd, length) for length in lengths]

    def write(self, fd: int, data: bytes) -> int:
        """Write real bytes at the current offset."""
        return self._write_common(fd, data=data, length=None)

    def write_hole(self, fd: int, length: int) -> int:
        """Write synthetic (zero) bytes: full I/O cost, no byte storage.

        Bulk workloads (Postmark, compile) use this so simulations stay
        memory-light; provenance semantics are identical to write().
        """
        return self._write_common(fd, data=None, length=length)

    def writev(self, fd: int, chunks: list[bytes]) -> int:
        """Vectored write."""
        return sum(self.write(fd, chunk) for chunk in chunks)

    def pwrite(self, fd: int, offset: int, data: bytes) -> int:
        """Positional write; does not move the offset."""
        self._enter()
        fdesc = self.proc.lookup_fd(fd)
        if fdesc.kind != FileDescriptor.FILE or not fdesc.writable:
            raise BadFileDescriptor(f"fd {fd} not a writable file")
        return self._file_write(fdesc, fdesc.inode, offset, data, None)

    def _write_common(self, fd: int, data: Optional[bytes],
                      length: Optional[int]) -> int:
        self._enter()
        fdesc = self.proc.lookup_fd(fd)
        if fdesc.kind == FileDescriptor.FILE:
            if not fdesc.writable:
                raise BadFileDescriptor(f"fd {fd} not open for writing")
            inode = fdesc.inode
            offset = inode.size if fdesc.append else fdesc.offset
            written = self._file_write(fdesc, inode, offset, data, length)
            fdesc.offset = offset + written
            return written
        if fdesc.kind == FileDescriptor.PIPE_W:
            return self._pipe_write(fdesc.pipe, data, length)
        raise BadFileDescriptor(f"fd {fd} is not writable")

    def _file_read(self, fdesc: FileDescriptor, inode: Inode,
                   offset: int, length: int) -> bytes:
        observer = self.kernel.interceptor.event("read")
        if observer is not None:
            return observer.on_read(self.proc, inode, fdesc.path,
                                    offset, length)
        return inode.volume.read_bytes(inode, offset, length)

    def _file_write(self, fdesc: FileDescriptor, inode: Inode, offset: int,
                    data: Optional[bytes], length: Optional[int]) -> int:
        observer = self.kernel.interceptor.event("write")
        if observer is not None:
            return observer.on_write(self.proc, inode, fdesc.path, offset,
                                     data, length)
        return inode.volume.write_bytes(inode, offset, data, length)

    # -- pipes -----------------------------------------------------------------------

    def pipe(self) -> tuple[int, int]:
        """Create a pipe; returns (read fd, write fd)."""
        self._enter()
        pipe = Pipe(pnode=0)
        observer = self.kernel.interceptor.event("pipe")
        if observer is not None:
            observer.on_pipe_create(self.proc, pipe)
        rfd = self.proc.install_fd(
            FileDescriptor(FileDescriptor.PIPE_R, pipe=pipe,
                           readable=True, writable=False))
        wfd = self.proc.install_fd(
            FileDescriptor(FileDescriptor.PIPE_W, pipe=pipe,
                           readable=False, writable=True))
        return rfd, wfd

    def _pipe_read(self, pipe: Pipe, length: int) -> bytes:
        if length < 0:
            length = pipe.available
        if pipe.available == 0 and pipe.writers > 0:
            raise DeadlockError(
                "read on empty pipe with live writers; run the producer "
                "first or write the program as a generator"
            )
        observer = self.kernel.interceptor.event("read")
        if observer is not None:
            observer.on_pipe_read(self.proc, pipe)
        return pipe.read(length)

    def _pipe_write(self, pipe: Pipe, data: Optional[bytes],
                    length: Optional[int]) -> int:
        if data is None:
            data = b"\0" * (length or 0)
        observer = self.kernel.interceptor.event("write")
        if observer is not None:
            observer.on_pipe_write(self.proc, pipe)
        return pipe.write(data)

    def pipe_available(self, fd: int) -> int:
        """Bytes currently buffered in a pipe (for generator programs)."""
        fdesc = self.proc.lookup_fd(fd)
        if fdesc.pipe is None:
            raise BadFileDescriptor(f"fd {fd} is not a pipe")
        return fdesc.pipe.available

    # -- mmap ----------------------------------------------------------------------

    def mmap(self, fd: int, readable: bool = True,
             writable: bool = False) -> None:
        """Map a file: records read/write dependencies up front, the way
        the PASSv2 interceptor treats mmap."""
        self._enter()
        fdesc = self.proc.lookup_fd(fd)
        if fdesc.kind != FileDescriptor.FILE:
            raise BadFileDescriptor(f"fd {fd} is not a file")
        observer = self.kernel.interceptor.event("mmap")
        if observer is not None:
            observer.on_mmap(self.proc, fdesc.inode, fdesc.path,
                             readable, writable)

    # -- metadata ---------------------------------------------------------------------

    def mkdir(self, path: str) -> None:
        """Create a directory."""
        path = self._abspath(path)
        self._enter(path)
        self.kernel.vfs.mkdir(path)

    def rmdir(self, path: str) -> None:
        """Remove an empty directory."""
        path = self._abspath(path)
        self._enter(path)
        self.kernel.vfs.rmdir(path)

    def unlink(self, path: str) -> None:
        """Remove a file name."""
        path = self._abspath(path)
        self._enter(path)
        volume, _, _ = self.kernel.vfs.resolve_parent(path)
        volume.journal_op()
        self.kernel.vfs.unlink(path)

    def rename(self, old: str, new: str) -> None:
        """Rename within a volume; provenance follows the inode."""
        old, new = self._abspath(old), self._abspath(new)
        self._enter(old)
        volume, _, _ = self.kernel.vfs.resolve_parent(old)
        volume.journal_op()
        inode = self.kernel.vfs.rename(old, new)
        observer = self.kernel.interceptor.observer
        if self.kernel.interceptor.enabled and observer is not None:
            # The connection between file and provenance survives the
            # rename automatically (it rides the inode); refresh NAME.
            observer.identify_named(inode, None, new)

    def link(self, existing: str, new: str) -> None:
        """Create a hard link; the new name shares the provenance."""
        existing, new = self._abspath(existing), self._abspath(new)
        self._enter(new)
        volume, _, _ = self.kernel.vfs.resolve_parent(new)
        volume.journal_op()
        inode = self.kernel.vfs.link(existing, new)
        observer = self.kernel.interceptor.observer
        if self.kernel.interceptor.enabled and observer is not None:
            observer.identify_named(inode, existing, new)

    def truncate(self, path: str, size: int = 0) -> None:
        """Truncate by path."""
        path = self._abspath(path)
        self._enter(path)
        inode = self.kernel.vfs.resolve(path)
        inode.volume.truncate(inode, size)

    def stat(self, path: str) -> dict:
        """Minimal stat: size, kind, version, pnode."""
        path = self._abspath(path)
        self._enter(path)
        inode = self.kernel.vfs.resolve(path)
        return {
            "size": inode.size,
            "kind": inode.kind,
            "version": inode.version,
            "pnode": inode.pnode,
            "ino": inode.ino,
        }

    def exists(self, path: str) -> bool:
        """True when the path resolves."""
        self._enter(path)
        return self.kernel.vfs.exists(self._abspath(path))

    def readdir(self, path: str) -> list[str]:
        """Sorted directory listing."""
        path = self._abspath(path)
        self._enter(path)
        return self.kernel.vfs.readdir(path)

    # -- processes ---------------------------------------------------------------------

    def spawn(self, path: str, argv: Optional[list[str]] = None,
              env: Optional[dict[str, str]] = None,
              stdin: Optional[int] = None,
              stdout: Optional[int] = None) -> Process:
        """fork + execve a registered program and run it to completion.

        ``stdin``/``stdout`` are descriptor numbers in the *calling*
        process (typically pipe ends); the child receives copies.
        """
        self._enter(path)
        pass_stdin = self.proc.lookup_fd(stdin) if stdin is not None else None
        pass_stdout = self.proc.lookup_fd(stdout) if stdout is not None else None
        return self.kernel.run_program(
            self._abspath(path), argv=argv, env=env, parent=self.proc,
            stdin=pass_stdin, stdout=pass_stdout,
        )

    @property
    def stdin(self) -> int:
        """The fd number of the descriptor inherited as stdin."""
        if self.proc.stdin_fd is None:
            raise BadFileDescriptor("no stdin was passed to this process")
        return self.proc.stdin_fd

    @property
    def stdout(self) -> int:
        """The fd number of the descriptor inherited as stdout."""
        if self.proc.stdout_fd is None:
            raise BadFileDescriptor("no stdout was passed to this process")
        return self.proc.stdout_fd

    # -- DPAPI (libpass) -------------------------------------------------------------

    @property
    def dpapi(self):
        """The user-level DPAPI (libpass) bound to this process."""
        return self.kernel.libpass_for(self.proc)
