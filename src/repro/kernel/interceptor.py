"""The interceptor: the thin, OS-specific layer feeding the observer.

"The interceptor intercepts system calls and passes information to the
observer" (section 5.3).  It handles ``execve, fork, exit, read, readv,
write, writev, mmap, open, pipe`` and the kernel operation
``drop_inode``.  Everything downstream of it is OS-independent; in this
reproduction the interceptor is also the on/off switch that turns the
machine into the vanilla-ext3 baseline for benchmarking.
"""

from __future__ import annotations

from collections import Counter
from typing import TYPE_CHECKING, Optional

from repro.obs import NULL_OBS

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.observer import Observer

#: Events the interceptor knows how to capture.
HANDLED_EVENTS = frozenset({
    "execve", "fork", "exit", "read", "readv", "write", "writev",
    "mmap", "open", "pipe", "drop_inode",
})


class Interceptor:
    """Counts syscall events and hands them to the observer when enabled."""

    def __init__(self, observer: Optional["Observer"] = None,
                 enabled: bool = False, obs=NULL_OBS):
        self.observer = observer
        self.enabled = enabled
        self.counts: Counter[str] = Counter()
        #: Events reported while detached (the baseline path).
        self.unobserved = 0
        # The counts above are harvested at snapshot time -- the event()
        # hot path pays nothing for observability.
        obs.add_collector("interceptor", self._obs_counters)

    def _obs_counters(self) -> dict:
        counters = {f"event.{name}": count
                    for name, count in self.counts.items()}
        counters["events_total"] = sum(self.counts.values())
        counters["events_unobserved"] = self.unobserved
        return counters

    def attach(self, observer: "Observer") -> None:
        """Wire in the observer and start capturing."""
        self.observer = observer
        self.enabled = True

    def detach(self) -> None:
        """Stop capturing (baseline mode)."""
        self.enabled = False

    def event(self, name: str) -> Optional["Observer"]:
        """Report one event; returns the observer iff it should see it.

        The syscall layer uses the returned observer to route both the
        provenance *and* the data (pass_read / pass_write semantics);
        ``None`` means take the plain, provenance-free path.
        """
        if name not in HANDLED_EVENTS:
            return None
        self.counts[name] += 1
        if self.enabled and self.observer is not None:
            return self.observer
        self.unobserved += 1
        return None
