"""Processes, file descriptors, and pipes.

Processes are first-class provenanced objects (the distributor stores
their provenance until they become ancestors of something persistent).
Every process gets a pnode from the transient space at creation.

Programs are Python callables invoked with a :class:`~repro.kernel.syscalls.Syscalls`
facade.  A program may be a plain function (run to completion) or a
generator function (``yield`` points let the scheduler interleave
processes, which the cycle-avoidance tests use to reproduce the
concurrent read/write cycles of section 5.4).
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING, Callable, Optional

from repro.core.errors import BadFileDescriptor, KernelError
from repro.core.pnode import ObjectRef
from repro.kernel.vfs import Inode

if TYPE_CHECKING:  # pragma: no cover
    from repro.kernel.kernel import Kernel


class DeadlockError(KernelError):
    """A non-generator program read an empty pipe that still has writers.

    Sequentially executed programs cannot block; spawn pipeline stages in
    producer-before-consumer order, or write the program as a generator so
    the scheduler can interleave it.
    """

    errno_name = "EDEADLK"


#: Pipe ids: an itertools.count so the mint stays atomic (and
#: unrebindable) when kernels run under parallel shard writers.
_PIPE_IDS = itertools.count(1)


class Pipe:
    """An unbounded in-kernel byte channel; a provenanced object."""

    def __init__(self, pnode: int):
        self.pipe_id = next(_PIPE_IDS)
        self.pnode = pnode
        self.version = 0
        self._buffer = bytearray()
        self.readers = 0
        self.writers = 0
        self.bytes_through = 0

    def ref(self) -> ObjectRef:
        return ObjectRef(self.pnode, self.version)

    def write(self, data: bytes) -> int:
        self._buffer.extend(data)
        self.bytes_through += len(data)
        return len(data)

    def read(self, length: int) -> bytes:
        take = min(length, len(self._buffer))
        data = bytes(self._buffer[:take])
        del self._buffer[:take]
        return data

    @property
    def available(self) -> int:
        return len(self._buffer)

    def __repr__(self) -> str:
        return f"<Pipe {self.pipe_id} pnode={self.pnode} buf={self.available}>"


class FileDescriptor:
    """One open-file description."""

    FILE = "file"
    PIPE_R = "pipe_r"
    PIPE_W = "pipe_w"
    PASSOBJ = "passobj"

    def __init__(self, kind: str, inode: Optional[Inode] = None,
                 pipe: Optional[Pipe] = None, passobj=None,
                 readable: bool = True, writable: bool = True,
                 append: bool = False):
        self.kind = kind
        self.inode = inode
        self.pipe = pipe
        self.passobj = passobj
        self.readable = readable
        self.writable = writable
        self.append = append
        self.offset = 0
        self.closed = False
        #: Path used at open time (provenance NAME records).
        self.path: Optional[str] = None

    def target(self):
        """The provenanced object behind this descriptor."""
        if self.kind == self.FILE:
            return self.inode
        if self.kind in (self.PIPE_R, self.PIPE_W):
            return self.pipe
        return self.passobj

    def __repr__(self) -> str:
        return f"<FD {self.kind} {self.target()!r}>"


class Process:
    """A simulated process: identity, descriptor table, program state."""

    def __init__(self, kernel: "Kernel", pid: int, ppid: int, pnode: int,
                 argv: list[str], env: dict[str, str], cwd: str = "/"):
        self.kernel = kernel
        self.pid = pid
        self.ppid = ppid
        self.pnode = pnode
        self.version = 0
        self.argv = list(argv)
        self.env = dict(env)
        self.cwd = cwd
        self.alive = True
        self.exit_code: Optional[int] = None
        self.exec_path: Optional[str] = None
        self.stdin_fd: Optional[int] = None
        self.stdout_fd: Optional[int] = None

        self._fds: dict[int, FileDescriptor] = {}
        self._next_fd = 3          # 0-2 conceptually reserved for stdio
        #: Program body: callable or the generator it returned.
        self.program: Optional[Callable] = None
        self.generator = None

    def ref(self) -> ObjectRef:
        return ObjectRef(self.pnode, self.version)

    # -- descriptor table ----------------------------------------------------

    def install_fd(self, fdesc: FileDescriptor) -> int:
        """Add a descriptor; returns its number."""
        fd = self._next_fd
        self._next_fd += 1
        self._fds[fd] = fdesc
        if fdesc.kind == FileDescriptor.PIPE_R:
            fdesc.pipe.readers += 1
        elif fdesc.kind == FileDescriptor.PIPE_W:
            fdesc.pipe.writers += 1
        return fd

    def lookup_fd(self, fd: int) -> FileDescriptor:
        """Resolve a descriptor number or raise EBADF."""
        fdesc = self._fds.get(fd)
        if fdesc is None or fdesc.closed:
            raise BadFileDescriptor(f"pid {self.pid}: fd {fd}")
        return fdesc

    def release_fd(self, fd: int) -> FileDescriptor:
        """Close a descriptor number."""
        fdesc = self.lookup_fd(fd)
        fdesc.closed = True
        del self._fds[fd]
        if fdesc.kind == FileDescriptor.PIPE_R:
            fdesc.pipe.readers -= 1
        elif fdesc.kind == FileDescriptor.PIPE_W:
            fdesc.pipe.writers -= 1
        return fdesc

    def open_fds(self) -> list[int]:
        """Currently open descriptor numbers."""
        return sorted(self._fds)

    def close_all(self) -> None:
        """Close every descriptor (process exit)."""
        for fd in list(self._fds):
            self.release_fd(fd)

    def __repr__(self) -> str:
        state = "live" if self.alive else f"exit={self.exit_code}"
        name = self.argv[0] if self.argv else "?"
        return f"<Process {self.pid} {name} {state}>"
