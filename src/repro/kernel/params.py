"""Cost-model parameters for the simulated machine.

All times are in (simulated) seconds, all sizes in bytes.  The defaults
are loosely calibrated to a 2009-era machine like the paper's testbed
(3 GHz Pentium 4, 512 MB RAM, 7200 RPM disk, gigabit LAN) so that the
*shape* of the paper's Table 2/3 results emerges from the mechanisms the
paper identifies: provenance log writes interfering with data writes
(extra seeks), stackable-file-system double buffering, and network round
trips diluting local overheads.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


@dataclass
class DiskParams:
    """Seek/rotation/transfer model of one 7200 RPM disk."""

    #: Average seek time for a long head movement.
    avg_seek: float = 0.0085
    #: Track-to-track seek for short movements.
    short_seek: float = 0.0008
    #: Head movements of at most this many blocks count as "short".
    short_seek_blocks: int = 256
    #: Average rotational latency (half a revolution at 7200 RPM).
    rotational: float = 0.00417
    #: Sustained transfer rate, bytes per second.
    transfer_rate: float = 60e6
    #: Block (page) size.
    block_size: int = 4096
    #: Adjacent-block tolerance: a target within this many blocks of the
    #: current head position after the last transfer is sequential.
    sequential_window: int = 64
    #: Ordering-barrier latency charged per write-ahead-provenance log
    #: commit: the log append itself is a clustered (short-seek) write,
    #: but WAP requires it to be *ordered before* the data, which costs
    #: part of a revolution at the commit point.
    wap_barrier: float = 0.002


@dataclass
class CacheParams:
    """Page-cache model."""

    #: Cache capacity in pages (512 MB of RAM, most of it page cache).
    capacity_pages: int = 98304
    #: Extra per-page CPU cost of a stackable file system copying between
    #: its own pages and the lower file system's pages (double buffering).
    stack_copy_cost: float = 2.4e-6
    #: Fraction of effective cache left for file data when a stackable
    #: file system duplicates pages (upper + lower caches compete; the
    #: upper cache mostly holds recently-touched pages twice).
    stack_cache_factor: float = 0.85


@dataclass
class CpuParams:
    """Per-operation CPU costs."""

    #: Base cost of entering/leaving any system call.
    syscall: float = 1.5e-6
    #: Observer + analyzer cost of producing one provenance record.
    provenance_record: float = 6.0e-6
    #: Cost of encoding one record into the log (Lasagna side).
    log_encode: float = 1.2e-6
    #: Cost of a name lookup per path component.
    path_component: float = 0.8e-6


@dataclass
class NetParams:
    """Simulated LAN between NFS client and server."""

    #: One NFS operation's effective latency: wire round trip plus
    #: server request processing (2009-era LAN + nfsd).
    rtt: float = 0.0009
    #: Wire bandwidth in bytes per second (gigabit).
    bandwidth: float = 110e6
    #: Maximum payload of one provenance transfer (64 KB, the NFSv4
    #: client block size from section 6.1.2).
    max_block: int = 65536
    #: Per-page cost of the nfsd <-> stackable-file-system interaction:
    #: data arriving in wsize-granular RPCs is copied through Lasagna's
    #: upper pages before reaching the lower file system, defeating the
    #: server's zero-copy path.  The paper attributes 14.8 of Postmark's
    #: 16.8 PA-NFS points to exactly this stackable double buffering.
    nfsd_stack_copy: float = 26e-6


@dataclass
class LogParams:
    """Write-ahead provenance log policy (section 5.6)."""

    #: Rotate the log once it exceeds this many bytes.
    max_size: int = 4 * 1024 * 1024
    #: Rotate the log after this much simulated dormancy.
    dormancy: float = 30.0
    #: Group commit: flush the buffer once it holds this many records
    #: (0 disables the record threshold).  Threshold flushes happen
    #: *earlier* than the next WAP ordering point, never later, so they
    #: can only strengthen the write-ahead-provenance invariant.
    group_commit_records: int = 512
    #: Group commit: flush once the buffered encoded bytes reach this
    #: size (0 disables the byte threshold).
    group_commit_bytes: int = 256 * 1024


@dataclass
class SimParams:
    """Aggregate simulation parameters.

    ``scale`` uniformly shrinks workload sizes so the benchmark suite
    runs in seconds of real time while preserving relative overheads.
    """

    disk: DiskParams = field(default_factory=DiskParams)
    cache: CacheParams = field(default_factory=CacheParams)
    cpu: CpuParams = field(default_factory=CpuParams)
    net: NetParams = field(default_factory=NetParams)
    log: LogParams = field(default_factory=LogParams)
    scale: float = 1.0

    def scaled(self, scale: float) -> "SimParams":
        """Return a copy with a different workload scale factor."""
        return replace(self, scale=scale)
