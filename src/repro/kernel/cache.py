"""LRU page cache shared by all volumes on a machine.

Reads that hit the cache cost nothing at the disk; misses go to the
disk and populate the cache.  Writes are write-through (they charge the
disk and populate the cache), which applies identically to the baseline
and the provenance-enabled configurations, so overhead *ratios* are not
distorted.

A stackable file system (Lasagna, modelled on eCryptfs) caches both its
own pages and the lower file system's pages.  We model that as (a) a
per-page copy cost on every page moved through the stack and (b) a
reduced effective capacity for file data (``stack_cache_factor``).
The paper attributes most of Postmark's PA-NFS overhead to exactly this
double buffering (14.8 points of 16.8).
"""

from __future__ import annotations

from collections import OrderedDict

from repro.kernel.params import CacheParams
from repro.obs import NULL_OBS


class PageCache:
    """LRU cache of (volume id, block number) pages."""

    def __init__(self, params: CacheParams | None = None, obs=NULL_OBS):
        self.params = params or CacheParams()
        self._pages: OrderedDict[tuple[int, int], None] = OrderedDict()
        self._capacity = self.params.capacity_pages
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        # Hit/miss totals are harvested at snapshot time; lookup() stays
        # untouched by observability.
        obs.add_collector("cache", self._obs_counters)

    def _obs_counters(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "pages": len(self._pages),
            "capacity_pages": self._capacity,
        }

    @property
    def capacity(self) -> int:
        """Current capacity in pages."""
        return self._capacity

    def shrink(self, factor: float) -> None:
        """Reduce effective capacity (stackable double buffering)."""
        if not 0 < factor <= 1:
            raise ValueError(f"factor must be in (0, 1]: {factor}")
        self._capacity = max(1, int(self._capacity * factor))
        while len(self._pages) > self._capacity:
            self._pages.popitem(last=False)
            self.evictions += 1

    def lookup(self, volume_id: int, block: int) -> bool:
        """Return True on a hit (and refresh recency)."""
        key = (volume_id, block)
        if key in self._pages:
            self._pages.move_to_end(key)
            self.hits += 1
            return True
        self.misses += 1
        return False

    def insert(self, volume_id: int, block: int) -> None:
        """Add a page, evicting the least recently used if full."""
        key = (volume_id, block)
        self._pages[key] = None
        self._pages.move_to_end(key)
        while len(self._pages) > self._capacity:
            self._pages.popitem(last=False)
            self.evictions += 1

    def insert_many(self, volume_id: int, blocks) -> None:
        """Add a run of pages with one eviction pass at the end.

        Equivalent to calling :meth:`insert` per block (same final LRU
        order, same eviction count), but the capacity check runs once
        for the whole run -- the multi-block write path's fast path.
        """
        pages = self._pages
        for block in blocks:
            key = (volume_id, block)
            if key in pages:
                pages.move_to_end(key)
            else:
                pages[key] = None
        while len(pages) > self._capacity:
            pages.popitem(last=False)
            self.evictions += 1

    def invalidate(self, volume_id: int, block: int) -> None:
        """Drop one page if present."""
        self._pages.pop((volume_id, block), None)

    def invalidate_volume(self, volume_id: int) -> None:
        """Drop every page of one volume (unmount, crash)."""
        stale = [key for key in self._pages if key[0] == volume_id]
        for key in stale:
            del self._pages[key]

    def __len__(self) -> int:
        return len(self._pages)
