"""Provenance reports: human-readable ancestry trees and DOT export.

The paper notes that "PQL queries, if not posed carefully, can result in
information overload" (section 5.7).  These helpers render bounded,
readable views of the graph: an indented ancestry tree with cycles
impossible (the store is a DAG) and repetition folded, and a Graphviz
DOT rendering for figures.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.core.pnode import ObjectRef
from repro.core.records import Attr


def _label(databases, ref: ObjectRef) -> str:
    name = obj_type = None
    for db in databases:
        for record in db.records_of(ref.pnode):
            if record.attr == Attr.NAME and name is None:
                name = str(record.value)
            elif record.attr == Attr.TYPE and obj_type is None:
                obj_type = str(record.value)
    label = name or f"pnode {ref.pnode}"
    if obj_type:
        label = f"{label} [{obj_type}]"
    if ref.version:
        label = f"{label} v{ref.version}"
    return label


def _parents(databases, ref: ObjectRef) -> list[ObjectRef]:
    out: list[ObjectRef] = []
    for db in databases:
        for parent in db.ancestors(ref):
            if parent not in out:
                out.append(parent)
    return out


def ancestry_tree(databases: Iterable, ref: ObjectRef,
                  max_depth: int = 8) -> str:
    """An indented ancestry tree rooted at ``ref``.

    Objects reached more than once are printed once and referenced as
    ``(see above)`` afterwards; depth is bounded to keep output usable.
    """
    databases = list(databases)
    lines: list[str] = []
    seen: set[ObjectRef] = set()

    def walk(node: ObjectRef, depth: int) -> None:
        indent = "  " * depth
        label = _label(databases, node)
        if node in seen:
            lines.append(f"{indent}{label} (see above)")
            return
        seen.add(node)
        lines.append(f"{indent}{label}")
        if depth >= max_depth:
            parents = _parents(databases, node)
            if parents:
                lines.append(f"{indent}  ... ({len(parents)} ancestors "
                             f"beyond depth limit)")
            return
        for parent in _parents(databases, node):
            walk(parent, depth + 1)

    walk(ref, 0)
    return "\n".join(lines)


def to_dot(databases: Iterable, roots: Iterable[ObjectRef],
           max_nodes: int = 200,
           direction: str = "ancestors") -> str:
    """Graphviz DOT for the provenance reachable from ``roots``.

    ``direction`` is "ancestors" (follow dependency edges) or
    "descendants" (reverse edges -- taint view).
    """
    if direction not in ("ancestors", "descendants"):
        raise ValueError(f"unknown direction {direction!r}")
    databases = list(databases)
    nodes: dict[ObjectRef, str] = {}
    edges: list[tuple[ObjectRef, ObjectRef, str]] = []
    frontier = list(roots)
    while frontier and len(nodes) < max_nodes:
        ref = frontier.pop(0)
        if ref in nodes:
            continue
        nodes[ref] = _label(databases, ref)
        for db in databases:
            for record in db.records_of_version(ref):
                if record.is_ancestry:
                    edges.append((ref, record.value, record.attr.lower()))
                    if direction == "ancestors":
                        frontier.append(record.value)
            if direction == "descendants":
                for child, attr in db.referencing(ref):
                    if attr in Attr.ANCESTRY_ATTRS:
                        edges.append((child, ref, attr.lower()))
                        frontier.append(child)

    def node_id(ref: ObjectRef) -> str:
        return f"n{ref.pnode}_{ref.version}"

    lines = ["digraph provenance {", "  rankdir=BT;",
             '  node [shape=box, fontname="Helvetica"];']
    for ref, label in nodes.items():
        escaped = label.replace('"', r"\"")
        lines.append(f'  {node_id(ref)} [label="{escaped}"];')
    for src, dst, label in edges:
        if src in nodes and dst in nodes:
            lines.append(f"  {node_id(src)} -> {node_id(dst)} "
                         f'[label="{label}"];')
    lines.append("}")
    return "\n".join(lines)


def summarize_object(databases: Iterable, ref: ObjectRef) -> str:
    """One object's record sheet, formatted for humans."""
    databases = list(databases)
    lines = [f"object {ref.pnode} version {ref.version}",
             f"  {_label(databases, ref)}"]
    for db in databases:
        for record in db.records_of_version(ref):
            if record.attr == Attr.MD5:
                continue
            value = record.value
            if isinstance(value, ObjectRef):
                value = _label(databases, value)
            lines.append(f"  {record.attr:14s} {value}")
    return "\n".join(lines)
