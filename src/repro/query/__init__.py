"""High-level query helpers layered over PQL and the databases."""

from repro.query.helpers import (
    ancestry_of_name,
    ancestry_refs,
    descendant_refs,
    explain_dependency,
    provenance_diff,
)

__all__ = [
    "ancestry_of_name",
    "ancestry_refs",
    "descendant_refs",
    "explain_dependency",
    "provenance_diff",
]
