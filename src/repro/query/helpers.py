"""Convenience queries: ancestry, descendants, and provenance diffing.

These wrap the common questions from the paper's use cases -- "what is
the complete ancestry of this output?", "what descended from this
download?", "how does the ancestry of Monday's output differ from
Wednesday's?" -- so applications don't have to write PQL for them.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from repro.core.pnode import ObjectRef
from repro.core.records import Attr

if TYPE_CHECKING:  # pragma: no cover
    from repro.storage.database import ProvenanceDatabase
    from repro.system import System


def _merged_dbs(system: "System") -> list:
    return system.databases()


def ancestry_refs(databases: Iterable, ref: ObjectRef,
                  attrs: frozenset = Attr.ANCESTRY_ATTRS) -> set[ObjectRef]:
    """Every ref transitively reachable over ancestry edges."""
    databases = list(databases)
    seen: set[ObjectRef] = set()
    frontier = [ref]
    while frontier:
        node = frontier.pop()
        for database in databases:
            for parent in database.ancestors(node, attrs):
                if parent not in seen:
                    seen.add(parent)
                    frontier.append(parent)
    return seen


def descendant_refs(databases: Iterable, ref: ObjectRef,
                    attrs: frozenset = Attr.ANCESTRY_ATTRS
                    ) -> set[ObjectRef]:
    """Every ref that transitively depends on ``ref``.

    Later versions of an object implicitly contain its earlier versions
    (PREV_VERSION edges), so taint naturally flows across freezes.
    """
    databases = list(databases)
    seen: set[ObjectRef] = set()
    frontier = [ref]
    while frontier:
        node = frontier.pop()
        for database in databases:
            for child in database.descendants(node, attrs):
                if child not in seen:
                    seen.add(child)
                    frontier.append(child)
    return seen


def newest_ref_by_name(databases: Iterable, name: str) -> ObjectRef:
    """The newest version of the newest object carrying NAME == name."""
    best: ObjectRef | None = None
    for database in databases:
        for ref in database.find_by_name(name):
            latest = database.max_version(ref.pnode)
            candidate = ObjectRef(ref.pnode, latest if latest is not None
                                  else ref.version)
            if best is None or candidate > best:
                best = candidate
    if best is None:
        from repro.core.errors import UnknownPnode
        raise UnknownPnode(f"no object named {name!r} in any database")
    return best


def ancestry_of_name(system: "System", name: str) -> set[ObjectRef]:
    """Complete ancestry of the newest object with the given NAME."""
    databases = _merged_dbs(system)
    return ancestry_refs(databases, newest_ref_by_name(databases, name))


def describe(databases: Iterable, ref: ObjectRef) -> dict:
    """Human-oriented summary of one object version."""
    info: dict = {"ref": ref, "attrs": {}}
    for database in databases:
        for record in database.records_of_version(ref):
            info["attrs"].setdefault(record.attr, []).append(record.value)
        # Identity lives on whichever version recorded it.
        for record in database.records_of(ref.pnode):
            if record.attr in (Attr.NAME, Attr.TYPE):
                info["attrs"].setdefault(record.attr, [])
                if record.value not in info["attrs"][record.attr]:
                    info["attrs"][record.attr].append(record.value)
    return info


def explain_dependency(databases: Iterable, descendant: ObjectRef,
                       ancestor: ObjectRef,
                       max_paths: int = 5) -> list[list[ObjectRef]]:
    """*Why* does ``descendant`` depend on ``ancestor``?

    Returns up to ``max_paths`` dependency chains (each a list of refs
    from descendant to ancestor, inclusive), shortest first -- the
    evidence behind answers like "your presentation is tainted by the
    codec because presentation <- malware-process <- codec.bin".
    """
    databases = list(databases)
    if max_paths <= 0:
        return []
    # BFS from the descendant, keeping predecessor lists so several
    # shortest paths can be reconstructed.
    paths: list[list[ObjectRef]] = []
    frontier: list[list[ObjectRef]] = [[descendant]]
    visited_depth: dict[ObjectRef, int] = {descendant: 0}
    while frontier and len(paths) < max_paths:
        next_frontier: list[list[ObjectRef]] = []
        for path in frontier:
            node = path[-1]
            for database in databases:
                for parent in database.ancestors(node):
                    if parent == ancestor:
                        candidate = path + [parent]
                        if candidate not in paths:
                            paths.append(candidate)
                            if len(paths) >= max_paths:
                                return paths
                        continue
                    depth = visited_depth.get(parent)
                    if depth is not None and depth < len(path):
                        continue
                    visited_depth[parent] = len(path)
                    next_frontier.append(path + [parent])
        frontier = next_frontier
    return paths


def provenance_diff(databases: Iterable, left: ObjectRef,
                    right: ObjectRef) -> dict:
    """How do two objects' ancestries differ?

    Returns refs only in the left ancestry, only in the right, and
    shared -- the primitive behind the paper's "why is Wednesday's
    output different from Monday's?" use case.
    """
    databases = list(databases)
    left_set = ancestry_refs(databases, left)
    right_set = ancestry_refs(databases, right)
    return {
        "only_left": left_set - right_set,
        "only_right": right_set - left_set,
        "common": left_set & right_set,
    }
