"""PQL lexer.

Produces a stream of :class:`Token` with line/column positions so parse
errors point at the offending character.  Keywords are case-insensitive
(``SELECT`` / ``select``); identifiers are case-sensitive.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from repro.core.errors import PQLSyntaxError

KEYWORDS = frozenset({
    "select", "from", "where", "as", "and", "or", "not", "in",
    "exists", "true", "false", "distinct", "like", "limit",
    "order", "by", "asc", "desc",
})

#: Multi-character operators, longest first.
_TWO_CHAR = ("<=", ">=", "!=", "==")
_ONE_CHAR = ".*+?(){}|,<>=^-/%[]"


@dataclass(frozen=True)
class Token:
    """One lexical token."""

    kind: str          # 'ident', 'keyword', 'string', 'number', 'op', 'eof'
    text: str
    line: int
    column: int

    def is_keyword(self, word: str) -> bool:
        return self.kind == "keyword" and self.text == word

    def is_op(self, op: str) -> bool:
        return self.kind == "op" and self.text == op

    def __str__(self) -> str:
        return "end of query" if self.kind == "eof" else repr(self.text)


def tokenize(text: str) -> list[Token]:
    """Lex a whole query; always ends with one 'eof' token."""
    return list(_tokens(text))


def _tokens(text: str) -> Iterator[Token]:
    line, column = 1, 0
    index = 0
    length = len(text)
    while index < length:
        char = text[index]
        if char == "\n":
            line += 1
            column = 0
            index += 1
            continue
        if char in " \t\r":
            index += 1
            column += 1
            continue
        if char == "#":                      # comment to end of line
            while index < length and text[index] != "\n":
                index += 1
            continue
        start_col = column
        if char == '"' or char == "'":
            value, consumed = _lex_string(text, index, line, start_col)
            yield Token("string", value, line, start_col)
            index += consumed
            column += consumed
            continue
        if char.isdigit():
            end = index
            seen_dot = False
            while end < length and (text[end].isdigit()
                                    or (text[end] == "." and not seen_dot
                                        and end + 1 < length
                                        and text[end + 1].isdigit())):
                if text[end] == ".":
                    seen_dot = True
                end += 1
            yield Token("number", text[index:end], line, start_col)
            column += end - index
            index = end
            continue
        if char.isalpha() or char == "_":
            end = index
            while end < length and (text[end].isalnum() or text[end] == "_"):
                end += 1
            word = text[index:end]
            kind = "keyword" if word.lower() in KEYWORDS else "ident"
            yield Token(kind, word.lower() if kind == "keyword" else word,
                        line, start_col)
            column += end - index
            index = end
            continue
        two = text[index:index + 2]
        if two in _TWO_CHAR:
            yield Token("op", "=" if two == "==" else two, line, start_col)
            index += 2
            column += 2
            continue
        if char in _ONE_CHAR:
            yield Token("op", char, line, start_col)
            index += 1
            column += 1
            continue
        raise PQLSyntaxError(f"unexpected character {char!r}", line, start_col)
    yield Token("eof", "", line, column)


def _lex_string(text: str, index: int, line: int,
                column: int) -> tuple[str, int]:
    quote = text[index]
    out: list[str] = []
    pos = index + 1
    while pos < len(text):
        char = text[pos]
        if char == "\\" and pos + 1 < len(text):
            escape = text[pos + 1]
            out.append({"n": "\n", "t": "\t"}.get(escape, escape))
            pos += 2
            continue
        if char == quote:
            return "".join(out), pos + 1 - index
        if char == "\n":
            break
        out.append(char)
        pos += 1
    raise PQLSyntaxError("unterminated string literal", line, column)
