"""OEM: the schema-less object graph PQL queries run over.

"The data model in Lore is that of a collection of arbitrary objects,
some holding values and some holding tables of named linkages to other
objects" (section 5.7).  Here:

* one :class:`OEMNode` per (pnode, version) seen in the databases;
* provenance records with plain values become *atoms* (attribute name
  lowercased: ``NAME`` -> ``name``);
* records whose value is a cross-reference become labelled *edges*
  (``INPUT`` -> ``input``); every edge is traversable in both
  directions (the Lorel extension PASSv2 required);
* identity atoms (name, type, argv, env, pid) are shared across all
  versions of an object, so a query for ``F.name = "/pass/x"`` matches
  every version, the way Waldo's name index behaves;
* the reserved root ``Provenance`` exposes one member per object TYPE
  (``Provenance.file``, ``Provenance.process``, ...) plus ``node`` for
  everything.

The graph is *maintainable*: :meth:`OEMGraph.build` constructs it from a
record stream in one batch pass, and :meth:`OEMGraph.apply` splices a
single record into an existing graph -- new nodes, edge wiring,
identity-atom sharing, member classification, and the name index are all
updated in O(delta).  A live query engine applies records as Waldo
drains them instead of rebuilding the world per sync; the two paths are
property-tested equivalent (``tests/properties/test_oem_incremental_props``).

Vocabulary growth (a never-before-seen atom label, edge label, or
member) bumps :attr:`OEMGraph.vocab_epoch`, which the query engine uses
to invalidate cached lint vocabularies and compiled-plan check results.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Optional

from repro.core.pnode import ObjectRef
from repro.core.records import Attr, ProvenanceRecord

#: Attributes whose atoms are shared by every version of an object.
IDENTITY_ATTRS = frozenset({Attr.NAME, Attr.TYPE, Attr.ARGV, Attr.ENV,
                            Attr.PID})

#: Log-framing attributes that never appear in the graph.
_FRAMING = frozenset({Attr.BEGINTXN, Attr.ENDTXN})


class OEMNode:
    """One object version in the graph."""

    __slots__ = ("ref", "atoms", "edges", "redges")

    def __init__(self, ref: ObjectRef):
        self.ref = ref
        # Plain dicts, not defaultdicts: readers hit these directly
        # during traversal, and a defaultdict would materialize an
        # empty list per missing label probed -- queries would bloat
        # node footprints.  Writers go through ``setdefault``.
        #: atom label -> list of values.
        self.atoms: dict[str, list] = {}
        #: edge label -> list of target nodes.
        self.edges: dict[str, list["OEMNode"]] = {}
        #: edge label -> list of source nodes (reverse traversal).
        self.redges: dict[str, list["OEMNode"]] = {}

    def atom(self, label: str) -> list:
        """Values of one atom attribute (possibly empty)."""
        return self.atoms.get(label, [])

    def out(self, label: str) -> list["OEMNode"]:
        """Forward edge targets."""
        return self.edges.get(label, [])

    def rin(self, label: str) -> list["OEMNode"]:
        """Reverse edge sources."""
        return self.redges.get(label, [])

    @property
    def type(self) -> Optional[str]:
        values = self.atom("type")
        return values[0] if values else None

    @property
    def name(self) -> Optional[str]:
        values = self.atom("name")
        return values[0] if values else None

    def __repr__(self) -> str:
        label = self.name or self.type or "?"
        return f"<OEMNode {self.ref} {label}>"


class OEMGraph:
    """The whole graph plus the Provenance root."""

    ROOT = "Provenance"

    def __init__(self) -> None:
        self._nodes: dict[ObjectRef, OEMNode] = {}
        self._members: dict[str, list[OEMNode]] = defaultdict(list)
        self._by_pnode: dict[int, list[OEMNode]] = defaultdict(list)
        self._by_name: dict[str, list[OEMNode]] = defaultdict(list)
        #: Identity atoms seen per pnode, arrival-ordered (label, value):
        #: replayed onto versions created after the atom arrived.
        self._identity: dict[int, list[tuple[str, object]]] = defaultdict(list)
        #: Every atom / edge label the graph holds (lint vocabulary).
        self._atom_labels: set[str] = set()
        self._edge_labels: set[str] = set()
        #: Bumped whenever the label/member vocabulary grows; cached
        #: vocabularies and plan checks key off it.
        self.vocab_epoch = 0
        self.records_applied = 0
        #: Attachment point for the secondary-index catalogue
        #: (:class:`repro.pql.indexes.IndexCatalog`).  None until an
        #: optimizing query engine attaches one; afterwards every
        #: atom/edge delta is mirrored into it in O(1) so the indexes
        #: never go stale.  One catalog per graph, shared by every
        #: engine over it.
        self.indexes = None

    # -- construction --------------------------------------------------------------

    @classmethod
    def build(cls, records: Iterable[ProvenanceRecord]) -> "OEMGraph":
        """Build a graph from a stream of records in one batch pass.

        Identity-atom sharing and member classification are deferred to
        the end of the stream (cheaper than doing them per record); the
        finished graph is indistinguishable from one grown a record at
        a time with :meth:`apply`, and can keep growing incrementally
        afterwards.
        """
        graph = cls()
        for record in records:
            if record.attr in _FRAMING:
                continue
            node = graph._node(record.subject)
            label = record.attr.lower()
            graph.records_applied += 1
            if isinstance(record.value, ObjectRef):
                target = graph._node(record.value)
                node.edges.setdefault(label, []).append(target)
                target.redges.setdefault(label, []).append(node)
                graph._edge_labels.add(label)
            elif record.attr in IDENTITY_ATTRS:
                graph._identity[record.subject.pnode].append(
                    (label, record.value))
                graph._atom_labels.add(label)
            else:
                node.atoms.setdefault(label, []).append(record.value)
                graph._atom_labels.add(label)
        graph._apply_identity(graph._identity)
        graph._classify()
        graph.vocab_epoch += 1
        return graph

    def apply(self, record: ProvenanceRecord) -> None:
        """Splice one record into the graph (the incremental delta path).

        Applying a record stream through here yields a graph equivalent
        to :meth:`build` on the same stream: nodes, atoms, edges, member
        classification, identity sharing, and the name index are all
        maintained eagerly.  Used by live query engines as Waldo drains
        records into the database.
        """
        if record.attr in _FRAMING:
            return
        node = self._live_node(record.subject)
        label = record.attr.lower()
        self.records_applied += 1
        catalog = self.indexes
        if isinstance(record.value, ObjectRef):
            target = self._live_node(record.value)
            node.edges.setdefault(label, []).append(target)
            target.redges.setdefault(label, []).append(node)
            if label not in self._edge_labels:
                self._edge_labels.add(label)
                self.vocab_epoch += 1
            if catalog is not None:
                catalog.note_edge(label, node, target)
        elif record.attr in IDENTITY_ATTRS:
            # Shared by every version, present and future.
            self._identity[record.subject.pnode].append(
                (label, record.value))
            self._note_atom_label(label)
            for version in self._by_pnode[record.subject.pnode]:
                self._add_identity_atom(version, label, record.value)
        else:
            node.atoms.setdefault(label, []).append(record.value)
            self._note_atom_label(label)
            if catalog is not None:
                catalog.note_atom(node, label, record.value)

    def apply_many(self, records: Iterable[ProvenanceRecord]) -> int:
        """Apply a batch of records; returns how many were applied."""
        count = 0
        for record in records:
            self.apply(record)
            count += 1
        return count

    def apply_batch(self, records: Iterable[ProvenanceRecord]) -> int:
        """Splice a record group into the graph in one vectorized pass.

        Node/atom/edge/identity effects are identical to calling
        :meth:`apply` per record, but lookups are hoisted out of the
        loop and vocabulary bookkeeping is deferred: however many new
        labels or members the batch introduces, the epoch advances once
        at the end (cached vocabularies only test the epoch for change,
        so one bump per batch invalidates them just as well).
        """
        epoch0 = self.vocab_epoch
        count = 0
        live_node = self._live_node
        edge_labels = self._edge_labels
        identity = self._identity
        by_pnode = self._by_pnode
        add_identity = self._add_identity_atom
        note_label = self._note_atom_label
        catalog = self.indexes
        for record in records:
            attr = record.attr
            if attr in _FRAMING:
                continue
            count += 1
            node = live_node(record.subject)
            label = attr.lower()
            value = record.value
            if isinstance(value, ObjectRef):
                target = live_node(value)
                node.edges.setdefault(label, []).append(target)
                target.redges.setdefault(label, []).append(node)
                if label not in edge_labels:
                    edge_labels.add(label)
                    self.vocab_epoch += 1
                if catalog is not None:
                    catalog.note_edge(label, node, target)
            elif attr in IDENTITY_ATTRS:
                identity[record.subject.pnode].append((label, value))
                note_label(label)
                for version in by_pnode[record.subject.pnode]:
                    add_identity(version, label, value)
            else:
                node.atoms.setdefault(label, []).append(value)
                note_label(label)
                if catalog is not None:
                    catalog.note_atom(node, label, value)
        self.records_applied += count
        if self.vocab_epoch != epoch0:
            # Deferred bookkeeping: the whole batch costs one bump.
            self.vocab_epoch = epoch0 + 1
        return count

    def _node(self, ref: ObjectRef) -> OEMNode:
        node = self._nodes.get(ref)
        if node is None:
            node = OEMNode(ref)
            self._nodes[ref] = node
            self._by_pnode[ref.pnode].append(node)
        return node

    def _live_node(self, ref: ObjectRef) -> OEMNode:
        """Get-or-create with eager classification (the apply path):
        a new node joins ``Provenance.node`` immediately and inherits
        every identity atom already seen for its pnode."""
        node = self._nodes.get(ref)
        if node is not None:
            return node
        node = self._node(ref)
        self._members["node"].append(node)
        for label, value in self._identity.get(ref.pnode, ()):
            self._add_identity_atom(node, label, value)
        return node

    def _add_identity_atom(self, node: OEMNode, label: str, value) -> None:
        """Share one identity atom onto one version node, maintaining
        the member classification, name index, and (when attached) the
        secondary-index catalogue it feeds."""
        values = node.atoms.setdefault(label, [])
        if value in values:
            return
        values.append(value)
        if label == "type" and len(values) == 1 \
                and isinstance(value, str) and value:
            member = value.lower()
            if member not in self._members:
                self.vocab_epoch += 1
            self._members[member].append(node)
        elif label == "name" and isinstance(value, str):
            self._by_name[value].append(node)
        if self.indexes is not None:
            self.indexes.note_atom(node, label, value)

    def _note_atom_label(self, label: str) -> None:
        if label not in self._atom_labels:
            self._atom_labels.add(label)
            self.vocab_epoch += 1

    def _apply_identity(self, identity) -> None:
        """Share identity atoms across every version of each object."""
        for pnode, pairs in identity.items():
            for node in self._by_pnode[pnode]:
                for label, value in pairs:
                    values = node.atoms.setdefault(label, [])
                    if value not in values:
                        values.append(value)

    def _classify(self) -> None:
        """Populate the Provenance root members from TYPE atoms, and the
        name index the evaluator's selection pushdown uses."""
        self._members.clear()
        self._by_name.clear()
        for node in self._nodes.values():
            self._members["node"].append(node)
            node_type = node.type
            if isinstance(node_type, str) and node_type:
                self._members[node_type.lower()].append(node)
            for name in node.atom("name"):
                if isinstance(name, str):
                    self._by_name[name].append(node)

    # -- lookups -----------------------------------------------------------------------

    def members(self, name: str) -> list[OEMNode]:
        """Nodes under one Provenance root member (e.g. 'file')."""
        return list(self._members.get(name, ()))

    def member_count(self, name: str) -> int:
        """Size of one root member class without copying it (the
        planner's scan-cost estimate)."""
        return len(self._members.get(name, ()))

    def member_names(self) -> list[str]:
        """Available root member names."""
        return sorted(self._members)

    def atom_labels(self) -> frozenset:
        """Every atom label present in the graph (lint vocabulary)."""
        return frozenset(self._atom_labels)

    def edge_labels(self) -> frozenset:
        """Every edge label present in the graph (lint vocabulary)."""
        return frozenset(self._edge_labels)

    def node(self, ref: ObjectRef) -> Optional[OEMNode]:
        """Node for one (pnode, version), if present."""
        return self._nodes.get(ref)

    def named(self, name: str) -> list[OEMNode]:
        """Nodes whose NAME equals ``name`` (the name index)."""
        return list(self._by_name.get(name, ()))

    def versions_of(self, pnode: int) -> list[OEMNode]:
        """All version nodes of one object, oldest first."""
        return sorted(self._by_pnode.get(pnode, ()),
                      key=lambda node: node.ref.version)

    def nodes(self) -> list[OEMNode]:
        """Every node."""
        return list(self._nodes.values())

    def __len__(self) -> int:
        return len(self._nodes)

    def __repr__(self) -> str:
        return f"<OEMGraph {len(self._nodes)} nodes>"
