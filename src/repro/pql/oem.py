"""OEM: the schema-less object graph PQL queries run over.

"The data model in Lore is that of a collection of arbitrary objects,
some holding values and some holding tables of named linkages to other
objects" (section 5.7).  Here:

* one :class:`OEMNode` per (pnode, version) seen in the databases;
* provenance records with plain values become *atoms* (attribute name
  lowercased: ``NAME`` -> ``name``);
* records whose value is a cross-reference become labelled *edges*
  (``INPUT`` -> ``input``); every edge is traversable in both
  directions (the Lorel extension PASSv2 required);
* identity atoms (name, type, argv, env, pid) are shared across all
  versions of an object, so a query for ``F.name = "/pass/x"`` matches
  every version, the way Waldo's name index behaves;
* the reserved root ``Provenance`` exposes one member per object TYPE
  (``Provenance.file``, ``Provenance.process``, ...) plus ``node`` for
  everything.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable, Optional

from repro.core.pnode import ObjectRef
from repro.core.records import Attr, ProvenanceRecord

#: Attributes whose atoms are shared by every version of an object.
IDENTITY_ATTRS = frozenset({Attr.NAME, Attr.TYPE, Attr.ARGV, Attr.ENV,
                            Attr.PID})

#: Log-framing attributes that never appear in the graph.
_FRAMING = frozenset({Attr.BEGINTXN, Attr.ENDTXN})


class OEMNode:
    """One object version in the graph."""

    __slots__ = ("ref", "atoms", "edges", "redges")

    def __init__(self, ref: ObjectRef):
        self.ref = ref
        #: atom label -> list of values.
        self.atoms: dict[str, list] = defaultdict(list)
        #: edge label -> list of target nodes.
        self.edges: dict[str, list["OEMNode"]] = defaultdict(list)
        #: edge label -> list of source nodes (reverse traversal).
        self.redges: dict[str, list["OEMNode"]] = defaultdict(list)

    def atom(self, label: str) -> list:
        """Values of one atom attribute (possibly empty)."""
        return self.atoms.get(label, [])

    def out(self, label: str) -> list["OEMNode"]:
        """Forward edge targets."""
        return self.edges.get(label, [])

    def rin(self, label: str) -> list["OEMNode"]:
        """Reverse edge sources."""
        return self.redges.get(label, [])

    @property
    def type(self) -> Optional[str]:
        values = self.atom("type")
        return values[0] if values else None

    @property
    def name(self) -> Optional[str]:
        values = self.atom("name")
        return values[0] if values else None

    def __repr__(self) -> str:
        label = self.name or self.type or "?"
        return f"<OEMNode {self.ref} {label}>"


class OEMGraph:
    """The whole graph plus the Provenance root."""

    ROOT = "Provenance"

    def __init__(self) -> None:
        self._nodes: dict[ObjectRef, OEMNode] = {}
        self._members: dict[str, list[OEMNode]] = defaultdict(list)
        self._by_pnode: dict[int, list[OEMNode]] = defaultdict(list)
        self._by_name: dict[str, list[OEMNode]] = defaultdict(list)

    # -- construction --------------------------------------------------------------

    @classmethod
    def build(cls, records: Iterable[ProvenanceRecord]) -> "OEMGraph":
        """Build a graph from a stream of records."""
        graph = cls()
        identity: dict[int, list[tuple[str, object]]] = defaultdict(list)
        for record in records:
            if record.attr in _FRAMING:
                continue
            node = graph._node(record.subject)
            label = record.attr.lower()
            if isinstance(record.value, ObjectRef):
                target = graph._node(record.value)
                node.edges[label].append(target)
                target.redges[label].append(node)
            elif record.attr in IDENTITY_ATTRS:
                identity[record.subject.pnode].append((label, record.value))
            else:
                node.atoms[label].append(record.value)
        graph._apply_identity(identity)
        graph._classify()
        return graph

    def _node(self, ref: ObjectRef) -> OEMNode:
        node = self._nodes.get(ref)
        if node is None:
            node = OEMNode(ref)
            self._nodes[ref] = node
            self._by_pnode[ref.pnode].append(node)
        return node

    def _apply_identity(self, identity) -> None:
        """Share identity atoms across every version of each object."""
        for pnode, pairs in identity.items():
            for node in self._by_pnode[pnode]:
                for label, value in pairs:
                    if value not in node.atoms[label]:
                        node.atoms[label].append(value)

    def _classify(self) -> None:
        """Populate the Provenance root members from TYPE atoms, and the
        name index the evaluator's selection pushdown uses."""
        self._members.clear()
        self._by_name.clear()
        for node in self._nodes.values():
            self._members["node"].append(node)
            node_type = node.type
            if node_type:
                self._members[node_type.lower()].append(node)
            for name in node.atom("name"):
                if isinstance(name, str):
                    self._by_name[name].append(node)

    # -- lookups -----------------------------------------------------------------------

    def members(self, name: str) -> list[OEMNode]:
        """Nodes under one Provenance root member (e.g. 'file')."""
        return list(self._members.get(name, ()))

    def member_names(self) -> list[str]:
        """Available root member names."""
        return sorted(self._members)

    def node(self, ref: ObjectRef) -> Optional[OEMNode]:
        """Node for one (pnode, version), if present."""
        return self._nodes.get(ref)

    def named(self, name: str) -> list[OEMNode]:
        """Nodes whose NAME equals ``name`` (the name index)."""
        return list(self._by_name.get(name, ()))

    def versions_of(self, pnode: int) -> list[OEMNode]:
        """All version nodes of one object, oldest first."""
        return sorted(self._by_pnode.get(pnode, ()),
                      key=lambda node: node.ref.version)

    def nodes(self) -> list[OEMNode]:
        """Every node."""
        return list(self._nodes.values())

    def __len__(self) -> int:
        return len(self._nodes)

    def __repr__(self) -> str:
        return f"<OEMGraph {len(self._nodes)} nodes>"
