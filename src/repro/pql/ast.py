"""PQL abstract syntax tree.

Nodes are plain frozen dataclasses; the evaluator pattern-matches on
their types.  A query::

    select <select items>
    from <binding> <binding> ...
    [where <expr>]

Each FROM binding is a path expression rooted either at the reserved
root ``Provenance`` or at an earlier-bound variable, with an optional
``as Name`` alias (required unless the path is a bare identifier).

Nodes that diagnostics anchor to carry the ``line``/``column`` of the
token that introduced them.  Positions are excluded from equality and
repr so structurally identical ASTs still compare equal.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union


# -- path structure --------------------------------------------------------------


@dataclass(frozen=True)
class EdgeName:
    """One edge label, optionally reversed (``^input``)."""

    name: str
    reverse: bool = False
    line: int = field(default=0, compare=False, repr=False)
    column: int = field(default=0, compare=False, repr=False)


@dataclass(frozen=True)
class EdgeAlt:
    """Alternation of edge labels: ``(input|forkparent)``."""

    options: tuple[EdgeName, ...]


EdgeExpr = Union[EdgeName, EdgeAlt]


@dataclass(frozen=True)
class Quantifier:
    """Repetition bounds for a path step; (1, 1) when absent.

    ``maximum`` is None for unbounded (``*``, ``+``, ``{n,}``).
    """

    minimum: int = 1
    maximum: Optional[int] = 1

    @classmethod
    def star(cls) -> "Quantifier":
        return cls(0, None)

    @classmethod
    def plus(cls) -> "Quantifier":
        return cls(1, None)

    @classmethod
    def opt(cls) -> "Quantifier":
        return cls(0, 1)


@dataclass(frozen=True)
class Step:
    """One path step: an edge expression with a quantifier."""

    edge: EdgeExpr
    quantifier: Quantifier = Quantifier()


@dataclass(frozen=True)
class Path:
    """A rooted path: variable or root name, then steps."""

    root: str                      # 'Provenance' or a bound variable
    steps: tuple[Step, ...] = ()
    line: int = field(default=0, compare=False, repr=False)
    column: int = field(default=0, compare=False, repr=False)


@dataclass(frozen=True)
class Binding:
    """``<path> as <name>`` in the FROM clause."""

    path: Path
    name: str
    line: int = field(default=0, compare=False, repr=False)
    column: int = field(default=0, compare=False, repr=False)


# -- expressions --------------------------------------------------------------------


@dataclass(frozen=True)
class Literal:
    value: object


@dataclass(frozen=True)
class PathValue:
    """A path used in expression position (``Atlas.name``).

    Evaluates to the multiset of atoms/nodes it reaches from the current
    tuple; comparisons over it are existential, Lorel-style.
    """

    path: Path


@dataclass(frozen=True)
class Compare:
    op: str                        # '=', '!=', '<', '<=', '>', '>='
    left: "Expr"
    right: "Expr"
    line: int = field(default=0, compare=False, repr=False)
    column: int = field(default=0, compare=False, repr=False)


@dataclass(frozen=True)
class BoolOp:
    op: str                        # 'and' | 'or'
    operands: tuple["Expr", ...]


@dataclass(frozen=True)
class Not:
    operand: "Expr"


@dataclass(frozen=True)
class Arith:
    op: str                        # '+', '-', '*', '/', '%'
    left: "Expr"
    right: "Expr"


@dataclass(frozen=True)
class Neg:
    operand: "Expr"


@dataclass(frozen=True)
class Call:
    """Aggregate or scalar function call: count(X.input), max(...)"""

    name: str
    args: tuple["Expr", ...]
    line: int = field(default=0, compare=False, repr=False)
    column: int = field(default=0, compare=False, repr=False)


@dataclass(frozen=True)
class InQuery:
    """``expr in (select ...)`` -- existential membership."""

    needle: "Expr"
    query: "Query"


@dataclass(frozen=True)
class ExistsQuery:
    """``exists (select ...)``."""

    query: "Query"


Expr = Union[Literal, PathValue, Compare, BoolOp, Not, Arith, Neg, Call,
             InQuery, ExistsQuery]


# -- queries ------------------------------------------------------------------------------


@dataclass(frozen=True)
class SelectItem:
    expr: Expr
    alias: Optional[str] = None


@dataclass(frozen=True)
class OrderBy:
    """``order by <expr> [asc|desc]`` -- sort key for the result rows."""

    expr: "Expr"
    descending: bool = False


@dataclass(frozen=True)
class Query:
    select: tuple[SelectItem, ...]
    bindings: tuple[Binding, ...]
    where: Optional[Expr] = None
    distinct: bool = True          # PQL results are sets by default
    order: Optional[OrderBy] = None
    #: Result pruning (the paper's "information overload" concern).
    limit: Optional[int] = None
    line: int = field(default=0, compare=False, repr=False)
    column: int = field(default=0, compare=False, repr=False)
