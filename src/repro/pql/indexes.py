"""Secondary indexes, CSR adjacency, and materialized ancestry views.

The live OEM graph answers point lookups and closure walks by linear
scan and per-node dict chasing; at millions of records that stops being
interactive (the whole point of the paper's layering is that "where did
this file come from" *stays* answerable as the system grows).  This
module is the access-path layer the cost-based planner
(:mod:`repro.pql.planner`) chooses from:

* :class:`EqualityIndex` -- hash index ``atom value -> nodes`` for one
  atom label, built lazily on first demand (one O(nodes) scan) and then
  maintained in O(1) per atom as records splice into the graph;
* :class:`RangeIndex` -- sorted ``(number, node)`` pairs for one atom
  label (``time`` and friends), bisect lookups for range predicates,
  insort maintenance;
* :class:`CSRSnapshot` -- a compressed-sparse-row view of the edge
  lists: one int id per node, per-(label, direction) offset/target
  arrays, so closure walks run over flat int arrays instead of chasing
  per-node dict-of-list pointers.  Snapshots rebuild lazily when the
  graph is quiescent and *fall back to the live dict form mid-burst*
  (see :meth:`IndexCatalog.csr`);
* :class:`AncestryView` -- materialized reachability over the ancestry
  (``input``-class) edge labels: per-root frontier summaries cached
  LRU, patched incrementally as new ancestry edges arrive (append-only
  graphs only ever *grow* a closure), making repeated backward/forward
  ancestry queries near-O(answer).

Everything hangs off one :class:`IndexCatalog`, attached to the graph
by the query engine (``graph.indexes``).  The graph notifies the
catalog from ``apply``/``apply_batch`` (``note_atom``/``note_edge``) --
O(delta) maintenance, no epoch races: an index built at time T scans
the graph as of T and receives every later delta through the
notification hooks, exactly like the plan cache's epoch discipline but
without ever going stale.  Only the CSR snapshot (a *copy* of the
adjacency) can lag the graph; it carries the epoch it was built at and
is never consulted when stale.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right, insort
from collections import OrderedDict
from typing import Iterable, Optional

from repro.core.records import Attr
from repro.pql.oem import OEMGraph, OEMNode

#: Lowercased ancestry edge labels: the "input-class" edges the
#: materialized ancestry view covers.
ANCESTRY_LABELS = frozenset(attr.lower() for attr in Attr.ANCESTRY_ATTRS)

#: Entries the ancestry view retains (LRU beyond this).
VIEW_MAX_ENTRIES = 512

#: Buffered ancestry deltas beyond which the view drops its entries and
#: starts over instead of patching (a huge burst with live closures
#: cached is cheaper to recompute than to replay edge by edge).
VIEW_MAX_PENDING = 8192


def _is_number(value) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


class EqualityIndex:
    """Hash index ``value -> [nodes]`` over one atom label."""

    __slots__ = ("label", "_buckets")

    def __init__(self, label: str, nodes: Iterable[OEMNode]):
        self.label = label
        self._buckets: dict = {}
        for node in nodes:
            for value in node.atom(label):
                self.add(value, node)

    def add(self, value, node: OEMNode) -> None:
        """O(1) maintenance: one new atom value on one node."""
        try:
            bucket = self._buckets.get(value)
        except TypeError:           # unhashable value: not indexable
            return
        if bucket is None:
            self._buckets[value] = [node]
        else:
            bucket.append(node)

    def lookup(self, value) -> list[OEMNode]:
        try:
            return self._buckets.get(value, [])
        except TypeError:
            return []

    def estimate(self, value) -> int:
        return len(self.lookup(value))

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._buckets.values())


class RangeIndex:
    """Sorted ``(number, node)`` pairs over one atom label.

    Only numeric atom values are indexed (bool excluded); lookups
    answer half-open / closed range predicates by bisect.  The sort key
    is ``(value, insertion seq)`` so heterogeneous ints/floats compare
    fine and nodes never need ordering.
    """

    __slots__ = ("label", "_pairs", "_seq")

    def __init__(self, label: str, nodes: Iterable[OEMNode]):
        self.label = label
        self._pairs: list[tuple] = []
        self._seq = 0
        for node in nodes:
            for value in node.atom(label):
                self.add(value, node)

    def add(self, value, node: OEMNode) -> None:
        """O(log n) maintenance: one new atom value on one node."""
        if not _is_number(value):
            return
        self._seq += 1
        insort(self._pairs, (value, self._seq, node))

    def _bounds(self, low, low_inc: bool, high, high_inc: bool):
        pairs = self._pairs
        lo = 0
        hi = len(pairs)
        if low is not None:
            key = (low, -1 if low_inc else self._seq + 1)
            lo = bisect_left(pairs, key)
        if high is not None:
            key = (high, self._seq + 1 if high_inc else -1)
            hi = bisect_right(pairs, key, lo)
        return lo, hi

    def lookup(self, low, low_inc: bool, high, high_inc: bool
               ) -> list[OEMNode]:
        """Nodes with some value in the range (existential, like every
        PQL comparison); a node appears once per matching value --
        callers dedup, the WHERE clause re-checks anyway."""
        lo, hi = self._bounds(low, low_inc, high, high_inc)
        return [pair[2] for pair in self._pairs[lo:hi]]

    def estimate(self, low, low_inc: bool, high, high_inc: bool) -> int:
        lo, hi = self._bounds(low, low_inc, high, high_inc)
        return hi - lo

    def __len__(self) -> int:
        return len(self._pairs)


class CSRSnapshot:
    """Compressed-sparse-row adjacency over one graph state.

    ``nodes`` is the node table (int id = position); ``arcs(label,
    reverse)`` lazily materializes one label-partitioned offset/target
    array pair.  The snapshot never mutates: it carries the epoch it
    was built at and the catalog discards it when the graph moves on.
    """

    __slots__ = ("epoch", "nodes", "node_id", "_arcs")

    def __init__(self, graph: OEMGraph, epoch):
        self.epoch = epoch
        self.nodes: list[OEMNode] = graph.nodes()
        self.node_id: dict[int, int] = {
            id(node): index for index, node in enumerate(self.nodes)}
        self._arcs: dict[tuple[str, bool], tuple[list, list]] = {}

    def arcs(self, label: str, reverse: bool) -> tuple[list, list]:
        """Offset/target arrays for one (label, direction)."""
        key = (label, reverse)
        built = self._arcs.get(key)
        if built is not None:
            return built
        node_id = self.node_id
        offsets = [0] * (len(self.nodes) + 1)
        targets: list[int] = []
        append = targets.append
        for index, node in enumerate(self.nodes):
            lists = node.redges if reverse else node.edges
            for target in lists.get(label, ()):
                append(node_id[id(target)])
            offsets[index + 1] = len(targets)
        self._arcs[key] = (offsets, targets)
        return offsets, targets

    def bfs(self, roots: list[int], labels: list[tuple[str, bool]],
            minimum: int, maximum: Optional[int]) -> list[int]:
        """Depth-layered BFS over the int arrays, mirroring the
        evaluator's dict walk exactly: every node is visited at its
        shallowest depth, results collect from ``minimum`` outward, and
        discovery order is preserved (same row order either way)."""
        arcs = [self.arcs(label, reverse) for label, reverse in labels]
        result: dict[int, None] = {}
        visited = bytearray(len(self.nodes))
        layer = list(roots)
        depth = 0
        while layer:
            if depth >= minimum:
                for nid in layer:
                    if nid not in result:
                        result[nid] = None
            if maximum is not None and depth >= maximum:
                break
            next_layer: list[int] = []
            for nid in layer:
                for offsets, targets in arcs:
                    for slot in range(offsets[nid], offsets[nid + 1]):
                        tid = targets[slot]
                        if not visited[tid]:
                            visited[tid] = 1
                            next_layer.append(tid)
            layer = next_layer
            depth += 1
        return list(result)


class _Closure:
    """One cached reachability summary: every node reachable from
    ``root`` over ``labels`` in one direction, one-or-more hops."""

    __slots__ = ("root", "labels", "reverse", "members", "order")

    def __init__(self, root: OEMNode, labels: tuple, reverse: bool):
        self.root = root
        self.labels = labels                # sorted tuple: stable walks
        self.reverse = reverse
        self.members: set[int] = set()      # id(node)
        self.order: list[OEMNode] = []      # discovery order

    def absorb(self, seeds: list[OEMNode]) -> None:
        """Expand by BFS from ``seeds`` over the *live* graph (the
        frontier walk); newly reached nodes join the summary."""
        members = self.members
        order = self.order
        labels = self.labels
        reverse = self.reverse
        layer: list[OEMNode] = []
        for node in seeds:
            key = id(node)
            if key not in members:
                members.add(key)
                order.append(node)
                layer.append(node)
        while layer:
            next_layer: list[OEMNode] = []
            for node in layer:
                lists = node.redges if reverse else node.edges
                for label in labels:
                    for target in lists.get(label, ()):
                        key = id(target)
                        if key not in members:
                            members.add(key)
                            order.append(target)
                            next_layer.append(target)
            layer = next_layer


class AncestryView:
    """Materialized ancestry closures, incrementally maintained.

    Provenance graphs are append-only: edges arrive, never leave, so a
    cached closure can only *grow*.  New ancestry edges are buffered by
    :meth:`note_edge`; the next read drains the buffer, patching every
    cached closure whose summary the new edge touches (if the edge's
    source side is already in the closure, the target side and
    everything beyond it is absorbed by a frontier walk over the live
    graph).  Each patch is O(newly reachable), not O(closure) -- the
    near-O(answer) property the planner sells to ancestry queries.
    """

    def __init__(self, max_entries: int = VIEW_MAX_ENTRIES,
                 max_pending: int = VIEW_MAX_PENDING):
        self.max_entries = max_entries
        self.max_pending = max_pending
        self._entries: OrderedDict[tuple, _Closure] = OrderedDict()
        self._pending: list[tuple[str, OEMNode, OEMNode]] = []
        self.refreshes = 0          # closure computes + patches
        self.hits = 0               # reads served from a cached closure
        self.invalidations = 0      # whole-view resets (pending overflow)

    # -- maintenance (graph-notification side) ---------------------------------

    def note_edge(self, label: str, source: OEMNode,
                  target: OEMNode) -> None:
        """Buffer one new ancestry edge (called per graph delta)."""
        if not self._entries:
            return                  # nothing cached: nothing to patch
        self._pending.append((label, source, target))
        if len(self._pending) > self.max_pending:
            # A burst this size is cheaper to recompute than replay.
            self._entries.clear()
            self._pending.clear()
            self.invalidations += 1

    def _drain(self) -> None:
        if not self._pending:
            return
        pending = self._pending
        self._pending = []
        for label, source, target in pending:
            for closure in self._entries.values():
                if label not in closure.labels:
                    continue
                # Forward closures follow out-edges: source -> target.
                # Reverse closures follow in-edges: target -> source.
                near, far = ((target, source) if closure.reverse
                             else (source, target))
                if id(near) in closure.members or near is closure.root:
                    closure.absorb([far])
                    self.refreshes += 1

    # -- reads -----------------------------------------------------------------

    def closure(self, root: OEMNode, labels: tuple,
                reverse: bool) -> list[OEMNode]:
        """Nodes reachable from ``root`` in one-or-more hops over
        ``labels`` -- a *sorted tuple* of edge labels, so walks and
        cache keys are deterministic (discovery order out).  Cached;
        patched first."""
        self._drain()
        key = (id(root), labels, reverse)
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
            self.hits += 1
            return entry.order
        entry = _Closure(root, labels, reverse)
        lists = root.redges if reverse else root.edges
        seeds: list[OEMNode] = []
        for label in labels:
            seeds.extend(lists.get(label, ()))
        entry.absorb(seeds)
        self._entries[key] = entry
        self.refreshes += 1
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
        return entry.order

    def cached_size(self, root: OEMNode, labels: tuple,
                    reverse: bool) -> Optional[int]:
        """Closure size if cached (the planner's row estimate)."""
        entry = self._entries.get((id(root), labels, reverse))
        return len(entry.order) if entry is not None else None

    def __len__(self) -> int:
        return len(self._entries)


class IndexCatalog:
    """Every secondary access path of one OEM graph, plus counters.

    Attach with :meth:`attach` (the query engine does); the graph then
    notifies the catalog of every atom/edge delta.  Indexes build
    lazily on first demand and are maintained forever after -- there is
    no rebuild path to get out of sync with (the property tests assert
    maintained == rebuilt-from-scratch anyway).
    """

    def __init__(self, graph: OEMGraph):
        self.graph = graph
        self._eq: dict[str, EqualityIndex] = {}
        self._rng: dict[str, RangeIndex] = {}
        #: atom label -> indexes watching it (the one-lookup hot path).
        self._watch: dict[str, list] = {}
        self.view = AncestryView()
        self._csr: Optional[CSRSnapshot] = None
        self._csr_pending = None
        #: id() of Observability instances already harvesting
        #: :meth:`counters` (engines sharing a graph share the catalog;
        #: each obs should fold the counters in exactly once).
        self.collector_obs: set[int] = set()
        # Counters (harvested as a passmon collector under "pql").
        self.index_hits = 0         # bindings answered from an index
        self.index_misses = 0       # bindings answered by full scan
        self.index_builds = 0       # lazy index constructions
        self.csr_rebuilds = 0       # CSR snapshots built
        self.csr_fallbacks = 0      # stale-CSR walks on the live dicts

    # -- wiring ----------------------------------------------------------------

    @classmethod
    def attach(cls, graph: OEMGraph) -> "IndexCatalog":
        """The catalog for ``graph``, creating and attaching on first
        call (engines sharing a graph share its catalog)."""
        catalog = graph.indexes
        if catalog is None:
            catalog = cls(graph)
            graph.indexes = catalog
        return catalog

    # -- graph notification hooks (O(delta) maintenance) -----------------------

    def note_atom(self, node: OEMNode, label: str, value) -> None:
        watchers = self._watch.get(label)
        if watchers:
            for index in watchers:
                index.add(value, node)

    def note_edge(self, label: str, source: OEMNode,
                  target: OEMNode) -> None:
        if label in ANCESTRY_LABELS:
            self.view.note_edge(label, source, target)

    # -- equality / range indexes ----------------------------------------------

    def equality(self, label: str) -> EqualityIndex:
        """The equality index for one atom label (built on first use)."""
        index = self._eq.get(label)
        if index is None:
            index = EqualityIndex(label, self.graph.nodes())
            self._eq[label] = index
            self._watch.setdefault(label, []).append(index)
            self.index_builds += 1
        return index

    def range(self, label: str) -> RangeIndex:
        """The range index for one atom label (built on first use)."""
        index = self._rng.get(label)
        if index is None:
            index = RangeIndex(label, self.graph.nodes())
            self._rng[label] = index
            self._watch.setdefault(label, []).append(index)
            self.index_builds += 1
        return index

    def equality_lookup(self, label: str, value) -> list[OEMNode]:
        """Nodes with ``label`` atom equal to ``value``.  The ``name``
        label rides the graph's own always-maintained name index; other
        labels go through (and lazily build) an :class:`EqualityIndex`."""
        if label == "name" and isinstance(value, str):
            return self.graph.named(value)
        return self.equality(label).lookup(value)

    def equality_estimate(self, label: str, value) -> int:
        if label == "name" and isinstance(value, str):
            return len(self.graph.named(value))
        return self.equality(label).estimate(value)

    # -- CSR snapshot ----------------------------------------------------------

    def csr(self) -> Optional[CSRSnapshot]:
        """The CSR adjacency snapshot, or None mid-burst.

        Fresh snapshots are served directly.  A stale snapshot is only
        rebuilt once the graph has been *quiescent* across two
        consecutive requests (same epoch twice); the first request
        after a change returns None -- the caller walks the live dicts
        -- so an ingest burst interleaved with queries never pays a
        rebuild per query.
        """
        graph = self.graph
        epoch = (graph.records_applied, len(graph))
        csr = self._csr
        if csr is not None and csr.epoch == epoch:
            return csr
        if self._csr_pending == epoch:
            csr = CSRSnapshot(graph, epoch)
            self._csr = csr
            self.csr_rebuilds += 1
            return csr
        self._csr_pending = epoch
        self.csr_fallbacks += 1
        return None

    # -- observability ---------------------------------------------------------

    def counters(self) -> dict:
        """Passmon collector payload (layer ``pql``)."""
        return {
            "index_hits": self.index_hits,
            "index_misses": self.index_misses,
            "index_builds": self.index_builds,
            "view_refreshes": self.view.refreshes,
            "view_hits": self.view.hits,
            "view_invalidations": self.view.invalidations,
            "csr_rebuilds": self.csr_rebuilds,
            "csr_fallbacks": self.csr_fallbacks,
        }

    def __repr__(self) -> str:
        return (f"<IndexCatalog eq={sorted(self._eq)} "
                f"rng={sorted(self._rng)} view={len(self.view)} "
                f"csr={'fresh' if self._csr is not None else 'none'}>")
